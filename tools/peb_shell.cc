// peb_shell — an interactive shell over a synthetic PEB-tree deployment.
//
// Generate a world, then poke at it: run privacy-aware queries as any
// user, stream updates, inspect friend lists and index statistics. All
// queries are issued through the MovingObjectService request/response API
// (per-query counters and I/O come from each response, by value). Reads
// commands from stdin (scriptable via pipes).
//
//   $ ./build/peb_shell
//   peb> gen 20000 30 0.7
//   peb> friends 42
//   peb> prq 42 300 300 700 700
//   peb> knn 42 500 500 5
//   peb> update 5000
//   peb> stats
//   peb> shards 4        # build a 4-shard engine; queries now use it
//   peb> threads 8       # rebuild the engine with 8 worker threads
//   peb> engine off      # back to the single PEB-tree
//   peb> watch 42 300 300 700 700   # standing query with live events
//   peb> events          # drain entered/left events
//   peb> quit
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/sharded_engine.h"
#include "eval/runner.h"
#include "eval/workload.h"
#include "service/service.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

using namespace peb;
using namespace peb::eval;
using peb::service::MovingObjectService;
using peb::service::QueryRequest;
using peb::service::QueryResponse;

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  gen <users> <policies_per_user> <theta> [network <hubs>]\n"
      "      generate a synthetic world and build both indexes\n"
      "  prq <issuer> <x1> <y1> <x2> <y2>   privacy-aware range query\n"
      "  knn <issuer> <x> <y> <k>           privacy-aware k nearest\n"
      "  friends <uid>    who may ever answer uid's queries\n"
      "  where <uid>      current position of a user\n"
      "  update <n>       stream n updates into both indexes\n"
      "  stats            index shapes and I/O counters\n"
      "  compare <n>      run n random PRQs on both indexes, report I/O\n"
      "  shards <n>       build an n-shard engine; prq/knn run against it\n"
      "  threads <n>      rebuild the engine with n worker threads\n"
      "  engine on|off    toggle whether queries use the sharded engine\n"
      "  watch <issuer> <x1> <y1> <x2> <y2>  register a standing PRQ\n"
      "  unwatch <id>     cancel a standing PRQ\n"
      "  events           drain standing-query entered/left events\n"
      "  policy add <owner> <peer> [x1 y1 x2 y2 [tstart tend]]\n"
      "      grant: owner lets peer see them inside the region (default:\n"
      "      everywhere) during the daily window (default: all day)\n"
      "  policy remove <owner> <peer>   revoke all owner->peer policies\n"
      "  role define <name>             register a role by name\n"
      "  reencode         flush pending mutations: incremental re-encode,\n"
      "                   re-key the affected users, publish a new epoch\n"
      "  epoch            current encoding epoch and pending mutations\n"
      "  check            run the deep structural validators on every\n"
      "                   index (PEB-tree, Bx-tree, pools, engine)\n"
      "  save <path>      checkpoint current object states into a durable\n"
      "                   file (superblock + WAL sidecar at <path>.wal)\n"
      "  open <path>      recover a saved/crashed engine from its\n"
      "                   superblock + WAL; it becomes the active index\n"
      "  checkpoint       fold the open engine's WAL into the file\n"
      "  telemetry [json] live metrics registry (Prometheus text or JSON)\n"
      "  trace on|off     trace every query; prq/knn print the span tree\n"
      "  slowlog          worst traced queries over the slow threshold\n"
      "  help | quit\n");
}

struct Shell {
  /// One registry for the shell's lifetime: engines and services come and
  /// go (gen / shards / engine on|off), their instruments accumulate
  /// here. Declared first so it outlives everything registered to it —
  /// the engine's destructor unregisters its pool collector.
  telemetry::MetricsRegistry registry;
  std::unique_ptr<Workload> world;
  std::unique_ptr<engine::ShardedPebEngine> eng;
  /// The service front-end queries go through: over the engine when
  /// enabled, else over the single PEB-tree.
  std::unique_ptr<MovingObjectService> svc;
  size_t engine_shards = 4;
  size_t engine_threads = 4;
  bool use_engine = false;
  size_t trace_every = 0;  ///< Sticky across RebindService; 1 = trace all.

  bool EnsureWorld() {
    if (world == nullptr) {
      std::printf("no world yet — run: gen <users> <policies> <theta>\n");
      return false;
    }
    return true;
  }

  /// Rebuilds the service over the active index. Standing queries live in
  /// the service, so toggling the backing index drops them (reported).
  void RebindService() {
    size_t standing = svc != nullptr ? svc->num_continuous_queries() : 0;
    PrivacyAwareIndex* index =
        use_engine && eng != nullptr
            ? static_cast<PrivacyAwareIndex*>(eng.get())
            : &world->peb();
    // Catalog-backed: policy add/remove, role define, and reencode work.
    service::ServiceOptions so;
    so.time_domain = world->params().time_domain;
    so.telemetry.registry = &registry;
    svc = std::make_unique<MovingObjectService>(index, world->catalog(), so);
    svc->set_trace_sample_every(trace_every);
    if (standing > 0) {
      std::printf("note: %zu standing quer%s dropped (index switched)\n",
                  standing, standing == 1 ? "y" : "ies");
    }
  }

  void RebuildEngine(bool enable) {
    std::printf("building engine: %zu shard(s), %zu thread(s)...\n",
                engine_shards, engine_threads);
    telemetry::TelemetryOptions topts;
    topts.registry = &registry;
    eng = MakeEngine(*world, engine_shards, engine_threads,
                     engine::RouterPolicy::kHashUser, topts);
    use_engine = enable;
    RebindService();
    std::printf("engine ready (%zu users)%s\n", eng->size(),
                enable ? "; prq/knn now use it"
                       : " (disabled — 'engine on' to use it)");
  }

  void Shards(std::istringstream& in) {
    if (!EnsureWorld()) return;
    size_t n = 0;
    if (!(in >> n) || n == 0) {
      std::printf("usage: shards <n>\n");
      return;
    }
    engine_shards = n;
    RebuildEngine(/*enable=*/true);
  }

  void Threads(std::istringstream& in) {
    if (!EnsureWorld()) return;
    size_t n = 0;
    if (!(in >> n)) {
      std::printf("usage: threads <n>  (0 = run shard tasks inline)\n");
      return;
    }
    engine_threads = n;
    // Respect an explicit earlier `engine off`: only a fresh engine (or
    // one already serving queries) is enabled.
    RebuildEngine(/*enable=*/eng == nullptr || use_engine);
  }

  void Engine(std::istringstream& in) {
    if (!EnsureWorld()) return;
    std::string mode;
    if (!(in >> mode) || (mode != "on" && mode != "off")) {
      std::printf("usage: engine on|off\n");
      return;
    }
    if (mode == "off") {
      use_engine = false;
      RebindService();
      std::printf("queries use the single PEB-tree\n");
      return;
    }
    if (eng == nullptr) {
      RebuildEngine(/*enable=*/true);
    } else {
      use_engine = true;
      RebindService();
      std::printf("queries use the %zu-shard engine\n", eng->num_shards());
    }
  }

  void Gen(std::istringstream& in) {
    WorkloadParams p;
    std::string dist;
    if (!(in >> p.num_users >> p.policies_per_user >> p.grouping_factor)) {
      std::printf("usage: gen <users> <policies> <theta> [network <hubs>]\n");
      return;
    }
    if (in >> dist && dist == "network") {
      p.distribution = Distribution::kNetwork;
      if (!(in >> p.num_hubs)) p.num_hubs = 100;
    }
    std::printf("building %zu users, %zu policies each, theta=%.2f...\n",
                p.num_users, p.policies_per_user, p.grouping_factor);
    world = std::make_unique<Workload>(Workload::Build(p));
    eng.reset();  // The old engine indexed the old world.
    use_engine = false;
    RebindService();
    std::printf("done: encoding %.2fs, now=%.1f\n",
                world->preprocessing_seconds(), world->now());
  }

  void Prq(std::istringstream& in) {
    if (!EnsureWorld()) return;
    UserId issuer;
    double x1, y1, x2, y2;
    if (!(in >> issuer >> x1 >> y1 >> x2 >> y2)) {
      std::printf("usage: prq <issuer> <x1> <y1> <x2> <y2>\n");
      return;
    }
    QueryResponse resp = svc->Execute(
        QueryRequest::Prq(issuer, {{x1, y1}, {x2, y2}}, world->now()));
    if (!resp.ok()) {
      std::printf("error: %s\n", resp.status.ToString().c_str());
      return;
    }
    std::printf("%zu visible user(s) [%llu I/O, %zu candidates, %.2f ms]:",
                resp.ids.size(),
                static_cast<unsigned long long>(resp.io.physical_reads),
                resp.counters.candidates_examined, resp.exec_ms);
    size_t shown = 0;
    for (UserId u : resp.ids) {
      if (shown++ == 20) {
        std::printf(" ...");
        break;
      }
      std::printf(" u%u", u);
    }
    std::printf("\n");
    if (!resp.trace.empty()) std::printf("%s", resp.trace.Summary().c_str());
  }

  void Knn(std::istringstream& in) {
    if (!EnsureWorld()) return;
    UserId issuer;
    double x, y;
    size_t k;
    if (!(in >> issuer >> x >> y >> k)) {
      std::printf("usage: knn <issuer> <x> <y> <k>\n");
      return;
    }
    QueryResponse resp =
        svc->Execute(QueryRequest::Pknn(issuer, {x, y}, k, world->now()));
    if (!resp.ok()) {
      std::printf("error: %s\n", resp.status.ToString().c_str());
      return;
    }
    for (const Neighbor& n : resp.neighbors) {
      std::printf("  u%-8u d=%.2f\n", n.uid, n.distance);
    }
    if (resp.neighbors.empty()) std::printf("  (no qualifying user)\n");
    std::printf("  [%llu I/O, %zu rounds, %.2f ms]\n",
                static_cast<unsigned long long>(resp.io.physical_reads),
                resp.counters.rounds, resp.exec_ms);
    if (!resp.trace.empty()) std::printf("%s", resp.trace.Summary().c_str());
  }

  void Watch(std::istringstream& in) {
    if (!EnsureWorld()) return;
    UserId issuer;
    double x1, y1, x2, y2;
    if (!(in >> issuer >> x1 >> y1 >> x2 >> y2)) {
      std::printf("usage: watch <issuer> <x1> <y1> <x2> <y2>\n");
      return;
    }
    QueryResponse resp = svc->Execute(QueryRequest::RegisterContinuous(
        issuer, {{x1, y1}, {x2, y2}}, world->now()));
    if (!resp.ok()) {
      std::printf("error: %s\n", resp.status.ToString().c_str());
      return;
    }
    std::printf("standing query #%u registered; %zu initial member(s)\n",
                resp.continuous_id, resp.ids.size());
  }

  void Unwatch(std::istringstream& in) {
    if (!EnsureWorld()) return;
    ContinuousQueryId id;
    if (!(in >> id)) {
      std::printf("usage: unwatch <id>\n");
      return;
    }
    QueryResponse resp =
        svc->Execute(QueryRequest::CancelContinuous(id));
    std::printf("%s\n", resp.ok() ? "cancelled"
                                  : resp.status.ToString().c_str());
  }

  void Events() {
    if (!EnsureWorld()) return;
    auto events = svc->TakeContinuousEvents();
    if (events.empty()) {
      std::printf("(no standing-query events)\n");
      return;
    }
    for (const ContinuousQueryEvent& ev : events) {
      std::printf("  t=%8.1f  #%u: u%-6u %s\n", ev.t, ev.query, ev.user,
                  ev.entered ? "ENTERED" : "left");
    }
  }

  void Friends(std::istringstream& in) {
    if (!EnsureWorld()) return;
    UserId uid;
    if (!(in >> uid) || uid >= world->params().num_users) {
      std::printf("usage: friends <uid>\n");
      return;
    }
    const auto& friends = world->encoding().FriendsOf(uid);
    std::printf("%zu user(s) have policies toward u%u:", friends.size(), uid);
    size_t shown = 0;
    for (const FriendEntry& f : friends) {
      if (shown++ == 20) {
        std::printf(" ...");
        break;
      }
      std::printf(" u%u(sv=%.1f)", f.uid, f.sv);
    }
    std::printf("\n");
  }

  void Where(std::istringstream& in) {
    if (!EnsureWorld()) return;
    UserId uid;
    if (!(in >> uid)) {
      std::printf("usage: where <uid>\n");
      return;
    }
    auto obj = world->peb().GetObject(uid);
    if (!obj.ok()) {
      std::printf("u%u is not indexed\n", uid);
      return;
    }
    Point pos = obj->PositionAt(world->now());
    std::printf("u%u at (%.1f, %.1f), velocity (%.2f, %.2f), sv=%.2f\n", uid,
                pos.x, pos.y, obj->vel.x, obj->vel.y,
                world->encoding().sv(uid));
  }

  void Update(std::istringstream& in) {
    if (!EnsureWorld()) return;
    size_t n = 0;
    if (!(in >> n)) {
      std::printf("usage: update <n>\n");
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      auto ev = world->ApplyNextUpdate();
      if (!ev.ok()) {
        std::printf("error: %s\n", ev.status().ToString().c_str());
        return;
      }
      if (eng != nullptr) {
        Status s = eng->Update(ev->state);
        if (!s.ok()) {
          std::printf("engine error: %s\n", s.ToString().c_str());
          return;
        }
      }
      // The index was updated out-of-band above; keep standing queries
      // current with the stream.
      if (svc != nullptr) {
        (void)svc->NotifyUpdated(ev->state, world->now());
      }
    }
    // Standing queries re-evaluate at the new time.
    if (svc != nullptr && svc->num_continuous_queries() > 0) {
      (void)svc->AdvanceContinuous(world->now());
    }
    std::printf("applied %zu updates; now=%.1f\n", n, world->now());
  }

  void Stats() {
    if (!EnsureWorld()) return;
    const auto& peb_stats = world->peb().tree_stats();
    const auto& io = world->peb().pool()->stats();
    std::printf("PEB-tree : %zu entries, %zu leaves, %zu internals, height "
                "%zu\n", peb_stats.num_entries, peb_stats.num_leaves,
                peb_stats.num_internals, peb_stats.height);
    std::printf("  pool   : %llu reads, %llu writes, %.1f%% hit ratio\n",
                static_cast<unsigned long long>(io.physical_reads),
                static_cast<unsigned long long>(io.physical_writes),
                100.0 * io.HitRatio());
    const auto& spa = world->spatial().tree().tree_stats();
    std::printf("Bx-tree  : %zu entries, %zu leaves, %zu internals, height "
                "%zu\n", spa.num_entries, spa.num_leaves, spa.num_internals,
                spa.height);
    if (svc != nullptr) {
      std::printf("service  : %zu standing quer%s\n",
                  svc->num_continuous_queries(),
                  svc->num_continuous_queries() == 1 ? "y" : "ies");
    }
    if (eng != nullptr) {
      const auto& eio = eng->aggregate_io();
      std::printf("engine   : %zu shard(s) x %zu thread(s), %s routing, "
                  "%s\n", eng->num_shards(),
                  eng->threads().num_threads(),
                  std::string(eng->router().name()).c_str(),
                  use_engine ? "serving queries" : "idle");
      for (size_t s = 0; s < eng->num_shards(); ++s) {
        std::printf("  shard %zu: %zu users, height %zu\n", s,
                    eng->shard_size(s), eng->shard_tree(s).tree_stats().height);
      }
      std::printf("  pools  : %llu reads total, %.1f%% hit ratio\n",
                  static_cast<unsigned long long>(eio.physical_reads),
                  100.0 * eio.HitRatio());
    }
  }

  /// After a re-encode through the active service, bring every OTHER index
  /// the shell hosts to the same epoch (each diffs its own records; the
  /// active index was already re-keyed precisely by the service).
  void SyncInactiveIndexes() {
    auto snapshot = world->catalog()->snapshot();
    bool engine_active = use_engine && eng != nullptr;
    Status st = engine_active
                    ? world->SyncIndexesToCatalog()  // peb + spatial.
                    : world->spatial().AdoptSnapshot(snapshot, nullptr);
    if (!st.ok()) {
      std::printf("sync error: %s\n", st.ToString().c_str());
      return;
    }
    if (eng != nullptr && !engine_active) {
      st = eng->AdoptSnapshot(std::move(snapshot), nullptr);
      if (!st.ok()) {
        std::printf("engine sync error: %s\n", st.ToString().c_str());
      }
    }
  }

  void PrintReencode(const QueryResponse& resp) {
    std::printf("epoch %llu: %zu dirty -> component of %zu, %zu re-keyed, "
                "%zu friend list(s) rebuilt (%.2f ms)\n",
                static_cast<unsigned long long>(resp.epoch),
                resp.reencode.dirty_users, resp.reencode.component_users,
                resp.reencode.rekeyed, resp.reencode.lists_rebuilt,
                resp.reencode.seconds * 1e3);
  }

  void Policy(std::istringstream& in) {
    if (!EnsureWorld()) return;
    std::string verb;
    UserId owner, peer;
    if (!(in >> verb >> owner >> peer) ||
        (verb != "add" && verb != "remove")) {
      std::printf("usage: policy add <owner> <peer> [x1 y1 x2 y2 "
                  "[tstart tend]] | policy remove <owner> <peer>\n");
      return;
    }
    QueryResponse resp;
    if (verb == "add") {
      Lpp policy;
      policy.role = world->catalog()->DefineRole("friend");
      policy.locr = Rect::Space(world->params().space_side);
      policy.tint = TimeOfDayInterval::AllDay(world->params().time_domain);
      double x1, y1, x2, y2;
      if (in >> x1 >> y1 >> x2 >> y2) {
        policy.locr = {{x1, y1}, {x2, y2}};
        double ts, te;
        if (in >> ts >> te) policy.tint = {ts, te};
      }
      resp = svc->Execute(QueryRequest::AddPolicy(
          owner, peer, policy, world->now(), /*reencode_now=*/false));
      if (resp.ok()) {
        std::printf("policy u%u -> u%u granted (pending re-encode; run "
                    "'reencode' to publish)\n", owner, peer);
      }
    } else {
      resp = svc->Execute(QueryRequest::RemovePolicy(
          owner, peer, world->now(), /*reencode_now=*/false));
      if (resp.ok()) {
        std::printf("%zu polic%s u%u -> u%u revoked (visibility gone now; "
                    "'reencode' compacts)\n", resp.removed_policies,
                    resp.removed_policies == 1 ? "y" : "ies", owner, peer);
      }
    }
    if (!resp.ok()) {
      std::printf("error: %s\n", resp.status.ToString().c_str());
    }
  }

  void Role(std::istringstream& in) {
    if (!EnsureWorld()) return;
    std::string verb, name;
    if (!(in >> verb >> name) || verb != "define") {
      std::printf("usage: role define <name>\n");
      return;
    }
    QueryResponse resp = svc->Execute(QueryRequest::DefineRole(name));
    if (!resp.ok()) {
      std::printf("error: %s\n", resp.status.ToString().c_str());
      return;
    }
    std::printf("role '%s' = #%u\n", name.c_str(),
                static_cast<unsigned>(resp.role_id));
  }

  void Reencode() {
    if (!EnsureWorld()) return;
    QueryResponse resp = svc->Execute(QueryRequest::Reencode(world->now()));
    if (!resp.ok()) {
      std::printf("error: %s\n", resp.status.ToString().c_str());
      return;
    }
    PrintReencode(resp);
    SyncInactiveIndexes();
  }

  void Epoch() {
    if (!EnsureWorld()) return;
    std::printf("epoch %llu, %zu user(s) dirty (pending re-encode)\n",
                static_cast<unsigned long long>(world->catalog()->epoch()),
                world->catalog()->dirty_count());
  }

  void Check() {
    if (!EnsureWorld()) return;
    struct Item {
      const char* name;
      Status st;
    };
    std::vector<Item> items;
    items.push_back({"peb-tree ", world->peb().ValidateInvariants()});
    items.push_back({"peb-pool ", world->peb().pool()->ValidateInvariants()});
    items.push_back({"bx-tree  ", world->spatial().tree().ValidateInvariants()});
    items.push_back(
        {"bx-pool  ", world->spatial().tree().pool()->ValidateInvariants()});
    if (eng != nullptr) {
      items.push_back({"engine   ", eng->ValidateInvariants()});
    }
    bool all_ok = true;
    for (const Item& item : items) {
      std::printf("  %s %s\n", item.name,
                  item.st.ok() ? "OK" : item.st.ToString().c_str());
      all_ok = all_ok && item.st.ok();
    }
    std::printf(all_ok ? "all invariants hold\n"
                       : "CORRUPTION DETECTED\n");
  }

  void Telemetry(std::istringstream& in) {
    std::string mode;
    in >> mode;
    if (mode == "json") {
      std::printf("%s\n", registry.SnapshotJson().c_str());
    } else {
      std::printf("%s", registry.PrometheusText().c_str());
    }
  }

  void Trace(std::istringstream& in) {
    if (!EnsureWorld()) return;
    std::string mode;
    if (!(in >> mode) || (mode != "on" && mode != "off")) {
      std::printf("usage: trace on|off\n");
      return;
    }
    trace_every = mode == "on" ? 1 : 0;
    svc->set_trace_sample_every(trace_every);
    std::printf("tracing %s\n", trace_every != 0
                                    ? "on — prq/knn print the span tree"
                                    : "off");
  }

  void Slowlog() {
    if (!EnsureWorld()) return;
    auto entries = svc->SlowQueries();
    if (entries.empty()) {
      std::printf("(slow-query log is empty)\n");
      return;
    }
    for (const auto& e : entries) {
      std::printf("#%llu %s %.2f ms\n%s",
                  static_cast<unsigned long long>(e.sequence),
                  e.trace.name.c_str(), e.total_ms,
                  e.trace.Summary().c_str());
    }
  }

  void Compare(std::istringstream& in) {
    if (!EnsureWorld()) return;
    size_t n = 0;
    if (!(in >> n) || n == 0) {
      std::printf("usage: compare <n>\n");
      return;
    }
    QuerySetOptions q;
    q.count = n;
    q.seed = 1234;
    auto queries = MakePrqQueries(*world, q);
    RunResult peb = RunPrqBatch(world->peb_service(), queries);
    RunResult spatial = RunPrqBatch(world->spatial_service(), queries);
    std::printf("PRQ over %zu queries: PEB %.2f I/O/query vs spatial %.2f "
                "I/O/query (%.1fx)\n", n, peb.avg_io, spatial.avg_io,
                peb.avg_io > 0 ? spatial.avg_io / peb.avg_io : 0.0);
  }

  engine::EngineOptions DurableEngineOptions(const std::string& path) {
    engine::EngineOptions opts;
    opts.num_shards = engine_shards;
    opts.num_threads = engine_threads;
    opts.router = engine::RouterPolicy::kHashUser;
    opts.buffer_pages = world->params().buffer_pages;
    opts.tree = PebOptionsFor(world->params());
    opts.telemetry.registry = &registry;
    opts.durability.path = path;
    return opts;
  }

  /// save <path>: checkpoints the current object states into a durable
  /// file (+ its WAL sidecar) that `open <path>` can bring back cold.
  void Save(std::istringstream& in) {
    if (!EnsureWorld()) return;
    std::string path;
    if (!(in >> path)) {
      std::printf("usage: save <path>\n");
      return;
    }
    // Current states, not the generation-time dataset: streamed updates
    // are part of what gets saved.
    Dataset snapshot = world->dataset();
    PrivacyAwareIndex* index = use_engine && eng != nullptr
                                   ? static_cast<PrivacyAwareIndex*>(eng.get())
                                   : &world->peb();
    for (auto& obj : snapshot.objects) {
      auto cur = index->GetObject(obj.id);
      if (cur.ok()) obj = *cur;
    }
    engine::EngineOptions save_opts = DurableEngineOptions(path);
    // `save <path>` explicitly names its target: replacing a previous save
    // at that path is the expected behavior.
    save_opts.durability.overwrite_existing = true;
    engine::ShardedPebEngine saver(save_opts, &world->store(),
                                   &world->roles(),
                                   world->catalog()->snapshot());
    Status st = saver.durability_status();
    if (st.ok()) st = saver.LoadDataset(snapshot);
    if (st.ok()) st = saver.Checkpoint();
    if (!st.ok()) {
      std::printf("save failed: %s\n", st.ToString().c_str());
      return;
    }
    std::printf("saved %zu users to %s (%zu shard(s); WAL at %s.wal)\n",
                snapshot.objects.size(), path.c_str(), engine_shards,
                path.c_str());
  }

  /// open <path>: recovers a previously saved (or crashed) engine from its
  /// superblock + WAL and makes it the active index.
  void OpenDb(std::istringstream& in) {
    if (!EnsureWorld()) return;
    std::string path;
    if (!(in >> path)) {
      std::printf("usage: open <path>\n");
      return;
    }
    auto opened = engine::ShardedPebEngine::Open(
        DurableEngineOptions(path), &world->store(), &world->roles(),
        world->catalog()->snapshot());
    if (!opened.ok()) {
      std::printf("open failed: %s\n", opened.status().ToString().c_str());
      std::printf("(shard count must match the saved file — currently %zu; "
                  "adjust with 'shards <n>' and retry)\n", engine_shards);
      return;
    }
    eng = std::move(*opened);
    use_engine = true;
    RebindService();
    std::printf("opened %s: %zu users, %zu shard(s); prq/knn now use it, "
                "updates land in its WAL\n", path.c_str(), eng->size(),
                eng->num_shards());
  }

  /// checkpoint: folds the open engine's WAL into the database file.
  void Checkpoint() {
    if (!EnsureWorld()) return;
    if (eng == nullptr || !eng->durable()) {
      std::printf("no durable engine — 'open <path>' first\n");
      return;
    }
    Status st = eng->Checkpoint();
    if (!st.ok()) {
      std::printf("checkpoint failed: %s\n", st.ToString().c_str());
      return;
    }
    std::printf("checkpoint committed (WAL truncated)\n");
  }
};

}  // namespace

int main() {
  Shell shell;
  std::printf("peb_shell — type 'help' for commands\n");
  std::string line;
  while (true) {
    std::printf("peb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "gen") {
      shell.Gen(in);
    } else if (cmd == "prq") {
      shell.Prq(in);
    } else if (cmd == "knn") {
      shell.Knn(in);
    } else if (cmd == "friends") {
      shell.Friends(in);
    } else if (cmd == "where") {
      shell.Where(in);
    } else if (cmd == "update") {
      shell.Update(in);
    } else if (cmd == "stats") {
      shell.Stats();
    } else if (cmd == "compare") {
      shell.Compare(in);
    } else if (cmd == "shards") {
      shell.Shards(in);
    } else if (cmd == "threads") {
      shell.Threads(in);
    } else if (cmd == "engine") {
      shell.Engine(in);
    } else if (cmd == "watch") {
      shell.Watch(in);
    } else if (cmd == "unwatch") {
      shell.Unwatch(in);
    } else if (cmd == "events") {
      shell.Events();
    } else if (cmd == "policy") {
      shell.Policy(in);
    } else if (cmd == "role") {
      shell.Role(in);
    } else if (cmd == "reencode") {
      shell.Reencode();
    } else if (cmd == "epoch") {
      shell.Epoch();
    } else if (cmd == "check") {
      shell.Check();
    } else if (cmd == "telemetry") {
      shell.Telemetry(in);
    } else if (cmd == "trace") {
      shell.Trace(in);
    } else if (cmd == "slowlog") {
      shell.Slowlog();
    } else if (cmd == "save") {
      shell.Save(in);
    } else if (cmd == "open") {
      shell.OpenDb(in);
    } else if (cmd == "checkpoint") {
      shell.Checkpoint();
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}
