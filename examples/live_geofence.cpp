// Live geofence: continuous privacy-aware range queries, registered
// through the MovingObjectService and maintained ENGINE-WIDE (the
// paper's Section-8 future-work direction, lifted over the sharded
// engine).
//
// A user registers a standing query over a district ("tell me whenever a
// friend who lets me see them is in the old town"). The service seeds the
// answer with a one-shot PRQ on a 4-shard engine, then keeps it current
// as batched position updates stream in through an update session —
// emitting entered/left events instead of re-running the query. Because
// the monitor is fed in stream order, the event stream is identical for
// any shard count.
//
// Build & run:  ./build/examples/live_geofence
#include <cstdio>

#include "engine/sharded_engine.h"
#include "eval/workload.h"
#include "service/query_request.h"
#include "service/service.h"

using namespace peb;
using namespace peb::eval;
using peb::service::MovingObjectService;
using peb::service::QueryRequest;
using peb::service::QueryResponse;

int main() {
  WorkloadParams params;
  params.num_users = 10000;
  params.policies_per_user = 40;
  params.grouping_factor = 0.8;
  params.seed = 44;
  std::printf("building %zu users...\n", params.num_users);
  Workload world = Workload::Build(params);

  // A 4-shard engine serves the standing query; updates flow through a
  // service update session (a deterministic clone of the workload stream).
  auto engine = MakeEngine(world, /*num_shards=*/4, /*num_threads=*/4);
  MovingObjectService svc(engine.get(), &world.store(), &world.roles(),
                          &world.encoding());
  auto stream = CloneUniformUpdateStream(world);
  if (stream == nullptr) return 1;
  auto session = svc.OpenUpdateSession(stream.get(), /*batch_size=*/256);

  const UserId watcher = 7;
  Rect old_town = Rect::CenteredSquare({500, 500}, 300.0);
  QueryResponse reg = svc.Execute(
      QueryRequest::RegisterContinuous(watcher, old_town, world.now()));
  if (!reg.ok()) {
    std::printf("register failed: %s\n", reg.status.ToString().c_str());
    return 1;
  }
  std::printf("u%u watches the old town (standing query #%u); "
              "%zu friend(s) visible there now\n\n",
              watcher, reg.continuous_id, reg.ids.size());

  // Stream the world forward in batches; the session feeds the standing
  // query automatically.
  for (int epoch = 0; epoch < 12; ++epoch) {
    if (!session.Apply(2000).ok()) return 1;
    if (!svc.AdvanceContinuous(session.last_event_time()).ok()) return 1;

    for (const ContinuousQueryEvent& ev : svc.TakeContinuousEvents()) {
      std::printf("  t=%8.1f  u%-6u %s the old town result\n", ev.t, ev.user,
                  ev.entered ? "ENTERED" : "left");
    }
    auto res = svc.ContinuousResult(reg.continuous_id);
    if (!res.ok()) return 1;
    std::printf("t=%8.1f  visible friends in old town: %zu\n",
                session.last_event_time(), res->size());
  }
  return 0;
}
