// Live geofence: continuous privacy-aware range queries (the library's
// implementation of the paper's Section-8 future-work direction).
//
// A user registers a standing query over a district ("tell me whenever a
// friend who lets me see them is in the old town"). The monitor keeps the
// answer current as position updates stream in and as policy time windows
// open and close — emitting entered/left events instead of re-running the
// query.
//
// Build & run:  ./build/examples/live_geofence
#include <cstdio>

#include "eval/workload.h"
#include "peb/continuous.h"

using namespace peb;
using namespace peb::eval;

int main() {
  WorkloadParams params;
  params.num_users = 10000;
  params.policies_per_user = 40;
  params.grouping_factor = 0.8;
  params.seed = 44;
  std::printf("building %zu users...\n", params.num_users);
  Workload world = Workload::Build(params);

  ContinuousQueryMonitor monitor(&world.peb(), &world.store(), &world.roles(),
                                 &world.encoding());

  const UserId watcher = 7;
  Rect old_town = Rect::CenteredSquare({500, 500}, 300.0);
  auto query = monitor.Register(watcher, old_town, world.now());
  if (!query.ok()) return 1;
  auto initial = monitor.ResultOf(*query);
  if (!initial.ok()) return 1;
  std::printf("u%u watches the old town; %zu friend(s) visible there now\n\n",
              watcher, initial->size());

  // Stream the world forward; route every update through the monitor.
  for (int epoch = 0; epoch < 12; ++epoch) {
    for (int i = 0; i < 2000; ++i) {
      // Route every index update through the monitor: this is the intended
      // integration pattern for standing queries.
      auto ev = world.ApplyNextUpdate();
      if (!ev.ok()) return 1;
      if (!monitor.OnUpdate(ev->state, world.now()).ok()) return 1;
    }
    if (!monitor.Advance(world.now()).ok()) return 1;

    for (const ContinuousQueryEvent& ev : monitor.TakeEvents()) {
      std::printf("  t=%8.1f  u%-6u %s the old town result\n", ev.t, ev.user,
                  ev.entered ? "ENTERED" : "left");
    }
    auto res = monitor.ResultOf(*query);
    if (!res.ok()) return 1;
    std::printf("t=%8.1f  visible friends in old town: %zu\n", world.now(),
                res->size());
  }
  return 0;
}
