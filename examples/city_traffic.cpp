// City traffic: the paper's network-based workload (Section 7.1) live.
//
// Users drive a road network of two-way routes between destination hubs
// (three speed classes, acceleration and deceleration around hubs — the
// behavior of the generator of Šaltenis et al. [27]). The example streams
// road-network updates into both indexes while privacy-aware range queries
// watch a downtown district, and prints a running I/O comparison.
//
// Build & run:  ./build/examples/city_traffic [num_users] [num_hubs]
#include <cstdio>
#include <cstdlib>

#include "eval/runner.h"
#include "eval/workload.h"

using namespace peb;
using namespace peb::eval;

int main(int argc, char** argv) {
  WorkloadParams params;
  params.num_users = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 15000;
  params.num_hubs = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50;
  params.distribution = Distribution::kNetwork;
  params.policies_per_user = 25;
  params.grouping_factor = 0.7;
  params.seed = 7;

  std::printf("generating %zu drivers on a %zu-hub road network...\n",
              params.num_users, params.num_hubs);
  Workload city = Workload::Build(params);

  QuerySetOptions qopts;
  qopts.count = 40;
  qopts.window_side = 250.0;

  for (int epoch = 0; epoch < 4; ++epoch) {
    // A slice of the population reaches route waypoints and updates.
    if (!city.ApplyUpdates(params.num_users / 5).ok()) return 1;

    // Random drivers ask who of their friends is in a district near them.
    qopts.seed = 100 + static_cast<uint64_t>(epoch);
    auto queries = MakePrqQueries(city, qopts);

    // Per-query I/O comes from each QueryResponse — no pool-stat resets.
    RunResult peb = RunPrqBatch(city.peb_service(), queries);
    RunResult spatial = RunPrqBatch(city.spatial_service(), queries);

    std::printf(
        "t=%8.1f  %2zu queries: PEB %6.1f I/O (%4.0f candidates) | "
        "spatial %7.1f I/O (%5.0f candidates) | avg answers %.1f\n",
        city.now(), queries.size(), peb.avg_io, peb.avg_candidates,
        spatial.avg_io, spatial.avg_candidates, peb.avg_results);
  }
  std::printf(
      "\nthe PEB-tree touches only pages holding the issuer's related "
      "users;\nthe spatial index reads every driver downtown and filters "
      "afterwards.\n");
  return 0;
}
