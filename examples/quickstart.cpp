// Quickstart: the smallest end-to-end use of the PEB-tree public API.
//
//   1. Define users' location-privacy policies (LPPs) and roles.
//   2. Build the policy encoding (sequence values + friend lists).
//   3. Create a PEB-tree over a buffer pool and insert moving users.
//   4. Front it with a MovingObjectService and issue a privacy-aware
//      range query (PRQ) and a privacy-aware k-nearest-neighbor query
//      (PkNN) as QueryRequests — each QueryResponse carries the answer
//      plus its own work counters and I/O delta.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "peb/peb_tree.h"
#include "policy/policy_store.h"
#include "policy/role_registry.h"
#include "policy/sequence_value.h"
#include "service/query_request.h"
#include "service/service.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

using namespace peb;
using peb::service::MovingObjectService;
using peb::service::QueryRequest;
using peb::service::QueryResponse;

int main() {
  // --- 1. Policies ----------------------------------------------------------
  // Three users: Alice (0), Bob (1), Carol (2).
  // Bob lets friends see him anywhere, any time.
  // Carol lets friends see her only downtown (x,y in [400,600]^2) during
  // working hours (8:00-17:00 on a 1440-minute day).
  RoleRegistry roles;
  RoleId friend_role = roles.RegisterRole("friend");

  PolicyStore store;
  Lpp bob_policy;
  bob_policy.role = friend_role;
  bob_policy.locr = Rect::Space(1000.0);
  bob_policy.tint = TimeOfDayInterval::AllDay();
  store.Add(/*owner=*/1, /*peer=*/0, bob_policy);
  roles.AssignRole(1, 0, friend_role);  // Bob declares Alice a friend.

  Lpp carol_policy;
  carol_policy.role = friend_role;
  carol_policy.locr = {{400, 400}, {600, 600}};
  carol_policy.tint = {8 * 60, 17 * 60};
  store.Add(/*owner=*/2, /*peer=*/0, carol_policy);
  roles.AssignRole(2, 0, friend_role);  // Carol declares Alice a friend.

  // --- 2. Policy encoding (the offline step of Section 5.1) -----------------
  CompatibilityOptions compat;  // Space 1000x1000, day of 1440 minutes.
  SvQuantizer quantizer(/*scale=*/64.0, /*bits=*/26);
  PolicyEncoding encoding =
      PolicyEncoding::Build(store, /*num_users=*/3, compat, {}, quantizer);
  for (UserId u = 0; u < 3; ++u) {
    std::printf("user %u: sequence value %.2f (%u friends may query them)\n",
                u, encoding.sv(u),
                static_cast<unsigned>(encoding.FriendsOf(u).size()));
  }

  // --- 3. Index ---------------------------------------------------------------
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{.capacity = 50});
  PebTreeOptions options;  // 1000x1000 space, Z-grid 2^10, Δtmu=120, n=2.
  PebTree tree(&pool, options, &store, &roles, &encoding);

  // Insert everyone at t=0. Positions follow x(t) = x + v(t - tu).
  Status s;
  s = tree.Insert({0, {500, 500}, {0.5, 0.0}, 0.0});   // Alice, drifting east.
  if (!s.ok()) { std::printf("insert: %s\n", s.ToString().c_str()); return 1; }
  s = tree.Insert({1, {520, 480}, {0.0, 0.0}, 0.0});   // Bob, parked nearby.
  if (!s.ok()) { std::printf("insert: %s\n", s.ToString().c_str()); return 1; }
  s = tree.Insert({2, {480, 530}, {0.0, -1.0}, 0.0});  // Carol, heading south.
  if (!s.ok()) { std::printf("insert: %s\n", s.ToString().c_str()); return 1; }

  // --- 4. Queries through the service facade ---------------------------------
  // Alice asks at 9:00 (t=540... but within delta_t_mu of the updates; use
  // t=60 which maps to 01:00 — Carol's window starts at 08:00, so make the
  // query at a time inside her window by re-updating her first).
  MovingObjectService svc(&tree, &store, &roles, &encoding);

  Timestamp tq = 60.0;  // 01:00 — outside Carol's working hours.
  Rect window = Rect::CenteredSquare({500, 500}, 200.0);

  QueryResponse prq = svc.Execute(QueryRequest::Prq(/*issuer=*/0, window, tq));
  if (!prq.ok()) return 1;
  std::printf("\nPRQ at t=%.0f (01:00): %zu visible user(s):", tq,
              prq.ids.size());
  for (UserId u : prq.ids) std::printf(" u%u", u);
  std::printf("   (Carol hidden: outside her time window)\n");

  QueryResponse knn =
      svc.Execute(QueryRequest::Pknn(/*issuer=*/0, {500, 500}, /*k=*/2, tq));
  if (!knn.ok()) return 1;
  std::printf("PkNN k=2: ");
  for (const Neighbor& n : knn.neighbors) {
    std::printf("u%u at distance %.1f; ", n.uid, n.distance);
  }
  std::printf(
      "\n\nper-response observability (by value, no shared counters):\n"
      "  PRQ : %zu candidates, %llu physical reads\n"
      "  PkNN: %zu rounds, %llu physical reads\n",
      prq.counters.candidates_examined,
      static_cast<unsigned long long>(prq.io.physical_reads),
      knn.counters.rounds,
      static_cast<unsigned long long>(knn.io.physical_reads));
  return 0;
}
