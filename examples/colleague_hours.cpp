// Colleague hours: the paper's motivating policy (Section 1 / Definition 1)
// — "Bob lets his colleagues see his location when he is in town during
// work hours (8 a.m. to 5 p.m.)" — exercised end to end, with multiple
// roles per user and policies that switch on and off over the day.
//
// The example builds a small office scenario and replays a workday,
// issuing the same PRQ at different times of day to show policy-driven
// visibility changes — the behavior a filtering-only system computes the
// hard way and the PEB-tree answers with friend-bounded I/O.
//
// Build & run:  ./build/examples/colleague_hours
#include <cstdio>
#include <string>
#include <vector>

#include "peb/peb_tree.h"
#include "policy/sequence_value.h"
#include "service/query_request.h"
#include "service/service.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

using namespace peb;
using peb::service::MovingObjectService;
using peb::service::QueryRequest;
using peb::service::QueryResponse;

namespace {

const char* kNames[] = {"Bob", "Alice", "Carol", "Dave", "Erin", "Frank"};

std::string Clock(double minutes) {
  int h = static_cast<int>(minutes / 60) % 24;
  int m = static_cast<int>(minutes) % 60;
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%02d:%02d", h, m);
  return buf;
}

}  // namespace

int main() {
  // Users: Bob(0), Alice(1), Carol(2) are colleagues; Dave(3) and Erin(4)
  // are Bob's family; Frank(5) is a stranger.
  RoleRegistry roles;
  RoleId colleague = roles.RegisterRole("colleague");
  RoleId family = roles.RegisterRole("family");

  PolicyStore store;
  Rect town{{200, 200}, {800, 800}};
  TimeOfDayInterval work_hours{8 * 60, 17 * 60};

  // Bob's policy for colleagues: visible in town during work hours.
  Lpp bob_for_colleagues{colleague, town, work_hours};
  for (UserId peer : {1u, 2u}) {
    store.Add(0, peer, bob_for_colleagues);
    roles.AssignRole(0, peer, colleague);
  }
  // Bob's policy for family: visible anywhere, any time.
  Lpp bob_for_family{family, Rect::Space(1000.0),
                     TimeOfDayInterval::AllDay()};
  for (UserId peer : {3u, 4u}) {
    store.Add(0, peer, bob_for_family);
    roles.AssignRole(0, peer, family);
  }
  // Colleagues reciprocate toward Bob during work hours.
  for (UserId owner : {1u, 2u}) {
    store.Add(owner, 0, bob_for_colleagues);
    roles.AssignRole(owner, 0, colleague);
  }
  // Family reciprocates around the clock.
  for (UserId owner : {3u, 4u}) {
    store.Add(owner, 0, bob_for_family);
    roles.AssignRole(owner, 0, family);
  }
  // Frank has no relationship with anyone.

  CompatibilityOptions compat;
  SvQuantizer quantizer(64.0, 26);
  PolicyEncoding encoding = PolicyEncoding::Build(store, 6, compat, {},
                                                  quantizer);
  std::printf("sequence values (colleagues+family cluster around Bob):\n");
  for (UserId u = 0; u < 6; ++u) {
    std::printf("  %-6s sv=%.3f\n", kNames[u], encoding.sv(u));
  }

  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{50});
  PebTreeOptions options;
  PebTree tree(&pool, options, &store, &roles, &encoding);

  // Everyone hangs around the office block (in town) and stands still; the
  // query answer changes purely because of the time of day.
  Status s;
  s = tree.Insert({0, {500, 500}, {0, 0}, 0});  // Bob.
  if (!s.ok()) return 1;
  s = tree.Insert({1, {505, 495}, {0, 0}, 0});  // Alice.
  if (!s.ok()) return 1;
  s = tree.Insert({2, {495, 505}, {0, 0}, 0});  // Carol.
  if (!s.ok()) return 1;
  s = tree.Insert({3, {510, 510}, {0, 0}, 0});  // Dave.
  if (!s.ok()) return 1;
  s = tree.Insert({4, {490, 490}, {0, 0}, 0});  // Erin.
  if (!s.ok()) return 1;
  s = tree.Insert({5, {500, 490}, {0, 0}, 0});  // Frank.
  if (!s.ok()) return 1;

  // Queries go through the request/response service facade (the tree is
  // the backing index; policies/roles/encoding enable standing queries).
  MovingObjectService office(&tree, &store, &roles, &encoding);

  Rect office_block = Rect::CenteredSquare({500, 500}, 100.0);
  // Note: query times must stay within one max update interval of the
  // inserts for the linear motion model; everyone is static here, so we
  // refresh positions before each query to keep the index contract honest.
  std::printf("\nwho can Bob (as issuer) see in the office block?\n");
  for (double tq : {7.5 * 60, 9.0 * 60, 12.0 * 60, 16.9 * 60, 20.0 * 60}) {
    // Refresh all users at tq (same positions, new update time).
    for (UserId u = 0; u < 6; ++u) {
      auto obj = tree.GetObject(u);
      if (!obj.ok()) return 1;
      MovingObject refreshed = *obj;
      refreshed.tu = tq;
      if (!office.ApplyUpdate(refreshed, tq).ok()) return 1;
    }
    QueryResponse res =
        office.Execute(QueryRequest::Prq(/*issuer=*/0, office_block, tq));
    if (!res.ok()) return 1;
    std::printf("  %s ->", Clock(tq).c_str());
    if (res.ids.empty()) std::printf(" nobody");
    for (UserId u : res.ids) std::printf(" %s", kNames[u]);
    std::printf("\n");
  }
  std::printf(
      "\n(family visible around the clock; colleagues only 08:00-17:00;\n"
      " Frank never — no policy, no role, no disclosure)\n");
  return 0;
}
