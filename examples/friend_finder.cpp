// Friend finder: the paper's running example (Figure 3) at city scale.
//
// A population of users moves through a 1000x1000 space; each declares
// policies for a circle of friends. One user — u1 — continuously asks
// "where is my nearest visible friend?" while everyone moves. The example
// contrasts the PEB-tree against the spatial-filtering baseline on the
// exact same queries and prints the I/O both spend.
//
// Build & run:  ./build/examples/friend_finder [num_users]
#include <cstdio>
#include <cstdlib>

#include "bxtree/filtering_index.h"
#include "eval/runner.h"
#include "eval/workload.h"
#include "service/query_request.h"
#include "service/service.h"

using namespace peb;
using namespace peb::eval;
using peb::service::QueryRequest;
using peb::service::QueryResponse;

int main(int argc, char** argv) {
  size_t num_users = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  WorkloadParams params;
  params.num_users = num_users;
  params.policies_per_user = 30;
  params.grouping_factor = 0.8;
  params.seed = 2026;
  std::printf("building a city of %zu users (%zu policies each)...\n",
              params.num_users, params.policies_per_user);
  Workload city = Workload::Build(params);
  std::printf("policy encoding took %.2fs\n\n", city.preprocessing_seconds());

  const UserId u1 = 1;
  const auto& friends = city.encoding().FriendsOf(u1);
  std::printf("u%u can ever be answered by %zu peers (their friend list)\n",
              u1, friends.size());

  // Live loop: move the world, then ask for the nearest visible friend.
  for (int step = 0; step < 5; ++step) {
    if (!city.ApplyUpdates(params.num_users / 10).ok()) return 1;
    Timestamp now = city.now();
    Point where = city.dataset().objects[u1].PositionAt(now);

    // The same request value runs against both services; each response
    // carries its own exact I/O delta — no pool-stat resets needed.
    QueryRequest request = QueryRequest::Pknn(u1, where, 1, now);
    QueryResponse nearest = city.peb_service().Execute(request);
    if (!nearest.ok()) return 1;
    QueryResponse baseline = city.spatial_service().Execute(request);
    if (!baseline.ok()) return 1;

    std::printf("t=%7.1f  u%u at (%6.1f,%6.1f): ", now, u1, where.x, where.y);
    if (nearest.neighbors.empty()) {
      std::printf("no friend visible right now");
    } else {
      std::printf("nearest visible friend u%-6u at distance %6.1f",
                  nearest.neighbors[0].uid, nearest.neighbors[0].distance);
    }
    std::printf("  [PEB %4llu I/O vs spatial %5llu I/O]\n",
                static_cast<unsigned long long>(nearest.io.physical_reads),
                static_cast<unsigned long long>(baseline.io.physical_reads));
    if (!nearest.neighbors.empty() && !baseline.neighbors.empty() &&
        nearest.neighbors[0].uid != baseline.neighbors[0].uid) {
      std::printf("  !! answer mismatch between index and baseline\n");
      return 1;
    }
  }
  return 0;
}
