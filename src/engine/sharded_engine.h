// ShardedPebEngine: a parallel query engine over N independent PEB-tree
// shards.
//
// Motivated by MOIST's partitioned moving-object indexing and by velocity
// partitioning for Bx-style trees: one logical index is split into N
// physical PEB-trees sharing one disk manager and one sharded clock buffer
// pool — the pool's per-shard latches (storage/buffer_pool.h) make
// concurrent page access from the worker threads contention-free, and the
// aggregate frame budget is exactly the configured buffer_pages (no
// per-shard floor inflation, so I/O stays directly comparable to the
// paper's single-tree figures).
// A pluggable ShardRouter assigns every user to exactly one shard; inserts,
// deletes, and updates are routed there. Queries exploit the PEB-tree's
// query structure (per-friend SV x Z-interval scans): the issuer's friend
// list is partitioned by home shard and each shard answers only for the
// friends it hosts, on a fixed ThreadPool, so the total key-range probe
// count matches the single-tree index while wall-clock drops with
// parallelism. Per-shard candidate lists are merged into one result
// (k-way merge by distance for PkNN). On the incremental PkNN path
// (MovingIndexOptions::incremental_knn, the default) the engine runs ONE
// streaming task per shard instead of a per-round barrier: each shard
// publishes its anti-diagonal's candidates into a shared verified list as
// soon as they exist, and a shard retires the moment its provably covered
// radius reaches the global k-th candidate distance — its remaining
// annuli (and final vertical scan) cannot improve the answer.
//
// Results are shard-count invariant: a user qualifies for a PRQ/PkNN answer
// in exactly one shard (their home shard), so the merged result equals the
// single PEB-tree's answer for any shard count and router policy
// (tests/engine_test.cc asserts this for 1, 2, 4, and 7 shards).
//
// Thread-safety: a per-shard mutex serializes all access to a shard's tree
// structure and query counters (the tree is not thread-safe); the shared
// buffer pool is thread-safe and needs no external serialization, so the
// storage layer never blocks shard parallelism. Queries use the PebTree
// const read path (RangeQueryAmong / KnnScan), so concurrent work on
// distinct shards never races. On top of
// that, an engine-level reader-writer lock keeps every query's view
// atomic: queries hold it shared, mutations (Insert/Update/Delete/
// LoadDataset/ApplyBatch) hold it exclusive — so a query fanned out over
// several lock acquisitions can never observe half an update batch, while
// concurrent queries still proceed in parallel.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "bxtree/privacy_index.h"
#include "common/thread_annotations.h"
#include "engine/shard_router.h"
#include "engine/thread_pool.h"
#include "peb/peb_tree.h"
#include "storage/disk_manager.h"
#include "telemetry/metrics.h"

namespace peb {
namespace engine {

/// Engine configuration.
struct EngineOptions {
  size_t num_shards = 4;
  /// Worker threads for shard fan-out; 0 runs every shard task inline on
  /// the calling thread (deterministic single-threaded mode).
  size_t num_threads = 4;
  RouterPolicy router = RouterPolicy::kHashUser;
  /// Aggregate buffer frames of the single shared pool (the paper's
  /// 50-page budget by default, so aggregate I/O stays comparable to the
  /// single-tree experiments — exactly, since there is no per-shard
  /// split).
  size_t buffer_pages = 50;
  /// Latch shards of the shared buffer pool (clamped to buffer_pages).
  /// More latch shards = less metadata contention between worker threads.
  size_t pool_shards = 4;
  /// Per-shard PEB-tree configuration (shared by all shards).
  PebTreeOptions tree;
  /// Engine instruments (per-shard query/update counts, PkNN rounds and
  /// retirements, batch lock-hold time, per-pool-shard IoStats samples).
  telemetry::TelemetryOptions telemetry;
};

class ShardedPebEngine final : public PrivacyAwareIndex {
 public:
  /// Policies and roles must outlive the engine; the encoding snapshot is
  /// shared (every shard tree holds it) and swappable via AdoptSnapshot.
  ShardedPebEngine(const EngineOptions& options, const PolicyStore* store,
                   const RoleRegistry* roles,
                   std::shared_ptr<const EncodingSnapshot> snapshot);

  /// Legacy bridge for static worlds: non-owning view of `encoding`.
  ShardedPebEngine(const EngineOptions& options, const PolicyStore* store,
                   const RoleRegistry* roles, const PolicyEncoding* encoding)
      : ShardedPebEngine(options, store, roles,
                         std::shared_ptr<const EncodingSnapshot>(
                             std::shared_ptr<const EncodingSnapshot>(),
                             encoding)) {}

  /// Unregisters this engine's registry collector (benches construct many
  /// engines against the long-lived default registry).
  ~ShardedPebEngine() override;

  // --- PrivacyAwareIndex ----------------------------------------------------
  Status Insert(const MovingObject& object) override;
  Status Update(const MovingObject& object) override;
  Status Delete(UserId id) override;
  size_t size() const override;
  Result<MovingObject> GetObject(UserId id) const override;
  /// Queries may be issued from any number of threads concurrently; the
  /// service layer relies on this to fan Submit() out without locking.
  bool SupportsConcurrentQueries() const override { return true; }
  /// The shared pool serving every shard tree.
  BufferPool* pool() override;
  IoStats aggregate_io() const override;
  void ResetIo() override;

  /// Exact per-query observability under concurrent submission: every
  /// shard task accumulates its own counters and attributes its buffer-pool
  /// traffic through BufferPool::ThreadIoScope, and the merged totals are
  /// returned by value in `stats` — no shared observer state on the hot
  /// path (PRQ shard counters go straight into the query's own slot via
  /// RangeQueryAmong's counters out-param, never through shared tree
  /// state). When `stats` carries a TraceBuilder, each shard task opens a
  /// per-shard span (and, on the incremental PkNN path, one child span per
  /// enlargement round) whose counters/IoStats deltas sum to the query's
  /// own totals.
  Result<std::vector<UserId>> RangeQueryWithStats(UserId issuer,
                                                  const Rect& range,
                                                  Timestamp tq,
                                                  QueryStats* stats) override;
  Result<std::vector<Neighbor>> KnnQueryWithStats(UserId issuer,
                                                  const Point& qloc, size_t k,
                                                  Timestamp tq,
                                                  QueryStats* stats) override;

  /// Adopts a new policy-encoding snapshot ATOMICALLY across all shards:
  /// under the exclusive state lock, every shard tree swaps to `snapshot`
  /// and re-keys the users it hosts from `rekey` (grouped by home shard,
  /// applied on worker threads through the same per-shard path update
  /// batches use). Queries hold the state lock shared, so 1-shard and
  /// N-shard engines expose identical epoch transitions — no query ever
  /// sees half an epoch.
  Status AdoptSnapshot(std::shared_ptr<const EncodingSnapshot> snapshot,
                       const std::vector<UserId>* rekey) override;
  uint64_t encoding_epoch() const override;

  /// Runs `fn` while the engine state lock is held exclusive — atomically
  /// with respect to every query and update. The service layer uses this
  /// to mutate live policy state (PolicyStore/RoleRegistry) that query
  /// verification reads. `fn` must not call back into the engine.
  Status RunExclusive(const std::function<Status()>& fn);

  // --- bulk operations ------------------------------------------------------
  /// Routes and inserts every object, loading shards in parallel.
  Status LoadDataset(const Dataset& dataset);

  /// Applies a time-ordered update batch: events are grouped by home shard
  /// (preserving order within each group) and every shard's group is
  /// applied on a worker thread. Per-user ordering is preserved because a
  /// user maps to exactly one shard; cross-shard ordering within the batch
  /// is relaxed.
  Status ApplyBatch(const std::vector<UpdateEvent>& events);

  // --- introspection --------------------------------------------------------
  const EngineOptions& options() const { return options_; }
  const ShardRouter& router() const { return *router_; }
  size_t num_shards() const { return shards_.size(); }
  /// Frames of the shared pool (always exactly options().buffer_pages).
  size_t buffer_frames_total() const;
  ThreadPool& threads() { return threads_; }
  /// Shard i's tree (read-only; for stats and tests). Deliberately
  /// unchecked: single-threaded test/bench introspection only — concurrent
  /// callers would need shard i's mutex, which cannot outlive this call.
  const PebTree& shard_tree(size_t i) const NO_THREAD_SAFETY_ANALYSIS {
    return *shards_[i]->tree;
  }
  /// Number of users currently hosted by shard i.
  size_t shard_size(size_t i) const {
    MutexLock lock(&shards_[i]->mu);
    return shards_[i]->tree->size();
  }

  /// Deep structural cross-check of the whole engine: every shard tree's
  /// own invariants (PebTree::ValidateInvariants, including the underlying
  /// B+-tree walk), every hosted user routed to exactly the shard that
  /// hosts it, one uniform encoding epoch across shards and the engine's
  /// pinned snapshot, shard sizes consistent with the engine total, and
  /// the shared buffer pool's frame accounting. Takes the state lock
  /// shared, so it can run concurrently with queries (but not mid-batch).
  Status ValidateInvariants() const EXCLUDES(state_mu_);

 private:
  struct Shard {
    /// Set once at construction; the pointee is guarded by `mu` below.
    std::unique_ptr<PebTree> tree PT_GUARDED_BY(mu);
    /// Serializes all access to the tree's structure and query counters.
    /// Page access goes through the shared thread-safe pool and needs no
    /// per-shard serialization.
    mutable Mutex mu;
  };

  /// Splits the issuer's friend list by home shard. Per-shard lists keep
  /// the encoding's ascending (qsv, uid) order, as BuildRows requires.
  std::vector<std::vector<FriendEntry>> PartitionFriends(UserId issuer) const
      REQUIRES_SHARED(state_mu_);

  /// size() for callers already holding state_mu_.
  size_t SizeLocked() const REQUIRES_SHARED(state_mu_);

  /// ValidateInvariants() for callers already holding state_mu_ (the
  /// paranoid_checks hook runs it at the end of exclusive batch sections).
  Status ValidateLocked() const REQUIRES_SHARED(state_mu_);

  /// Adds a finished shard query's counters into a query-local total.
  static void MergeCounters(const QueryCounters& shard_counters,
                            QueryCounters* into);

  EngineOptions options_;
  /// Engine-level copy of the current snapshot (shard trees hold their
  /// own); written under the exclusive state lock, read under shared.
  std::shared_ptr<const EncodingSnapshot> snapshot_ GUARDED_BY(state_mu_);
  std::unique_ptr<ShardRouter> router_;
  /// One disk + one sharded clock pool shared by every shard tree.
  InMemoryDiskManager disk_;
  BufferPool pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ThreadPool threads_;
  /// Engine-level snapshot isolation: queries shared, mutations exclusive.
  /// Always acquired before any shard mutex; worker tasks take only shard
  /// mutexes (the dispatching thread holds this lock for them).
  mutable SharedMutex state_mu_;

  /// Engine instruments (null when telemetry is disabled). Cached pointers
  /// into the registry, resolved once at construction.
  struct ShardInstruments {
    telemetry::Counter* queries = nullptr;
    telemetry::Counter* updates = nullptr;
  };
  std::vector<ShardInstruments> shard_instruments_;
  telemetry::Counter* pknn_rounds_ = nullptr;
  telemetry::Counter* pknn_retirements_ = nullptr;
  telemetry::Histogram* batch_lock_hold_ms_ = nullptr;
  /// Token of the per-pool-shard IoStats collector (0 = none registered).
  size_t pool_collector_token_ = 0;
  telemetry::MetricsRegistry* registry_ = nullptr;
};

}  // namespace engine
}  // namespace peb
