// ShardedPebEngine: a parallel query engine over N independent PEB-tree
// shards.
//
// Motivated by MOIST's partitioned moving-object indexing and by velocity
// partitioning for Bx-style trees: one logical index is split into N
// physical PEB-trees sharing one disk manager and one sharded clock buffer
// pool — the pool's per-shard latches (storage/buffer_pool.h) make
// concurrent page access from the worker threads contention-free, and the
// aggregate frame budget is exactly the configured buffer_pages (no
// per-shard floor inflation, so I/O stays directly comparable to the
// paper's single-tree figures).
// A pluggable ShardRouter assigns every user to exactly one shard; inserts,
// deletes, and updates are routed there. Queries exploit the PEB-tree's
// query structure (per-friend SV x Z-interval scans): the issuer's friend
// list is partitioned by home shard and each shard answers only for the
// friends it hosts, on a fixed ThreadPool, so the total key-range probe
// count matches the single-tree index while wall-clock drops with
// parallelism. Per-shard candidate lists are merged into one result
// (k-way merge by distance for PkNN). On the incremental PkNN path
// (MovingIndexOptions::incremental_knn, the default) the engine runs ONE
// streaming task per shard instead of a per-round barrier: each shard
// publishes its anti-diagonal's candidates into a shared verified list as
// soon as they exist, and a shard retires the moment its provably covered
// radius reaches the global k-th candidate distance — its remaining
// annuli (and final vertical scan) cannot improve the answer.
//
// Results are shard-count invariant: a user qualifies for a PRQ/PkNN answer
// in exactly one shard (their home shard), so the merged result equals the
// single PEB-tree's answer for any shard count and router policy
// (tests/engine_test.cc asserts this for 1, 2, 4, and 7 shards).
//
// Thread-safety: a per-shard mutex serializes all access to a shard's tree
// structure and query counters (the tree is not thread-safe); the shared
// buffer pool is thread-safe and needs no external serialization, so the
// storage layer never blocks shard parallelism. Queries use the PebTree
// const read path (RangeQueryAmong / KnnScan), so concurrent work on
// distinct shards never races. On top of
// that, an engine-level reader-writer lock keeps every query's view
// atomic: queries hold it shared, mutations that touch tree structure
// (LoadDataset, AdoptSnapshot, delta merges — and Insert/Update/Delete/
// ApplyBatch on the direct-apply path) hold it exclusive — so a query
// fanned out over several lock acquisitions can never observe half an
// update batch, while concurrent queries still proceed in parallel.
//
// Log-structured ingestion (MovingIndexOptions::delta_ingest, the
// default): updates never take the engine-wide exclusive lock at all.
// Writers serialize on a dedicated ingest mutex, append raw-state records
// to the home shard's in-memory delta (engine/shard_delta.h) under that
// shard's delta latch, and publish the batch by storing its seq into an
// atomic watermark. Read paths pin the watermark once at admission and
// merge the delta with the tree scan: friends with a visible delta record
// are lifted out of the per-shard tree candidate lists and evaluated
// directly from their delta state through the SAME Definition-2 predicate
// the tree scans use (PebTree::VerifyAgainst), so answers are bit-identical
// to direct apply while queries never wait behind update application.
// Deltas drain into the B+-trees in bounded merges — on a per-shard
// record-count threshold at the end of an ingest call, from the optional
// background merge thread, or explicitly via MergeDeltas() — under the
// existing exclusive section, whose hold time is bounded by the threshold
// (and shortened further by latest-record dedup: N buffered updates of one
// user cost one tree update).
//
// Lock order: ingest_mu_ -> shard.mu -> delta.mu (writers; presence probes
// hold shard.mu across both the tree and delta probe so a concurrent merge
// — which holds shard.mu across drain AND apply — can never show them the
// window where a record left the delta but has not reached the tree), and
// state_mu_ -> shard.mu -> delta.mu (merges, queries, validation). The
// ingest path never takes state_mu_ in either mode's read paths' way:
// queries only ever hold state_mu_ shared. Checkpoints additionally take
// state_mu_ -> ingest_mu_ (never the reverse: ingest calls MergeShards only
// OUTSIDE its ingest section), freezing both mutation paths so the WAL
// truncation at the end of a checkpoint cannot race a concurrent append.
// wal_mu_ is a leaf: it guards only the WAL sequence counter and the
// durability poison status, and no code acquires another lock under it.
//
// Durability (EngineOptions::durability.path non-empty): the engine runs on
// a FileDiskManager overlay store + write-ahead log instead of the
// in-memory disk. Between checkpoints the database FILE never changes —
// every page write lands in the disk manager's in-RAM overlay — so the
// file always holds exactly the last checkpoint and a crash loses nothing
// that was checkpointed. Logical mutations are journaled to the WAL AFTER
// the in-RAM apply succeeds (log-after-apply is correct precisely because
// durable state only changes at checkpoints: replay starts from the last
// checkpoint image, so only the WAL suffix — not the apply order — decides
// the recovered state). A WAL append/sync failure latches a poison status:
// the in-RAM engine may then be ahead of what recovery can reproduce, so
// every further mutation and checkpoint is rejected until the engine is
// reopened — the failed batch reported an error to its caller, so
// at-most-once application is preserved. Checkpoint() = merge all deltas
// (truncating the WAL must not orphan buffered events) -> flush the pool
// (strict: a pinned dirty page fails the checkpoint) -> journal every
// overlay page + a commit record into the WAL -> fold the overlay into the
// file under a new superblock generation -> truncate the WAL. Recovery
// (Open) adopts the newest complete checkpoint (superblock, or a newer one
// whose fold crashed but whose WAL commit record landed), re-attaches the
// shard trees from its manifest without rebuilding, replays the WAL suffix
// through the normal mutation paths, and re-checkpoints.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "bxtree/privacy_index.h"
#include "common/thread_annotations.h"
#include "engine/engine_wal.h"
#include "engine/shard_delta.h"
#include "engine/shard_router.h"
#include "engine/thread_pool.h"
#include "peb/peb_tree.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"
#include "telemetry/metrics.h"

namespace peb {

struct FaultInjector;

namespace engine {

/// Engine configuration.
struct EngineOptions {
  size_t num_shards = 4;
  /// Worker threads for shard fan-out; 0 runs every shard task inline on
  /// the calling thread (deterministic single-threaded mode).
  size_t num_threads = 4;
  RouterPolicy router = RouterPolicy::kHashUser;
  /// Aggregate buffer frames of the single shared pool (the paper's
  /// 50-page budget by default, so aggregate I/O stays comparable to the
  /// single-tree experiments — exactly, since there is no per-shard
  /// split).
  size_t buffer_pages = 50;
  /// Latch shards of the shared buffer pool (clamped to buffer_pages).
  /// More latch shards = less metadata contention between worker threads.
  size_t pool_shards = 4;
  /// Per-shard PEB-tree configuration (shared by all shards).
  PebTreeOptions tree;
  /// Log-structured ingestion tuning (active when tree.index.delta_ingest).
  struct DeltaIngestOptions {
    /// A shard whose delta reaches this many buffered records is merged at
    /// the end of the ingest call that crossed it. Bounds both merge
    /// lock-hold time and query-side read amplification.
    size_t merge_threshold = 4096;
    /// Backpressure ceiling: an ingest batch that would land on a shard
    /// already buffering this many records first merges that shard inline
    /// (the writer stalls; queries never do). 0 = 8 * merge_threshold.
    size_t hard_cap = 0;
    /// When non-zero, a background thread drains EVERY non-empty delta
    /// each period — keeps read amplification low across writer idle gaps
    /// without any ingest-path trigger. 0 (default) = no thread.
    size_t background_merge_period_ms = 0;
  };
  DeltaIngestOptions delta;
  /// Durable storage. Default (empty path) keeps the in-memory disk — no
  /// behavior change for experiments that only measure I/O counts.
  struct DurabilityOptions {
    /// Database file path. Non-empty = durable engine: file-backed overlay
    /// store at `path` plus a write-ahead log at `path + ".wal"`.
    std::string path;
    /// fsync the WAL after every logged mutation batch (the durability
    /// contract: an OK ApplyBatch survives a crash). Off trades that for
    /// throughput — a crash may lose the un-synced suffix, never atomicity.
    bool sync_each_batch = true;
    /// mmap the database file (storage/disk_manager.h); off = stdio.
    bool use_mmap = true;
    /// Allow fresh-engine construction to truncate a path that already
    /// holds a valid database. Off (the default) poisons the engine
    /// instead (durability_status() reports it): reopening a database is
    /// Open()'s job, and constructing a fresh engine over one would
    /// silently destroy it.
    bool overwrite_existing = false;
    /// Take a clean-shutdown checkpoint in the destructor. Crash tests turn
    /// this off to make engine teardown indistinguishable from kill -9.
    bool checkpoint_on_close = true;
    /// Test-only failpoints (storage/fault_injection.h): counted crash
    /// drops / torn writes on the file and WAL, EIO on sync. Null in
    /// production.
    FaultInjector* fault_injector = nullptr;
  };
  DurabilityOptions durability;
  /// Engine instruments (per-shard query/update counts, PkNN rounds and
  /// retirements, batch lock-hold time, delta append/probe/merge counters
  /// and merge lock-hold, per-pool-shard IoStats samples).
  telemetry::TelemetryOptions telemetry;
};

class ShardedPebEngine final : public PrivacyAwareIndex {
 public:
  /// Policies and roles must outlive the engine; the encoding snapshot is
  /// shared (every shard tree holds it) and swappable via AdoptSnapshot.
  ShardedPebEngine(const EngineOptions& options, const PolicyStore* store,
                   const RoleRegistry* roles,
                   std::shared_ptr<const EncodingSnapshot> snapshot);

  /// Legacy bridge for static worlds: non-owning view of `encoding`.
  ShardedPebEngine(const EngineOptions& options, const PolicyStore* store,
                   const RoleRegistry* roles, const PolicyEncoding* encoding)
      : ShardedPebEngine(options, store, roles,
                         std::shared_ptr<const EncodingSnapshot>(
                             std::shared_ptr<const EncodingSnapshot>(),
                             encoding)) {}

  /// Unregisters this engine's registry collector (benches construct many
  /// engines against the long-lived default registry).
  ~ShardedPebEngine() override;

  // --- PrivacyAwareIndex ----------------------------------------------------
  Status Insert(const MovingObject& object) override;
  Status Update(const MovingObject& object) override;
  Status Delete(UserId id) override;
  size_t size() const override;
  Result<MovingObject> GetObject(UserId id) const override;
  /// Queries may be issued from any number of threads concurrently; the
  /// service layer relies on this to fan Submit() out without locking.
  bool SupportsConcurrentQueries() const override { return true; }
  /// The shared pool serving every shard tree.
  BufferPool* pool() override;
  IoStats aggregate_io() const override;
  void ResetIo() override;

  /// Exact per-query observability under concurrent submission: every
  /// shard task accumulates its own counters and attributes its buffer-pool
  /// traffic through BufferPool::ThreadIoScope, and the merged totals are
  /// returned by value in `stats` — no shared observer state on the hot
  /// path (PRQ shard counters go straight into the query's own slot via
  /// RangeQueryAmong's counters out-param, never through shared tree
  /// state). When `stats` carries a TraceBuilder, each shard task opens a
  /// per-shard span (and, on the incremental PkNN path, one child span per
  /// enlargement round) whose counters/IoStats deltas sum to the query's
  /// own totals.
  Result<std::vector<UserId>> RangeQueryWithStats(UserId issuer,
                                                  const Rect& range,
                                                  Timestamp tq,
                                                  QueryStats* stats) override;
  Result<std::vector<Neighbor>> KnnQueryWithStats(UserId issuer,
                                                  const Point& qloc, size_t k,
                                                  Timestamp tq,
                                                  QueryStats* stats) override;

  /// Adopts a new policy-encoding snapshot ATOMICALLY across all shards:
  /// under the exclusive state lock, every shard tree swaps to `snapshot`
  /// and re-keys the users it hosts from `rekey` (grouped by home shard,
  /// applied on worker threads through the same per-shard path update
  /// batches use). Queries hold the state lock shared, so 1-shard and
  /// N-shard engines expose identical epoch transitions — no query ever
  /// sees half an epoch.
  Status AdoptSnapshot(std::shared_ptr<const EncodingSnapshot> snapshot,
                       const std::vector<UserId>* rekey) override;
  uint64_t encoding_epoch() const override;

  /// Runs `fn` while the engine state lock is held exclusive — atomically
  /// with respect to every query and update. The service layer uses this
  /// to mutate live policy state (PolicyStore/RoleRegistry) that query
  /// verification reads. `fn` must not call back into the engine.
  Status RunExclusive(const std::function<Status()>& fn);

  // --- bulk operations ------------------------------------------------------
  /// Routes and inserts every object, loading shards in parallel.
  Status LoadDataset(const Dataset& dataset);

  /// Applies a time-ordered update batch. Direct-apply mode: events are
  /// grouped by home shard (preserving order within each group) and every
  /// shard's group is applied on a worker thread under the exclusive state
  /// lock. Delta-ingest mode: the whole batch is appended to the home
  /// shards' deltas under the ingest lock and published atomically (one
  /// seq per batch), so concurrent queries see all of it or none of it —
  /// without the batch ever blocking them. Per-user ordering is preserved
  /// in both modes because a user maps to exactly one shard. A batch
  /// naming an id outside the policy encoding is rejected whole (the
  /// direct path instead stops that user's shard group at the bad event;
  /// error batches are excluded from the equivalence contract).
  Status ApplyBatch(const std::vector<UpdateEvent>& events);

  // --- durability -----------------------------------------------------------
  /// Reopens a durable engine from `options.durability.path` (which must
  /// name an existing database file): adopts the newest complete
  /// checkpoint, re-attaches the shard trees from its manifest WITHOUT
  /// rebuilding, replays the WAL suffix up to the last complete batch
  /// boundary, validates (always after an unclean shutdown, and whenever
  /// paranoid_checks is on), and re-checkpoints so a crash during recovery
  /// itself replays idempotently. `snapshot` must carry the same encoding
  /// epoch the file was checkpointed under, and options.num_shards must
  /// match the persisted shard count.
  static Result<std::unique_ptr<ShardedPebEngine>> Open(
      const EngineOptions& options, const PolicyStore* store,
      const RoleRegistry* roles,
      std::shared_ptr<const EncodingSnapshot> snapshot);

  /// Folds all in-RAM state into the database file and truncates the WAL
  /// (see the checkpoint protocol in the header comment). InvalidArgument
  /// on a non-durable engine; any I/O failure poisons the engine.
  Status Checkpoint() EXCLUDES(state_mu_);

  /// Whether this engine has a durable backing store.
  bool durable() const { return durable_ != nullptr; }

  /// OK, or the latched poison status after a durability I/O failure (all
  /// mutations and checkpoints fail with it until the engine is reopened).
  Status durability_status() const EXCLUDES(wal_mu_);

  /// The durable store (null on in-memory engines); tests inspect overlay
  /// and superblock state through it.
  const DurableDiskManager* durable_store() const { return durable_; }

  // --- delta ingestion ------------------------------------------------------
  /// Drains every non-empty shard delta into its tree (one exclusive
  /// section). No-op in direct-apply mode. Benches and tests call this to
  /// settle the engine before comparing against a direct-apply oracle;
  /// the service layer calls it on shutdown-like barriers.
  Status MergeDeltas() EXCLUDES(state_mu_);

  /// Aggregate delta-ingestion state (zeros in direct-apply mode).
  struct DeltaStats {
    size_t buffered_records = 0;   ///< Currently buffered across shards.
    size_t max_shard_records = 0;  ///< Largest single shard's buffer.
    uint64_t appended_total = 0;   ///< Lifetime appends.
    uint64_t merges = 0;           ///< Merge sections executed.
    uint64_t merged_records = 0;   ///< Tree mutations applied by merges.
    uint64_t backpressure_merges = 0;  ///< Merges forced by hard_cap.
  };
  DeltaStats delta_stats() const;

  /// Whether updates go through the per-shard deltas (the configured
  /// MovingIndexOptions::delta_ingest, honored only by the engine).
  bool delta_ingest_enabled() const { return delta_on_; }

  /// Buffered delta records of shard i (tests/benches).
  size_t shard_delta_records(size_t i) const {
    return delta_on_ ? deltas_[i]->records() : 0;
  }

  // --- introspection --------------------------------------------------------
  const EngineOptions& options() const { return options_; }
  const ShardRouter& router() const { return *router_; }
  size_t num_shards() const { return shards_.size(); }
  /// Frames of the shared pool (always exactly options().buffer_pages).
  size_t buffer_frames_total() const;
  ThreadPool& threads() { return threads_; }
  /// Shard i's tree (read-only; for stats and tests). Deliberately
  /// unchecked: single-threaded test/bench introspection only — concurrent
  /// callers would need shard i's mutex, which cannot outlive this call.
  const PebTree& shard_tree(size_t i) const NO_THREAD_SAFETY_ANALYSIS {
    return *shards_[i]->tree;
  }
  /// Number of users currently hosted by shard i.
  size_t shard_size(size_t i) const {
    MutexLock lock(&shards_[i]->mu);
    return shards_[i]->tree->size();
  }

  /// Deep structural cross-check of the whole engine: every shard tree's
  /// own invariants (PebTree::ValidateInvariants, including the underlying
  /// B+-tree walk), every hosted user routed to exactly the shard that
  /// hosts it, one uniform encoding epoch across shards and the engine's
  /// pinned snapshot, shard sizes consistent with the engine total, and
  /// the shared buffer pool's frame accounting. Takes the state lock
  /// shared, so it can run concurrently with queries (but not mid-batch).
  Status ValidateInvariants() const EXCLUDES(state_mu_);

 private:
  struct Shard {
    /// Set once at construction; the pointee is guarded by `mu` below.
    std::unique_ptr<PebTree> tree PT_GUARDED_BY(mu);
    /// Serializes all access to the tree's structure and query counters.
    /// Page access goes through the shared thread-safe pool and needs no
    /// per-shard serialization.
    mutable Mutex mu;
  };

  /// The disk a constructor run will own, plus its durable view (null for
  /// the in-memory disk). Carried as one value so the delegating
  /// constructors can hand both through a single argument without RTTI.
  struct DiskHolder {
    std::unique_ptr<DiskManager> disk;
    DurableDiskManager* durable = nullptr;
  };

  /// Builds the disk options_.durability selects: in-memory (empty path),
  /// file-backed, or fault-injecting file-backed.
  static DiskHolder MakeDisk(const EngineOptions& options);

  /// The one real constructor; the public ones delegate. `fresh` means the
  /// disk was just created (not reopened): any WAL left at the path is a
  /// stale artifact of a previous database and is truncated.
  ShardedPebEngine(DiskHolder holder, const EngineOptions& options,
                   const PolicyStore* store, const RoleRegistry* roles,
                   std::shared_ptr<const EncodingSnapshot> snapshot,
                   bool fresh);

  /// Splits the issuer's friend list by home shard. Per-shard lists keep
  /// the encoding's ascending (qsv, uid) order, as BuildRows requires.
  std::vector<std::vector<FriendEntry>> PartitionFriends(UserId issuer) const
      REQUIRES_SHARED(state_mu_);

  /// A friend lifted out of the tree scan by the delta overlay: their
  /// latest visible delta state answers for them instead of the tree.
  struct DeltaCandidate {
    UserId uid = kInvalidUserId;
    MovingObject state;
  };

  /// Delta overlay for one query pinned at `watermark`: removes every
  /// friend with a visible delta record from the per-shard tree candidate
  /// lists (order preserved) and collects the non-tombstoned ones into
  /// `out` for direct evaluation. Tree scans then cannot return a stale
  /// position for a user the delta shadows, and tombstoned users vanish.
  void OverlayFriends(std::vector<std::vector<FriendEntry>>* per_shard,
                      uint64_t watermark,
                      std::vector<DeltaCandidate>* out) const
      REQUIRES_SHARED(state_mu_);

  /// Whether `id` currently exists logically in shard `idx` — tree OR
  /// visible delta, tombstones excluded. Holds the shard mutex across both
  /// probes (see the lock-order note above) so the verdict is atomic with
  /// respect to merges. Writers call it under ingest_mu_, where every
  /// buffered record is already published — hence the unbounded watermark.
  bool PresentInShard(size_t idx, UserId id) const REQUIRES(ingest_mu_);

  /// Appends one single-object mutation (Insert/Update/Delete) to the home
  /// shard's delta with direct-path status parity, then publishes it.
  Status IngestOne(const MovingObject& state, bool tombstone,
                   bool require_absent, bool require_present)
      EXCLUDES(ingest_mu_);

  /// Merges the named shards' deltas into their trees under one exclusive
  /// state section: drain (latest record per user, dedup) + apply, with
  /// per-shard lock-hold observed into merge_lock_hold_ms_. paranoid_checks
  /// additionally validates delta/tree agreement for every drained user
  /// and runs the full structural audit before queries resume.
  Status MergeShards(const std::vector<size_t>& which) EXCLUDES(state_mu_);

  /// MergeShards for callers already holding state_mu_ exclusive
  /// (checkpoints merge under their own lock scope).
  Status MergeShardsLocked(const std::vector<size_t>& which)
      REQUIRES(state_mu_);

  // --- durability internals -------------------------------------------------
  /// Fast-fails a mutation once the engine is poisoned. OK on in-memory
  /// engines and healthy durable ones.
  Status CheckDurable() const EXCLUDES(wal_mu_);

  /// Journals `ops` as one kEvents record (one WAL record per logical
  /// batch), syncing when durability.sync_each_batch. Called after the
  /// in-RAM apply succeeded, from inside the caller's ingest or exclusive
  /// state section — so record order in the log matches publication order.
  /// No-op on in-memory engines and during recovery replay. Failure
  /// poisons the engine and propagates.
  Status LogOps(const std::vector<engine_wal::LoggedOp>& ops)
      EXCLUDES(wal_mu_);

  /// Journals an advisory kMerge marker (not synced: losing it never loses
  /// data, replay just buffers more before its own merges).
  Status LogMerge() EXCLUDES(wal_mu_);

  /// Checkpoint() body for callers already holding state_mu_ exclusive.
  /// Additionally freezes ingest (state_mu_ -> ingest_mu_, see lock order)
  /// so no kEvents record can slip between the delta merge below and the
  /// WAL truncation at the end. `clean` marks the superblock's
  /// clean-shutdown flag (destructor checkpoint only).
  Status CheckpointLocked(bool clean) REQUIRES(state_mu_)
      EXCLUDES(ingest_mu_, wal_mu_);

  /// Merges every shard at or above the merge threshold (the ingest-path
  /// trigger; call WITHOUT ingest_mu_ held).
  Status MaybeMergeDeltas() EXCLUDES(state_mu_, ingest_mu_);

  /// Refreshes engine.delta.backlog to the current buffered-record total.
  void UpdateBacklogGauge() const;

  /// size() for callers already holding state_mu_.
  size_t SizeLocked() const REQUIRES_SHARED(state_mu_);

  /// ValidateInvariants() for callers already holding state_mu_ (the
  /// paranoid_checks hook runs it at the end of exclusive batch sections).
  Status ValidateLocked() const REQUIRES_SHARED(state_mu_);

  /// Adds a finished shard query's counters into a query-local total.
  static void MergeCounters(const QueryCounters& shard_counters,
                            QueryCounters* into);

  EngineOptions options_;
  /// Engine-level copy of the current snapshot (shard trees hold their
  /// own); written under the exclusive state lock, read under shared.
  std::shared_ptr<const EncodingSnapshot> snapshot_ GUARDED_BY(state_mu_);
  std::unique_ptr<ShardRouter> router_;
  /// Verification inputs for the delta overlay (the pointees are mutated
  /// only inside RunExclusive sections, which exclude all queries).
  const PolicyStore* store_ = nullptr;
  const RoleRegistry* roles_ = nullptr;
  /// Population bound, immutable after construction: AdoptSnapshot rejects
  /// snapshots with a different population, so the ingest path can check
  /// id bounds without touching state_mu_.
  size_t num_users_ = 0;
  /// One disk + one sharded clock pool shared by every shard tree. The
  /// disk is in-memory by default, file-backed when durability.path is set
  /// (then durable_ is its non-owning durable view, else null).
  std::unique_ptr<DiskManager> disk_;
  DurableDiskManager* durable_ = nullptr;
  /// Write-ahead log (durable engines only, else null).
  std::unique_ptr<WriteAheadLog> wal_;
  /// Leaf lock: WAL sequencing + poison status only (see lock order).
  mutable Mutex wal_mu_;
  /// Seq of the most recently appended WAL record (checkpoint image/commit
  /// records included — one monotonic sequence per log).
  uint64_t wal_seq_ GUARDED_BY(wal_mu_) = 0;
  /// First durability I/O failure, latched forever (see header comment).
  Status durability_error_ GUARDED_BY(wal_mu_);
  /// True while Open() replays the WAL through the normal mutation paths:
  /// suppresses re-logging the records being replayed. Atomic because the
  /// background merger can already be running during replay.
  std::atomic<bool> replaying_{false};
  /// False while Open() owns a partially recovered engine: disarms the
  /// destructor's clean-shutdown checkpoint so a failed recovery cannot
  /// publish half-restored (or empty) state as a clean generation and
  /// truncate the WAL that a retry still needs. Constructor-built engines
  /// are born armed; Open() re-arms only after recovery fully succeeds.
  /// Plain bool: written single-threaded inside Open() before the engine
  /// is ever shared.
  bool close_checkpoint_armed_ = true;
  BufferPool pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ThreadPool threads_;
  /// Engine-level snapshot isolation: queries shared, mutations exclusive.
  /// Always acquired before any shard mutex; worker tasks take only shard
  /// mutexes (the dispatching thread holds this lock for them).
  mutable SharedMutex state_mu_;

  // --- log-structured ingestion state (delta_on_ only) ----------------------
  /// tree.index.delta_ingest, cached (options_ is const after construction).
  bool delta_on_ = false;
  /// One delta per shard, indexed like shards_. Each has its own latch.
  std::vector<std::unique_ptr<ShardDelta>> deltas_;
  /// Serializes WRITERS only (seq assignment, presence probes, batch
  /// publication). Queries never touch it — that is the whole point.
  mutable Mutex ingest_mu_ ACQUIRED_BEFORE(merger_mu_);
  /// Seq of the most recently assigned ingest batch.
  uint64_t next_seq_ GUARDED_BY(ingest_mu_) = 0;
  /// Watermark of the most recently PUBLISHED batch: stored with release
  /// after all of the batch's appends, loaded with acquire once per query.
  /// Records above a reader's watermark are invisible to it.
  std::atomic<uint64_t> published_seq_{0};
  std::atomic<uint64_t> delta_merges_count_{0};
  std::atomic<uint64_t> delta_merged_records_{0};
  std::atomic<uint64_t> delta_backpressure_merges_{0};

  /// Background merge thread (started when delta ingestion is on and
  /// background_merge_period_ms > 0).
  std::thread merger_;
  mutable Mutex merger_mu_;
  std::condition_variable_any merger_cv_;
  bool merger_stop_ GUARDED_BY(merger_mu_) = false;

  /// Engine instruments (null when telemetry is disabled). Cached pointers
  /// into the registry, resolved once at construction.
  struct ShardInstruments {
    telemetry::Counter* queries = nullptr;
    telemetry::Counter* updates = nullptr;
  };
  std::vector<ShardInstruments> shard_instruments_;
  telemetry::Counter* pknn_rounds_ = nullptr;
  telemetry::Counter* pknn_retirements_ = nullptr;
  telemetry::Histogram* batch_lock_hold_ms_ = nullptr;
  /// Delta instruments, registered only when delta ingestion is on (an
  /// instrument that CANNOT move must not read zero forever — the CI
  /// telemetry gate fails on dead instruments).
  telemetry::Counter* delta_appends_ = nullptr;
  telemetry::Counter* delta_probes_ = nullptr;
  telemetry::Counter* delta_shadowed_ = nullptr;
  telemetry::Counter* delta_merges_ = nullptr;
  telemetry::Counter* delta_merged_records_counter_ = nullptr;
  telemetry::Histogram* merge_lock_hold_ms_ = nullptr;
  telemetry::Gauge* delta_backlog_ = nullptr;
  /// Token of the per-pool-shard IoStats collector (0 = none registered).
  size_t pool_collector_token_ = 0;
  telemetry::MetricsRegistry* registry_ = nullptr;
};

}  // namespace engine
}  // namespace peb
