// A small fixed-size worker pool for the sharded query engine.
//
// Shard fan-out needs exactly one primitive: "run these N closures, wait
// for all of them". Tasks are plain std::function<void()>; errors propagate
// by capture (the library is exception-free, matching the Status idiom).
// A pool constructed with zero workers runs every task inline on the
// submitting thread, which keeps single-threaded configurations
// deterministic and easy to debug.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace peb {
namespace engine {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means "inline mode" (no workers).
  explicit ThreadPool(size_t num_threads) {
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      MutexLock lock(&mu_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Runs it inline when the pool has no workers.
  void Submit(std::function<void()> task) EXCLUDES(mu_) {
    if (workers_.empty()) {
      task();
      return;
    }
    {
      MutexLock lock(&mu_);
      queue_.push_back(std::move(task));
    }
    wake_.notify_one();
  }

  /// Runs every task and returns once all have completed. The calling
  /// thread blocks (or, with no workers, executes the tasks itself).
  void RunAll(std::vector<std::function<void()>> tasks) EXCLUDES(mu_) {
    if (tasks.empty()) return;
    if (workers_.empty()) {
      for (auto& t : tasks) t();
      return;
    }
    Latch latch(tasks.size());
    for (auto& t : tasks) {
      Submit([&latch, task = std::move(t)] {
        task();
        latch.CountDown();
      });
    }
    latch.Wait();
  }

 private:
  /// Minimal count-down latch (std::latch is C++20 but <latch> is spotty
  /// on older toolchains; this is the whole of what we need).
  class Latch {
   public:
    explicit Latch(size_t count) : remaining_(count) {}
    void CountDown() EXCLUDES(mu_) {
      MutexLock lock(&mu_);
      if (--remaining_ == 0) done_.notify_all();
    }
    void Wait() EXCLUDES(mu_) {
      MutexLock lock(&mu_);
      done_.wait(mu_, [this]() {
        mu_.AssertHeld();  // The cv re-locks before testing the predicate.
        return remaining_ == 0;
      });
    }

   private:
    Mutex mu_;
    std::condition_variable_any done_;
    size_t remaining_ GUARDED_BY(mu_);
  };

  void WorkerLoop() EXCLUDES(mu_) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(&mu_);
        wake_.wait(mu_, [this]() {
          mu_.AssertHeld();
          return stopping_ || !queue_.empty();
        });
        if (queue_.empty()) return;  // stopping_ and drained.
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  Mutex mu_;
  std::condition_variable_any wake_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace engine
}  // namespace peb
