#include "engine/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <queue>
#include <utility>

#include "storage/fault_injection.h"
#include "telemetry/trace.h"

namespace peb {
namespace engine {

namespace {

/// K-way merge by (distance, uid) of per-shard candidate lists — each
/// already ascending by distance — into the engine's running verified
/// list (kept ascending by distance).
void KWayMergeByDistance(std::vector<const std::vector<Neighbor>*> lists,
                         std::vector<Neighbor>* into) {
  struct Head {
    size_t list;
    size_t pos;
  };
  auto head_less = [&lists](const Head& a, const Head& b) {
    const Neighbor& na = (*lists[a.list])[a.pos];
    const Neighbor& nb = (*lists[b.list])[b.pos];
    if (na.distance != nb.distance) return na.distance > nb.distance;
    return na.uid > nb.uid;  // Min-heap: invert.
  };
  std::priority_queue<Head, std::vector<Head>, decltype(head_less)> heap(
      head_less);
  size_t total = 0;
  for (size_t l = 0; l < lists.size(); ++l) {
    total += lists[l]->size();
    if (!lists[l]->empty()) heap.push({l, 0});
  }
  if (total == 0) return;
  std::vector<Neighbor> merged;
  merged.reserve(total);
  while (!heap.empty()) {
    Head h = heap.top();
    heap.pop();
    merged.push_back((*lists[h.list])[h.pos]);
    if (h.pos + 1 < lists[h.list]->size()) heap.push({h.list, h.pos + 1});
  }
  size_t mid = into->size();
  into->insert(into->end(), merged.begin(), merged.end());
  std::inplace_merge(into->begin(), into->begin() + mid, into->end(),
                     [](const Neighbor& a, const Neighbor& b) {
                       return a.distance < b.distance;
                     });
}

/// Shared shape of LoadDataset and ApplyBatch: items already grouped by
/// home shard are applied in order on one worker task per shard, stopping
/// a shard's task at its first error. `lock_hold_ms` (when non-null)
/// observes how long each shard task held its shard mutex — the interval
/// concurrent queries on that shard were blocked for.
template <typename ShardPtr, typename Item, typename Apply>
Status RouteAndApply(std::vector<ShardPtr>& shards, ThreadPool& threads,
                     const std::vector<std::vector<const Item*>>& groups,
                     const Apply& apply,
                     telemetry::Histogram* lock_hold_ms) {
  std::vector<Status> statuses(shards.size());
  std::vector<std::function<void()>> tasks;
  for (size_t s = 0; s < shards.size(); ++s) {
    if (groups[s].empty()) continue;
    tasks.push_back([&, s] {
      auto& shard = *shards[s];
      MutexLock lock(&shard.mu);
      auto locked_at = std::chrono::steady_clock::now();
      for (const Item* item : groups[s]) {
        Status st = apply(*shard.tree, *item);
        if (!st.ok()) {
          statuses[s] = std::move(st);
          break;
        }
      }
      telemetry::Observe(lock_hold_ms,
                         std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - locked_at)
                             .count());
    });
  }
  threads.RunAll(std::move(tasks));
  for (Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace

ShardedPebEngine::DiskHolder ShardedPebEngine::MakeDisk(
    const EngineOptions& options) {
  DiskHolder holder;
  const auto& dur = options.durability;
  if (dur.path.empty()) {
    holder.disk = std::make_unique<InMemoryDiskManager>();
    return holder;
  }
  FileDiskOptions fopts;
  fopts.use_mmap = dur.use_mmap;
  fopts.overwrite_existing = dur.overwrite_existing;
  std::unique_ptr<FileDiskManager> file;
  if (dur.fault_injector != nullptr) {
    file = std::make_unique<FaultInjectingDiskManager>(dur.path,
                                                       dur.fault_injector,
                                                       fopts);
  } else {
    file = std::make_unique<FileDiskManager>(dur.path, fopts);
  }
  holder.durable = file.get();
  holder.disk = std::move(file);
  return holder;
}

ShardedPebEngine::ShardedPebEngine(
    const EngineOptions& options, const PolicyStore* store,
    const RoleRegistry* roles,
    std::shared_ptr<const EncodingSnapshot> snapshot)
    : ShardedPebEngine(MakeDisk(options), options, store, roles,
                       std::move(snapshot), /*fresh=*/true) {}

ShardedPebEngine::ShardedPebEngine(
    DiskHolder holder, const EngineOptions& options, const PolicyStore* store,
    const RoleRegistry* roles,
    std::shared_ptr<const EncodingSnapshot> snapshot, bool fresh)
    : options_(options),
      snapshot_(std::move(snapshot)),
      router_(MakeRouter(options.router,
                         options.num_shards == 0 ? 1 : options.num_shards,
                         snapshot_)),
      store_(store),
      roles_(roles),
      num_users_(snapshot_ == nullptr ? 0 : snapshot_->num_users()),
      disk_(std::move(holder.disk)),
      durable_(holder.durable),
      pool_(disk_.get(),
            BufferPoolOptions{options.buffer_pages, options.pool_shards}),
      threads_(options.num_threads),
      delta_on_(options.tree.index.delta_ingest) {
  if (durable_ != nullptr) {
    Status st = durable_->status();
    if (st.ok()) {
      auto wal = WriteAheadLog::Open(options_.durability.path + ".wal",
                                     options_.durability.fault_injector);
      if (wal.ok()) {
        wal_ = std::move(*wal);
        // A fresh database truncates any WAL a previous database at this
        // path left behind — its records describe pages we just discarded.
        if (fresh) st = wal_->Truncate();
      } else {
        st = wal.status();
      }
    }
    if (!st.ok()) {
      MutexLock wal_lock(&wal_mu_);
      durability_error_ = st;
    }
  }
  size_t n = router_->num_shards();
  shards_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->tree = std::make_unique<PebTree>(&pool_, options_.tree, store,
                                            roles, snapshot_);
    shards_.push_back(std::move(shard));
  }
  if (delta_on_) {
    deltas_.reserve(n);
    for (size_t s = 0; s < n; ++s) {
      deltas_.push_back(std::make_unique<ShardDelta>());
    }
  }
  // Instruments resolve eagerly here (not lazily on first use), so a
  // disconnected record site shows up as a registered-but-zero instrument
  // — which CI's bench-smoke gate fails on.
  shard_instruments_.resize(n);
  if (options_.telemetry.enabled) {
    registry_ = options_.telemetry.registry != nullptr
                    ? options_.telemetry.registry
                    : telemetry::MetricsRegistry::Default();
    for (size_t s = 0; s < n; ++s) {
      std::string prefix = "engine.shard" + std::to_string(s);
      shard_instruments_[s].queries = registry_->counter(prefix + ".queries");
      shard_instruments_[s].updates = registry_->counter(prefix + ".updates");
    }
    pknn_rounds_ = registry_->counter("engine.pknn.rounds");
    pknn_retirements_ = registry_->counter("engine.pknn.retirements");
    batch_lock_hold_ms_ = registry_->histogram("engine.batch.lock_hold_ms");
    if (delta_on_) {
      delta_appends_ = registry_->counter("engine.delta.appends");
      delta_probes_ = registry_->counter("engine.delta.probes");
      delta_shadowed_ = registry_->counter("engine.delta.shadowed");
      delta_merges_ = registry_->counter("engine.delta.merges");
      delta_merged_records_counter_ =
          registry_->counter("engine.delta.merged_records");
      merge_lock_hold_ms_ = registry_->histogram("engine.merge.lock_hold_ms");
      delta_backlog_ = registry_->gauge("engine.delta.backlog");
    }
    pool_collector_token_ = registry_->RegisterCollector([this] {
      std::vector<telemetry::MetricsRegistry::Sample> out;
      for (size_t i = 0; i < pool_.num_shards(); ++i) {
        IoStats st = pool_.ShardStats(i);
        std::string p = "pool.shard" + std::to_string(i) + ".";
        out.emplace_back(p + "logical_fetches",
                         static_cast<double>(st.logical_fetches));
        out.emplace_back(p + "cache_hits",
                         static_cast<double>(st.cache_hits));
        out.emplace_back(p + "physical_reads",
                         static_cast<double>(st.physical_reads));
        out.emplace_back(p + "evictions",
                         static_cast<double>(st.evictions));
        out.emplace_back(p + "prefetch_reads",
                         static_cast<double>(st.prefetch_reads));
      }
      return out;
    });
  }
  if (delta_on_ && options_.delta.background_merge_period_ms > 0) {
    merger_ = std::thread([this] {
      const auto period =
          std::chrono::milliseconds(options_.delta.background_merge_period_ms);
      for (;;) {
        {
          MutexLock lock(&merger_mu_);
          merger_cv_.wait_for(merger_mu_, period, [this]() {
            merger_mu_.AssertHeld();
            return merger_stop_;
          });
          if (merger_stop_) break;
        }
        // Drain every non-empty delta: across writer idle gaps this is the
        // only trigger, and it keeps query-side read amplification low.
        // Merge errors surface through paranoid foreground merges and
        // ValidateInvariants; the thread itself has nobody to report to.
        (void)MergeDeltas();
      }
    });
  }
}

ShardedPebEngine::~ShardedPebEngine() {
  if (merger_.joinable()) {
    {
      MutexLock lock(&merger_mu_);
      merger_stop_ = true;
    }
    merger_cv_.notify_all();
    merger_.join();
  }
  // Clean shutdown: one final checkpoint marks the superblock clean so the
  // next open may skip validation. Best-effort — a poisoned engine, one
  // whose owner opted out (crash tests), or one Open() abandoned mid-
  // recovery (disarmed: committing its half-restored state would destroy
  // the database) simply leaves the unclean flag, and recovery replays the
  // WAL as after any crash.
  if (durable_ != nullptr && close_checkpoint_armed_ &&
      options_.durability.checkpoint_on_close && CheckDurable().ok()) {
    WriterMutexLock state_lock(&state_mu_);
    (void)CheckpointLocked(/*clean=*/true);
  }
  if (registry_ != nullptr && pool_collector_token_ != 0) {
    registry_->UnregisterCollector(pool_collector_token_);
  }
}

// ---------------------------------------------------------------------------
// Durability: WAL logging, checkpoints, recovery
// ---------------------------------------------------------------------------

Status ShardedPebEngine::durability_status() const {
  if (wal_ == nullptr && durable_ == nullptr) return Status::OK();
  MutexLock wal_lock(&wal_mu_);
  return durability_error_;
}

Status ShardedPebEngine::CheckDurable() const {
  if (durable_ == nullptr) return Status::OK();
  MutexLock wal_lock(&wal_mu_);
  return durability_error_;
}

Status ShardedPebEngine::LogOps(
    const std::vector<engine_wal::LoggedOp>& ops) {
  if (wal_ == nullptr || replaying_.load(std::memory_order_relaxed)) {
    return Status::OK();
  }
  MutexLock wal_lock(&wal_mu_);
  PEB_RETURN_NOT_OK(durability_error_);
  WalRecord rec;
  rec.seq = ++wal_seq_;
  rec.type = engine_wal::kEvents;
  rec.payload = engine_wal::EncodeEvents(ops);
  Status st = wal_->Append(rec);
  if (st.ok() && options_.durability.sync_each_batch) st = wal_->Sync();
  if (!st.ok()) durability_error_ = st;
  return st;
}

Status ShardedPebEngine::LogMerge() {
  if (wal_ == nullptr || replaying_.load(std::memory_order_relaxed)) {
    return Status::OK();
  }
  MutexLock wal_lock(&wal_mu_);
  PEB_RETURN_NOT_OK(durability_error_);
  WalRecord rec;
  rec.seq = ++wal_seq_;
  rec.type = engine_wal::kMerge;
  // Advisory — not synced: losing the marker loses no data, replay just
  // carries a larger delta until its own merge triggers fire.
  Status st = wal_->Append(rec);
  if (!st.ok()) durability_error_ = st;
  return st;
}

Status ShardedPebEngine::Checkpoint() {
  WriterMutexLock state_lock(&state_mu_);
  return CheckpointLocked(/*clean=*/false);
}

Status ShardedPebEngine::CheckpointLocked(bool clean) {
  if (durable_ == nullptr) {
    return Status::InvalidArgument(
        "Checkpoint() requires a durable engine (EngineOptions::durability)");
  }
  // Freeze ingest for the whole protocol (state_mu_ -> ingest_mu_, see the
  // header's lock order): between the delta merge below and the WAL
  // truncation at the end, no writer may append a kEvents record — it
  // would be truncated away while its events sit in an unmerged delta.
  MutexLock ingest(&ingest_mu_);
  // 1. Every buffered event must reach the trees: the WAL is about to be
  //    truncated, and only tree pages are checkpointed.
  if (delta_on_) {
    std::vector<size_t> which;
    for (size_t s = 0; s < deltas_.size(); ++s) {
      if (deltas_[s]->records() > 0) which.push_back(s);
    }
    PEB_RETURN_NOT_OK(MergeShardsLocked(which));
  }
  // 2. Every dirty frame must reach the overlay — strictly: a pinned dirty
  //    page would silently checkpoint a stale version.
  PEB_RETURN_NOT_OK(pool_.FlushAllStrict());
  // 3. Snapshot the manifest (tree roots + stats + epoch).
  engine_wal::EngineManifest manifest;
  manifest.epoch = snapshot_ == nullptr ? 0 : snapshot_->epoch();
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    manifest.shards.push_back(shard->tree->Manifest());
  }
  const std::string manifest_blob = engine_wal::EncodeManifest(manifest);

  MutexLock wal_lock(&wal_mu_);
  PEB_RETURN_NOT_OK(durability_error_);
  // 4. Journal the checkpoint itself: every overlay page plus a commit
  //    record carrying the allocation state and manifest. If the fold in
  //    step 5 crashes midway, recovery finishes the checkpoint from these
  //    records instead of reading torn pages.
  Status st;
  durable_->ForEachDirtyPage([&](PageId id, const Page& page) {
    if (!st.ok()) return;
    WalRecord rec;
    rec.seq = ++wal_seq_;
    rec.type = engine_wal::kPageImage;
    rec.payload = engine_wal::EncodePageImage(id, page);
    st = wal_->Append(rec);
  });
  uint64_t commit_seq = 0;
  if (st.ok()) {
    engine_wal::CheckpointRecord cr;
    cr.next_page = static_cast<PageId>(durable_->capacity());
    cr.free_list = durable_->FreeList();
    cr.manifest = manifest_blob;
    commit_seq = ++wal_seq_;
    WalRecord rec;
    rec.seq = commit_seq;
    rec.type = engine_wal::kCheckpoint;
    rec.payload = engine_wal::EncodeCheckpoint(cr);
    st = wal_->Append(rec);
  }
  if (st.ok()) st = wal_->Sync();
  // 5. Fold the overlay into the file under a new superblock generation.
  //    Crash before the superblock lands: the old generation + the WAL
  //    records above reproduce this exact state. Crash after: the new
  //    generation IS this state, and replay skips the stale WAL by seq.
  if (st.ok()) {
    st = durable_->Commit(manifest_blob, commit_seq, manifest.epoch, clean);
  }
  // 6. The log's work is done.
  if (st.ok()) st = wal_->Truncate();
  if (!st.ok()) durability_error_ = st;
  return st;
}

Result<std::unique_ptr<ShardedPebEngine>> ShardedPebEngine::Open(
    const EngineOptions& options, const PolicyStore* store,
    const RoleRegistry* roles,
    std::shared_ptr<const EncodingSnapshot> snapshot) {
  const auto& dur = options.durability;
  if (dur.path.empty()) {
    return Status::InvalidArgument(
        "Open() requires EngineOptions::durability.path");
  }
  if (snapshot == nullptr) {
    return Status::InvalidArgument(
        "Open() requires the encoding snapshot the database was "
        "checkpointed under");
  }
  // 1. Reopen the page store (never truncates; rejects corrupt files).
  DiskHolder holder;
  FileDiskOptions fopts;
  fopts.use_mmap = dur.use_mmap;
  if (dur.fault_injector != nullptr) {
    PEB_ASSIGN_OR_RETURN(auto fd, FaultInjectingDiskManager::OpenExisting(
                                      dur.path, dur.fault_injector, fopts));
    holder.durable = fd.get();
    holder.disk = std::move(fd);
  } else {
    PEB_ASSIGN_OR_RETURN(auto fd,
                         FileDiskManager::OpenExisting(dur.path, fopts));
    holder.durable = fd.get();
    holder.disk = std::move(fd);
  }
  DurableDiskManager* durable = holder.durable;
  const bool unclean = !durable->clean_shutdown();

  // 2. The WAL's longest valid prefix (a torn tail parses as end-of-log:
  //    an incomplete batch was never acknowledged, so dropping it is the
  //    correct at-most-once outcome).
  PEB_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                       WriteAheadLog::ReadAll(dur.path + ".wal"));

  // 3. Adopt the newest complete checkpoint. Normally the superblock; a
  //    kCheckpoint record with a NEWER seq means a checkpoint journaled
  //    its pages but crashed before (or during) the fold — finish it from
  //    the WAL images. A kCheckpoint in the durable log always has its
  //    full image set before it (they were appended first, and torn tails
  //    only cut the end).
  std::string manifest_blob = durable->metadata();
  uint64_t ckpt_seq = durable->checkpoint_seq();
  ptrdiff_t last_ckpt = -1;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].type == engine_wal::kCheckpoint &&
        records[i].seq > ckpt_seq) {
      last_ckpt = static_cast<ptrdiff_t>(i);
    }
  }
  if (last_ckpt >= 0) {
    engine_wal::CheckpointRecord cr;
    PEB_RETURN_NOT_OK(engine_wal::DecodeCheckpoint(
        records[static_cast<size_t>(last_ckpt)].payload, &cr));
    PEB_RETURN_NOT_OK(
        durable->RestoreAllocationState(cr.next_page, cr.free_list));
    // This checkpoint's images are the contiguous kPageImage run right
    // before its commit record; they land in the overlay (the file itself
    // stays untouched until the re-checkpoint in step 7, so a crash HERE
    // replays this same recovery from the same bytes).
    size_t first_img = static_cast<size_t>(last_ckpt);
    while (first_img > 0 &&
           records[first_img - 1].type == engine_wal::kPageImage) {
      --first_img;
    }
    for (size_t i = first_img; i < static_cast<size_t>(last_ckpt); ++i) {
      PageId id = kInvalidPageId;
      Page page;
      PEB_RETURN_NOT_OK(
          engine_wal::DecodePageImage(records[i].payload, &id, &page));
      PEB_RETURN_NOT_OK(durable->Write(id, page));
    }
    manifest_blob = cr.manifest;
    ckpt_seq = records[static_cast<size_t>(last_ckpt)].seq;
  }

  // 4. Re-attach the shard trees from the manifest — no rebuild: the tree
  //    pages are already in the store, the manifest carries their roots.
  engine_wal::EngineManifest manifest;
  if (!manifest_blob.empty()) {
    PEB_RETURN_NOT_OK(engine_wal::DecodeManifest(manifest_blob, &manifest));
  }
  std::unique_ptr<ShardedPebEngine> engine(new ShardedPebEngine(
      std::move(holder), options, store, roles, snapshot, /*fresh=*/false));
  // Every error return below destroys a half-recovered engine. Disarm its
  // close checkpoint until recovery fully succeeds: with it armed, the
  // destructor would commit the partial (or empty) shard manifest as a new
  // clean generation and truncate the WAL — permanently losing whatever
  // was not yet replayed.
  engine->close_checkpoint_armed_ = false;
  PEB_RETURN_NOT_OK(engine->durability_status());
  if (!manifest.shards.empty()) {
    if (manifest.shards.size() != engine->shards_.size()) {
      return Status::InvalidArgument(
          "database was checkpointed with " +
          std::to_string(manifest.shards.size()) +
          " shards but the engine is configured for " +
          std::to_string(engine->shards_.size()));
    }
    if (manifest.epoch != snapshot->epoch()) {
      return Status::InvalidArgument(
          "database was checkpointed under encoding epoch " +
          std::to_string(manifest.epoch) + " but the caller's snapshot is " +
          std::to_string(snapshot->epoch()));
    }
    for (size_t s = 0; s < engine->shards_.size(); ++s) {
      const PebTreeManifest& m = manifest.shards[s];
      if (m.root == kInvalidPageId) continue;  // Checkpointed empty.
      Shard& shard = *engine->shards_[s];
      MutexLock lock(&shard.mu);
      PEB_RETURN_NOT_OK(shard.tree->AttachExisting(m));
    }
  }

  // 5. Replay the WAL suffix through the normal mutation paths (replay is
  //    not re-logged; the re-checkpoint below supersedes the log).
  engine->replaying_.store(true, std::memory_order_relaxed);
  uint64_t max_seq = ckpt_seq;
  Status replay_st;
  for (const WalRecord& rec : records) {
    if (rec.seq <= ckpt_seq) continue;
    max_seq = std::max(max_seq, rec.seq);
    if (rec.type == engine_wal::kEvents) {
      std::vector<engine_wal::LoggedOp> ops;
      replay_st = engine_wal::DecodeEvents(rec.payload, &ops);
      for (const engine_wal::LoggedOp& op : ops) {
        if (!replay_st.ok()) break;
        switch (op.kind) {
          case engine_wal::LoggedOp::kInsert:
            replay_st = engine->Insert(op.state);
            break;
          case engine_wal::LoggedOp::kUpdate:
            replay_st = engine->Update(op.state);
            break;
          case engine_wal::LoggedOp::kDelete:
            replay_st = engine->Delete(op.state.id);
            break;
        }
      }
    } else if (rec.type == engine_wal::kMerge) {
      replay_st = engine->MergeDeltas();
    } else if (rec.type == engine_wal::kRekey) {
      // Epoch barrier: records past it would need the post-adopt encoding,
      // and AdoptSnapshot checkpoints right after logging it — so a kRekey
      // still in the log means that checkpoint never committed, and the
      // log holds nothing replayable beyond this point.
      break;
    }
    // kPageImage / kCheckpoint with seq > ckpt_seq belong to a checkpoint
    // whose commit record never landed — dead weight, skipped.
    if (!replay_st.ok()) {
      return Status::Corruption("WAL replay failed at seq " +
                                std::to_string(rec.seq) + ": " +
                                replay_st.message());
    }
  }
  {
    MutexLock wal_lock(&engine->wal_mu_);
    for (const WalRecord& rec : records) {
      max_seq = std::max(max_seq, rec.seq);
    }
    engine->wal_seq_ = max_seq;
  }
  engine->replaying_.store(false, std::memory_order_relaxed);

  // 6. Deep validation after any unclean shutdown (and whenever the tree
  //    is configured paranoid). A non-empty log also counts as unclean:
  //    the writer died before its close checkpoint could truncate it.
  if (unclean || !records.empty() || options.tree.index.paranoid_checks) {
    PEB_RETURN_NOT_OK(engine->ValidateInvariants());
  }

  // 7. Re-checkpoint: folds the restored images + replayed mutations into
  //    the file and truncates the log. Until this call, recovery wrote
  //    NOTHING durable — a crash anywhere above re-runs byte-identical
  //    recovery (the double-crash test exercises exactly this). A clean
  //    shutdown with an empty log has nothing to fold: the file already
  //    IS the state, and skipping the commit keeps cold opens cheap.
  if (unclean || !records.empty()) {
    PEB_RETURN_NOT_OK(engine->Checkpoint());
  }
  engine->close_checkpoint_armed_ = true;
  return engine;
}

// ---------------------------------------------------------------------------
// Update path
// ---------------------------------------------------------------------------

bool ShardedPebEngine::PresentInShard(size_t idx, UserId id) const {
  const Shard& shard = *shards_[idx];
  // The shard mutex covers BOTH probes: a merge holds it across drain and
  // apply, so the verdict can never land in the drained-but-not-applied
  // window (see the lock-order note in the header).
  MutexLock lock(&shard.mu);
  ShardDelta::Record rec;
  // Under ingest_mu_ every buffered record is published — probe unbounded.
  if (deltas_[idx]->LatestVisible(id, ~uint64_t{0}, &rec)) {
    return !rec.tombstone;
  }
  return shard.tree->GetObject(id).ok();
}

void ShardedPebEngine::UpdateBacklogGauge() const {
  if (delta_backlog_ == nullptr) return;
  size_t total = 0;
  for (const auto& d : deltas_) total += d->records();
  delta_backlog_->Set(static_cast<int64_t>(total));
}

Status ShardedPebEngine::IngestOne(const MovingObject& state, bool tombstone,
                                   bool require_absent, bool require_present) {
  PEB_RETURN_NOT_OK(CheckDurable());
  const size_t idx = router_->ShardOf(state.id);
  telemetry::Inc(shard_instruments_[idx].updates);
  // Backpressure: the writer (never a query) absorbs the merge cost when
  // this shard's delta is at the hard cap.
  const size_t cap = options_.delta.hard_cap != 0
                         ? options_.delta.hard_cap
                         : options_.delta.merge_threshold * 8;
  if (deltas_[idx]->records() >= cap) {
    delta_backpressure_merges_.fetch_add(1, std::memory_order_relaxed);
    PEB_RETURN_NOT_OK(MergeShards({idx}));
  }
  {
    MutexLock ingest(&ingest_mu_);
    // Status parity with the tree ops the direct path would have run:
    // Insert -> AlreadyExists/InvalidArgument, Delete -> NotFound, Update
    // is an upsert bounded by the encoding.
    if (require_absent && PresentInShard(idx, state.id)) {
      return Status::AlreadyExists("object " + std::to_string(state.id) +
                                   " already indexed");
    }
    if (!tombstone && state.id >= num_users_) {
      return Status::InvalidArgument("object id outside the policy encoding");
    }
    if (require_present && !PresentInShard(idx, state.id)) {
      return Status::NotFound("object " + std::to_string(state.id));
    }
    const uint64_t seq = ++next_seq_;
    deltas_[idx]->Append(state, tombstone, seq);
    published_seq_.store(seq, std::memory_order_release);
    if (wal_ != nullptr) {
      // Journal inside the ingest section so WAL order matches publication
      // order. Failure poisons the engine; this op was applied in RAM but
      // reports an error, and no later mutation can commit past it.
      engine_wal::LoggedOp op;
      op.kind = tombstone ? engine_wal::LoggedOp::kDelete
                          : (require_absent ? engine_wal::LoggedOp::kInsert
                                            : engine_wal::LoggedOp::kUpdate);
      op.state = state;
      PEB_RETURN_NOT_OK(LogOps({op}));
    }
  }
  telemetry::Inc(delta_appends_);
  UpdateBacklogGauge();
  return MaybeMergeDeltas();
}

Status ShardedPebEngine::Insert(const MovingObject& object) {
  if (delta_on_) {
    return IngestOne(object, /*tombstone=*/false, /*require_absent=*/true,
                     /*require_present=*/false);
  }
  PEB_RETURN_NOT_OK(CheckDurable());
  WriterMutexLock state_lock(&state_mu_);
  size_t idx = router_->ShardOf(object.id);
  telemetry::Inc(shard_instruments_[idx].updates);
  Shard& s = *shards_[idx];
  {
    MutexLock lock(&s.mu);
    PEB_RETURN_NOT_OK(s.tree->Insert(object));
  }
  return LogOps({{engine_wal::LoggedOp::kInsert, object}});
}

Status ShardedPebEngine::Update(const MovingObject& object) {
  if (delta_on_) {
    return IngestOne(object, /*tombstone=*/false, /*require_absent=*/false,
                     /*require_present=*/false);
  }
  PEB_RETURN_NOT_OK(CheckDurable());
  WriterMutexLock state_lock(&state_mu_);
  size_t idx = router_->ShardOf(object.id);
  telemetry::Inc(shard_instruments_[idx].updates);
  Shard& s = *shards_[idx];
  {
    MutexLock lock(&s.mu);
    PEB_RETURN_NOT_OK(s.tree->Update(object));
  }
  return LogOps({{engine_wal::LoggedOp::kUpdate, object}});
}

Status ShardedPebEngine::Delete(UserId id) {
  if (delta_on_) {
    MovingObject tomb;
    tomb.id = id;
    return IngestOne(tomb, /*tombstone=*/true, /*require_absent=*/false,
                     /*require_present=*/true);
  }
  PEB_RETURN_NOT_OK(CheckDurable());
  WriterMutexLock state_lock(&state_mu_);
  size_t idx = router_->ShardOf(id);
  telemetry::Inc(shard_instruments_[idx].updates);
  Shard& s = *shards_[idx];
  {
    MutexLock lock(&s.mu);
    PEB_RETURN_NOT_OK(s.tree->Delete(id));
  }
  MovingObject tomb;
  tomb.id = id;
  return LogOps({{engine_wal::LoggedOp::kDelete, tomb}});
}

Status ShardedPebEngine::LoadDataset(const Dataset& dataset) {
  PEB_RETURN_NOT_OK(CheckDurable());
  WriterMutexLock state_lock(&state_mu_);
  std::vector<std::vector<const MovingObject*>> groups(shards_.size());
  for (const MovingObject& o : dataset.objects) {
    groups[router_->ShardOf(o.id)].push_back(&o);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    telemetry::Inc(shard_instruments_[s].updates, groups[s].size());
  }
  Status st = RouteAndApply(shards_, threads_, groups,
                            [](PebTree& tree, const MovingObject& o) {
                              return tree.Insert(o);
                            },
                            batch_lock_hold_ms_);
  if (st.ok() && options_.tree.index.paranoid_checks) st = ValidateLocked();
  // Bulk loads are not journaled event-by-event; a checkpoint makes the
  // loaded base state durable in one stroke instead.
  if (st.ok() && durable_ != nullptr &&
      !replaying_.load(std::memory_order_relaxed)) {
    st = CheckpointLocked(/*clean=*/false);
  }
  return st;
}

Status ShardedPebEngine::ApplyBatch(const std::vector<UpdateEvent>& events) {
  PEB_RETURN_NOT_OK(CheckDurable());
  if (delta_on_) {
    if (events.empty()) return Status::OK();
    // Pre-validate so the whole batch is rejected before anything is
    // published (the direct path stops the bad event's shard group
    // mid-application instead; error batches are outside the equivalence
    // contract — see the header).
    for (const UpdateEvent& ev : events) {
      if (ev.state.id >= num_users_) {
        return Status::InvalidArgument("object id outside the policy encoding");
      }
    }
    // Backpressure: merge any destination shard already at the hard cap
    // BEFORE appending — the writer stalls here, queries never do.
    const size_t cap = options_.delta.hard_cap != 0
                           ? options_.delta.hard_cap
                           : options_.delta.merge_threshold * 8;
    std::vector<size_t> over;
    for (size_t s = 0; s < deltas_.size(); ++s) {
      if (deltas_[s]->records() >= cap) over.push_back(s);
    }
    if (!over.empty()) {
      delta_backpressure_merges_.fetch_add(over.size(),
                                           std::memory_order_relaxed);
      PEB_RETURN_NOT_OK(MergeShards(over));
    }
    {
      MutexLock ingest(&ingest_mu_);
      // ONE seq for the whole batch: the release store below publishes it
      // atomically, so a query's pinned watermark sees all of it or none.
      const uint64_t seq = ++next_seq_;
      for (const UpdateEvent& ev : events) {
        const size_t idx = router_->ShardOf(ev.state.id);
        telemetry::Inc(shard_instruments_[idx].updates);
        deltas_[idx]->Append(ev.state, /*tombstone=*/false, seq);
      }
      published_seq_.store(seq, std::memory_order_release);
      if (wal_ != nullptr) {
        // One kEvents record per batch, journaled inside the ingest section
        // (WAL order = publication order); an OK return means the whole
        // batch is on disk once the sync below lands.
        std::vector<engine_wal::LoggedOp> ops;
        ops.reserve(events.size());
        for (const UpdateEvent& ev : events) {
          ops.push_back({engine_wal::LoggedOp::kUpdate, ev.state});
        }
        PEB_RETURN_NOT_OK(LogOps(ops));
      }
    }
    telemetry::Inc(delta_appends_, events.size());
    UpdateBacklogGauge();
    return MaybeMergeDeltas();
  }
  WriterMutexLock state_lock(&state_mu_);
  std::vector<std::vector<const UpdateEvent*>> groups(shards_.size());
  for (const UpdateEvent& ev : events) {
    groups[router_->ShardOf(ev.state.id)].push_back(&ev);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    telemetry::Inc(shard_instruments_[s].updates, groups[s].size());
  }
  Status st = RouteAndApply(shards_, threads_, groups,
                            [](PebTree& tree, const UpdateEvent& ev) {
                              return tree.Update(ev.state);
                            },
                            batch_lock_hold_ms_);
  // paranoid_checks: structural audit inside the batch's own exclusive
  // section, so a corrupting batch is caught before any query sees it.
  if (st.ok() && options_.tree.index.paranoid_checks) st = ValidateLocked();
  if (st.ok() && wal_ != nullptr) {
    std::vector<engine_wal::LoggedOp> ops;
    ops.reserve(events.size());
    for (const UpdateEvent& ev : events) {
      ops.push_back({engine_wal::LoggedOp::kUpdate, ev.state});
    }
    st = LogOps(ops);
  }
  return st;
}

// ---------------------------------------------------------------------------
// Delta merges
// ---------------------------------------------------------------------------

Status ShardedPebEngine::MergeShards(const std::vector<size_t>& which) {
  if (!delta_on_ || which.empty()) return Status::OK();
  WriterMutexLock state_lock(&state_mu_);
  return MergeShardsLocked(which);
}

Status ShardedPebEngine::MergeShardsLocked(const std::vector<size_t>& which) {
  if (!delta_on_ || which.empty()) return Status::OK();
  // Only PUBLISHED records drain: a batch mid-append (writers do not hold
  // the state lock) must not become visible through the tree before its
  // publication makes it visible through the delta.
  const uint64_t bound = published_seq_.load(std::memory_order_acquire);
  const bool paranoid = options_.tree.index.paranoid_checks;
  std::vector<Status> statuses(shards_.size());
  std::atomic<uint64_t> merged_total{0};
  std::vector<std::function<void()>> tasks;
  for (size_t s : which) {
    tasks.push_back([this, s, bound, paranoid, &statuses, &merged_total] {
      Shard& shard = *shards_[s];
      // The shard mutex spans drain AND apply, so presence probes (which
      // also hold it across both their probes) never see the window where
      // a record has left the delta but not yet reached the tree.
      MutexLock lock(&shard.mu);
      const auto locked_at = std::chrono::steady_clock::now();
      const auto drained = deltas_[s]->DrainUpTo(bound);
      Status st;
      for (const auto& [uid, rec] : drained) {
        if (rec.tombstone) {
          // Delete-if-present: the tombstoned user may only ever have
          // existed inside this delta (insert and delete both buffered).
          if (shard.tree->GetObject(uid).ok()) st = shard.tree->Delete(uid);
        } else {
          st = shard.tree->Update(rec.state);  // Upsert.
        }
        if (!st.ok()) break;
      }
      if (st.ok() && paranoid) {
        // Delta/tree agreement: a drained user with no newer buffered
        // record must now read back from the tree exactly as the delta
        // said — tombstoned users gone, updated users at their new state.
        ShardDelta::Record newer;
        for (const auto& [uid, rec] : drained) {
          if (deltas_[s]->LatestVisible(uid, ~uint64_t{0}, &newer)) continue;
          auto got = shard.tree->GetObject(uid);
          bool agree;
          if (rec.tombstone) {
            agree = !got.ok();
          } else {
            agree = got.ok() && (*got).pos.x == rec.state.pos.x &&
                    (*got).pos.y == rec.state.pos.y &&
                    (*got).vel.x == rec.state.vel.x &&
                    (*got).vel.y == rec.state.vel.y &&
                    (*got).tu == rec.state.tu;
          }
          if (!agree) {
            st = Status::Corruption(
                "delta merge left shard " + std::to_string(s) +
                " disagreeing with its tree about object " +
                std::to_string(uid));
            break;
          }
        }
      }
      statuses[s] = std::move(st);
      merged_total.fetch_add(drained.size(), std::memory_order_relaxed);
      telemetry::Observe(merge_lock_hold_ms_,
                         std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - locked_at)
                             .count());
    });
  }
  threads_.RunAll(std::move(tasks));
  for (Status& st : statuses) PEB_RETURN_NOT_OK(st);
  delta_merges_count_.fetch_add(which.size(), std::memory_order_relaxed);
  delta_merged_records_.fetch_add(merged_total.load(std::memory_order_relaxed),
                                  std::memory_order_relaxed);
  telemetry::Inc(delta_merges_, which.size());
  telemetry::Inc(delta_merged_records_counter_,
                 merged_total.load(std::memory_order_relaxed));
  UpdateBacklogGauge();
  if (options_.tree.index.paranoid_checks) PEB_RETURN_NOT_OK(ValidateLocked());
  // Advisory marker so replay merges at roughly the same points and the
  // recovered engine's delta/tree split converges to the original's.
  return LogMerge();
}

Status ShardedPebEngine::MaybeMergeDeltas() {
  std::vector<size_t> which;
  for (size_t s = 0; s < deltas_.size(); ++s) {
    if (deltas_[s]->records() >= options_.delta.merge_threshold) {
      which.push_back(s);
    }
  }
  return MergeShards(which);
}

Status ShardedPebEngine::MergeDeltas() {
  if (!delta_on_) return Status::OK();
  std::vector<size_t> which;
  for (size_t s = 0; s < deltas_.size(); ++s) {
    if (deltas_[s]->records() > 0) which.push_back(s);
  }
  return MergeShards(which);
}

ShardedPebEngine::DeltaStats ShardedPebEngine::delta_stats() const {
  DeltaStats out;
  for (const auto& d : deltas_) {
    const size_t n = d->records();
    out.buffered_records += n;
    out.max_shard_records = std::max(out.max_shard_records, n);
    out.appended_total += d->appended_total();
  }
  out.merges = delta_merges_count_.load(std::memory_order_relaxed);
  out.merged_records = delta_merged_records_.load(std::memory_order_relaxed);
  out.backpressure_merges =
      delta_backpressure_merges_.load(std::memory_order_relaxed);
  return out;
}

Status ShardedPebEngine::AdoptSnapshot(
    std::shared_ptr<const EncodingSnapshot> snapshot,
    const std::vector<UserId>* rekey) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("cannot adopt a null encoding snapshot");
  }
  PEB_RETURN_NOT_OK(CheckDurable());
  // One exclusive section swaps every shard AND applies every re-key:
  // queries (shared holders) observe either the old epoch with old keys or
  // the new epoch with new keys, never a mix — on any shard count.
  WriterMutexLock state_lock(&state_mu_);
  snapshot_ = snapshot;

  std::vector<std::vector<UserId>> groups(shards_.size());
  if (rekey != nullptr) {
    for (UserId uid : *rekey) {
      groups[router_->ShardOf(uid)].push_back(uid);
    }
  }
  std::vector<Status> statuses(shards_.size());
  std::vector<std::function<void()>> tasks;
  for (size_t s = 0; s < shards_.size(); ++s) {
    tasks.push_back([&, s] {
      Shard& shard = *shards_[s];
      MutexLock lock(&shard.mu);
      statuses[s] = shard.tree->AdoptSnapshot(
          snapshot, rekey == nullptr ? nullptr : &groups[s]);
    });
  }
  threads_.RunAll(std::move(tasks));
  for (Status& st : statuses) {
    if (!st.ok()) return st;
  }
  if (options_.tree.index.paranoid_checks) {
    PEB_RETURN_NOT_OK(ValidateLocked());
  }
  if (wal_ != nullptr && !replaying_.load(std::memory_order_relaxed)) {
    // Journal the epoch barrier, then checkpoint IMMEDIATELY: recovery
    // replays pre-adopt records against the pre-adopt encoding, so a
    // kRekey record must never have replayable records after it. The
    // checkpoint truncates the log right here, making an uncommitted
    // kRekey provably the WAL tail — replay stops when it sees one.
    {
      MutexLock wal_lock(&wal_mu_);
      PEB_RETURN_NOT_OK(durability_error_);
      WalRecord rec;
      rec.seq = ++wal_seq_;
      rec.type = engine_wal::kRekey;
      rec.payload = engine_wal::EncodeRekey(snapshot->epoch());
      Status st = wal_->Append(rec);
      if (st.ok()) st = wal_->Sync();
      if (!st.ok()) {
        durability_error_ = st;
        return st;
      }
    }
    PEB_RETURN_NOT_OK(CheckpointLocked(/*clean=*/false));
  }
  return Status::OK();
}

uint64_t ShardedPebEngine::encoding_epoch() const {
  ReaderMutexLock state_lock(&state_mu_);
  return snapshot_->epoch();
}

Status ShardedPebEngine::RunExclusive(const std::function<Status()>& fn) {
  WriterMutexLock state_lock(&state_mu_);
  return fn();
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

size_t ShardedPebEngine::SizeLocked() const {
  const uint64_t watermark =
      delta_on_ ? published_seq_.load(std::memory_order_acquire) : 0;
  size_t total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    MutexLock lock(&shard.mu);
    size_t n = shard.tree->size();
    if (delta_on_ && deltas_[s]->records() > 0) {
      // Authoritative logical size: a delta-only insert adds a user the
      // tree does not host yet; a tombstone of a tree-resident user
      // removes one. (The raw pointer keeps the guarded access out of the
      // lambda; shard.mu is held for its whole extent.)
      const PebTree* tree = shard.tree.get();
      deltas_[s]->ForEachLatestVisible(
          watermark, [&](UserId uid, const ShardDelta::Record& rec) {
            const bool in_tree = tree->GetObject(uid).ok();
            if (rec.tombstone && in_tree) --n;
            if (!rec.tombstone && !in_tree) ++n;
          });
    }
    total += n;
  }
  return total;
}

void ShardedPebEngine::OverlayFriends(
    std::vector<std::vector<FriendEntry>>* per_shard, uint64_t watermark,
    std::vector<DeltaCandidate>* out) const {
  uint64_t probes = 0;
  uint64_t shadowed = 0;
  for (size_t s = 0; s < per_shard->size(); ++s) {
    std::vector<FriendEntry>& friends = (*per_shard)[s];
    // records() AFTER the watermark acquire-load: the publishing release
    // store orders the counter increments, so an empty read really means
    // no visible records (newer invisible ones may still be missed —
    // fine, they are invisible anyway).
    if (friends.empty() || deltas_[s]->records() == 0) continue;
    size_t kept = 0;
    ShardDelta::Record rec;
    for (FriendEntry& f : friends) {
      ++probes;
      if (deltas_[s]->LatestVisible(f.uid, watermark, &rec)) {
        ++shadowed;
        // Shadowed: the delta answers for this friend. Tombstoned users
        // simply vanish from the query.
        if (!rec.tombstone) out->push_back({f.uid, rec.state});
      } else {
        // Keeping survivors in place preserves the encoding's ascending
        // (qsv, uid) order BuildRows requires.
        friends[kept++] = f;
      }
    }
    friends.resize(kept);
  }
  if (probes > 0) telemetry::Inc(delta_probes_, probes);
  if (shadowed > 0) telemetry::Inc(delta_shadowed_, shadowed);
}

size_t ShardedPebEngine::size() const {
  ReaderMutexLock state_lock(&state_mu_);
  return SizeLocked();
}

BufferPool* ShardedPebEngine::pool() { return &pool_; }

size_t ShardedPebEngine::buffer_frames_total() const {
  return pool_.capacity();
}

IoStats ShardedPebEngine::aggregate_io() const { return pool_.stats(); }

void ShardedPebEngine::ResetIo() { pool_.ResetStats(); }

std::vector<std::vector<FriendEntry>> ShardedPebEngine::PartitionFriends(
    UserId issuer) const {
  // Callers hold state_mu_ (shared suffices): snapshot_ is pinned for the
  // whole fanned-out query.
  std::vector<std::vector<FriendEntry>> per_shard(shards_.size());
  for (const FriendEntry& f : snapshot_->FriendsOf(issuer)) {
    per_shard[router_->ShardOf(f.uid)].push_back(f);
  }
  return per_shard;
}

void ShardedPebEngine::MergeCounters(const QueryCounters& shard_counters,
                                     QueryCounters* into) {
  into->candidates_examined += shard_counters.candidates_examined;
  into->results += shard_counters.results;
  into->range_probes += shard_counters.range_probes;
  into->rounds = std::max(into->rounds, shard_counters.rounds);
  into->seek_descents += shard_counters.seek_descents;
  into->leaf_hops += shard_counters.leaf_hops;
}

Result<std::vector<UserId>> ShardedPebEngine::RangeQueryWithStats(
    UserId issuer, const Rect& range, Timestamp tq, QueryStats* stats) {
  PEB_RETURN_NOT_OK(ValidateQueryRect(range));
  const bool collect = stats != nullptr;
  // Queries hold the engine state lock shared: parallel with each other,
  // atomic with respect to update batches AND snapshot adoption — the
  // epoch is pinned at admission.
  ReaderMutexLock state_lock(&state_mu_);
  if (issuer >= snapshot_->num_users()) {
    return UnknownIssuerError(issuer);
  }
  if (collect) stats->epoch = snapshot_->epoch();
  std::vector<std::vector<FriendEntry>> per_shard = PartitionFriends(issuer);
  // Delta overlay: friends with a visible delta record leave the tree
  // candidate lists and are answered from their delta state below, through
  // the same Definition-2 predicate the tree scans apply — so the answer
  // is bit-identical to direct apply at the same update prefix.
  std::vector<DeltaCandidate> delta_cands;
  if (delta_on_) {
    const uint64_t watermark = published_seq_.load(std::memory_order_acquire);
    OverlayFriends(&per_shard, watermark, &delta_cands);
  }
  SharedScanCache cache;  // One window decomposition for all shards.

  struct Slot {
    Status status;
    std::vector<UserId> ids;
    QueryCounters counters;
    IoStats io;
  };
  telemetry::TraceBuilder* trace = collect ? stats->trace : nullptr;
  const size_t trace_parent =
      collect ? stats->trace_span : telemetry::TraceSpan::kNoParent;
  std::vector<Slot> slots(shards_.size());
  std::vector<std::function<void()>> tasks;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    tasks.push_back([this, s, issuer, collect, trace, trace_parent, &range,
                     tq, &per_shard, &slots, &cache] {
      // Attribute this task's pool traffic to its own slot: exact
      // per-query I/O even while other queries run on the same pool.
      BufferPool::ThreadIoScope io_scope(collect ? &slots[s].io : nullptr);
      telemetry::Inc(shard_instruments_[s].queries);
      size_t span = telemetry::TraceSpan::kNoParent;
      if (trace != nullptr) {
        span = trace->StartSpan("shard " + std::to_string(s), trace_parent);
        trace->Annotate(span, "friends=" +
                                  std::to_string(per_shard[s].size()));
      }
      Shard& shard = *shards_[s];
      MutexLock lock(&shard.mu);
      // Counters land in this task's own slot (scan-local), so concurrent
      // queries touching the same shard tree never share observer state.
      auto r = shard.tree->RangeQueryAmong(issuer, range, tq, per_shard[s],
                                           &cache, &slots[s].counters);
      if (r.ok()) {
        slots[s].ids = std::move(*r);
      } else {
        slots[s].status = r.status();
      }
      if (trace != nullptr) {
        trace->AddStats(span, slots[s].counters, slots[s].io);
        trace->EndSpan(span);
      }
    });
  }
  threads_.RunAll(std::move(tasks));

  std::vector<UserId> merged;
  for (Slot& slot : slots) {
    PEB_RETURN_NOT_OK(slot.status);
    if (collect) {
      MergeCounters(slot.counters, &stats->counters);
      stats->io += slot.io;
    }
    merged.insert(merged.end(), slot.ids.begin(), slot.ids.end());
  }
  // Shadowed friends answer from their delta state: same acceptance test
  // as PebTree's candidate filter (window containment + Definition 2).
  for (const DeltaCandidate& c : delta_cands) {
    const Point pos = c.state.PositionAt(tq);
    if (range.Contains(pos) &&
        PebTree::VerifyAgainst(*store_, *roles_, options_.tree.time_domain,
                               issuer, c.uid, pos, tq)) {
      merged.push_back(c.uid);
    }
  }
  // Shards host disjoint user sets, so this is a disjoint union; the
  // interface promises ascending user id.
  std::sort(merged.begin(), merged.end());
  if (collect) stats->counters.results = merged.size();
  return merged;
}

Result<std::vector<Neighbor>> ShardedPebEngine::KnnQueryWithStats(
    UserId issuer, const Point& qloc, size_t k, Timestamp tq,
    QueryStats* stats) {
  PEB_RETURN_NOT_OK(ValidateQueryK(k));
  const bool collect = stats != nullptr;
  std::vector<Neighbor> verified;
  ReaderMutexLock state_lock(&state_mu_);
  if (issuer >= snapshot_->num_users()) {
    return UnknownIssuerError(issuer);
  }
  if (collect) stats->epoch = snapshot_->epoch();
  std::vector<std::vector<FriendEntry>> per_shard = PartitionFriends(issuer);

  // The engine drives the Figure-9 enlargement: every shard enlarges with
  // the same schedule (derived from GLOBAL workload state, so shard count
  // never changes the search geometry), scanning only its own friend rows.
  // On the incremental path the schedule starts at the cost model's
  // candidate-density seed radius; on the legacy path it is the
  // paper-literal Dk/k step.
  const bool incremental = options_.tree.index.incremental_knn;
  double rq;
  if (incremental) {
    size_t total_friends = 0;
    for (const auto& fl : per_shard) total_friends += fl.size();
    rq = KnnSeedRadiusFor(total_friends, SizeLocked(),
                          snapshot_->num_users(), k,
                          options_.tree.index.space_side);
  } else {
    rq = EstimateKnnDistanceFor(SizeLocked(), k,
                                options_.tree.index.space_side) /
         static_cast<double>(k);
  }
  // Delta overlay AFTER the seed radius: the schedule above already uses
  // the authoritative SizeLocked() and the PRE-overlay friend count, so a
  // delta engine and a direct-apply engine at the same update prefix run
  // the identical enlargement geometry. Shadowed friends are answered
  // exactly, from their delta state, before any scan runs — the same
  // verification and distance the tree's InsertVerified would compute.
  if (delta_on_) {
    const uint64_t watermark = published_seq_.load(std::memory_order_acquire);
    std::vector<DeltaCandidate> delta_cands;
    OverlayFriends(&per_shard, watermark, &delta_cands);
    for (const DeltaCandidate& c : delta_cands) {
      const Point pos = c.state.PositionAt(tq);
      if (PebTree::VerifyAgainst(*store_, *roles_, options_.tree.time_domain,
                                 issuer, c.uid, pos, tq)) {
        Neighbor nb{c.uid, pos.DistanceTo(qloc)};
        auto at = std::lower_bound(verified.begin(), verified.end(), nb,
                                   [](const Neighbor& a, const Neighbor& b) {
                                     return a.distance < b.distance;
                                   });
        verified.insert(at, nb);
      }
    }
  }
  SharedScanCache cache;  // One ring decomposition per round for all shards.

  struct Slot {
    std::optional<PebTree::KnnScan> scan;
    Status status;
    std::vector<Neighbor> fresh;
    IoStats io;
  };
  std::vector<Slot> slots(shards_.size());
  size_t max_diagonals = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    BufferPool::ThreadIoScope io_scope(collect ? &slots[s].io : nullptr);
    telemetry::Inc(shard_instruments_[s].queries);
    Shard& shard = *shards_[s];
    MutexLock lock(&shard.mu);
    slots[s].scan.emplace(
        shard.tree->NewKnnScan(issuer, qloc, tq, rq, per_shard[s], &cache));
    max_diagonals = std::max(max_diagonals, slots[s].scan->max_diagonals());
  }

  if (incremental) {
    // Streaming merge: ONE task per shard drives that shard's whole scan,
    // publishing each anti-diagonal's candidates into the shared verified
    // list as soon as they exist — no engine-wide per-round barrier, so a
    // shard whose friends sit near the query point finishes and frees its
    // worker while a sparse shard is still enlarging. Once k verified
    // candidates exist globally, a shard whose covered radius already
    // reaches the k-th distance RETIRES outright (its remaining annuli and
    // final vertical scan provably cannot beat any current top-k entry);
    // otherwise it stops enlarging and runs one vertical delta scan.
    // Retirement with the k-th distance of the moment stays correct when
    // later merges shrink it: unexamined users are farther than the
    // retirement-time bound, which only ever exceeds the final one.
    telemetry::TraceBuilder* trace = collect ? stats->trace : nullptr;
    const size_t trace_parent =
        collect ? stats->trace_span : telemetry::TraceSpan::kNoParent;
    Mutex merge_mu;
    std::vector<std::function<void()>> tasks;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (!slots[s].scan.has_value()) continue;
      tasks.push_back([this, s, k, collect, trace, trace_parent, &slots,
                       &verified, &merge_mu] {
        Slot& sl = slots[s];
        BufferPool::ThreadIoScope io_scope(collect ? &sl.io : nullptr);
        size_t shard_span = telemetry::TraceSpan::kNoParent;
        if (trace != nullptr) {
          shard_span =
              trace->StartSpan("shard " + std::to_string(s), trace_parent);
          trace->Annotate(
              shard_span, "runs=" + std::to_string(sl.scan->num_rows()));
        }
        Shard& shard = *shards_[s];
        const size_t nd = sl.scan->max_diagonals();
        // Per-round work a child span should be charged with: an inner
        // ThreadIoScope is innermost-wins, so it SUPPRESSES the slot scope
        // for its extent and the delta must be added back to sl.io by hand.
        auto scan_round = [&](const std::string& name, size_t d,
                              auto&& run) {
          size_t round_span = telemetry::TraceSpan::kNoParent;
          IoStats round_io;
          QueryCounters before;
          std::optional<BufferPool::ThreadIoScope> round_scope;
          if (trace != nullptr) {
            round_span = trace->StartSpan(name, shard_span);
            before = sl.scan->counters();
            round_scope.emplace(&round_io);
          }
          {
            MutexLock lock(&shard.mu);
            sl.status = run();
          }
          if (trace != nullptr) {
            round_scope.reset();
            sl.io += round_io;
            QueryCounters after = sl.scan->counters();
            QueryCounters delta;
            delta.candidates_examined =
                after.candidates_examined - before.candidates_examined;
            delta.results = after.results - before.results;
            delta.range_probes = after.range_probes - before.range_probes;
            delta.rounds = after.rounds - before.rounds;
            delta.seek_descents =
                after.seek_descents - before.seek_descents;
            delta.leaf_hops = after.leaf_hops - before.leaf_hops;
            trace->AddStats(round_span, delta, round_io);
            trace->Annotate(round_span,
                            "radius=" + std::to_string(
                                            sl.scan->RadiusForRound(d)));
            trace->EndSpan(round_span);
          }
        };
        auto close_shard_span = [&] {
          if (trace != nullptr) {
            trace->AddStats(shard_span, sl.scan->counters(), sl.io);
            trace->EndSpan(shard_span);
          }
        };
        for (size_t d = 0; d < nd; ++d) {
          if (sl.scan->AllFound()) break;
          double dk = 0.0;
          bool have_k = false;
          {
            MutexLock g(&merge_mu);
            if (verified.size() >= k) {
              have_k = true;
              dk = verified[k - 1].distance;
            }
          }
          // shard.mu is taken per scan step, not for the whole task:
          // other queries touching this shard interleave between rounds
          // exactly as they did between the legacy path's barriers.
          // (Mutations stay excluded for the whole query by state_mu_.)
          if (have_k) {
            // The global k-th distance bounds this shard's remaining work:
            // it retires here, after at most one closing vertical scan.
            telemetry::Inc(pknn_retirements_);
            if (d == 0 ||
                sl.scan->CoveredRadiusAfterDiagonal(d - 1) < dk) {
              sl.fresh.clear();
              scan_round("vertical", d, [&] {
                return sl.scan->VerticalScan(dk, &sl.fresh);
              });
              if (!sl.status.ok() || sl.fresh.empty()) break;
              MutexLock g(&merge_mu);
              KWayMergeByDistance({&sl.fresh}, &verified);
            }
            // Else retired outright: the covered radius already reaches
            // the global k-th distance, so even the vertical scan is moot.
            break;
          }
          sl.fresh.clear();
          telemetry::Inc(pknn_rounds_);
          scan_round("round " + std::to_string(d), d, [&] {
            return sl.scan->ScanDiagonal(d, &sl.fresh);
          });
          if (!sl.status.ok()) break;
          if (!sl.fresh.empty()) {
            MutexLock g(&merge_mu);
            KWayMergeByDistance({&sl.fresh}, &verified);
          }
        }
        // Every diagonal exhausted: the scan covered the whole space for
        // each run that still has unlocated users, so those users are
        // simply not hosted here — nothing left to rule out.
        close_shard_span();
      });
    }
    threads_.RunAll(std::move(tasks));
    for (Slot& slot : slots) {
      if (!slot.scan.has_value()) continue;
      PEB_RETURN_NOT_OK(slot.status);
    }
  } else {
    bool need_vertical = false;
    for (size_t d = 0; d < max_diagonals && !need_vertical; ++d) {
      std::vector<std::function<void()>> tasks;
      for (size_t s = 0; s < shards_.size(); ++s) {
        Slot& slot = slots[s];
        if (!slot.scan.has_value() || slot.scan->AllFound()) continue;
        if (d >= slot.scan->max_diagonals()) continue;
        tasks.push_back([this, s, d, collect, &slots] {
          Slot& sl = slots[s];
          BufferPool::ThreadIoScope io_scope(collect ? &sl.io : nullptr);
          telemetry::Inc(pknn_rounds_);
          Shard& shard = *shards_[s];
          MutexLock lock(&shard.mu);
          sl.status = sl.scan->ScanDiagonal(d, &sl.fresh);
        });
      }
      if (tasks.empty()) break;  // Every shard located all its friends.
      threads_.RunAll(std::move(tasks));

      std::vector<const std::vector<Neighbor>*> fresh_lists;
      for (Slot& slot : slots) {
        if (!slot.scan.has_value()) continue;
        PEB_RETURN_NOT_OK(slot.status);
        fresh_lists.push_back(&slot.fresh);
      }
      KWayMergeByDistance(std::move(fresh_lists), &verified);
      for (Slot& slot : slots) slot.fresh.clear();
      if (verified.size() >= k) need_vertical = true;
    }

    // Section 5.4's final step, fanned out: every shard with unlocated
    // friends scans the square bounded by the global k-th distance, ruling
    // out closer unexamined candidates. After this the merged list is
    // exact.
    if (need_vertical) {
      double dk = verified[k - 1].distance;
      std::vector<std::function<void()>> tasks;
      for (size_t s = 0; s < shards_.size(); ++s) {
        Slot& slot = slots[s];
        if (!slot.scan.has_value() || slot.scan->AllFound()) continue;
        tasks.push_back([this, s, dk, collect, &slots] {
          Slot& sl = slots[s];
          BufferPool::ThreadIoScope io_scope(collect ? &sl.io : nullptr);
          Shard& shard = *shards_[s];
          MutexLock lock(&shard.mu);
          sl.status = sl.scan->VerticalScan(dk, &sl.fresh);
        });
      }
      threads_.RunAll(std::move(tasks));
      std::vector<const std::vector<Neighbor>*> fresh_lists;
      for (Slot& slot : slots) {
        if (!slot.scan.has_value()) continue;
        PEB_RETURN_NOT_OK(slot.status);
        fresh_lists.push_back(&slot.fresh);
      }
      KWayMergeByDistance(std::move(fresh_lists), &verified);
    }
  }

  if (verified.size() > k) verified.resize(k);
  if (collect) {
    // Each scan owns its counters (never the shared tree slot) and each
    // task attributed its pool traffic to its own slot, so the merged
    // totals are exact even while other queries run concurrently. RunAll's
    // completion synchronizes the reads.
    for (Slot& slot : slots) {
      if (!slot.scan.has_value()) continue;
      MergeCounters(slot.scan->counters(), &stats->counters);
      stats->io += slot.io;
    }
    stats->counters.results = verified.size();
  }
  return verified;
}

Result<MovingObject> ShardedPebEngine::GetObject(UserId id) const {
  ReaderMutexLock state_lock(&state_mu_);
  const size_t idx = router_->ShardOf(id);
  const Shard& s = *shards_[idx];
  MutexLock lock(&s.mu);
  if (delta_on_) {
    const uint64_t watermark = published_seq_.load(std::memory_order_acquire);
    if (deltas_[idx]->records() > 0) {
      ShardDelta::Record rec;
      telemetry::Inc(delta_probes_);
      if (deltas_[idx]->LatestVisible(id, watermark, &rec)) {
        telemetry::Inc(delta_shadowed_);
        if (rec.tombstone) {
          return Status::NotFound("object " + std::to_string(id));
        }
        return rec.state;
      }
    }
  }
  return s.tree->GetObject(id);
}

// ---------------------------------------------------------------------------
// Structural validation
// ---------------------------------------------------------------------------

Status ShardedPebEngine::ValidateLocked() const {
  const uint64_t epoch = snapshot_ == nullptr ? 0 : snapshot_->epoch();
  size_t total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    MutexLock lock(&shard.mu);
    if (shard.tree->encoding_epoch() != epoch) {
      return Status::Corruption(
          "engine shard " + std::to_string(s) + " serves epoch " +
          std::to_string(shard.tree->encoding_epoch()) +
          " while the engine pins epoch " + std::to_string(epoch));
    }
    PEB_RETURN_NOT_OK(shard.tree->ValidateInvariants());
    Status routing = Status::OK();
    shard.tree->ForEachObject([&](UserId uid, const MovingObject&) {
      if (routing.ok() && router_->ShardOf(uid) != s) {
        routing = Status::Corruption(
            "user " + std::to_string(uid) + " hosted by shard " +
            std::to_string(s) + " but routed to shard " +
            std::to_string(router_->ShardOf(uid)));
      }
    });
    PEB_RETURN_NOT_OK(routing);
    if (delta_on_) {
      // Delta invariants: every buffered record routed here, in-bounds,
      // per-user seqs ascending, no tombstone chains, and a user whose
      // FIRST buffered record is a tombstone must still be tree-resident
      // (Delete only ever tombstones a then-present user, and merges drain
      // record prefixes atomically with the tree application).
      const PebTree* tree = shard.tree.get();
      Status delta_st = Status::OK();
      UserId prev_uid = kInvalidUserId;
      uint64_t prev_seq = 0;
      bool prev_tomb = false;
      deltas_[s]->ForEachRecord([&](UserId uid,
                                    const ShardDelta::Record& rec) {
        if (!delta_st.ok()) return;
        if (router_->ShardOf(uid) != s) {
          delta_st = Status::Corruption(
              "delta record for user " + std::to_string(uid) +
              " buffered by shard " + std::to_string(s) +
              " but routed to shard " +
              std::to_string(router_->ShardOf(uid)));
        } else if (uid >= num_users_) {
          delta_st = Status::Corruption(
              "delta record for user " + std::to_string(uid) +
              " outside the policy encoding");
        } else if (uid == prev_uid && rec.seq < prev_seq) {
          delta_st = Status::Corruption(
              "delta seqs not ascending for user " + std::to_string(uid));
        } else if (uid == prev_uid && rec.tombstone && prev_tomb) {
          delta_st = Status::Corruption(
              "consecutive tombstones buffered for user " +
              std::to_string(uid));
        } else if (uid != prev_uid && rec.tombstone &&
                   !tree->GetObject(uid).ok()) {
          delta_st = Status::Corruption(
              "leading tombstone for user " + std::to_string(uid) +
              " who is not hosted by shard " + std::to_string(s) +
              "'s tree");
        }
        prev_uid = uid;
        prev_seq = rec.seq;
        prev_tomb = rec.tombstone;
      });
      PEB_RETURN_NOT_OK(delta_st);
    }
    total += shard.tree->size();
  }
  if (!delta_on_ && total != SizeLocked()) {
    // With delta ingestion on, writers may publish between the two reads —
    // logical-size exactness is covered by the merge-time agreement checks
    // and the oracle equivalence tests instead.
    return Status::Corruption("engine size drifted during validation");
  }
  return pool_.ValidateInvariants();
}

Status ShardedPebEngine::ValidateInvariants() const {
  ReaderMutexLock state_lock(&state_mu_);
  return ValidateLocked();
}

}  // namespace engine
}  // namespace peb
