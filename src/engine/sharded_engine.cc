#include "engine/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <queue>
#include <utility>

#include "telemetry/trace.h"

namespace peb {
namespace engine {

namespace {

/// K-way merge by (distance, uid) of per-shard candidate lists — each
/// already ascending by distance — into the engine's running verified
/// list (kept ascending by distance).
void KWayMergeByDistance(std::vector<const std::vector<Neighbor>*> lists,
                         std::vector<Neighbor>* into) {
  struct Head {
    size_t list;
    size_t pos;
  };
  auto head_less = [&lists](const Head& a, const Head& b) {
    const Neighbor& na = (*lists[a.list])[a.pos];
    const Neighbor& nb = (*lists[b.list])[b.pos];
    if (na.distance != nb.distance) return na.distance > nb.distance;
    return na.uid > nb.uid;  // Min-heap: invert.
  };
  std::priority_queue<Head, std::vector<Head>, decltype(head_less)> heap(
      head_less);
  size_t total = 0;
  for (size_t l = 0; l < lists.size(); ++l) {
    total += lists[l]->size();
    if (!lists[l]->empty()) heap.push({l, 0});
  }
  if (total == 0) return;
  std::vector<Neighbor> merged;
  merged.reserve(total);
  while (!heap.empty()) {
    Head h = heap.top();
    heap.pop();
    merged.push_back((*lists[h.list])[h.pos]);
    if (h.pos + 1 < lists[h.list]->size()) heap.push({h.list, h.pos + 1});
  }
  size_t mid = into->size();
  into->insert(into->end(), merged.begin(), merged.end());
  std::inplace_merge(into->begin(), into->begin() + mid, into->end(),
                     [](const Neighbor& a, const Neighbor& b) {
                       return a.distance < b.distance;
                     });
}

/// Shared shape of LoadDataset and ApplyBatch: items already grouped by
/// home shard are applied in order on one worker task per shard, stopping
/// a shard's task at its first error. `lock_hold_ms` (when non-null)
/// observes how long each shard task held its shard mutex — the interval
/// concurrent queries on that shard were blocked for.
template <typename ShardPtr, typename Item, typename Apply>
Status RouteAndApply(std::vector<ShardPtr>& shards, ThreadPool& threads,
                     const std::vector<std::vector<const Item*>>& groups,
                     const Apply& apply,
                     telemetry::Histogram* lock_hold_ms) {
  std::vector<Status> statuses(shards.size());
  std::vector<std::function<void()>> tasks;
  for (size_t s = 0; s < shards.size(); ++s) {
    if (groups[s].empty()) continue;
    tasks.push_back([&, s] {
      auto& shard = *shards[s];
      MutexLock lock(&shard.mu);
      auto locked_at = std::chrono::steady_clock::now();
      for (const Item* item : groups[s]) {
        Status st = apply(*shard.tree, *item);
        if (!st.ok()) {
          statuses[s] = std::move(st);
          break;
        }
      }
      telemetry::Observe(lock_hold_ms,
                         std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - locked_at)
                             .count());
    });
  }
  threads.RunAll(std::move(tasks));
  for (Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace

ShardedPebEngine::ShardedPebEngine(
    const EngineOptions& options, const PolicyStore* store,
    const RoleRegistry* roles,
    std::shared_ptr<const EncodingSnapshot> snapshot)
    : options_(options),
      snapshot_(std::move(snapshot)),
      router_(MakeRouter(options.router,
                         options.num_shards == 0 ? 1 : options.num_shards,
                         snapshot_)),
      store_(store),
      roles_(roles),
      num_users_(snapshot_ == nullptr ? 0 : snapshot_->num_users()),
      pool_(&disk_,
            BufferPoolOptions{options.buffer_pages, options.pool_shards}),
      threads_(options.num_threads),
      delta_on_(options.tree.index.delta_ingest) {
  size_t n = router_->num_shards();
  shards_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->tree = std::make_unique<PebTree>(&pool_, options_.tree, store,
                                            roles, snapshot_);
    shards_.push_back(std::move(shard));
  }
  if (delta_on_) {
    deltas_.reserve(n);
    for (size_t s = 0; s < n; ++s) {
      deltas_.push_back(std::make_unique<ShardDelta>());
    }
  }
  // Instruments resolve eagerly here (not lazily on first use), so a
  // disconnected record site shows up as a registered-but-zero instrument
  // — which CI's bench-smoke gate fails on.
  shard_instruments_.resize(n);
  if (options_.telemetry.enabled) {
    registry_ = options_.telemetry.registry != nullptr
                    ? options_.telemetry.registry
                    : telemetry::MetricsRegistry::Default();
    for (size_t s = 0; s < n; ++s) {
      std::string prefix = "engine.shard" + std::to_string(s);
      shard_instruments_[s].queries = registry_->counter(prefix + ".queries");
      shard_instruments_[s].updates = registry_->counter(prefix + ".updates");
    }
    pknn_rounds_ = registry_->counter("engine.pknn.rounds");
    pknn_retirements_ = registry_->counter("engine.pknn.retirements");
    batch_lock_hold_ms_ = registry_->histogram("engine.batch.lock_hold_ms");
    if (delta_on_) {
      delta_appends_ = registry_->counter("engine.delta.appends");
      delta_probes_ = registry_->counter("engine.delta.probes");
      delta_shadowed_ = registry_->counter("engine.delta.shadowed");
      delta_merges_ = registry_->counter("engine.delta.merges");
      delta_merged_records_counter_ =
          registry_->counter("engine.delta.merged_records");
      merge_lock_hold_ms_ = registry_->histogram("engine.merge.lock_hold_ms");
      delta_backlog_ = registry_->gauge("engine.delta.backlog");
    }
    pool_collector_token_ = registry_->RegisterCollector([this] {
      std::vector<telemetry::MetricsRegistry::Sample> out;
      for (size_t i = 0; i < pool_.num_shards(); ++i) {
        IoStats st = pool_.ShardStats(i);
        std::string p = "pool.shard" + std::to_string(i) + ".";
        out.emplace_back(p + "logical_fetches",
                         static_cast<double>(st.logical_fetches));
        out.emplace_back(p + "cache_hits",
                         static_cast<double>(st.cache_hits));
        out.emplace_back(p + "physical_reads",
                         static_cast<double>(st.physical_reads));
        out.emplace_back(p + "evictions",
                         static_cast<double>(st.evictions));
        out.emplace_back(p + "prefetch_reads",
                         static_cast<double>(st.prefetch_reads));
      }
      return out;
    });
  }
  if (delta_on_ && options_.delta.background_merge_period_ms > 0) {
    merger_ = std::thread([this] {
      const auto period =
          std::chrono::milliseconds(options_.delta.background_merge_period_ms);
      for (;;) {
        {
          MutexLock lock(&merger_mu_);
          merger_cv_.wait_for(merger_mu_, period, [this]() {
            merger_mu_.AssertHeld();
            return merger_stop_;
          });
          if (merger_stop_) break;
        }
        // Drain every non-empty delta: across writer idle gaps this is the
        // only trigger, and it keeps query-side read amplification low.
        // Merge errors surface through paranoid foreground merges and
        // ValidateInvariants; the thread itself has nobody to report to.
        (void)MergeDeltas();
      }
    });
  }
}

ShardedPebEngine::~ShardedPebEngine() {
  if (merger_.joinable()) {
    {
      MutexLock lock(&merger_mu_);
      merger_stop_ = true;
    }
    merger_cv_.notify_all();
    merger_.join();
  }
  if (registry_ != nullptr && pool_collector_token_ != 0) {
    registry_->UnregisterCollector(pool_collector_token_);
  }
}

// ---------------------------------------------------------------------------
// Update path
// ---------------------------------------------------------------------------

bool ShardedPebEngine::PresentInShard(size_t idx, UserId id) const {
  const Shard& shard = *shards_[idx];
  // The shard mutex covers BOTH probes: a merge holds it across drain and
  // apply, so the verdict can never land in the drained-but-not-applied
  // window (see the lock-order note in the header).
  MutexLock lock(&shard.mu);
  ShardDelta::Record rec;
  // Under ingest_mu_ every buffered record is published — probe unbounded.
  if (deltas_[idx]->LatestVisible(id, ~uint64_t{0}, &rec)) {
    return !rec.tombstone;
  }
  return shard.tree->GetObject(id).ok();
}

void ShardedPebEngine::UpdateBacklogGauge() const {
  if (delta_backlog_ == nullptr) return;
  size_t total = 0;
  for (const auto& d : deltas_) total += d->records();
  delta_backlog_->Set(static_cast<int64_t>(total));
}

Status ShardedPebEngine::IngestOne(const MovingObject& state, bool tombstone,
                                   bool require_absent, bool require_present) {
  const size_t idx = router_->ShardOf(state.id);
  telemetry::Inc(shard_instruments_[idx].updates);
  // Backpressure: the writer (never a query) absorbs the merge cost when
  // this shard's delta is at the hard cap.
  const size_t cap = options_.delta.hard_cap != 0
                         ? options_.delta.hard_cap
                         : options_.delta.merge_threshold * 8;
  if (deltas_[idx]->records() >= cap) {
    delta_backpressure_merges_.fetch_add(1, std::memory_order_relaxed);
    PEB_RETURN_NOT_OK(MergeShards({idx}));
  }
  {
    MutexLock ingest(&ingest_mu_);
    // Status parity with the tree ops the direct path would have run:
    // Insert -> AlreadyExists/InvalidArgument, Delete -> NotFound, Update
    // is an upsert bounded by the encoding.
    if (require_absent && PresentInShard(idx, state.id)) {
      return Status::AlreadyExists("object " + std::to_string(state.id) +
                                   " already indexed");
    }
    if (!tombstone && state.id >= num_users_) {
      return Status::InvalidArgument("object id outside the policy encoding");
    }
    if (require_present && !PresentInShard(idx, state.id)) {
      return Status::NotFound("object " + std::to_string(state.id));
    }
    const uint64_t seq = ++next_seq_;
    deltas_[idx]->Append(state, tombstone, seq);
    published_seq_.store(seq, std::memory_order_release);
  }
  telemetry::Inc(delta_appends_);
  UpdateBacklogGauge();
  return MaybeMergeDeltas();
}

Status ShardedPebEngine::Insert(const MovingObject& object) {
  if (delta_on_) {
    return IngestOne(object, /*tombstone=*/false, /*require_absent=*/true,
                     /*require_present=*/false);
  }
  WriterMutexLock state_lock(&state_mu_);
  size_t idx = router_->ShardOf(object.id);
  telemetry::Inc(shard_instruments_[idx].updates);
  Shard& s = *shards_[idx];
  MutexLock lock(&s.mu);
  return s.tree->Insert(object);
}

Status ShardedPebEngine::Update(const MovingObject& object) {
  if (delta_on_) {
    return IngestOne(object, /*tombstone=*/false, /*require_absent=*/false,
                     /*require_present=*/false);
  }
  WriterMutexLock state_lock(&state_mu_);
  size_t idx = router_->ShardOf(object.id);
  telemetry::Inc(shard_instruments_[idx].updates);
  Shard& s = *shards_[idx];
  MutexLock lock(&s.mu);
  return s.tree->Update(object);
}

Status ShardedPebEngine::Delete(UserId id) {
  if (delta_on_) {
    MovingObject tomb;
    tomb.id = id;
    return IngestOne(tomb, /*tombstone=*/true, /*require_absent=*/false,
                     /*require_present=*/true);
  }
  WriterMutexLock state_lock(&state_mu_);
  size_t idx = router_->ShardOf(id);
  telemetry::Inc(shard_instruments_[idx].updates);
  Shard& s = *shards_[idx];
  MutexLock lock(&s.mu);
  return s.tree->Delete(id);
}

Status ShardedPebEngine::LoadDataset(const Dataset& dataset) {
  WriterMutexLock state_lock(&state_mu_);
  std::vector<std::vector<const MovingObject*>> groups(shards_.size());
  for (const MovingObject& o : dataset.objects) {
    groups[router_->ShardOf(o.id)].push_back(&o);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    telemetry::Inc(shard_instruments_[s].updates, groups[s].size());
  }
  Status st = RouteAndApply(shards_, threads_, groups,
                            [](PebTree& tree, const MovingObject& o) {
                              return tree.Insert(o);
                            },
                            batch_lock_hold_ms_);
  if (st.ok() && options_.tree.index.paranoid_checks) st = ValidateLocked();
  return st;
}

Status ShardedPebEngine::ApplyBatch(const std::vector<UpdateEvent>& events) {
  if (delta_on_) {
    if (events.empty()) return Status::OK();
    // Pre-validate so the whole batch is rejected before anything is
    // published (the direct path stops the bad event's shard group
    // mid-application instead; error batches are outside the equivalence
    // contract — see the header).
    for (const UpdateEvent& ev : events) {
      if (ev.state.id >= num_users_) {
        return Status::InvalidArgument("object id outside the policy encoding");
      }
    }
    // Backpressure: merge any destination shard already at the hard cap
    // BEFORE appending — the writer stalls here, queries never do.
    const size_t cap = options_.delta.hard_cap != 0
                           ? options_.delta.hard_cap
                           : options_.delta.merge_threshold * 8;
    std::vector<size_t> over;
    for (size_t s = 0; s < deltas_.size(); ++s) {
      if (deltas_[s]->records() >= cap) over.push_back(s);
    }
    if (!over.empty()) {
      delta_backpressure_merges_.fetch_add(over.size(),
                                           std::memory_order_relaxed);
      PEB_RETURN_NOT_OK(MergeShards(over));
    }
    {
      MutexLock ingest(&ingest_mu_);
      // ONE seq for the whole batch: the release store below publishes it
      // atomically, so a query's pinned watermark sees all of it or none.
      const uint64_t seq = ++next_seq_;
      for (const UpdateEvent& ev : events) {
        const size_t idx = router_->ShardOf(ev.state.id);
        telemetry::Inc(shard_instruments_[idx].updates);
        deltas_[idx]->Append(ev.state, /*tombstone=*/false, seq);
      }
      published_seq_.store(seq, std::memory_order_release);
    }
    telemetry::Inc(delta_appends_, events.size());
    UpdateBacklogGauge();
    return MaybeMergeDeltas();
  }
  WriterMutexLock state_lock(&state_mu_);
  std::vector<std::vector<const UpdateEvent*>> groups(shards_.size());
  for (const UpdateEvent& ev : events) {
    groups[router_->ShardOf(ev.state.id)].push_back(&ev);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    telemetry::Inc(shard_instruments_[s].updates, groups[s].size());
  }
  Status st = RouteAndApply(shards_, threads_, groups,
                            [](PebTree& tree, const UpdateEvent& ev) {
                              return tree.Update(ev.state);
                            },
                            batch_lock_hold_ms_);
  // paranoid_checks: structural audit inside the batch's own exclusive
  // section, so a corrupting batch is caught before any query sees it.
  if (st.ok() && options_.tree.index.paranoid_checks) st = ValidateLocked();
  return st;
}

// ---------------------------------------------------------------------------
// Delta merges
// ---------------------------------------------------------------------------

Status ShardedPebEngine::MergeShards(const std::vector<size_t>& which) {
  if (!delta_on_ || which.empty()) return Status::OK();
  WriterMutexLock state_lock(&state_mu_);
  // Only PUBLISHED records drain: a batch mid-append (writers do not hold
  // the state lock) must not become visible through the tree before its
  // publication makes it visible through the delta.
  const uint64_t bound = published_seq_.load(std::memory_order_acquire);
  const bool paranoid = options_.tree.index.paranoid_checks;
  std::vector<Status> statuses(shards_.size());
  std::atomic<uint64_t> merged_total{0};
  std::vector<std::function<void()>> tasks;
  for (size_t s : which) {
    tasks.push_back([this, s, bound, paranoid, &statuses, &merged_total] {
      Shard& shard = *shards_[s];
      // The shard mutex spans drain AND apply, so presence probes (which
      // also hold it across both their probes) never see the window where
      // a record has left the delta but not yet reached the tree.
      MutexLock lock(&shard.mu);
      const auto locked_at = std::chrono::steady_clock::now();
      const auto drained = deltas_[s]->DrainUpTo(bound);
      Status st;
      for (const auto& [uid, rec] : drained) {
        if (rec.tombstone) {
          // Delete-if-present: the tombstoned user may only ever have
          // existed inside this delta (insert and delete both buffered).
          if (shard.tree->GetObject(uid).ok()) st = shard.tree->Delete(uid);
        } else {
          st = shard.tree->Update(rec.state);  // Upsert.
        }
        if (!st.ok()) break;
      }
      if (st.ok() && paranoid) {
        // Delta/tree agreement: a drained user with no newer buffered
        // record must now read back from the tree exactly as the delta
        // said — tombstoned users gone, updated users at their new state.
        ShardDelta::Record newer;
        for (const auto& [uid, rec] : drained) {
          if (deltas_[s]->LatestVisible(uid, ~uint64_t{0}, &newer)) continue;
          auto got = shard.tree->GetObject(uid);
          bool agree;
          if (rec.tombstone) {
            agree = !got.ok();
          } else {
            agree = got.ok() && (*got).pos.x == rec.state.pos.x &&
                    (*got).pos.y == rec.state.pos.y &&
                    (*got).vel.x == rec.state.vel.x &&
                    (*got).vel.y == rec.state.vel.y &&
                    (*got).tu == rec.state.tu;
          }
          if (!agree) {
            st = Status::Corruption(
                "delta merge left shard " + std::to_string(s) +
                " disagreeing with its tree about object " +
                std::to_string(uid));
            break;
          }
        }
      }
      statuses[s] = std::move(st);
      merged_total.fetch_add(drained.size(), std::memory_order_relaxed);
      telemetry::Observe(merge_lock_hold_ms_,
                         std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - locked_at)
                             .count());
    });
  }
  threads_.RunAll(std::move(tasks));
  for (Status& st : statuses) PEB_RETURN_NOT_OK(st);
  delta_merges_count_.fetch_add(which.size(), std::memory_order_relaxed);
  delta_merged_records_.fetch_add(merged_total.load(std::memory_order_relaxed),
                                  std::memory_order_relaxed);
  telemetry::Inc(delta_merges_, which.size());
  telemetry::Inc(delta_merged_records_counter_,
                 merged_total.load(std::memory_order_relaxed));
  UpdateBacklogGauge();
  if (options_.tree.index.paranoid_checks) return ValidateLocked();
  return Status::OK();
}

Status ShardedPebEngine::MaybeMergeDeltas() {
  std::vector<size_t> which;
  for (size_t s = 0; s < deltas_.size(); ++s) {
    if (deltas_[s]->records() >= options_.delta.merge_threshold) {
      which.push_back(s);
    }
  }
  return MergeShards(which);
}

Status ShardedPebEngine::MergeDeltas() {
  if (!delta_on_) return Status::OK();
  std::vector<size_t> which;
  for (size_t s = 0; s < deltas_.size(); ++s) {
    if (deltas_[s]->records() > 0) which.push_back(s);
  }
  return MergeShards(which);
}

ShardedPebEngine::DeltaStats ShardedPebEngine::delta_stats() const {
  DeltaStats out;
  for (const auto& d : deltas_) {
    const size_t n = d->records();
    out.buffered_records += n;
    out.max_shard_records = std::max(out.max_shard_records, n);
    out.appended_total += d->appended_total();
  }
  out.merges = delta_merges_count_.load(std::memory_order_relaxed);
  out.merged_records = delta_merged_records_.load(std::memory_order_relaxed);
  out.backpressure_merges =
      delta_backpressure_merges_.load(std::memory_order_relaxed);
  return out;
}

Status ShardedPebEngine::AdoptSnapshot(
    std::shared_ptr<const EncodingSnapshot> snapshot,
    const std::vector<UserId>* rekey) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("cannot adopt a null encoding snapshot");
  }
  // One exclusive section swaps every shard AND applies every re-key:
  // queries (shared holders) observe either the old epoch with old keys or
  // the new epoch with new keys, never a mix — on any shard count.
  WriterMutexLock state_lock(&state_mu_);
  snapshot_ = snapshot;

  std::vector<std::vector<UserId>> groups(shards_.size());
  if (rekey != nullptr) {
    for (UserId uid : *rekey) {
      groups[router_->ShardOf(uid)].push_back(uid);
    }
  }
  std::vector<Status> statuses(shards_.size());
  std::vector<std::function<void()>> tasks;
  for (size_t s = 0; s < shards_.size(); ++s) {
    tasks.push_back([&, s] {
      Shard& shard = *shards_[s];
      MutexLock lock(&shard.mu);
      statuses[s] = shard.tree->AdoptSnapshot(
          snapshot, rekey == nullptr ? nullptr : &groups[s]);
    });
  }
  threads_.RunAll(std::move(tasks));
  for (Status& st : statuses) {
    if (!st.ok()) return st;
  }
  if (options_.tree.index.paranoid_checks) return ValidateLocked();
  return Status::OK();
}

uint64_t ShardedPebEngine::encoding_epoch() const {
  ReaderMutexLock state_lock(&state_mu_);
  return snapshot_->epoch();
}

Status ShardedPebEngine::RunExclusive(const std::function<Status()>& fn) {
  WriterMutexLock state_lock(&state_mu_);
  return fn();
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

size_t ShardedPebEngine::SizeLocked() const {
  const uint64_t watermark =
      delta_on_ ? published_seq_.load(std::memory_order_acquire) : 0;
  size_t total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    MutexLock lock(&shard.mu);
    size_t n = shard.tree->size();
    if (delta_on_ && deltas_[s]->records() > 0) {
      // Authoritative logical size: a delta-only insert adds a user the
      // tree does not host yet; a tombstone of a tree-resident user
      // removes one. (The raw pointer keeps the guarded access out of the
      // lambda; shard.mu is held for its whole extent.)
      const PebTree* tree = shard.tree.get();
      deltas_[s]->ForEachLatestVisible(
          watermark, [&](UserId uid, const ShardDelta::Record& rec) {
            const bool in_tree = tree->GetObject(uid).ok();
            if (rec.tombstone && in_tree) --n;
            if (!rec.tombstone && !in_tree) ++n;
          });
    }
    total += n;
  }
  return total;
}

void ShardedPebEngine::OverlayFriends(
    std::vector<std::vector<FriendEntry>>* per_shard, uint64_t watermark,
    std::vector<DeltaCandidate>* out) const {
  uint64_t probes = 0;
  uint64_t shadowed = 0;
  for (size_t s = 0; s < per_shard->size(); ++s) {
    std::vector<FriendEntry>& friends = (*per_shard)[s];
    // records() AFTER the watermark acquire-load: the publishing release
    // store orders the counter increments, so an empty read really means
    // no visible records (newer invisible ones may still be missed —
    // fine, they are invisible anyway).
    if (friends.empty() || deltas_[s]->records() == 0) continue;
    size_t kept = 0;
    ShardDelta::Record rec;
    for (FriendEntry& f : friends) {
      ++probes;
      if (deltas_[s]->LatestVisible(f.uid, watermark, &rec)) {
        ++shadowed;
        // Shadowed: the delta answers for this friend. Tombstoned users
        // simply vanish from the query.
        if (!rec.tombstone) out->push_back({f.uid, rec.state});
      } else {
        // Keeping survivors in place preserves the encoding's ascending
        // (qsv, uid) order BuildRows requires.
        friends[kept++] = f;
      }
    }
    friends.resize(kept);
  }
  if (probes > 0) telemetry::Inc(delta_probes_, probes);
  if (shadowed > 0) telemetry::Inc(delta_shadowed_, shadowed);
}

size_t ShardedPebEngine::size() const {
  ReaderMutexLock state_lock(&state_mu_);
  return SizeLocked();
}

BufferPool* ShardedPebEngine::pool() { return &pool_; }

size_t ShardedPebEngine::buffer_frames_total() const {
  return pool_.capacity();
}

IoStats ShardedPebEngine::aggregate_io() const { return pool_.stats(); }

void ShardedPebEngine::ResetIo() { pool_.ResetStats(); }

std::vector<std::vector<FriendEntry>> ShardedPebEngine::PartitionFriends(
    UserId issuer) const {
  // Callers hold state_mu_ (shared suffices): snapshot_ is pinned for the
  // whole fanned-out query.
  std::vector<std::vector<FriendEntry>> per_shard(shards_.size());
  for (const FriendEntry& f : snapshot_->FriendsOf(issuer)) {
    per_shard[router_->ShardOf(f.uid)].push_back(f);
  }
  return per_shard;
}

void ShardedPebEngine::MergeCounters(const QueryCounters& shard_counters,
                                     QueryCounters* into) {
  into->candidates_examined += shard_counters.candidates_examined;
  into->results += shard_counters.results;
  into->range_probes += shard_counters.range_probes;
  into->rounds = std::max(into->rounds, shard_counters.rounds);
  into->seek_descents += shard_counters.seek_descents;
  into->leaf_hops += shard_counters.leaf_hops;
}

Result<std::vector<UserId>> ShardedPebEngine::RangeQueryWithStats(
    UserId issuer, const Rect& range, Timestamp tq, QueryStats* stats) {
  PEB_RETURN_NOT_OK(ValidateQueryRect(range));
  const bool collect = stats != nullptr;
  // Queries hold the engine state lock shared: parallel with each other,
  // atomic with respect to update batches AND snapshot adoption — the
  // epoch is pinned at admission.
  ReaderMutexLock state_lock(&state_mu_);
  if (issuer >= snapshot_->num_users()) {
    return UnknownIssuerError(issuer);
  }
  if (collect) stats->epoch = snapshot_->epoch();
  std::vector<std::vector<FriendEntry>> per_shard = PartitionFriends(issuer);
  // Delta overlay: friends with a visible delta record leave the tree
  // candidate lists and are answered from their delta state below, through
  // the same Definition-2 predicate the tree scans apply — so the answer
  // is bit-identical to direct apply at the same update prefix.
  std::vector<DeltaCandidate> delta_cands;
  if (delta_on_) {
    const uint64_t watermark = published_seq_.load(std::memory_order_acquire);
    OverlayFriends(&per_shard, watermark, &delta_cands);
  }
  SharedScanCache cache;  // One window decomposition for all shards.

  struct Slot {
    Status status;
    std::vector<UserId> ids;
    QueryCounters counters;
    IoStats io;
  };
  telemetry::TraceBuilder* trace = collect ? stats->trace : nullptr;
  const size_t trace_parent =
      collect ? stats->trace_span : telemetry::TraceSpan::kNoParent;
  std::vector<Slot> slots(shards_.size());
  std::vector<std::function<void()>> tasks;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    tasks.push_back([this, s, issuer, collect, trace, trace_parent, &range,
                     tq, &per_shard, &slots, &cache] {
      // Attribute this task's pool traffic to its own slot: exact
      // per-query I/O even while other queries run on the same pool.
      BufferPool::ThreadIoScope io_scope(collect ? &slots[s].io : nullptr);
      telemetry::Inc(shard_instruments_[s].queries);
      size_t span = telemetry::TraceSpan::kNoParent;
      if (trace != nullptr) {
        span = trace->StartSpan("shard " + std::to_string(s), trace_parent);
        trace->Annotate(span, "friends=" +
                                  std::to_string(per_shard[s].size()));
      }
      Shard& shard = *shards_[s];
      MutexLock lock(&shard.mu);
      // Counters land in this task's own slot (scan-local), so concurrent
      // queries touching the same shard tree never share observer state.
      auto r = shard.tree->RangeQueryAmong(issuer, range, tq, per_shard[s],
                                           &cache, &slots[s].counters);
      if (r.ok()) {
        slots[s].ids = std::move(*r);
      } else {
        slots[s].status = r.status();
      }
      if (trace != nullptr) {
        trace->AddStats(span, slots[s].counters, slots[s].io);
        trace->EndSpan(span);
      }
    });
  }
  threads_.RunAll(std::move(tasks));

  std::vector<UserId> merged;
  for (Slot& slot : slots) {
    PEB_RETURN_NOT_OK(slot.status);
    if (collect) {
      MergeCounters(slot.counters, &stats->counters);
      stats->io += slot.io;
    }
    merged.insert(merged.end(), slot.ids.begin(), slot.ids.end());
  }
  // Shadowed friends answer from their delta state: same acceptance test
  // as PebTree's candidate filter (window containment + Definition 2).
  for (const DeltaCandidate& c : delta_cands) {
    const Point pos = c.state.PositionAt(tq);
    if (range.Contains(pos) &&
        PebTree::VerifyAgainst(*store_, *roles_, options_.tree.time_domain,
                               issuer, c.uid, pos, tq)) {
      merged.push_back(c.uid);
    }
  }
  // Shards host disjoint user sets, so this is a disjoint union; the
  // interface promises ascending user id.
  std::sort(merged.begin(), merged.end());
  if (collect) stats->counters.results = merged.size();
  return merged;
}

Result<std::vector<Neighbor>> ShardedPebEngine::KnnQueryWithStats(
    UserId issuer, const Point& qloc, size_t k, Timestamp tq,
    QueryStats* stats) {
  PEB_RETURN_NOT_OK(ValidateQueryK(k));
  const bool collect = stats != nullptr;
  std::vector<Neighbor> verified;
  ReaderMutexLock state_lock(&state_mu_);
  if (issuer >= snapshot_->num_users()) {
    return UnknownIssuerError(issuer);
  }
  if (collect) stats->epoch = snapshot_->epoch();
  std::vector<std::vector<FriendEntry>> per_shard = PartitionFriends(issuer);

  // The engine drives the Figure-9 enlargement: every shard enlarges with
  // the same schedule (derived from GLOBAL workload state, so shard count
  // never changes the search geometry), scanning only its own friend rows.
  // On the incremental path the schedule starts at the cost model's
  // candidate-density seed radius; on the legacy path it is the
  // paper-literal Dk/k step.
  const bool incremental = options_.tree.index.incremental_knn;
  double rq;
  if (incremental) {
    size_t total_friends = 0;
    for (const auto& fl : per_shard) total_friends += fl.size();
    rq = KnnSeedRadiusFor(total_friends, SizeLocked(),
                          snapshot_->num_users(), k,
                          options_.tree.index.space_side);
  } else {
    rq = EstimateKnnDistanceFor(SizeLocked(), k,
                                options_.tree.index.space_side) /
         static_cast<double>(k);
  }
  // Delta overlay AFTER the seed radius: the schedule above already uses
  // the authoritative SizeLocked() and the PRE-overlay friend count, so a
  // delta engine and a direct-apply engine at the same update prefix run
  // the identical enlargement geometry. Shadowed friends are answered
  // exactly, from their delta state, before any scan runs — the same
  // verification and distance the tree's InsertVerified would compute.
  if (delta_on_) {
    const uint64_t watermark = published_seq_.load(std::memory_order_acquire);
    std::vector<DeltaCandidate> delta_cands;
    OverlayFriends(&per_shard, watermark, &delta_cands);
    for (const DeltaCandidate& c : delta_cands) {
      const Point pos = c.state.PositionAt(tq);
      if (PebTree::VerifyAgainst(*store_, *roles_, options_.tree.time_domain,
                                 issuer, c.uid, pos, tq)) {
        Neighbor nb{c.uid, pos.DistanceTo(qloc)};
        auto at = std::lower_bound(verified.begin(), verified.end(), nb,
                                   [](const Neighbor& a, const Neighbor& b) {
                                     return a.distance < b.distance;
                                   });
        verified.insert(at, nb);
      }
    }
  }
  SharedScanCache cache;  // One ring decomposition per round for all shards.

  struct Slot {
    std::optional<PebTree::KnnScan> scan;
    Status status;
    std::vector<Neighbor> fresh;
    IoStats io;
  };
  std::vector<Slot> slots(shards_.size());
  size_t max_diagonals = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    BufferPool::ThreadIoScope io_scope(collect ? &slots[s].io : nullptr);
    telemetry::Inc(shard_instruments_[s].queries);
    Shard& shard = *shards_[s];
    MutexLock lock(&shard.mu);
    slots[s].scan.emplace(
        shard.tree->NewKnnScan(issuer, qloc, tq, rq, per_shard[s], &cache));
    max_diagonals = std::max(max_diagonals, slots[s].scan->max_diagonals());
  }

  if (incremental) {
    // Streaming merge: ONE task per shard drives that shard's whole scan,
    // publishing each anti-diagonal's candidates into the shared verified
    // list as soon as they exist — no engine-wide per-round barrier, so a
    // shard whose friends sit near the query point finishes and frees its
    // worker while a sparse shard is still enlarging. Once k verified
    // candidates exist globally, a shard whose covered radius already
    // reaches the k-th distance RETIRES outright (its remaining annuli and
    // final vertical scan provably cannot beat any current top-k entry);
    // otherwise it stops enlarging and runs one vertical delta scan.
    // Retirement with the k-th distance of the moment stays correct when
    // later merges shrink it: unexamined users are farther than the
    // retirement-time bound, which only ever exceeds the final one.
    telemetry::TraceBuilder* trace = collect ? stats->trace : nullptr;
    const size_t trace_parent =
        collect ? stats->trace_span : telemetry::TraceSpan::kNoParent;
    Mutex merge_mu;
    std::vector<std::function<void()>> tasks;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (!slots[s].scan.has_value()) continue;
      tasks.push_back([this, s, k, collect, trace, trace_parent, &slots,
                       &verified, &merge_mu] {
        Slot& sl = slots[s];
        BufferPool::ThreadIoScope io_scope(collect ? &sl.io : nullptr);
        size_t shard_span = telemetry::TraceSpan::kNoParent;
        if (trace != nullptr) {
          shard_span =
              trace->StartSpan("shard " + std::to_string(s), trace_parent);
          trace->Annotate(
              shard_span, "runs=" + std::to_string(sl.scan->num_rows()));
        }
        Shard& shard = *shards_[s];
        const size_t nd = sl.scan->max_diagonals();
        // Per-round work a child span should be charged with: an inner
        // ThreadIoScope is innermost-wins, so it SUPPRESSES the slot scope
        // for its extent and the delta must be added back to sl.io by hand.
        auto scan_round = [&](const std::string& name, size_t d,
                              auto&& run) {
          size_t round_span = telemetry::TraceSpan::kNoParent;
          IoStats round_io;
          QueryCounters before;
          std::optional<BufferPool::ThreadIoScope> round_scope;
          if (trace != nullptr) {
            round_span = trace->StartSpan(name, shard_span);
            before = sl.scan->counters();
            round_scope.emplace(&round_io);
          }
          {
            MutexLock lock(&shard.mu);
            sl.status = run();
          }
          if (trace != nullptr) {
            round_scope.reset();
            sl.io += round_io;
            QueryCounters after = sl.scan->counters();
            QueryCounters delta;
            delta.candidates_examined =
                after.candidates_examined - before.candidates_examined;
            delta.results = after.results - before.results;
            delta.range_probes = after.range_probes - before.range_probes;
            delta.rounds = after.rounds - before.rounds;
            delta.seek_descents =
                after.seek_descents - before.seek_descents;
            delta.leaf_hops = after.leaf_hops - before.leaf_hops;
            trace->AddStats(round_span, delta, round_io);
            trace->Annotate(round_span,
                            "radius=" + std::to_string(
                                            sl.scan->RadiusForRound(d)));
            trace->EndSpan(round_span);
          }
        };
        auto close_shard_span = [&] {
          if (trace != nullptr) {
            trace->AddStats(shard_span, sl.scan->counters(), sl.io);
            trace->EndSpan(shard_span);
          }
        };
        for (size_t d = 0; d < nd; ++d) {
          if (sl.scan->AllFound()) break;
          double dk = 0.0;
          bool have_k = false;
          {
            MutexLock g(&merge_mu);
            if (verified.size() >= k) {
              have_k = true;
              dk = verified[k - 1].distance;
            }
          }
          // shard.mu is taken per scan step, not for the whole task:
          // other queries touching this shard interleave between rounds
          // exactly as they did between the legacy path's barriers.
          // (Mutations stay excluded for the whole query by state_mu_.)
          if (have_k) {
            // The global k-th distance bounds this shard's remaining work:
            // it retires here, after at most one closing vertical scan.
            telemetry::Inc(pknn_retirements_);
            if (d == 0 ||
                sl.scan->CoveredRadiusAfterDiagonal(d - 1) < dk) {
              sl.fresh.clear();
              scan_round("vertical", d, [&] {
                return sl.scan->VerticalScan(dk, &sl.fresh);
              });
              if (!sl.status.ok() || sl.fresh.empty()) break;
              MutexLock g(&merge_mu);
              KWayMergeByDistance({&sl.fresh}, &verified);
            }
            // Else retired outright: the covered radius already reaches
            // the global k-th distance, so even the vertical scan is moot.
            break;
          }
          sl.fresh.clear();
          telemetry::Inc(pknn_rounds_);
          scan_round("round " + std::to_string(d), d, [&] {
            return sl.scan->ScanDiagonal(d, &sl.fresh);
          });
          if (!sl.status.ok()) break;
          if (!sl.fresh.empty()) {
            MutexLock g(&merge_mu);
            KWayMergeByDistance({&sl.fresh}, &verified);
          }
        }
        // Every diagonal exhausted: the scan covered the whole space for
        // each run that still has unlocated users, so those users are
        // simply not hosted here — nothing left to rule out.
        close_shard_span();
      });
    }
    threads_.RunAll(std::move(tasks));
    for (Slot& slot : slots) {
      if (!slot.scan.has_value()) continue;
      PEB_RETURN_NOT_OK(slot.status);
    }
  } else {
    bool need_vertical = false;
    for (size_t d = 0; d < max_diagonals && !need_vertical; ++d) {
      std::vector<std::function<void()>> tasks;
      for (size_t s = 0; s < shards_.size(); ++s) {
        Slot& slot = slots[s];
        if (!slot.scan.has_value() || slot.scan->AllFound()) continue;
        if (d >= slot.scan->max_diagonals()) continue;
        tasks.push_back([this, s, d, collect, &slots] {
          Slot& sl = slots[s];
          BufferPool::ThreadIoScope io_scope(collect ? &sl.io : nullptr);
          telemetry::Inc(pknn_rounds_);
          Shard& shard = *shards_[s];
          MutexLock lock(&shard.mu);
          sl.status = sl.scan->ScanDiagonal(d, &sl.fresh);
        });
      }
      if (tasks.empty()) break;  // Every shard located all its friends.
      threads_.RunAll(std::move(tasks));

      std::vector<const std::vector<Neighbor>*> fresh_lists;
      for (Slot& slot : slots) {
        if (!slot.scan.has_value()) continue;
        PEB_RETURN_NOT_OK(slot.status);
        fresh_lists.push_back(&slot.fresh);
      }
      KWayMergeByDistance(std::move(fresh_lists), &verified);
      for (Slot& slot : slots) slot.fresh.clear();
      if (verified.size() >= k) need_vertical = true;
    }

    // Section 5.4's final step, fanned out: every shard with unlocated
    // friends scans the square bounded by the global k-th distance, ruling
    // out closer unexamined candidates. After this the merged list is
    // exact.
    if (need_vertical) {
      double dk = verified[k - 1].distance;
      std::vector<std::function<void()>> tasks;
      for (size_t s = 0; s < shards_.size(); ++s) {
        Slot& slot = slots[s];
        if (!slot.scan.has_value() || slot.scan->AllFound()) continue;
        tasks.push_back([this, s, dk, collect, &slots] {
          Slot& sl = slots[s];
          BufferPool::ThreadIoScope io_scope(collect ? &sl.io : nullptr);
          Shard& shard = *shards_[s];
          MutexLock lock(&shard.mu);
          sl.status = sl.scan->VerticalScan(dk, &sl.fresh);
        });
      }
      threads_.RunAll(std::move(tasks));
      std::vector<const std::vector<Neighbor>*> fresh_lists;
      for (Slot& slot : slots) {
        if (!slot.scan.has_value()) continue;
        PEB_RETURN_NOT_OK(slot.status);
        fresh_lists.push_back(&slot.fresh);
      }
      KWayMergeByDistance(std::move(fresh_lists), &verified);
    }
  }

  if (verified.size() > k) verified.resize(k);
  if (collect) {
    // Each scan owns its counters (never the shared tree slot) and each
    // task attributed its pool traffic to its own slot, so the merged
    // totals are exact even while other queries run concurrently. RunAll's
    // completion synchronizes the reads.
    for (Slot& slot : slots) {
      if (!slot.scan.has_value()) continue;
      MergeCounters(slot.scan->counters(), &stats->counters);
      stats->io += slot.io;
    }
    stats->counters.results = verified.size();
  }
  return verified;
}

Result<MovingObject> ShardedPebEngine::GetObject(UserId id) const {
  ReaderMutexLock state_lock(&state_mu_);
  const size_t idx = router_->ShardOf(id);
  const Shard& s = *shards_[idx];
  MutexLock lock(&s.mu);
  if (delta_on_) {
    const uint64_t watermark = published_seq_.load(std::memory_order_acquire);
    if (deltas_[idx]->records() > 0) {
      ShardDelta::Record rec;
      telemetry::Inc(delta_probes_);
      if (deltas_[idx]->LatestVisible(id, watermark, &rec)) {
        telemetry::Inc(delta_shadowed_);
        if (rec.tombstone) {
          return Status::NotFound("object " + std::to_string(id));
        }
        return rec.state;
      }
    }
  }
  return s.tree->GetObject(id);
}

// ---------------------------------------------------------------------------
// Structural validation
// ---------------------------------------------------------------------------

Status ShardedPebEngine::ValidateLocked() const {
  const uint64_t epoch = snapshot_ == nullptr ? 0 : snapshot_->epoch();
  size_t total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    MutexLock lock(&shard.mu);
    if (shard.tree->encoding_epoch() != epoch) {
      return Status::Corruption(
          "engine shard " + std::to_string(s) + " serves epoch " +
          std::to_string(shard.tree->encoding_epoch()) +
          " while the engine pins epoch " + std::to_string(epoch));
    }
    PEB_RETURN_NOT_OK(shard.tree->ValidateInvariants());
    Status routing = Status::OK();
    shard.tree->ForEachObject([&](UserId uid, const MovingObject&) {
      if (routing.ok() && router_->ShardOf(uid) != s) {
        routing = Status::Corruption(
            "user " + std::to_string(uid) + " hosted by shard " +
            std::to_string(s) + " but routed to shard " +
            std::to_string(router_->ShardOf(uid)));
      }
    });
    PEB_RETURN_NOT_OK(routing);
    if (delta_on_) {
      // Delta invariants: every buffered record routed here, in-bounds,
      // per-user seqs ascending, no tombstone chains, and a user whose
      // FIRST buffered record is a tombstone must still be tree-resident
      // (Delete only ever tombstones a then-present user, and merges drain
      // record prefixes atomically with the tree application).
      const PebTree* tree = shard.tree.get();
      Status delta_st = Status::OK();
      UserId prev_uid = kInvalidUserId;
      uint64_t prev_seq = 0;
      bool prev_tomb = false;
      deltas_[s]->ForEachRecord([&](UserId uid,
                                    const ShardDelta::Record& rec) {
        if (!delta_st.ok()) return;
        if (router_->ShardOf(uid) != s) {
          delta_st = Status::Corruption(
              "delta record for user " + std::to_string(uid) +
              " buffered by shard " + std::to_string(s) +
              " but routed to shard " +
              std::to_string(router_->ShardOf(uid)));
        } else if (uid >= num_users_) {
          delta_st = Status::Corruption(
              "delta record for user " + std::to_string(uid) +
              " outside the policy encoding");
        } else if (uid == prev_uid && rec.seq < prev_seq) {
          delta_st = Status::Corruption(
              "delta seqs not ascending for user " + std::to_string(uid));
        } else if (uid == prev_uid && rec.tombstone && prev_tomb) {
          delta_st = Status::Corruption(
              "consecutive tombstones buffered for user " +
              std::to_string(uid));
        } else if (uid != prev_uid && rec.tombstone &&
                   !tree->GetObject(uid).ok()) {
          delta_st = Status::Corruption(
              "leading tombstone for user " + std::to_string(uid) +
              " who is not hosted by shard " + std::to_string(s) +
              "'s tree");
        }
        prev_uid = uid;
        prev_seq = rec.seq;
        prev_tomb = rec.tombstone;
      });
      PEB_RETURN_NOT_OK(delta_st);
    }
    total += shard.tree->size();
  }
  if (!delta_on_ && total != SizeLocked()) {
    // With delta ingestion on, writers may publish between the two reads —
    // logical-size exactness is covered by the merge-time agreement checks
    // and the oracle equivalence tests instead.
    return Status::Corruption("engine size drifted during validation");
  }
  return pool_.ValidateInvariants();
}

Status ShardedPebEngine::ValidateInvariants() const {
  ReaderMutexLock state_lock(&state_mu_);
  return ValidateLocked();
}

}  // namespace engine
}  // namespace peb
