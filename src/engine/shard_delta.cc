#include "engine/shard_delta.h"

#include <algorithm>

namespace peb {
namespace engine {

void ShardDelta::Append(const MovingObject& state, bool tombstone,
                        uint64_t seq) {
  MutexLock lock(&mu_);
  Record rec;
  rec.state = state;
  rec.seq = seq;
  rec.tombstone = tombstone;
  log_[state.id].push_back(rec);
  records_.fetch_add(1, std::memory_order_relaxed);
  appended_total_.fetch_add(1, std::memory_order_relaxed);
}

const ShardDelta::Record* ShardDelta::LatestIn(const std::vector<Record>& log,
                                               uint64_t watermark) {
  // Logs ascend by seq, and the visible prefix is usually the whole log —
  // scan from the back.
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    if (it->seq <= watermark) return &*it;
  }
  return nullptr;
}

bool ShardDelta::LatestVisible(UserId uid, uint64_t watermark,
                               Record* out) const {
  MutexLock lock(&mu_);
  auto it = log_.find(uid);
  if (it == log_.end()) return false;
  const Record* latest = LatestIn(it->second, watermark);
  if (latest == nullptr) return false;
  *out = *latest;
  return true;
}

std::vector<std::pair<UserId, ShardDelta::Record>> ShardDelta::DrainUpTo(
    uint64_t bound) {
  MutexLock lock(&mu_);
  std::vector<std::pair<UserId, Record>> drained;
  size_t removed = 0;
  for (auto it = log_.begin(); it != log_.end();) {
    std::vector<Record>& log = it->second;
    // The drained records are a prefix (logs ascend by seq).
    size_t keep_from = 0;
    while (keep_from < log.size() && log[keep_from].seq <= bound) {
      ++keep_from;
    }
    if (keep_from == 0) {
      ++it;
      continue;
    }
    drained.emplace_back(it->first, log[keep_from - 1]);
    removed += keep_from;
    if (keep_from == log.size()) {
      it = log_.erase(it);
    } else {
      log.erase(log.begin(), log.begin() + static_cast<ptrdiff_t>(keep_from));
      ++it;
    }
  }
  records_.fetch_sub(removed, std::memory_order_relaxed);
  std::sort(drained.begin(), drained.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return drained;
}

}  // namespace engine
}  // namespace peb
