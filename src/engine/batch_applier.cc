#include "engine/batch_applier.h"

#include <vector>

namespace peb {
namespace engine {

Status BatchUpdateApplier::Apply(size_t count) {
  // A zero batch size would never drain anything; treat it as 1.
  const size_t batch_size =
      options_.batch_size == 0 ? 1 : options_.batch_size;
  std::vector<UpdateEvent> batch;
  while (count > 0) {
    size_t n = count < batch_size ? count : batch_size;
    batch.clear();
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(stream_->Next());
    }
    PEB_RETURN_NOT_OK(engine_->ApplyBatch(batch));
    events_applied_ += n;
    batches_applied_++;
    last_event_time_ = batch.back().t;
    if (options_.on_batch) options_.on_batch(batch);
    count -= n;
  }
  return Status::OK();
}

}  // namespace engine
}  // namespace peb
