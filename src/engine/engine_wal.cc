#include "engine/engine_wal.h"

#include <cstring>

namespace peb::engine_wal {

namespace {

template <typename T>
void Put(std::string* out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool Get(const std::string& in, size_t* off, T* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (*off + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *off, sizeof(T));
  *off += sizeof(T);
  return true;
}

Status Truncated(const char* what) {
  return Status::Corruption(std::string("truncated WAL payload: ") + what);
}

}  // namespace

std::string EncodeEvents(const std::vector<LoggedOp>& ops) {
  std::string out;
  out.reserve(4 + ops.size() * 46);
  Put<uint32_t>(&out, static_cast<uint32_t>(ops.size()));
  for (const LoggedOp& op : ops) {
    Put<uint8_t>(&out, op.kind);
    Put<uint32_t>(&out, op.state.id);
    Put<double>(&out, op.state.pos.x);
    Put<double>(&out, op.state.pos.y);
    Put<double>(&out, op.state.vel.x);
    Put<double>(&out, op.state.vel.y);
    Put<double>(&out, op.state.tu);
  }
  return out;
}

Status DecodeEvents(const std::string& payload, std::vector<LoggedOp>* out) {
  size_t off = 0;
  uint32_t count = 0;
  if (!Get(payload, &off, &count)) return Truncated("event count");
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    LoggedOp op;
    uint8_t kind = 0;
    if (!Get(payload, &off, &kind) || !Get(payload, &off, &op.state.id) ||
        !Get(payload, &off, &op.state.pos.x) ||
        !Get(payload, &off, &op.state.pos.y) ||
        !Get(payload, &off, &op.state.vel.x) ||
        !Get(payload, &off, &op.state.vel.y) ||
        !Get(payload, &off, &op.state.tu)) {
      return Truncated("event");
    }
    if (kind > LoggedOp::kDelete) {
      return Status::Corruption("unknown logged-op kind " +
                                std::to_string(kind));
    }
    op.kind = static_cast<LoggedOp::Kind>(kind);
    out->push_back(op);
  }
  if (off != payload.size()) return Truncated("trailing event bytes");
  return Status::OK();
}

std::string EncodeRekey(uint64_t epoch) {
  std::string out;
  Put<uint64_t>(&out, epoch);
  return out;
}

Status DecodeRekey(const std::string& payload, uint64_t* epoch) {
  size_t off = 0;
  if (!Get(payload, &off, epoch) || off != payload.size()) {
    return Truncated("rekey epoch");
  }
  return Status::OK();
}

std::string EncodePageImage(PageId id, const Page& page) {
  std::string out;
  out.reserve(4 + kPageSize);
  Put<uint32_t>(&out, id);
  out.append(reinterpret_cast<const char*>(page.data()), kPageSize);
  return out;
}

Status DecodePageImage(const std::string& payload, PageId* id, Page* page) {
  if (payload.size() != 4 + kPageSize) return Truncated("page image");
  size_t off = 0;
  Get(payload, &off, id);
  std::memcpy(page->data(), payload.data() + 4, kPageSize);
  return Status::OK();
}

std::string EncodeManifest(const EngineManifest& manifest) {
  std::string out;
  Put<uint64_t>(&out, manifest.epoch);
  Put<uint32_t>(&out, static_cast<uint32_t>(manifest.shards.size()));
  for (const PebTreeManifest& m : manifest.shards) {
    Put<uint32_t>(&out, m.root);
    Put<uint64_t>(&out, static_cast<uint64_t>(m.stats.num_entries));
    Put<uint64_t>(&out, static_cast<uint64_t>(m.stats.num_leaves));
    Put<uint64_t>(&out, static_cast<uint64_t>(m.stats.num_internals));
    Put<uint64_t>(&out, static_cast<uint64_t>(m.stats.height));
  }
  return out;
}

Status DecodeManifest(const std::string& payload, EngineManifest* out) {
  size_t off = 0;
  uint32_t count = 0;
  if (!Get(payload, &off, &out->epoch) || !Get(payload, &off, &count)) {
    return Truncated("manifest header");
  }
  out->shards.clear();
  out->shards.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PebTreeManifest m;
    uint64_t entries = 0, leaves = 0, internals = 0, height = 0;
    if (!Get(payload, &off, &m.root) || !Get(payload, &off, &entries) ||
        !Get(payload, &off, &leaves) || !Get(payload, &off, &internals) ||
        !Get(payload, &off, &height)) {
      return Truncated("shard manifest");
    }
    m.stats.num_entries = static_cast<size_t>(entries);
    m.stats.num_leaves = static_cast<size_t>(leaves);
    m.stats.num_internals = static_cast<size_t>(internals);
    m.stats.height = static_cast<size_t>(height);
    out->shards.push_back(m);
  }
  if (off != payload.size()) return Truncated("trailing manifest bytes");
  return Status::OK();
}

std::string EncodeCheckpoint(const CheckpointRecord& record) {
  std::string out;
  Put<uint32_t>(&out, record.next_page);
  Put<uint32_t>(&out, static_cast<uint32_t>(record.free_list.size()));
  for (PageId id : record.free_list) Put<uint32_t>(&out, id);
  Put<uint32_t>(&out, static_cast<uint32_t>(record.manifest.size()));
  out.append(record.manifest);
  return out;
}

Status DecodeCheckpoint(const std::string& payload, CheckpointRecord* out) {
  size_t off = 0;
  uint32_t free_count = 0, manifest_len = 0;
  if (!Get(payload, &off, &out->next_page) ||
      !Get(payload, &off, &free_count)) {
    return Truncated("checkpoint header");
  }
  out->free_list.clear();
  out->free_list.reserve(free_count);
  for (uint32_t i = 0; i < free_count; ++i) {
    PageId id = 0;
    if (!Get(payload, &off, &id)) return Truncated("checkpoint free list");
    out->free_list.push_back(id);
  }
  if (!Get(payload, &off, &manifest_len) ||
      off + manifest_len != payload.size()) {
    return Truncated("checkpoint manifest");
  }
  out->manifest.assign(payload, off, manifest_len);
  return Status::OK();
}

}  // namespace peb::engine_wal
