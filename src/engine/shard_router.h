// Shard routing: which of the engine's N PEB-tree shards owns a user.
//
// Two pluggable policies:
//  * kHashUser — a stateless multiplicative hash of the user id. Spreads
//    load evenly regardless of the policy corpus; every query fans out to
//    every shard that hosts at least one of the issuer's friends.
//  * kSvRange — contiguous quantized-sequence-value ranges with roughly
//    equal user counts. Because the PEB-tree clusters policy-compatible
//    users at nearby SVs (Section 5.1), an issuer's friends concentrate in
//    few shards, so queries touch fewer shards. This is the velocity-
//    partitioning idea ("Boosting Moving Object Indexing through Velocity
//    Partitioning") applied to the policy dimension instead of velocity.
//
// Routing must be stable for the lifetime of an engine: a user's shard is
// where their record lives, so updates and queries must agree on it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.h"
#include "policy/sequence_value.h"

namespace peb {
namespace engine {

/// Selects the shard-assignment policy.
enum class RouterPolicy {
  kHashUser,
  kSvRange,
};

/// Maps users to shards [0, num_shards).
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  virtual size_t ShardOf(UserId uid) const = 0;
  virtual std::string_view name() const = 0;

  size_t num_shards() const { return num_shards_; }

 protected:
  explicit ShardRouter(size_t num_shards) : num_shards_(num_shards) {}

  size_t num_shards_;
};

/// Stateless hash-by-user routing.
class HashUserRouter final : public ShardRouter {
 public:
  explicit HashUserRouter(size_t num_shards) : ShardRouter(num_shards) {}

  size_t ShardOf(UserId uid) const override;
  std::string_view name() const override { return "hash-user"; }
};

/// Quantized-SV range routing. Built from the policy encoding: users are
/// cut into num_shards contiguous qsv ranges of roughly equal population.
/// Users sharing a quantized SV always land in the same shard (the cuts
/// are value boundaries, not rank boundaries).
///
/// The router PINS the snapshot it was built from: routing must stay
/// stable for the engine's lifetime (a user's record lives in their home
/// shard), so later epochs never move users between shards — a re-keyed
/// user changes position within their shard only. Under heavy policy
/// churn the SV locality of the original cut decays; rebalancing routers
/// online is a ROADMAP follow-on.
class SvRangeRouter final : public ShardRouter {
 public:
  SvRangeRouter(size_t num_shards,
                std::shared_ptr<const EncodingSnapshot> snapshot);

  /// Legacy bridge: non-owning view of `encoding` (must outlive the
  /// router).
  SvRangeRouter(size_t num_shards, const PolicyEncoding* encoding)
      : SvRangeRouter(num_shards,
                      std::shared_ptr<const EncodingSnapshot>(
                          std::shared_ptr<const EncodingSnapshot>(),
                          encoding)) {}

  size_t ShardOf(UserId uid) const override;
  std::string_view name() const override { return "sv-range"; }

  /// Inclusive qsv upper bound of each shard but the last (ascending).
  const std::vector<uint32_t>& upper_bounds() const { return upper_; }

 private:
  /// The epoch the cuts were computed from (pinned; see class comment).
  std::shared_ptr<const EncodingSnapshot> snapshot_;
  std::vector<uint32_t> upper_;
};

/// Router factory. A snapshot is required for kSvRange; the router pins it.
std::unique_ptr<ShardRouter> MakeRouter(
    RouterPolicy policy, size_t num_shards,
    std::shared_ptr<const EncodingSnapshot> snapshot);

/// Legacy bridge: non-owning view of `encoding` (must outlive the router).
inline std::unique_ptr<ShardRouter> MakeRouter(RouterPolicy policy,
                                               size_t num_shards,
                                               const PolicyEncoding* encoding) {
  return MakeRouter(policy, num_shards,
                    std::shared_ptr<const EncodingSnapshot>(
                        std::shared_ptr<const EncodingSnapshot>(), encoding));
}

}  // namespace engine
}  // namespace peb
