// BatchUpdateApplier: drains an UpdateStream in time-ordered batches and
// applies each batch to a ShardedPebEngine.
//
// This is Section 7.9's update workload ("query cost while 25% chunks of
// the dataset are updated") made concurrent: the applier pulls the next
// `batch_size` events — already in global time order — and hands them to
// ShardedPebEngine::ApplyBatch, which groups them by home shard and applies
// every shard's group on its own worker thread. A user's updates stay
// ordered (one user, one shard); only cross-shard ordering inside a batch
// is relaxed, which no query can observe: on the direct-apply path the
// engine's state lock makes every query atomic with respect to a whole
// batch, and on the delta-ingest path the batch is published with a single
// atomic watermark store — a query's pinned watermark sees all of the
// batch or none of it (and queries never block on its application).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/status.h"
#include "engine/sharded_engine.h"
#include "motion/update_stream.h"

namespace peb {
namespace engine {

struct BatchApplierOptions {
  /// Events drained per ApplyBatch() call.
  size_t batch_size = 1024;
  /// Called after each batch is successfully applied to the engine, with
  /// the batch's events in their original (global time) order. The service
  /// layer hooks this to feed engine-wide continuous-query monitors: the
  /// callback order is the stream order regardless of shard count, so
  /// standing queries see identical event streams on 1- and N-shard
  /// engines.
  std::function<void(const std::vector<UpdateEvent>&)> on_batch;
};

/// Thread-compatibility: the applier owns no lock. One thread drives it
/// (the drain loop is inherently sequential — batches must leave the
/// stream in time order); the concurrency lives inside
/// ShardedPebEngine::ApplyBatch, which fans the batch out per shard under
/// its own annotated locks. Feeding one applier from two threads is a
/// caller bug, not a data race this class defends against.
class BatchUpdateApplier {
 public:
  /// The engine and stream must outlive the applier.
  BatchUpdateApplier(ShardedPebEngine* engine, UpdateStream* stream,
                     BatchApplierOptions options = {})
      : engine_(engine), stream_(stream), options_(options) {}

  /// Drains one batch from the stream and applies it to the engine.
  Status ApplyBatch() { return Apply(options_.batch_size); }

  /// Applies `count` events, in batches of at most options_.batch_size.
  Status Apply(size_t count);

  size_t events_applied() const { return events_applied_; }
  size_t batches_applied() const { return batches_applied_; }
  /// Timestamp of the most recently applied event (0 before any).
  Timestamp last_event_time() const { return last_event_time_; }

 private:
  ShardedPebEngine* engine_;
  UpdateStream* stream_;
  BatchApplierOptions options_;
  size_t events_applied_ = 0;
  size_t batches_applied_ = 0;
  Timestamp last_event_time_ = 0.0;
};

}  // namespace engine
}  // namespace peb
