#include "engine/shard_router.h"

#include <algorithm>
#include <cassert>

namespace peb {
namespace engine {

namespace {

/// splitmix64 finalizer: cheap, well-mixed bits even for sequential ids.
uint64_t MixUserId(UserId uid) {
  uint64_t z = static_cast<uint64_t>(uid) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

size_t HashUserRouter::ShardOf(UserId uid) const {
  return static_cast<size_t>(MixUserId(uid) % num_shards_);
}

SvRangeRouter::SvRangeRouter(size_t num_shards,
                             std::shared_ptr<const EncodingSnapshot> snapshot)
    : ShardRouter(num_shards), snapshot_(std::move(snapshot)) {
  assert(snapshot_ != nullptr && "SvRangeRouter requires a policy encoding");
  std::vector<uint32_t> qsv(snapshot_->num_users());
  for (size_t u = 0; u < qsv.size(); ++u) {
    qsv[u] = snapshot_->quantized_sv(static_cast<UserId>(u));
  }
  std::sort(qsv.begin(), qsv.end());
  upper_.reserve(num_shards_ > 0 ? num_shards_ - 1 : 0);
  for (size_t s = 1; s < num_shards_; ++s) {
    if (qsv.empty()) {
      upper_.push_back(0);
      continue;
    }
    size_t cut = s * qsv.size() / num_shards_;
    if (cut >= qsv.size()) cut = qsv.size() - 1;
    upper_.push_back(qsv[cut]);
  }
}

size_t SvRangeRouter::ShardOf(UserId uid) const {
  uint32_t q = snapshot_->quantized_sv(uid);
  // First shard whose inclusive upper bound admits q; the last shard is
  // unbounded above.
  auto it = std::lower_bound(upper_.begin(), upper_.end(), q);
  return static_cast<size_t>(it - upper_.begin());
}

std::unique_ptr<ShardRouter> MakeRouter(
    RouterPolicy policy, size_t num_shards,
    std::shared_ptr<const EncodingSnapshot> snapshot) {
  switch (policy) {
    case RouterPolicy::kHashUser:
      return std::make_unique<HashUserRouter>(num_shards);
    case RouterPolicy::kSvRange:
      return std::make_unique<SvRangeRouter>(num_shards, std::move(snapshot));
  }
  return nullptr;
}

}  // namespace engine
}  // namespace peb
