// ShardDelta: the per-shard in-memory delta (memtable) absorbing update
// ingestion in front of one PEB-tree shard.
//
// MOIST scales moving-object ingestion by buffering updates in logs before
// touching the index; this is that idea applied per shard. Writers append
// {state, tombstone, seq} records under the delta's own mutex — never the
// engine-wide state lock — and queries merge the delta with the tree scan:
// a user's latest visible record shadows their tree entry, a tombstone
// suppresses it. Bounded merges (ShardedPebEngine::MergeShards) later drain
// the records into the B+-tree under the existing exclusive section.
//
// Visibility protocol (the engine's half is in sharded_engine.h):
//  * Every record carries the seq of the ingest batch that wrote it. The
//    engine assigns seqs under its ingest lock and publishes the batch by
//    storing the seq into an atomic watermark (release) AFTER all of the
//    batch's appends.
//  * A reader pins the watermark once (acquire) and treats records with
//    seq > watermark as invisible, so it never observes half a batch: the
//    release/acquire pair makes every append of a published batch visible.
//  * Records are append-only per user with strictly ascending seq, so a
//    reader pinned at an older watermark still finds the state it is
//    entitled to even while newer batches land — per-user logs are the
//    memtable's snapshot mechanism. Merges only remove records at or below
//    a bound no active reader can be pinned before (they run under the
//    engine's exclusive state lock, which excludes all readers).
//
// Thread-safety: fully internally synchronized; records() is a lock-free
// approximation that is exact for any reader whose watermark load already
// synchronized with the publishing store (see the fast-path comment).
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"
#include "motion/moving_object.h"

namespace peb {
namespace engine {

class ShardDelta {
 public:
  /// One buffered mutation. Stores the RAW motion state (not a tree key):
  /// keys are computed at merge time under the then-current encoding
  /// snapshot, so policy re-keys (AdoptSnapshot) never have to touch the
  /// delta.
  struct Record {
    MovingObject state;
    uint64_t seq = 0;
    bool tombstone = false;
  };

  /// Appends one record. The caller (the engine's ingest section) assigns
  /// `seq`; seqs must be non-decreasing across calls and a tombstone's
  /// `state` only needs a valid id.
  void Append(const MovingObject& state, bool tombstone, uint64_t seq)
      EXCLUDES(mu_);

  /// The latest record for `uid` with seq <= watermark, if any.
  bool LatestVisible(UserId uid, uint64_t watermark, Record* out) const
      EXCLUDES(mu_);

  /// Records currently buffered (all seqs, including unpublished ones).
  /// Lock-free: callers that loaded the watermark with acquire first see an
  /// exact count of the records visible to them (the publishing release
  /// store orders the increments), plus possibly newer invisible ones.
  size_t records() const { return records_.load(std::memory_order_relaxed); }

  /// Lifetime append count (monotone; never decremented by drains).
  uint64_t appended_total() const {
    return appended_total_.load(std::memory_order_relaxed);
  }

  /// Removes every record with seq <= bound and returns the latest drained
  /// record per user, ascending by uid (a deterministic apply order for
  /// the merge). Records above the bound — batches published after the
  /// merge began, or not yet published — stay buffered. The caller must
  /// hold the shard's tree mutex across this call AND the subsequent tree
  /// application, so presence probes (tree-then-delta or delta-then-tree
  /// under that mutex) never observe the window where a record has left
  /// the delta but not yet reached the tree.
  std::vector<std::pair<UserId, Record>> DrainUpTo(uint64_t bound)
      EXCLUDES(mu_);

  /// Visits the latest visible record of every buffered user (unspecified
  /// user order). `fn(uid, record)` runs under the delta mutex: keep it
  /// cheap and do not call back into this object.
  template <typename Fn>
  void ForEachLatestVisible(uint64_t watermark, Fn fn) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    for (const auto& [uid, log] : log_) {
      const Record* latest = LatestIn(log, watermark);
      if (latest != nullptr) fn(uid, *latest);
    }
  }

  /// Visits every buffered record, per user in append (ascending-seq)
  /// order — the invariant validator's raw view. Same locking contract as
  /// ForEachLatestVisible.
  template <typename Fn>
  void ForEachRecord(Fn fn) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    for (const auto& [uid, log] : log_) {
      for (const Record& r : log) fn(uid, r);
    }
  }

 private:
  /// The last record of `log` with seq <= watermark (logs ascend by seq).
  static const Record* LatestIn(const std::vector<Record>& log,
                                uint64_t watermark);

  mutable Mutex mu_;
  /// Per-user append-only record logs, ascending seq within each log.
  std::unordered_map<UserId, std::vector<Record>> log_ GUARDED_BY(mu_);
  std::atomic<size_t> records_{0};
  std::atomic<uint64_t> appended_total_{0};
};

}  // namespace engine
}  // namespace peb
