// Engine-level WAL record vocabulary + binary codecs. The storage-layer
// WriteAheadLog frames records but treats their type and payload as opaque
// bytes; this header defines what the engine actually journals:
//
//   kEvents      logical mutation batch (insert/update/delete per object) —
//                one record per ApplyBatch / single-op mutation, appended
//                after the in-RAM apply succeeds (correct because durable
//                state only changes at checkpoints; see sharded_engine.h).
//   kMerge       advisory delta-merge marker: replay calls MergeDeltas() so
//                the recovered engine's delta/tree split converges to the
//                original's without bit-level tree journaling.
//   kRekey       policy re-key adoption barrier (payload: new epoch).
//                AdoptSnapshot checkpoints immediately after logging it, so
//                an uncommitted kRekey can only be the WAL tail; replay
//                stops there (the pre-adopt epoch's records were already
//                folded into the previous checkpoint).
//   kPageImage   one overlay page journaled during a checkpoint, before the
//                disk manager folds it into the database file in place.
//   kCheckpoint  checkpoint commit marker: allocation state + the engine
//                manifest. A complete image set followed by kCheckpoint lets
//                recovery finish a checkpoint that crashed mid-fold.
//
// All integers little-endian, doubles as raw IEEE-754 bits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "motion/moving_object.h"
#include "peb/peb_tree.h"
#include "storage/page.h"

namespace peb::engine_wal {

enum RecordType : uint8_t {
  kEvents = 1,
  kMerge = 2,
  kRekey = 3,
  kPageImage = 4,
  kCheckpoint = 5,
};

/// One logical mutation inside a kEvents record.
struct LoggedOp {
  enum Kind : uint8_t { kInsert = 0, kUpdate = 1, kDelete = 2 };
  Kind kind = kUpdate;
  MovingObject state;  ///< For kDelete only state.id matters.
};

std::string EncodeEvents(const std::vector<LoggedOp>& ops);
Status DecodeEvents(const std::string& payload, std::vector<LoggedOp>* out);

std::string EncodeRekey(uint64_t epoch);
Status DecodeRekey(const std::string& payload, uint64_t* epoch);

std::string EncodePageImage(PageId id, const Page& page);
Status DecodePageImage(const std::string& payload, PageId* id, Page* page);

/// Per-shard tree roots + stats plus the encoding epoch: everything needed
/// to re-attach the shard trees without rebuilding. Serialized both into
/// kCheckpoint records and into the superblock metadata blob.
struct EngineManifest {
  uint64_t epoch = 0;
  std::vector<PebTreeManifest> shards;
};

std::string EncodeManifest(const EngineManifest& manifest);
Status DecodeManifest(const std::string& payload, EngineManifest* out);

/// kCheckpoint payload: the disk allocation state as of the checkpoint (so
/// recovery can adopt a checkpoint whose superblock write never landed)
/// plus the manifest blob.
struct CheckpointRecord {
  PageId next_page = 0;
  std::vector<PageId> free_list;
  std::string manifest;  ///< EncodeManifest output.
};

std::string EncodeCheckpoint(const CheckpointRecord& record);
Status DecodeCheckpoint(const std::string& payload, CheckpointRecord* out);

}  // namespace peb::engine_wal
