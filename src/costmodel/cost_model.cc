#include "costmodel/cost_model.h"

#include <algorithm>
#include <cmath>

namespace peb {

namespace {

/// The grouping benefit term (Np − Np^θ) or (Nl − Np^θ), per Eq. 6/7.
double GroupingTerm(const CostModelInputs& in) {
  double np = in.policies_per_user;
  double benefit = std::pow(np, in.grouping_factor);
  double bound = np <= in.num_leaves ? np : in.num_leaves;
  return std::max(0.0, bound - benefit);
}

double Density(const CostModelInputs& in) {
  return in.num_users / (in.space_side * in.space_side);
}

}  // namespace

double CostC1(const CostModelInputs& in) {
  return 1.0 + GroupingTerm(in);
}

double CostModel::EstimateIo(const CostModelInputs& in) const {
  return 1.0 + (a1_ * Density(in) + a2_) * GroupingTerm(in);
}

Result<CostModel> CostModel::Calibrate(const CostSample& s1,
                                       const CostSample& s2) {
  // measured = 1 + (a1*d + a2) * g  =>  (measured-1)/g = a1*d + a2.
  double g1 = GroupingTerm(s1.inputs);
  double g2 = GroupingTerm(s2.inputs);
  if (g1 <= 0.0 || g2 <= 0.0) {
    return Status::InvalidArgument(
        "calibration sample with zero grouping term");
  }
  double d1 = Density(s1.inputs);
  double d2 = Density(s2.inputs);
  if (std::abs(d1 - d2) < 1e-12) {
    return Status::InvalidArgument(
        "calibration samples have identical object density");
  }
  double y1 = (s1.measured_io - 1.0) / g1;
  double y2 = (s2.measured_io - 1.0) / g2;
  double a1 = (y1 - y2) / (d1 - d2);
  double a2 = y1 - a1 * d1;
  return CostModel(a1, a2);
}

}  // namespace peb
