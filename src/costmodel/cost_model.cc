#include "costmodel/cost_model.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace peb {

namespace {

/// The grouping benefit term (Np − Np^θ) or (Nl − Np^θ), per Eq. 6/7.
double GroupingTerm(const CostModelInputs& in) {
  double np = in.policies_per_user;
  double benefit = std::pow(np, in.grouping_factor);
  double bound = np <= in.num_leaves ? np : in.num_leaves;
  return std::max(0.0, bound - benefit);
}

double Density(const CostModelInputs& in) {
  return in.num_users / (in.space_side * in.space_side);
}

}  // namespace

double CostC1(const CostModelInputs& in) {
  return 1.0 + GroupingTerm(in);
}

double ExpectedKnnDistance(double n, size_t k, double space_side) {
  if (n < 1.0) n = 1.0;
  double ratio = std::min(1.0, static_cast<double>(k) / n);
  double inner = 1.0 - std::sqrt(ratio);
  double dk = 2.0 / std::sqrt(std::numbers::pi) *
              (1.0 - std::sqrt(std::max(0.0, inner)));
  return std::max(dk * space_side, 1e-6 * space_side);
}

double EstimateKnnSeedRadius(const KnnSeedInputs& in) {
  // 25% margin over the analytic Dk: the estimate is an expectation, so
  // roughly half of all queries would otherwise need a second round for
  // purely statistical reasons.
  constexpr double kSeedMargin = 1.25;
  double dk = ExpectedKnnDistance(in.candidate_count, in.k, in.space_side);
  double diag = in.space_side * std::numbers::sqrt2;
  return std::min(dk * kSeedMargin, diag);
}

double CostModel::EstimateIo(const CostModelInputs& in) const {
  return 1.0 + (a1_ * Density(in) + a2_) * GroupingTerm(in);
}

Result<CostModel> CostModel::Calibrate(const CostSample& s1,
                                       const CostSample& s2) {
  // measured = 1 + (a1*d + a2) * g  =>  (measured-1)/g = a1*d + a2.
  double g1 = GroupingTerm(s1.inputs);
  double g2 = GroupingTerm(s2.inputs);
  if (g1 <= 0.0 || g2 <= 0.0) {
    return Status::InvalidArgument(
        "calibration sample with zero grouping term");
  }
  double d1 = Density(s1.inputs);
  double d2 = Density(s2.inputs);
  if (std::abs(d1 - d2) < 1e-12) {
    return Status::InvalidArgument(
        "calibration samples have identical object density");
  }
  double y1 = (s1.measured_io - 1.0) / g1;
  double y2 = (s2.measured_io - 1.0) / g2;
  double a1 = (y1 - y2) / (d1 - d2);
  double a2 = y1 - a1 * d1;
  return CostModel(a1, a2);
}

}  // namespace peb
