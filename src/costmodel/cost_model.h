// Query I/O cost model for the PEB-tree (Section 6, Equations 6-7).
//
// The sequence value dominates the PEB key, so the model focuses on how the
// sequence-value assignment spreads a query issuer's related users across
// leaf nodes:
//
//   C1 = 1 + Np − Np^θ           (Np <= Nl)     [Eq. 6]
//   C1 = 1 + Nl − Np^θ           (Np >  Nl)
//
//   C  = 1 + (a1·N/L² + a2)(Np − Np^θ)   (Np <= Nl)   [Eq. 7]
//   C  = 1 + (a1·N/L² + a2)(Nl − Np^θ)   (Np >  Nl)
//
// where Np = policies per user, θ = grouping factor, Nl = number of leaf
// nodes, N = number of users, L = space side. a1 and a2 are calibrated from
// two measured sample points with the same location distribution (the paper
// quotes a1 = 10, a2 = 0.3 for uniform data).
#pragma once

#include <cstddef>

#include "common/result.h"

namespace peb {

/// Workload parameters the model depends on.
struct CostModelInputs {
  double num_users = 60000;        ///< N.
  double policies_per_user = 50;   ///< Np.
  double grouping_factor = 0.7;    ///< θ.
  double num_leaves = 600;         ///< Nl.
  double space_side = 1000;        ///< L.
};

/// The base cost C1 of Equation 6 (no density correction).
double CostC1(const CostModelInputs& in);

/// The paper's closed-form Dk estimate (Section 5.4): the expected distance
/// to the k-th nearest of `n` uniformly distributed users, scaled to the
/// space side. This is THE analytic primitive both the figure benches and
/// the query-time radius seeding below are built on.
double ExpectedKnnDistance(double n, size_t k, double space_side);

/// Query-time inputs for seeding an incremental PkNN search radius.
struct KnnSeedInputs {
  /// Estimated number of live qualified candidates: the issuer's friend
  /// count scaled by the indexed fraction of the population (the "local
  /// density" the engine derives from its shard object counts).
  double candidate_count = 1.0;
  size_t k = 1;
  double space_side = 1000.0;
};

/// Initial search radius for the incremental PkNN path: the Dk estimate
/// applied to the CANDIDATE density (friends, not the whole population —
/// privacy-aware queries qualify only the issuer's friends, so seeding from
/// the population radius under-shoots by orders of magnitude and forces
/// dozens of enlargement rounds). A small safety margin is applied so a
/// typical query closes in one or two rounds; the result is clamped to
/// [~0, space diagonal].
double EstimateKnnSeedRadius(const KnnSeedInputs& in);

/// A measured sample for calibration: the workload plus its observed
/// average I/O per query.
struct CostSample {
  CostModelInputs inputs;
  double measured_io = 0.0;
};

/// The fitted model of Equation 7.
class CostModel {
 public:
  CostModel(double a1, double a2) : a1_(a1), a2_(a2) {}

  /// Solves a1, a2 exactly from two samples (the paper's procedure:
  /// "parameters a1 and a2 are obtained by taking as input any two sample
  /// points ... from the experiments on the datasets with the same location
  /// distribution"). Fails when the system is singular (e.g. identical
  /// densities).
  static Result<CostModel> Calibrate(const CostSample& s1,
                                     const CostSample& s2);

  double a1() const { return a1_; }
  double a2() const { return a2_; }

  /// Estimated average I/O per privacy-aware range query (Equation 7).
  double EstimateIo(const CostModelInputs& in) const;

 private:
  double a1_;
  double a2_;
};

}  // namespace peb
