// CHECK / DCHECK: fatal invariant assertions with formatted messages.
//
//   CHECK(frame != nullptr) << "shard " << i << " lost its frame";
//   CHECK_EQ(stats_.entries, counted) << "stats drifted";
//   DCHECK_GE(pin, 0);   // compiled out under NDEBUG (condition unevaluated)
//
// A failed CHECK prints file:line, the stringified condition, the streamed
// message, and aborts — corruption is never something to limp past. The
// Status-returning deep validators (ValidateInvariants) are the recoverable
// complement for tests and the peb_shell `check` command; CHECK is for
// invariants whose violation means the process state is already garbage.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace peb {
namespace check_internal {

/// Collects the streamed message and aborts in the destructor.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Lets the macro's ternary produce void on both arms: `voidifier & stream`
/// binds looser than << so the message chain completes first.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace check_internal
}  // namespace peb

#define PEB_CHECK_IMPL(condition, text)           \
  (condition) ? (void)0                           \
              : ::peb::check_internal::Voidify()& \
                    ::peb::check_internal::FatalMessage(__FILE__, __LINE__, \
                                                        text)               \
                        .stream()

#define CHECK(condition) PEB_CHECK_IMPL(!!(condition), #condition)

#define PEB_CHECK_OP(op, a, b)                                             \
  PEB_CHECK_IMPL((a)op(b), #a " " #op " " #b)                              \
      << "(" << (a) << " vs " << (b) << ") "

#define CHECK_EQ(a, b) PEB_CHECK_OP(==, a, b)
#define CHECK_NE(a, b) PEB_CHECK_OP(!=, a, b)
#define CHECK_LE(a, b) PEB_CHECK_OP(<=, a, b)
#define CHECK_LT(a, b) PEB_CHECK_OP(<, a, b)
#define CHECK_GE(a, b) PEB_CHECK_OP(>=, a, b)
#define CHECK_GT(a, b) PEB_CHECK_OP(>, a, b)

#ifndef NDEBUG
#define DCHECK(condition) CHECK(condition)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#else
// `true || (cond)` short-circuits: the condition and any streamed message
// stay name-checked (builds can't diverge) but are never evaluated, and
// the whole expression folds away.
#define PEB_DCHECK_NOP(condition) PEB_CHECK_IMPL(true || (condition), "")
#define DCHECK(condition) PEB_DCHECK_NOP(!!(condition))
#define DCHECK_EQ(a, b) PEB_DCHECK_NOP((a) == (b))
#define DCHECK_NE(a, b) PEB_DCHECK_NOP((a) != (b))
#define DCHECK_LE(a, b) PEB_DCHECK_NOP((a) <= (b))
#define DCHECK_LT(a, b) PEB_DCHECK_NOP((a) < (b))
#define DCHECK_GE(a, b) PEB_DCHECK_NOP((a) >= (b))
#define DCHECK_GT(a, b) PEB_DCHECK_NOP((a) > (b))
#endif
