// Shared scalar types used across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace peb {

/// User / moving-object identifier (the paper's UID).
using UserId = uint32_t;

/// Sentinel for "no user".
inline constexpr UserId kInvalidUserId = std::numeric_limits<UserId>::max();

/// Simulation timestamps are continuous (the paper's time unit is minutes).
using Timestamp = double;

/// Page identifier within a disk file.
using PageId = uint32_t;

/// Sentinel for "no page" (used as null child / sibling pointer).
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Role identifier for privacy policies (e.g. friend / colleague / family).
using RoleId = uint16_t;

inline constexpr RoleId kInvalidRoleId = std::numeric_limits<RoleId>::max();

/// Packs an ordered (owner, peer) user pair into one 64-bit map key. The
/// static_assert keeps the packing honest: if UserId is ever widened past
/// 32 bits, distinct pairs would silently collide, so the build must fail
/// here instead (switch to a 128-bit key or a pair-hash at that point).
inline constexpr uint64_t UserPairKey(UserId owner, UserId peer) {
  static_assert(sizeof(UserId) * 8 <= 32,
                "UserPairKey packs two UserIds into 64 bits; widen the key "
                "before widening UserId");
  return (static_cast<uint64_t>(owner) << 32) |
         (static_cast<uint64_t>(peer) & 0xFFFFFFFFull);
}

}  // namespace peb
