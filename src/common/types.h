// Shared scalar types used across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace peb {

/// User / moving-object identifier (the paper's UID).
using UserId = uint32_t;

/// Sentinel for "no user".
inline constexpr UserId kInvalidUserId = std::numeric_limits<UserId>::max();

/// Simulation timestamps are continuous (the paper's time unit is minutes).
using Timestamp = double;

/// Page identifier within a disk file.
using PageId = uint32_t;

/// Sentinel for "no page" (used as null child / sibling pointer).
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Role identifier for privacy policies (e.g. friend / colleague / family).
using RoleId = uint16_t;

inline constexpr RoleId kInvalidRoleId = std::numeric_limits<RoleId>::max();

}  // namespace peb
