// Status: lightweight error propagation without exceptions, in the style of
// LevelDB/RocksDB/Arrow. Hot paths in the storage engine and indexes return
// Status (or Result<T>, see result.h) instead of throwing.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace peb {

/// Error categories used across the library.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kCorruption = 3,
  kIOError = 4,
  kNotSupported = 5,
  kOutOfRange = 6,
  kResourceExhausted = 7,
  kAlreadyExists = 8,
  kInternal = 9,
};

/// Returns a stable human-readable name for a status code.
inline std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

/// A success-or-error value. Cheap to copy in the OK case (no allocation).
///
/// Usage:
///   Status s = pool.FlushAll();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "not found") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const { return code_ == StatusCode::kResourceExhausted; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out(StatusCodeToString(code_));
    if (!msg_.empty()) {
      out += ": ";
      out += msg_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define PEB_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::peb::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace peb
