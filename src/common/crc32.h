// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Shared by the
// durable page store's superblock and the write-ahead log framing: both
// refuse to trust any on-disk structure whose checksum does not match, which
// is what turns a torn write into a detectable (and recoverable) condition
// instead of silent corruption.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace peb {

namespace internal {

inline constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace internal

/// Extends a running CRC (pass the previous return value to checksum data
/// arriving in chunks; start from 0).
inline uint32_t Crc32Extend(uint32_t crc, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = internal::kCrc32Table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of `len` bytes at `data`.
inline uint32_t Crc32(const void* data, size_t len) {
  return Crc32Extend(0, data, len);
}

}  // namespace peb
