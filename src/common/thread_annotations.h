// Clang thread-safety-analysis capability wrappers.
//
// Every mutex in the engine is one of the wrapper types below, and every
// member it protects carries GUARDED_BY — so the lock protocols documented
// in sharded_engine.h / service.h / buffer_pool.h are machine-checked:
// compiling with clang and -Wthread-safety -Werror=thread-safety (the CI
// "thread-safety" job; see CMakeLists.txt) rejects any access to a guarded
// member without its capability held, any double-acquire, and any
// lock-order violation expressible through REQUIRES/EXCLUDES.
//
// Under GCC (the default local toolchain) every macro expands to nothing
// and the wrappers are zero-cost veneers over the std primitives.
//
// Conventions used across the repo:
//  * Members:       T x_ GUARDED_BY(mu_);
//  * Lock-held fns: void F() REQUIRES(mu_);         // caller holds mu_
//                   void G() REQUIRES_SHARED(mu_);  // at least shared
//  * Lock-free fns: void H() EXCLUDES(mu_);         // caller must NOT hold
//  * Deliberate escape hatches (externally-serialized protocols the
//    analysis cannot express) are NO_THREAD_SAFETY_ANALYSIS with a comment
//    naming the external serialization.
#pragma once

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#define PEB_TS_HAS_ATTRIBUTE(x) __has_attribute(x)
#else
#define PEB_TS_HAS_ATTRIBUTE(x) 0
#endif

#if PEB_TS_HAS_ATTRIBUTE(capability)
#define PEB_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define PEB_TS_ATTRIBUTE(x)  // Expands to nothing outside clang.
#endif

#define CAPABILITY(x) PEB_TS_ATTRIBUTE(capability(x))
#define SCOPED_CAPABILITY PEB_TS_ATTRIBUTE(scoped_lockable)
#define GUARDED_BY(x) PEB_TS_ATTRIBUTE(guarded_by(x))
#define PT_GUARDED_BY(x) PEB_TS_ATTRIBUTE(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) PEB_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) PEB_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define REQUIRES(...) PEB_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  PEB_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) PEB_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  PEB_TS_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) PEB_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  PEB_TS_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  PEB_TS_ATTRIBUTE(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) PEB_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  PEB_TS_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) PEB_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) PEB_TS_ATTRIBUTE(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  PEB_TS_ATTRIBUTE(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) PEB_TS_ATTRIBUTE(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS PEB_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace peb {

/// std::mutex with the "mutex" capability. Also BasicLockable (lowercase
/// lock/unlock), so std::condition_variable_any waits on it directly — the
/// cv's internal unlock/relock happens inside system headers, where the
/// analysis is silent by design.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  /// Declares (does not check at runtime) that this thread holds the lock.
  /// Used inside cv wait predicates, which clang cannot see run locked.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

  // BasicLockable, for std::condition_variable_any.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with the "shared_mutex" capability: exclusive
/// Lock/Unlock plus shared ReaderLock/ReaderUnlock.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }
  void AssertHeld() ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex (the std::lock_guard replacement).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// RAII exclusive lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII lock whose mode is chosen at runtime (the service layer locks
/// index_mu_ shared for indexes that support concurrent queries and
/// exclusive otherwise). The analysis sees the conservative lower bound —
/// shared acquisition — which is exactly what readers of guarded state may
/// rely on; the generic release matches either mode.
class SCOPED_CAPABILITY SharedOrExclusiveLock {
 public:
  SharedOrExclusiveLock(SharedMutex* mu, bool exclusive) ACQUIRE_SHARED(mu)
      : mu_(mu), exclusive_(exclusive) {
    LockImpl();
  }
  ~SharedOrExclusiveLock() RELEASE_GENERIC() { UnlockImpl(); }

  SharedOrExclusiveLock(const SharedOrExclusiveLock&) = delete;
  SharedOrExclusiveLock& operator=(const SharedOrExclusiveLock&) = delete;

 private:
  // The mode dispatch must stay invisible to the analysis: the ctor/dtor
  // attributes above already state the net effect.
  void LockImpl() NO_THREAD_SAFETY_ANALYSIS {
    if (exclusive_) {
      mu_->Lock();
    } else {
      mu_->ReaderLock();
    }
  }
  void UnlockImpl() NO_THREAD_SAFETY_ANALYSIS {
    if (exclusive_) {
      mu_->Unlock();
    } else {
      mu_->ReaderUnlock();
    }
  }

  SharedMutex* mu_;
  bool exclusive_;
};

}  // namespace peb
