// Deterministic pseudo-random number generation.
//
// All workload generators take an explicit seed so experiments are exactly
// reproducible across runs and platforms; we avoid std::mt19937 plus
// std::uniform_*_distribution because their outputs are not guaranteed to be
// identical across standard library implementations.
#pragma once

#include <cassert>
#include <cstdint>

namespace peb {

/// SplitMix64: used to seed and to hash seeds into independent streams.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256**: fast, high-quality 64-bit PRNG with explicit state.
class Rng {
 public:
  /// Seeds the generator; distinct seeds give independent streams.
  explicit Rng(uint64_t seed = 0x5EEDDA7Aull) {
    uint64_t sm = seed;
    for (auto& w : s_) w = SplitMix64(sm);
  }

  /// Next raw 64-bit value.
  uint64_t Next64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    assert(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method.
  uint64_t NextBelow(uint64_t n) {
    assert(n > 0);
    // Multiply-shift; the modulo bias is negligible for our n (< 2^32) but we
    // still debias with the standard rejection step.
    uint64_t x = Next64();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (0 - n) % n;
      while (l < t) {
        x = Next64();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace peb
