// Result<T>: a value-or-Status, the Arrow idiom for fallible producers.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace peb {

/// Holds either a T (success) or a non-OK Status (failure).
///
/// Usage:
///   Result<PageId> r = tree.AllocateLeaf();
///   if (!r.ok()) return r.status();
///   PageId id = *r;
template <typename T>
class Result {
 public:
  /// Constructs a success result. Intentionally implicit so that functions
  /// can `return value;`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failure result from a non-OK status. Intentionally
  /// implicit so that functions can `return Status::NotFound(...);`.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok() && "Result must not hold an OK Status");
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status; OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The held value. Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this result is an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its status.
#define PEB_ASSIGN_OR_RETURN(lhs, expr)         \
  auto PEB_CONCAT_(_res_, __LINE__) = (expr);   \
  if (!PEB_CONCAT_(_res_, __LINE__).ok())       \
    return PEB_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(PEB_CONCAT_(_res_, __LINE__)).value()

#define PEB_CONCAT_IMPL_(a, b) a##b
#define PEB_CONCAT_(a, b) PEB_CONCAT_IMPL_(a, b)

}  // namespace peb
