// Process-wide metrics: named counters, gauges, and log-scale latency
// histograms behind one registry, cheap enough to sit on every hot path.
//
// The paper evaluates the PEB-tree through one-shot I/O and latency
// measurements; a long-running service (the ROADMAP's traffic-harness
// tier) needs the same quantities continuously and in aggregate. The
// design goals, in order:
//
//  * Hot-path cost is ONE relaxed atomic add. Counters and histograms are
//    striped into cache-line-sized cells indexed by a per-thread stripe
//    id, so concurrent recorders on different threads touch different
//    lines; readers aggregate the stripes, accepting a momentarily torn
//    (but monotone) view.
//  * Instruments are registered by name once (cold, behind a mutex) and
//    used through stable pointers — subsystems cache the pointer at
//    construction, never re-resolving names per event.
//  * Disabled telemetry costs nothing: components constructed with
//    TelemetryOptions::Disabled() hold null instrument pointers, and the
//    record helpers below compile to a null check.
//  * Values that something else already counts (e.g. the buffer pool's
//    per-shard IoStats) are exported through snapshot-time collectors
//    instead of duplicated hot-path atomics.
//
// Export surfaces: SnapshotJson() (one JSON document: counters, gauges,
// histogram percentiles, collector samples) and PrometheusText() (the
// text exposition format, for scraping once a listener exists).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace peb {
namespace telemetry {

class MetricsRegistry;

/// Per-component telemetry knobs, threaded through ServiceOptions and
/// EngineOptions. A component with `enabled == false` registers nothing
/// and records nothing.
struct TelemetryOptions {
  bool enabled = true;
  /// Registry instruments land in; nullptr means the process-wide default
  /// (MetricsRegistry::Default()). Tests pass their own registry so
  /// parallel suites never share instrument state.
  MetricsRegistry* registry = nullptr;
  /// Trace every Nth query (0 = only queries with RequestOptions::trace).
  size_t trace_sample_every = 0;
  /// Queries slower than this land in the slow-query log.
  double slow_query_ms = 50.0;
  /// Slow-query log ring capacity (0 disables the log).
  size_t slow_log_capacity = 32;

  static TelemetryOptions Disabled() {
    TelemetryOptions o;
    o.enabled = false;
    return o;
  }
};

/// Stripe id of the calling thread (stable for the thread's lifetime).
size_t ThreadStripe();

/// A monotone counter. Add() is one relaxed fetch_add on the calling
/// thread's stripe; Value() sums the stripes.
class Counter {
 public:
  static constexpr size_t kStripes = 16;

  void Add(uint64_t n = 1) {
    cells_[ThreadStripe() % kStripes].v.fetch_add(n,
                                                  std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_;
};

/// A point-in-time signed value (queue depth, registered queries, ...).
/// Single atomic: gauges are updated at queueing frequency, not scan
/// frequency, so striping would buy nothing.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// A fixed-bucket log-scale histogram for latencies (milliseconds by
/// convention, but any non-negative value works).
///
/// Buckets grow by 2^(1/4) (~19%) per step from kFirstBound, covering
/// ~100 ns to ~1 hour in 128 buckets; everything below the first bound
/// lands in bucket 0, everything above the last in the final bucket.
/// Record() is one log2 and one relaxed fetch_add on the caller's stripe.
/// Percentiles interpolate linearly inside the landing bucket, so the
/// estimate is within one bucket width (<19% relative) of the exact
/// order statistic — tests/telemetry_test.cc holds it to that against a
/// sorted-vector oracle.
class Histogram {
 public:
  static constexpr size_t kBuckets = 128;
  static constexpr size_t kStripes = 8;
  static constexpr double kFirstBound = 1e-4;  ///< Upper bound of bucket 0.
  static constexpr double kStepsPerDoubling = 4.0;

  Histogram();

  void Record(double value);

  /// Upper bound of bucket `i` (the last bucket reports +inf as its bound).
  static double BucketBound(size_t i);

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;

    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };

  /// Aggregates the stripes and reads count/sum/max/percentiles at once.
  Snapshot Snap() const;

  /// Single percentile readout (q in [0,1]); 0 when empty.
  double Percentile(double q) const;

  uint64_t Count() const;

 private:
  static size_t BucketFor(double value);
  void Aggregate(std::array<uint64_t, kBuckets>* buckets, uint64_t* count,
                 double* sum, double* max) const;
  static double PercentileFrom(const std::array<uint64_t, kBuckets>& buckets,
                               uint64_t count, double max, double q);

  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, kBuckets> buckets;
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
  };
  std::array<Stripe, kStripes> stripes_;
};

/// Name-keyed instrument registry. Get-or-create lookups are cold (one
/// mutex acquisition at component construction); the returned pointers are
/// stable for the registry's lifetime. Collectors are sampled at snapshot
/// time for values owned elsewhere (per-shard pool stats).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry benches, tools, and default-constructed
  /// components report into.
  static MetricsRegistry* Default();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// One sampled (name, value) pair from a collector.
  using Sample = std::pair<std::string, double>;
  using Collector = std::function<std::vector<Sample>()>;

  /// Registers a snapshot-time collector; returns a token for Unregister.
  /// Collectors must outlive their registration (components unregister in
  /// their destructors).
  size_t RegisterCollector(Collector fn);
  void UnregisterCollector(size_t token);

  /// Every instrument and collector sample as one JSON document:
  /// {"counters": {...}, "gauges": {...},
  ///  "histograms": {name: {count,sum,mean,max,p50,p95,p99}},
  ///  "samples": {...}}.
  std::string SnapshotJson() const;

  /// Prometheus text exposition format. Instrument names map to metric
  /// names with '.' -> '_'; histograms export _count/_sum plus percentile
  /// gauges (the fixed-bucket layout is an implementation detail).
  std::string PrometheusText() const;

 private:
  mutable Mutex mu_;
  /// std::map keeps snapshot output sorted and insertion-stable; node
  /// addresses are stable, so handed-out pointers survive later inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
  std::map<size_t, Collector> collectors_ GUARDED_BY(mu_);
  size_t next_collector_token_ GUARDED_BY(mu_) = 1;
};

// --- null-safe record helpers ----------------------------------------------
// Components hold null instrument pointers when telemetry is disabled;
// every record site goes through these so the disabled path is one branch.

inline void Inc(Counter* c, uint64_t n = 1) {
  if (c != nullptr) c->Add(n);
}
inline void Observe(Histogram* h, double value) {
  if (h != nullptr) h->Record(value);
}
inline void GaugeAdd(Gauge* g, int64_t d) {
  if (g != nullptr) g->Add(d);
}

}  // namespace telemetry
}  // namespace peb
