#include "telemetry/trace.h"

#include <algorithm>
#include <sstream>

namespace peb {
namespace telemetry {

namespace {

void AppendEscaped(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
}

/// Index of the depth-1 ancestor of `i` (or 0 for the root itself) — the
/// lane assignment for Chrome rendering.
size_t LaneOf(const std::vector<TraceSpan>& spans, size_t i) {
  size_t cur = i;
  while (spans[cur].parent != TraceSpan::kNoParent &&
         spans[spans[cur].parent].parent != TraceSpan::kNoParent) {
    cur = spans[cur].parent;
  }
  return spans[cur].parent == TraceSpan::kNoParent ? 0 : cur;
}

}  // namespace

std::string QueryTrace::ChromeJson() const {
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    if (i > 0) os << ",\n ";
    os << "{\"ph\": \"X\", \"pid\": 1, \"tid\": " << LaneOf(spans, i)
       << ", \"name\": \"";
    AppendEscaped(os, s.name);
    os << "\", \"ts\": " << static_cast<int64_t>(s.start_ms * 1000.0)
       << ", \"dur\": " << std::max<int64_t>(
              1, static_cast<int64_t>(s.dur_ms * 1000.0))
       << ", \"args\": {\"candidates\": " << s.counters.candidates_examined
       << ", \"results\": " << s.counters.results
       << ", \"range_probes\": " << s.counters.range_probes
       << ", \"rounds\": " << s.counters.rounds
       << ", \"seek_descents\": " << s.counters.seek_descents
       << ", \"leaf_hops\": " << s.counters.leaf_hops
       << ", \"logical_fetches\": " << s.io.logical_fetches
       << ", \"cache_hits\": " << s.io.cache_hits
       << ", \"physical_reads\": " << s.io.physical_reads
       << ", \"note\": \"";
    AppendEscaped(os, s.note);
    os << "\"}}";
  }
  os << "],\n \"metadata\": {\"query\": \"";
  AppendEscaped(os, name);
  os << "\", \"epoch\": " << epoch << ", \"total_ms\": " << total_ms
     << "}}";
  return os.str();
}

std::string QueryTrace::Summary() const {
  std::ostringstream os;
  os << name << " epoch=" << epoch << " total=" << total_ms << "ms\n";
  // Depth via parent chase; spans are appended in start order so a simple
  // pass renders parents before children for trees built top-down.
  for (const TraceSpan& s : spans) {
    size_t depth = 0;
    for (size_t p = s.parent; p != TraceSpan::kNoParent;
         p = spans[p].parent) {
      ++depth;
    }
    for (size_t d = 0; d < depth; ++d) os << "  ";
    os << s.name << "  " << s.dur_ms << "ms"
       << "  fetches=" << s.io.logical_fetches
       << " hits=" << s.io.cache_hits << " cands="
       << s.counters.candidates_examined;
    if (!s.note.empty()) os << "  [" << s.note << "]";
    os << "\n";
  }
  return os.str();
}

TraceBuilder::TraceBuilder(std::string name)
    : start_(std::chrono::steady_clock::now()) {
  trace_.name = std::move(name);
}

double TraceBuilder::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

size_t TraceBuilder::StartSpan(const std::string& name, size_t parent) {
  double now = NowMs();
  MutexLock lock(&mu_);
  TraceSpan span;
  span.name = name;
  span.parent = parent;
  span.start_ms = now;
  trace_.spans.push_back(std::move(span));
  open_.push_back(1);
  return trace_.spans.size() - 1;
}

void TraceBuilder::EndSpan(size_t span) {
  double now = NowMs();
  MutexLock lock(&mu_);
  if (span >= trace_.spans.size() || !open_[span]) return;
  trace_.spans[span].dur_ms = now - trace_.spans[span].start_ms;
  open_[span] = 0;
}

void TraceBuilder::AddStats(size_t span, const QueryCounters& counters,
                            const IoStats& io) {
  MutexLock lock(&mu_);
  if (span >= trace_.spans.size()) return;
  TraceSpan& s = trace_.spans[span];
  s.counters.candidates_examined += counters.candidates_examined;
  s.counters.results += counters.results;
  s.counters.range_probes += counters.range_probes;
  s.counters.rounds += counters.rounds;
  s.counters.seek_descents += counters.seek_descents;
  s.counters.leaf_hops += counters.leaf_hops;
  s.io += io;
}

void TraceBuilder::Annotate(size_t span, const std::string& note) {
  MutexLock lock(&mu_);
  if (span >= trace_.spans.size()) return;
  std::string& n = trace_.spans[span].note;
  if (!n.empty()) n += ' ';
  n += note;
}

void TraceBuilder::set_epoch(uint64_t epoch) {
  MutexLock lock(&mu_);
  trace_.epoch = epoch;
}

QueryTrace TraceBuilder::Finish() {
  double now = NowMs();
  MutexLock lock(&mu_);
  for (size_t i = 0; i < trace_.spans.size(); ++i) {
    if (open_[i]) {
      trace_.spans[i].dur_ms = now - trace_.spans[i].start_ms;
      open_[i] = 0;
    }
  }
  trace_.total_ms = now;
  return std::move(trace_);
}

void SlowQueryLog::Record(QueryTrace trace, double total_ms) {
  if (capacity_ == 0) return;
  MutexLock lock(&mu_);
  if (ring_.size() >= capacity_) ring_.pop_front();
  Entry e;
  e.trace = std::move(trace);
  e.total_ms = total_ms;
  e.sequence = next_sequence_++;
  ring_.push_back(std::move(e));
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Entries() const {
  MutexLock lock(&mu_);
  return std::vector<Entry>(ring_.begin(), ring_.end());
}

}  // namespace telemetry
}  // namespace peb
