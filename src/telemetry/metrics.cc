#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace peb {
namespace telemetry {

size_t ThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local size_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram() {
  for (Stripe& s : stripes_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

size_t Histogram::BucketFor(double value) {
  if (!(value > kFirstBound)) return 0;  // NaN and underflow land in 0.
  // ceil(log2(v / first) * steps): the first bucket whose bound >= value.
  double steps = std::ceil(std::log2(value / kFirstBound) *
                           kStepsPerDoubling);
  if (steps >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
  return static_cast<size_t>(steps);
}

double Histogram::BucketBound(size_t i) {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return kFirstBound *
         std::exp2(static_cast<double>(i) / kStepsPerDoubling);
}

void Histogram::Record(double value) {
  if (value < 0.0) value = 0.0;
  Stripe& s = stripes_[ThreadStripe() % kStripes];
  s.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  double seen = s.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !s.max.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
}

void Histogram::Aggregate(std::array<uint64_t, kBuckets>* buckets,
                          uint64_t* count, double* sum, double* max) const {
  buckets->fill(0);
  *count = 0;
  *sum = 0.0;
  *max = 0.0;
  for (const Stripe& s : stripes_) {
    for (size_t i = 0; i < kBuckets; ++i) {
      uint64_t n = s.buckets[i].load(std::memory_order_relaxed);
      (*buckets)[i] += n;
      *count += n;
    }
    *sum += s.sum.load(std::memory_order_relaxed);
    *max = std::max(*max, s.max.load(std::memory_order_relaxed));
  }
}

double Histogram::PercentileFrom(
    const std::array<uint64_t, kBuckets>& buckets, uint64_t count,
    double max, double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th order statistic (1-based), then walk the buckets.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      double lo = i == 0 ? 0.0 : BucketBound(i - 1);
      double hi = BucketBound(i);
      // The last bucket is unbounded; report the observed max instead of
      // interpolating toward infinity. Same for any bucket the max caps.
      if (std::isinf(hi)) return max;
      hi = std::min(hi, max > lo ? max : hi);
      double frac = static_cast<double>(rank - seen) /
                    static_cast<double>(buckets[i]);
      return lo + (hi - lo) * frac;
    }
    seen += buckets[i];
  }
  return max;
}

Histogram::Snapshot Histogram::Snap() const {
  std::array<uint64_t, kBuckets> buckets;
  Snapshot out;
  Aggregate(&buckets, &out.count, &out.sum, &out.max);
  out.p50 = PercentileFrom(buckets, out.count, out.max, 0.50);
  out.p95 = PercentileFrom(buckets, out.count, out.max, 0.95);
  out.p99 = PercentileFrom(buckets, out.count, out.max, 0.99);
  return out;
}

double Histogram::Percentile(double q) const {
  std::array<uint64_t, kBuckets> buckets;
  uint64_t count;
  double sum, max;
  Aggregate(&buckets, &count, &sum, &max);
  return PercentileFrom(buckets, count, max, q);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Stripe& s : stripes_) {
    for (const auto& b : s.buckets) {
      total += b.load(std::memory_order_relaxed);
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return instance;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

size_t MetricsRegistry::RegisterCollector(Collector fn) {
  MutexLock lock(&mu_);
  size_t token = next_collector_token_++;
  collectors_[token] = std::move(fn);
  return token;
}

void MetricsRegistry::UnregisterCollector(size_t token) {
  MutexLock lock(&mu_);
  collectors_.erase(token);
}

namespace {

void AppendJsonNumber(std::ostringstream& os, double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    os << static_cast<int64_t>(v);
  } else {
    os.precision(10);
    os << v;
  }
}

}  // namespace

std::string MetricsRegistry::SnapshotJson() const {
  // Copy the instrument pointers out, then read them unlocked: reads are
  // relaxed-atomic aggregations, and instruments are never removed.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  std::vector<Collector> collectors;
  {
    MutexLock lock(&mu_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
    for (const auto& [token, fn] : collectors_) collectors.push_back(fn);
  }

  std::ostringstream os;
  os << "{\"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) os << ", ";
    os << '"' << counters[i].first << "\": " << counters[i].second->Value();
  }
  os << "}, \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) os << ", ";
    os << '"' << gauges[i].first << "\": " << gauges[i].second->Value();
  }
  os << "}, \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    if (i > 0) os << ", ";
    Histogram::Snapshot s = histograms[i].second->Snap();
    os << '"' << histograms[i].first << "\": {\"count\": " << s.count
       << ", \"sum\": ";
    AppendJsonNumber(os, s.sum);
    os << ", \"mean\": ";
    AppendJsonNumber(os, s.mean());
    os << ", \"max\": ";
    AppendJsonNumber(os, s.max);
    os << ", \"p50\": ";
    AppendJsonNumber(os, s.p50);
    os << ", \"p95\": ";
    AppendJsonNumber(os, s.p95);
    os << ", \"p99\": ";
    AppendJsonNumber(os, s.p99);
    os << "}";
  }
  os << "}, \"samples\": {";
  bool first = true;
  for (const Collector& fn : collectors) {
    for (const auto& [name, value] : fn()) {
      if (!first) os << ", ";
      first = false;
      os << '"' << name << "\": ";
      AppendJsonNumber(os, value);
    }
  }
  os << "}}";
  return os.str();
}

namespace {

std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  std::vector<Collector> collectors;
  {
    MutexLock lock(&mu_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
    for (const auto& [token, fn] : collectors_) collectors.push_back(fn);
  }

  std::ostringstream os;
  for (const auto& [name, c] : counters) {
    std::string n = PromName(name);
    os << "# TYPE " << n << " counter\n" << n << ' ' << c->Value() << '\n';
  }
  for (const auto& [name, g] : gauges) {
    std::string n = PromName(name);
    os << "# TYPE " << n << " gauge\n" << n << ' ' << g->Value() << '\n';
  }
  for (const auto& [name, h] : histograms) {
    std::string n = PromName(name);
    Histogram::Snapshot s = h->Snap();
    os << "# TYPE " << n << " summary\n";
    os << n << "{quantile=\"0.5\"} " << s.p50 << '\n';
    os << n << "{quantile=\"0.95\"} " << s.p95 << '\n';
    os << n << "{quantile=\"0.99\"} " << s.p99 << '\n';
    os << n << "_sum " << s.sum << '\n';
    os << n << "_count " << s.count << '\n';
  }
  for (const Collector& fn : collectors) {
    for (const auto& [name, value] : fn()) {
      std::string n = PromName(name);
      os << "# TYPE " << n << " gauge\n" << n << ' ' << value << '\n';
    }
  }
  return os.str();
}

}  // namespace telemetry
}  // namespace peb
