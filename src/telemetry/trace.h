// Per-query trace span trees.
//
// A traced query carries a TraceBuilder pointer down through
// MovingObjectService -> ShardedPebEngine -> per-shard task -> PebTree
// scan; each layer opens a span, annotates it (round, annulus, shard),
// and records the QueryCounters / IoStats delta it contributed. The
// finished tree travels back up BY VALUE inside QueryResponse (the same
// discipline as QueryStats: no shared mutable state outlives the call),
// and can be serialized as Chrome trace_event JSON for about:tracing.
//
// Tracing is sampled (TelemetryOptions::trace_sample_every) or forced
// per-request (RequestOptions::trace); untraced queries carry a null
// builder and pay one branch per would-be span.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "bxtree/privacy_index.h"
#include "common/thread_annotations.h"
#include "storage/buffer_pool.h"

namespace peb {
namespace telemetry {

/// One node of a span tree. Spans are stored flat, parent-linked by index
/// into QueryTrace::spans (kNoParent for the root), which keeps the tree
/// trivially copyable by value.
struct TraceSpan {
  static constexpr size_t kNoParent = static_cast<size_t>(-1);

  std::string name;
  size_t parent = kNoParent;
  double start_ms = 0.0;  ///< Relative to the trace's start.
  double dur_ms = 0.0;
  QueryCounters counters;  ///< Work attributed to this span (not children).
  IoStats io;              ///< Pages attributed to this span (not children).
  std::string note;        ///< "round=2 annulus=[3,5)" style annotations.
};

/// A finished, by-value trace. `spans[0]` is the root when non-empty.
struct QueryTrace {
  std::string name;  ///< "pknn", "prq", ...
  uint64_t epoch = 0;
  double total_ms = 0.0;
  std::vector<TraceSpan> spans;

  bool empty() const { return spans.empty(); }

  /// Chrome trace_event JSON (a {"traceEvents": [...]} document of "ph":"X"
  /// complete events, timestamps in microseconds). Spans at depth 1 get
  /// distinct tids so concurrent per-shard work renders on separate lanes;
  /// deeper spans inherit their depth-1 ancestor's lane.
  std::string ChromeJson() const;

  /// One-line-per-span indented text rendering for the shell / slow log.
  std::string Summary() const;
};

/// Mutable builder a traced query carries down the stack. Thread-safe:
/// per-shard tasks open and close spans concurrently. Span handles are
/// indices, valid for the builder's lifetime.
class TraceBuilder {
 public:
  explicit TraceBuilder(std::string name);

  /// Opens a span under `parent` (TraceSpan::kNoParent for the root);
  /// returns its handle.
  size_t StartSpan(const std::string& name,
                   size_t parent = TraceSpan::kNoParent);
  void EndSpan(size_t span);

  /// Attributes a counters/io delta to a span (adds to prior deltas).
  void AddStats(size_t span, const QueryCounters& counters,
                const IoStats& io);
  /// Appends an annotation ("round=2"); multiple notes are space-joined.
  void Annotate(size_t span, const std::string& note);

  void set_epoch(uint64_t epoch);

  /// Closes any still-open spans, stamps total_ms, and moves the tree out.
  /// The builder is spent afterwards.
  QueryTrace Finish();

 private:
  double NowMs() const;

  Mutex mu_;
  QueryTrace trace_ GUARDED_BY(mu_);
  /// Parallel to trace_.spans; 1 = still open.
  std::vector<char> open_ GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point start_;
};

/// Convenience for layers handed a QueryStats that may or may not be
/// traced: Open() starts a span under stats->trace_span when a builder is
/// present (no-op handle otherwise); Close() attributes a counters/io
/// delta and ends it. Layers call these instead of branching on
/// stats->trace at every site.
struct TraceScope {
  static size_t Open(const QueryStats* stats, const std::string& name) {
    if (stats == nullptr || stats->trace == nullptr) {
      return TraceSpan::kNoParent;
    }
    return stats->trace->StartSpan(name, stats->trace_span);
  }

  static void Close(const QueryStats* stats, size_t span,
                    const QueryCounters& counters, const IoStats& io) {
    if (stats == nullptr || stats->trace == nullptr ||
        span == TraceSpan::kNoParent) {
      return;
    }
    stats->trace->AddStats(span, counters, io);
    stats->trace->EndSpan(span);
  }
};

/// Ring of the worst traces seen over a threshold. FIFO: when full, the
/// oldest entry is evicted first. Thread-safe.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity) : capacity_(capacity) {}

  struct Entry {
    QueryTrace trace;
    double total_ms = 0.0;
    uint64_t sequence = 0;  ///< Monotone admission order.
  };

  /// Admits the trace if it cleared the caller's threshold (the caller
  /// decides; the log just stores). No-op when capacity is 0.
  void Record(QueryTrace trace, double total_ms);

  /// Oldest-first copy of the current ring.
  std::vector<Entry> Entries() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  std::deque<Entry> ring_ GUARDED_BY(mu_);
  uint64_t next_sequence_ GUARDED_BY(mu_) = 0;
};

}  // namespace telemetry
}  // namespace peb
