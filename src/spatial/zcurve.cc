#include "spatial/zcurve.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace peb {

namespace {

/// Spreads the low 32 bits of v so bit i moves to bit 2i.
uint64_t SpreadBits(uint64_t v) {
  v &= 0xFFFFFFFFull;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

/// Inverse of SpreadBits: collects bits at even positions.
uint32_t CompactBits(uint64_t v) {
  v &= 0x5555555555555555ull;
  v = (v ^ (v >> 1)) & 0x3333333333333333ull;
  v = (v ^ (v >> 2)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v ^ (v >> 4)) & 0x00FF00FF00FF00FFull;
  v = (v ^ (v >> 8)) & 0x0000FFFF0000FFFFull;
  v = (v ^ (v >> 16)) & 0x00000000FFFFFFFFull;
  return static_cast<uint32_t>(v);
}

}  // namespace

uint64_t ZEncode(uint32_t cx, uint32_t cy, uint32_t bits) {
  assert(bits <= kMaxGridBits);
  uint32_t mask = bits >= 32 ? ~0u : ((1u << bits) - 1);
  return SpreadBits(cx & mask) | (SpreadBits(cy & mask) << 1);
}

void ZDecode(uint64_t z, uint32_t bits, uint32_t* cx, uint32_t* cy) {
  assert(bits <= kMaxGridBits);
  uint32_t mask = bits >= 32 ? ~0u : ((1u << bits) - 1);
  *cx = CompactBits(z) & mask;
  *cy = CompactBits(z >> 1) & mask;
}

GridMapper::GridMapper(double space_side, uint32_t bits)
    : space_side_(space_side), bits_(bits) {
  assert(bits >= 1 && bits <= kMaxGridBits);
  assert(space_side > 0.0);
  cells_ = 1u << bits_;
  cell_side_ = space_side_ / static_cast<double>(cells_);
}

uint32_t GridMapper::CellOf(double v) const {
  if (v <= 0.0) return 0;
  auto c = static_cast<int64_t>(std::floor(v / cell_side_));
  return static_cast<uint32_t>(
      std::clamp<int64_t>(c, 0, static_cast<int64_t>(cells_) - 1));
}

Rect GridMapper::CellRangeRect(uint32_t cx_lo, uint32_t cy_lo, uint32_t cx_hi,
                               uint32_t cy_hi) const {
  return {{cx_lo * cell_side_, cy_lo * cell_side_},
          {(cx_hi + 1) * cell_side_, (cy_hi + 1) * cell_side_}};
}

}  // namespace peb
