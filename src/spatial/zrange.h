// Decomposition of a 2-D query window into intervals of consecutive
// space-filling-curve values (the paper's "ZVconvert" step, Section 5.3).
//
// A rectangle on the grid maps to a set of [lo, hi] Z-value intervals that
// together cover exactly the cells of the rectangle. The decomposition is a
// quadtree recursion: a quadrant fully inside the window emits one interval;
// a partially covered quadrant recurses. Adjacent intervals are merged, and
// the interval count can optionally be capped by merging the closest pairs
// (trading extra scanned cells for fewer B+-tree probes, as the Bx-tree
// does).
#pragma once

#include <cstdint>
#include <vector>

#include "spatial/geometry.h"
#include "spatial/zcurve.h"

namespace peb {

/// A closed interval of 1-D curve values.
struct CurveInterval {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const CurveInterval&, const CurveInterval&) = default;
};

/// Options for window decomposition.
struct ZRangeOptions {
  /// Maximum number of intervals returned; 0 means unlimited. When capped,
  /// the intervals with the smallest gaps between them are merged first.
  size_t max_intervals = 0;
  /// Coalesce intervals separated by at most this many uncovered Z values
  /// into one. Trades a few extra scanned cells (filtered out by the query
  /// refinement step, so results are unchanged) for fewer key-range probes
  /// and fewer cursor restarts; also shrinks cached decompositions.
  uint64_t coalesce_gap = 0;
};

/// Returns the sorted, non-overlapping, non-adjacent Z-value intervals
/// covering exactly the grid cells [cx_lo, cx_hi] x [cy_lo, cy_hi].
/// Returns an empty vector when the cell range is empty.
std::vector<CurveInterval> ZIntervalsForCellRange(
    uint32_t cx_lo, uint32_t cy_lo, uint32_t cx_hi, uint32_t cy_hi,
    uint32_t bits, const ZRangeOptions& options = {});

/// Convenience: decomposes a continuous window. The window is clamped to the
/// grid domain; an empty (or fully outside) window yields no intervals.
std::vector<CurveInterval> ZIntervalsForWindow(
    const GridMapper& grid, const Rect& window,
    const ZRangeOptions& options = {});

/// Merges a sorted interval list down to at most `max_intervals` by closing
/// the smallest gaps first. No-op if already within the budget.
void CapIntervalCount(std::vector<CurveInterval>* intervals,
                      size_t max_intervals);

/// Coalesces a sorted, non-overlapping interval list in place: any two
/// neighbors separated by a gap of at most `max_gap` uncovered values
/// (adjacent intervals have gap 0) are merged into one covering interval.
void CoalesceIntervals(std::vector<CurveInterval>* intervals,
                       uint64_t max_gap);

/// Set difference a \ b for sorted, non-overlapping interval lists. Used by
/// the kNN algorithms, which search only the ring R'_qi − R'_q(i−1) in each
/// enlargement round (Section 5.4).
std::vector<CurveInterval> SubtractIntervals(
    const std::vector<CurveInterval>& a, const std::vector<CurveInterval>& b);

/// Set union a ∪ b for sorted, non-overlapping interval lists (adjacent
/// intervals are coalesced). Used to accumulate the covered key space
/// across kNN enlargement rounds.
std::vector<CurveInterval> UnionIntervals(const std::vector<CurveInterval>& a,
                                          const std::vector<CurveInterval>& b);

/// One kNN enlargement step's annulus delta (Section 5.4's R'_qi −
/// R'_q(i−1), taken exactly rather than as a single bounding span): the Z
/// intervals of the round's window that were NOT already scanned, plus the
/// new cumulative covered set for the next round.
struct RingDecomposition {
  std::vector<CurveInterval> ring;     ///< decompose(outer) \ covered_in.
  std::vector<CurveInterval> covered;  ///< decompose(outer) ∪ covered_in.
};

/// Decomposes `outer` and subtracts the already-covered intervals. With an
/// empty `covered_in` this is exactly ZIntervalsForWindow (ring == covered).
/// Interval capping/coalescing in `options` may make the decomposition a
/// superset of the window's cells; `covered` records what the ring scans,
/// so later rounds never re-fetch a coalesced-in gap either.
RingDecomposition ZRingForWindow(const GridMapper& grid, const Rect& outer,
                                 const std::vector<CurveInterval>& covered_in,
                                 const ZRangeOptions& options = {});

}  // namespace peb
