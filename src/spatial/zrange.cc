#include "spatial/zrange.h"

#include <algorithm>
#include <cassert>

namespace peb {

namespace {

struct CellRange {
  uint32_t cx_lo, cy_lo, cx_hi, cy_hi;
};

/// Quadtree recursion. `level` is the number of remaining bit levels; the
/// current quadrant spans cells [qx, qx + size) x [qy, qy + size) where
/// size = 1 << level, and Z values [z_base, z_base + size^2).
void Decompose(uint32_t level, uint32_t qx, uint32_t qy, uint64_t z_base,
               const CellRange& query, std::vector<CurveInterval>* out) {
  uint32_t size = 1u << level;
  uint32_t x_hi = qx + size - 1;
  uint32_t y_hi = qy + size - 1;
  // Disjoint?
  if (x_hi < query.cx_lo || qx > query.cx_hi || y_hi < query.cy_lo ||
      qy > query.cy_hi) {
    return;
  }
  // Fully contained?
  if (qx >= query.cx_lo && x_hi <= query.cx_hi && qy >= query.cy_lo &&
      y_hi <= query.cy_hi) {
    uint64_t cell_count = static_cast<uint64_t>(size) * size;
    uint64_t lo = z_base;
    uint64_t hi = z_base + cell_count - 1;
    // Merge with the previous interval when contiguous: the recursion emits
    // intervals in increasing Z order.
    if (!out->empty() && out->back().hi + 1 == lo) {
      out->back().hi = hi;
    } else {
      out->push_back({lo, hi});
    }
    return;
  }
  assert(level > 0);
  uint32_t half = size >> 1;
  uint64_t quarter = static_cast<uint64_t>(half) * half;
  // Z-order of children: (0,0), (1,0), (0,1), (1,1) — x is the low
  // interleaved bit.
  Decompose(level - 1, qx, qy, z_base, query, out);
  Decompose(level - 1, qx + half, qy, z_base + quarter, query, out);
  Decompose(level - 1, qx, qy + half, z_base + 2 * quarter, query, out);
  Decompose(level - 1, qx + half, qy + half, z_base + 3 * quarter, query, out);
}

}  // namespace

void CapIntervalCount(std::vector<CurveInterval>* intervals,
                      size_t max_intervals) {
  if (max_intervals == 0 || intervals->size() <= max_intervals) return;
  // Repeatedly merge the pair with the smallest gap. The lists are short
  // (tens of entries), so the quadratic scan is fine.
  while (intervals->size() > max_intervals) {
    size_t best = 0;
    uint64_t best_gap = ~0ull;
    for (size_t i = 0; i + 1 < intervals->size(); ++i) {
      uint64_t gap = (*intervals)[i + 1].lo - (*intervals)[i].hi;
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    (*intervals)[best].hi = (*intervals)[best + 1].hi;
    intervals->erase(intervals->begin() + static_cast<ptrdiff_t>(best) + 1);
  }
}

void CoalesceIntervals(std::vector<CurveInterval>* intervals,
                       uint64_t max_gap) {
  if (intervals->size() < 2) return;
  size_t w = 0;  // Last written interval.
  for (size_t i = 1; i < intervals->size(); ++i) {
    const CurveInterval& cur = (*intervals)[i];
    CurveInterval& prev = (*intervals)[w];
    // Gap between [.., prev.hi] and [cur.lo, ..] is cur.lo - prev.hi - 1;
    // compare without overflow (the lists are sorted and non-overlapping,
    // so cur.lo > prev.hi >= 0 except at the very top of the domain).
    if (cur.lo <= prev.hi || cur.lo - prev.hi - 1 <= max_gap) {
      prev.hi = std::max(prev.hi, cur.hi);
    } else {
      (*intervals)[++w] = cur;
    }
  }
  intervals->resize(w + 1);
}

std::vector<CurveInterval> ZIntervalsForCellRange(
    uint32_t cx_lo, uint32_t cy_lo, uint32_t cx_hi, uint32_t cy_hi,
    uint32_t bits, const ZRangeOptions& options) {
  std::vector<CurveInterval> out;
  if (cx_lo > cx_hi || cy_lo > cy_hi) return out;
  CellRange query{cx_lo, cy_lo, cx_hi, cy_hi};
  Decompose(bits, 0, 0, 0, query, &out);
  CoalesceIntervals(&out, options.coalesce_gap);
  CapIntervalCount(&out, options.max_intervals);
  return out;
}

std::vector<CurveInterval> SubtractIntervals(
    const std::vector<CurveInterval>& a, const std::vector<CurveInterval>& b) {
  std::vector<CurveInterval> out;
  size_t j = 0;
  for (const CurveInterval& iv : a) {
    uint64_t lo = iv.lo;
    // Skip b-intervals entirely before lo.
    while (j < b.size() && b[j].hi < lo) ++j;
    size_t jj = j;
    while (lo <= iv.hi) {
      if (jj >= b.size() || b[jj].lo > iv.hi) {
        out.push_back({lo, iv.hi});
        break;
      }
      const CurveInterval& cut = b[jj];
      if (cut.lo > lo) {
        out.push_back({lo, cut.lo - 1});
      }
      if (cut.hi >= iv.hi) break;  // Remainder fully covered.
      lo = cut.hi + 1;
      ++jj;
    }
  }
  return out;
}

std::vector<CurveInterval> UnionIntervals(const std::vector<CurveInterval>& a,
                                          const std::vector<CurveInterval>& b) {
  std::vector<CurveInterval> merged;
  merged.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(merged),
             [](const CurveInterval& x, const CurveInterval& y) {
               return x.lo < y.lo;
             });
  std::vector<CurveInterval> out;
  for (const CurveInterval& iv : merged) {
    // Coalesce overlapping or adjacent intervals (guard hi+1 overflow).
    if (!out.empty() &&
        (iv.lo <= out.back().hi ||
         (out.back().hi != ~0ull && iv.lo == out.back().hi + 1))) {
      out.back().hi = std::max(out.back().hi, iv.hi);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

RingDecomposition ZRingForWindow(const GridMapper& grid, const Rect& outer,
                                 const std::vector<CurveInterval>& covered_in,
                                 const ZRangeOptions& options) {
  RingDecomposition out;
  std::vector<CurveInterval> dec = ZIntervalsForWindow(grid, outer, options);
  if (covered_in.empty()) {
    out.ring = dec;
    out.covered = std::move(dec);
    return out;
  }
  out.ring = SubtractIntervals(dec, covered_in);
  out.covered = UnionIntervals(dec, covered_in);
  return out;
}

std::vector<CurveInterval> ZIntervalsForWindow(const GridMapper& grid,
                                               const Rect& window,
                                               const ZRangeOptions& options) {
  Rect clamped = window.ClampedTo(Rect::Space(grid.space_side()));
  if (clamped.Empty()) return {};
  return ZIntervalsForCellRange(
      grid.CellOf(clamped.lo.x), grid.CellOf(clamped.lo.y),
      grid.CellOf(clamped.hi.x), grid.CellOf(clamped.hi.y), grid.bits(),
      options);
}

}  // namespace peb
