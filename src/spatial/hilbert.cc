#include "spatial/hilbert.h"

#include <cassert>

namespace peb {

namespace {

/// Rotates/flips a quadrant appropriately (the classic iterative algorithm).
void Rot(uint32_t n, uint32_t* x, uint32_t* y, uint32_t rx, uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = n - 1 - *x;
      *y = n - 1 - *y;
    }
    uint32_t t = *x;
    *x = *y;
    *y = t;
  }
}

}  // namespace

uint64_t HilbertEncode(uint32_t cx, uint32_t cy, uint32_t bits) {
  assert(bits <= kMaxGridBits);
  uint64_t d = 0;
  uint32_t x = cx;
  uint32_t y = cy;
  for (uint32_t s = (1u << bits) >> 1; s > 0; s >>= 1) {
    uint32_t rx = (x & s) > 0 ? 1 : 0;
    uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    Rot(1u << bits, &x, &y, rx, ry);
  }
  return d;
}

void HilbertDecode(uint64_t d, uint32_t bits, uint32_t* cx, uint32_t* cy) {
  assert(bits <= kMaxGridBits);
  uint32_t x = 0;
  uint32_t y = 0;
  uint64_t t = d;
  for (uint32_t s = 1; s < (1u << bits); s <<= 1) {
    uint32_t rx = 1 & static_cast<uint32_t>(t / 2);
    uint32_t ry = 1 & static_cast<uint32_t>(t ^ rx);
    Rot(s, &x, &y, rx, ry);
    x += s * rx;
    y += s * ry;
    t /= 4;
  }
  *cx = x;
  *cy = y;
}

}  // namespace peb
