// Z-curve (Morton order) encoding. The Bx-tree and PEB-tree map 2-D cell
// coordinates to a 1-D proximity-preserving value by bit interleaving
// (the paper's ZV component, Section 5.2, citing Moon et al. [22]).
#pragma once

#include <cstdint>

#include "spatial/geometry.h"

namespace peb {

/// Maximum supported bits per dimension (2*21 = 42 bits fits a uint64 with
/// room for the TID and SV components of the PEB key).
inline constexpr uint32_t kMaxGridBits = 21;

/// Interleaves the low `bits` bits of cx (even positions) and cy (odd
/// positions): z = ... y1 x1 y0 x0.
uint64_t ZEncode(uint32_t cx, uint32_t cy, uint32_t bits);

/// Inverse of ZEncode.
void ZDecode(uint64_t z, uint32_t bits, uint32_t* cx, uint32_t* cy);

/// Maps continuous coordinates in a square space of side `space_side` onto a
/// 2^bits x 2^bits uniform grid, clamping out-of-domain coordinates onto the
/// border cells.
class GridMapper {
 public:
  /// `bits` per dimension; the grid has 2^bits cells per side.
  GridMapper(double space_side, uint32_t bits);

  uint32_t bits() const { return bits_; }
  double space_side() const { return space_side_; }
  double cell_side() const { return cell_side_; }
  uint32_t cells_per_side() const { return cells_; }

  /// Grid cell of a continuous coordinate (clamped to the domain).
  uint32_t CellOf(double v) const;

  /// Z-curve value of a continuous point.
  uint64_t ZValueOf(const Point& p) const {
    return ZEncode(CellOf(p.x), CellOf(p.y), bits_);
  }

  /// Continuous bounding box of the cell column/row range
  /// [cx_lo, cx_hi] x [cy_lo, cy_hi].
  Rect CellRangeRect(uint32_t cx_lo, uint32_t cy_lo, uint32_t cx_hi,
                     uint32_t cy_hi) const;

 private:
  double space_side_;
  uint32_t bits_;
  uint32_t cells_;
  double cell_side_;
};

}  // namespace peb
