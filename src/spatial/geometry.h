// 2-D Euclidean geometry primitives used by the indexes, policies, and
// workload generators. The paper's space domain is the square
// [0, 1000] x [0, 1000] (Section 7.1).
#pragma once

#include <algorithm>
#include <cmath>
#include <ostream>

namespace peb {

/// A point (or vector) in 2-D Euclidean space.
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }

  friend bool operator==(const Point&, const Point&) = default;

  /// Euclidean norm.
  double Norm() const { return std::hypot(x, y); }

  /// Euclidean distance to `o`.
  double DistanceTo(const Point& o) const { return (*this - o).Norm(); }
};

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

/// An axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y]. A rectangle with
/// lo.x > hi.x or lo.y > hi.y is empty.
struct Rect {
  Point lo;
  Point hi;

  /// The full rectangle for a square space [0, side] x [0, side].
  static Rect Space(double side) { return {{0.0, 0.0}, {side, side}}; }

  /// A square centered at `c` with the given side length.
  static Rect CenteredSquare(Point c, double side) {
    double h = side / 2.0;
    return {{c.x - h, c.y - h}, {c.x + h, c.y + h}};
  }

  friend bool operator==(const Rect&, const Rect&) = default;

  bool Empty() const { return lo.x > hi.x || lo.y > hi.y; }

  double Width() const { return std::max(0.0, hi.x - lo.x); }
  double Height() const { return std::max(0.0, hi.y - lo.y); }
  double Area() const { return Width() * Height(); }

  Point Center() const { return {(lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0}; }

  /// True iff `p` lies inside (borders inclusive).
  bool Contains(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  /// True iff `o` lies fully inside this rectangle.
  bool ContainsRect(const Rect& o) const {
    return !o.Empty() && o.lo.x >= lo.x && o.hi.x <= hi.x && o.lo.y >= lo.y &&
           o.hi.y <= hi.y;
  }

  /// True iff the rectangles share at least a boundary point.
  bool Intersects(const Rect& o) const {
    return !Empty() && !o.Empty() && lo.x <= o.hi.x && o.lo.x <= hi.x &&
           lo.y <= o.hi.y && o.lo.y <= hi.y;
  }

  /// The intersection rectangle (possibly empty).
  Rect Intersection(const Rect& o) const {
    return {{std::max(lo.x, o.lo.x), std::max(lo.y, o.lo.y)},
            {std::min(hi.x, o.hi.x), std::min(hi.y, o.hi.y)}};
  }

  /// Area of overlap with `o` — the paper's O(locr1, locr2).
  double OverlapArea(const Rect& o) const {
    Rect i = Intersection(o);
    return i.Empty() ? 0.0 : i.Area();
  }

  /// Grows every border outward by `d` (>= 0).
  Rect Expanded(double d) const {
    return {{lo.x - d, lo.y - d}, {hi.x + d, hi.y + d}};
  }

  /// Grows asymmetrically: each border moves outward by the given amount.
  Rect ExpandedDirectional(double left, double right, double down,
                           double up) const {
    return {{lo.x - left, lo.y - down}, {hi.x + right, hi.y + up}};
  }

  /// Clamps this rectangle into `bounds`.
  Rect ClampedTo(const Rect& bounds) const {
    return Intersection(bounds);
  }

  /// Minimum distance from `p` to this rectangle (0 when inside).
  double MinDistanceTo(const Point& p) const {
    double dx = std::max({lo.x - p.x, 0.0, p.x - hi.x});
    double dy = std::max({lo.y - p.y, 0.0, p.y - hi.y});
    return std::hypot(dx, dy);
  }

  /// Radius of the inscribed circle around the center.
  double InscribedRadius() const {
    return std::min(Width(), Height()) / 2.0;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.lo << ", " << r.hi << "]";
}

}  // namespace peb
