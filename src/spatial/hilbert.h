// Hilbert curve encoding — an alternative space-filling curve for the
// location component of index keys. The paper uses the Z-curve and cites
// Moon et al. [22] (a Hilbert clustering analysis); we provide Hilbert as an
// ablation (bench_ablation) to quantify how much the curve choice matters
// once policy compatibility dominates the key.
#pragma once

#include <cstdint>

#include "spatial/geometry.h"
#include "spatial/zcurve.h"

namespace peb {

/// Maps cell coordinates to their Hilbert index on a 2^bits x 2^bits grid.
uint64_t HilbertEncode(uint32_t cx, uint32_t cy, uint32_t bits);

/// Inverse of HilbertEncode.
void HilbertDecode(uint64_t d, uint32_t bits, uint32_t* cx, uint32_t* cy);

/// Hilbert-value counterpart of GridMapper::ZValueOf.
inline uint64_t HilbertValueOf(const GridMapper& grid, const Point& p) {
  return HilbertEncode(grid.CellOf(p.x), grid.CellOf(p.y), grid.bits());
}

}  // namespace peb
