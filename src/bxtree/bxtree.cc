#include "bxtree/bxtree.h"

#include "bxtree/knn_schedule.h"

#include <algorithm>
#include <unordered_set>
#include <cmath>
#include <numbers>

namespace peb {

namespace {

BxKeyLayout LayoutFor(const MovingIndexOptions& options) {
  BxKeyLayout l;
  l.grid_bits = options.grid_bits;
  return l;
}

}  // namespace

BxTree::BxTree(BufferPool* pool, const MovingIndexOptions& options)
    : pool_(pool),
      options_(options),
      grid_(options.space_side, options.grid_bits),
      tree_(pool) {}

uint64_t BxTree::KeyFor(const MovingObject& object) const {
  BxKeyLayout layout = LayoutFor(options_);
  int64_t label = options_.partitions.LabelIndexFor(object.tu);
  Timestamp tlab = options_.partitions.LabelTimestamp(label);
  Point projected = object.PositionAt(tlab);
  uint64_t zv = grid_.ZValueOf(projected);  // Clamps into the domain.
  return layout.MakeKey(options_.partitions.PartitionOf(label), zv);
}

Status BxTree::Insert(const MovingObject& object) {
  if (objects_.contains(object.id)) {
    return Status::AlreadyExists("object " + std::to_string(object.id) +
                                 " already indexed");
  }
  StoredObject stored;
  stored.state = object;
  stored.label_index = options_.partitions.LabelIndexFor(object.tu);
  stored.key = KeyFor(object);

  ObjectRecord rec;
  rec.x = object.pos.x;
  rec.y = object.pos.y;
  rec.vx = object.vel.x;
  rec.vy = object.vel.y;
  rec.tu = object.tu;
  rec.pntp = object.id;

  PEB_RETURN_NOT_OK(tree_.Insert({stored.key, object.id}, rec));
  objects_.emplace(object.id, stored);
  label_counts_[stored.label_index]++;
  return Status::OK();
}

Status BxTree::Delete(UserId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  PEB_RETURN_NOT_OK(tree_.Delete({it->second.key, id}));
  auto lc = label_counts_.find(it->second.label_index);
  if (--lc->second == 0) label_counts_.erase(lc);
  objects_.erase(it);
  return Status::OK();
}

Status BxTree::Update(const MovingObject& object) {
  if (objects_.contains(object.id)) {
    PEB_RETURN_NOT_OK(Delete(object.id));
  }
  return Insert(object);
}

Result<MovingObject> BxTree::GetObject(UserId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  return it->second.state;
}

namespace {

/// Consumes entries from an iterator-like positioned at the scan start
/// until the key leaves [.., end_primary]. Shared by the LeafCursor fast
/// path and the legacy per-interval-descent path.
template <typename It>
Status ConsumeBxEntries(It& it, uint64_t end_primary, Timestamp tq,
                        const Rect* refine, std::vector<SpatialCandidate>* out,
                        QueryCounters* counters) {
  while (it.Valid()) {
    CompositeKey key = it.key();
    if (key.primary > end_primary) break;
    ObjectRecord rec = it.value();
    counters->candidates_examined++;
    MovingObject obj;
    obj.id = key.uid;
    obj.pos = {rec.x, rec.y};
    obj.vel = {rec.vx, rec.vy};
    obj.tu = rec.tu;
    Point pos = obj.PositionAt(tq);
    if (refine == nullptr || refine->Contains(pos)) {
      out->push_back({key.uid, pos, obj});
    }
    PEB_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

}  // namespace

Status BxTree::ScanInterval(ObjectBTree::LeafCursor* cursor,
                            uint32_t partition, uint64_t zlo, uint64_t zhi,
                            Timestamp tq, const Rect* refine,
                            std::vector<SpatialCandidate>* out) {
  BxKeyLayout layout = LayoutFor(options_);
  CompositeKey start = CompositeKey::Min(layout.MakeKey(partition, zlo));
  uint64_t end_primary = layout.MakeKey(partition, zhi);
  counters_.range_probes++;

  if (options_.leaf_cursor_fast_path && cursor != nullptr) {
    size_t d0 = cursor->descents();
    size_t h0 = cursor->chain_hops();
    PEB_RETURN_NOT_OK(cursor->SeekGE(start));
    counters_.seek_descents += cursor->descents() - d0;
    counters_.leaf_hops += cursor->chain_hops() - h0;
    return ConsumeBxEntries(*cursor, end_primary, tq, refine, out,
                            &counters_);
  }
  counters_.seek_descents++;
  PEB_ASSIGN_OR_RETURN(auto it, tree_.SeekGE(start));
  return ConsumeBxEntries(it, end_primary, tq, refine, out, &counters_);
}

Result<std::vector<SpatialCandidate>> BxTree::RangeQuery(const Rect& range,
                                                         Timestamp tq) {
  counters_ = QueryCounters{};
  std::vector<SpatialCandidate> out;
  ObjectBTree::LeafCursor cursor = tree_.NewCursor();
  cursor.set_prefetch(options_.prefetch_next_leaf);
  for (const auto& [label, count] : label_counts_) {
    Timestamp tlab = options_.partitions.LabelTimestamp(label);
    uint32_t partition = options_.partitions.PartitionOf(label);
    // Figure 2: positions are stored as of tlab, so the window must grow by
    // the maximum displacement over |tq - tlab| in every direction.
    double d = options_.max_speed * std::abs(tq - tlab);
    Rect enlarged = range.Expanded(d);
    for (const CurveInterval& iv :
         ZIntervalsForWindow(grid_, enlarged, options_.zrange)) {
      PEB_RETURN_NOT_OK(ScanInterval(&cursor, partition, iv.lo, iv.hi, tq,
                                     &range, &out));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpatialCandidate& a, const SpatialCandidate& b) {
              return a.uid < b.uid;
            });
  counters_.results = out.size();
  return out;
}

Status BxTree::ValidateInvariants() const {
  PEB_RETURN_NOT_OK(tree_.Validate());
  if (tree_.stats().num_entries != objects_.size()) {
    return Status::Corruption(
        "tree entry count " + std::to_string(tree_.stats().num_entries) +
        " != object table size " + std::to_string(objects_.size()));
  }
  std::unordered_map<int64_t, size_t> recount;
  for (const auto& [uid, stored] : objects_) {
    if (stored.state.id != uid) {
      return Status::Corruption("object table key " + std::to_string(uid) +
                                " stores state of user " +
                                std::to_string(stored.state.id));
    }
    if (stored.key != KeyFor(stored.state)) {
      return Status::Corruption("user " + std::to_string(uid) +
                                ": stored Bx key does not match the key "
                                "derived from the stored state");
    }
    if (stored.label_index !=
        options_.partitions.LabelIndexFor(stored.state.tu)) {
      return Status::Corruption("user " + std::to_string(uid) +
                                ": stored label index does not match tu");
    }
    recount[stored.label_index]++;
    auto rec = tree_.Lookup({stored.key, uid});
    if (!rec.ok()) {
      return Status::Corruption("user " + std::to_string(uid) +
                                " unreachable under its composite key: " +
                                rec.status().ToString());
    }
    if (rec->x != stored.state.pos.x || rec->y != stored.state.pos.y ||
        rec->vx != stored.state.vel.x || rec->vy != stored.state.vel.y ||
        rec->tu != stored.state.tu) {
      return Status::Corruption("user " + std::to_string(uid) +
                                ": tree payload disagrees with the object "
                                "table");
    }
  }
  if (recount != label_counts_) {
    return Status::Corruption("per-label histogram out of sync with the "
                              "object table");
  }
  return Status::OK();
}

double BxTree::EstimateKnnDistance(size_t k) const {
  size_t n = std::max<size_t>(size(), 1);
  double ratio = std::min(1.0, static_cast<double>(k) / static_cast<double>(n));
  // Dk = 2/sqrt(pi) * (1 - sqrt(1 - (k/N)^(1/2))) in unit space [33],
  // scaled by the space side.
  double inner = 1.0 - std::sqrt(ratio);
  double dk = 2.0 / std::sqrt(std::numbers::pi) *
              (1.0 - std::sqrt(std::max(0.0, inner)));
  return std::max(dk * options_.space_side, 1e-6 * options_.space_side);
}

Result<std::vector<Neighbor>> BxTree::KnnQuery(const Point& qloc, size_t k,
                                               Timestamp tq, AcceptFn accept,
                                               void* accept_ctx) {
  counters_ = QueryCounters{};
  std::vector<Neighbor> best;  // Accepted candidates, ascending distance.
  if (k == 0 || size() == 0) return best;

  // Initial radius rq = Dk / k (Section 5.4), grown by rq per round.
  double dk = EstimateKnnDistance(k);
  double rq = dk / static_cast<double>(k);
  double space_diagonal = options_.space_side * std::numbers::sqrt2;

  std::unordered_set<UserId> seen;
  auto consider = [&](const SpatialCandidate& cand) {
    if (!seen.insert(cand.uid).second) return;  // Ring overlap safety net.
    if (accept != nullptr && !accept(accept_ctx, cand)) return;
    double dist = cand.pos.DistanceTo(qloc);
    Neighbor nb{cand.uid, dist};
    auto pos = std::lower_bound(best.begin(), best.end(), nb,
                                [](const Neighbor& a, const Neighbor& b) {
                                  return a.distance < b.distance;
                                });
    best.insert(pos, nb);
  };

  // Per-label covered Z intervals from previous rounds, so each round scans
  // only the ring R'_qi − R'_q(i−1).
  std::unordered_map<int64_t, std::vector<CurveInterval>> covered;

  ObjectBTree::LeafCursor cursor = tree_.NewCursor();
  cursor.set_prefetch(options_.prefetch_next_leaf);
  std::vector<SpatialCandidate> found;  // Reused across ring scans.

  for (size_t round = 1;; ++round) {
    counters_.rounds = round;
    double radius = KnnRadiusForRound(rq, round - 1);
    Rect rect = Rect::CenteredSquare(qloc, 2.0 * radius);

    for (const auto& [label, count] : label_counts_) {
      Timestamp tlab = options_.partitions.LabelTimestamp(label);
      uint32_t partition = options_.partitions.PartitionOf(label);
      double d = options_.max_speed * std::abs(tq - tlab);
      Rect enlarged = rect.Expanded(d);
      auto intervals = ZIntervalsForWindow(grid_, enlarged, options_.zrange);
      auto fresh = SubtractIntervals(intervals, covered[label]);
      // Accumulate the union: with capped (gap-merged) interval lists, the
      // current round's list is not necessarily a superset of the previous
      // round's, so plain replacement would rescan merged gap cells.
      covered[label] = UnionIntervals(covered[label], intervals);
      for (const CurveInterval& iv : fresh) {
        found.clear();
        PEB_RETURN_NOT_OK(ScanInterval(&cursor, partition, iv.lo, iv.hi, tq,
                                       nullptr, &found));
        for (const SpatialCandidate& c : found) consider(c);
      }
    }

    // Done when k accepted candidates lie within the inscribed circle of
    // the (unenlarged) current square — everything inside that circle has
    // been examined in every partition.
    if (best.size() >= k && best[k - 1].distance <= radius) break;
    if (radius >= space_diagonal) break;  // Searched everything.
  }

  if (best.size() > k) best.resize(k);
  counters_.results = best.size();
  return best;
}

}  // namespace peb
