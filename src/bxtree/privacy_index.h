// The common interface of the two privacy-aware query processors compared
// in the paper: the PEB-tree (Section 5) and the spatial-index filtering
// approach (Section 4). The experiment harness drives both through this
// interface and reads I/O from the underlying buffer pool.
#pragma once

#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "motion/moving_object.h"
#include "spatial/geometry.h"
#include "storage/buffer_pool.h"

namespace peb {

/// A kNN answer entry.
struct Neighbor {
  UserId uid = kInvalidUserId;
  double distance = 0.0;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// Per-query work counters (tree I/O is read from BufferPool::stats()).
struct QueryCounters {
  size_t candidates_examined = 0;  ///< Leaf entries inspected.
  size_t results = 0;              ///< Entries surviving verification.
  size_t range_probes = 0;         ///< 1-D key intervals searched.
  size_t rounds = 0;               ///< kNN enlargement rounds.
  size_t seek_descents = 0;        ///< Root descents spent positioning.
  size_t leaf_hops = 0;            ///< Sibling-link hops spent positioning.
};

/// A moving-object index answering privacy-aware queries.
class PrivacyAwareIndex {
 public:
  virtual ~PrivacyAwareIndex() = default;

  /// Inserts a (new) user's state. Fails with AlreadyExists when present.
  virtual Status Insert(const MovingObject& object) = 0;

  /// Replaces the state of user `object.id` (delete + insert).
  virtual Status Update(const MovingObject& object) = 0;

  /// Removes user `id`. Fails with NotFound when absent.
  virtual Status Delete(UserId id) = 0;

  /// Number of indexed users.
  virtual size_t size() const = 0;

  /// PRQ (Definition 2): users inside `range` at time `tq` whose policies
  /// allow `issuer` to see them. The result is sorted by user id.
  virtual Result<std::vector<UserId>> RangeQuery(UserId issuer,
                                                 const Rect& range,
                                                 Timestamp tq) = 0;

  /// PkNN (Definition 3): the k nearest users to `qloc` at `tq` among those
  /// whose policies allow `issuer`. Sorted by ascending distance; fewer
  /// than k entries when fewer qualify.
  virtual Result<std::vector<Neighbor>> KnnQuery(UserId issuer,
                                                 const Point& qloc, size_t k,
                                                 Timestamp tq) = 0;

  /// The buffer pool serving this index (for I/O accounting). Indexes
  /// spanning several pools (e.g. a sharded engine) return a representative
  /// pool; use aggregate_io() for totals.
  virtual BufferPool* pool() = 0;

  /// Cumulative I/O totals across every buffer pool serving this index.
  /// For single-pool indexes this is pool()->stats(); a sharded engine sums
  /// its per-shard pools so benchmark numbers stay comparable to the
  /// paper's single-tree figures.
  virtual IoStats aggregate_io() const = 0;

  /// Zeroes the traffic counters of every pool serving this index.
  virtual void ResetIo() = 0;

  /// Counters of the most recent query.
  virtual const QueryCounters& last_query() const = 0;
};

}  // namespace peb
