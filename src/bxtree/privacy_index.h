// The common interface of the two privacy-aware query processors compared
// in the paper: the PEB-tree (Section 5) and the spatial-index filtering
// approach (Section 4). The experiment harness drives both through this
// interface and reads I/O from the underlying buffer pool.
#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "motion/moving_object.h"
#include "spatial/geometry.h"
#include "storage/buffer_pool.h"

namespace peb {

class EncodingSnapshot;  // policy/sequence_value.h

namespace telemetry {
class TraceBuilder;  // telemetry/trace.h
}

/// A kNN answer entry.
struct Neighbor {
  UserId uid = kInvalidUserId;
  double distance = 0.0;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// Per-query work counters (tree I/O is read from BufferPool::stats()).
struct QueryCounters {
  size_t candidates_examined = 0;  ///< Leaf entries inspected.
  size_t results = 0;              ///< Entries surviving verification.
  size_t range_probes = 0;         ///< 1-D key intervals searched.
  size_t rounds = 0;               ///< kNN enlargement rounds.
  size_t seek_descents = 0;        ///< Root descents spent positioning.
  size_t leaf_hops = 0;            ///< Sibling-link hops spent positioning.

  QueryCounters& operator+=(const QueryCounters& o) {
    candidates_examined += o.candidates_examined;
    results += o.results;
    range_probes += o.range_probes;
    rounds += o.rounds;
    seek_descents += o.seek_descents;
    leaf_hops += o.leaf_hops;
    return *this;
  }
};

/// Per-query observability carried out of a query by value: the query's
/// work counters plus its own buffer-pool traffic delta. This replaces the
/// old last_query()/ResetIo() observer pattern, which is meaningless when
/// queries overlap — ...WithStats entry points fill one of these per call,
/// and the service layer forwards it inside every QueryResponse.
struct QueryStats {
  QueryCounters counters;
  IoStats io;
  /// The policy-encoding epoch this query executed against — pinned at
  /// admission, so a response always names one consistent (encoding,
  /// index-keys) version even while re-encodes run concurrently.
  uint64_t epoch = 0;
  /// Non-null when this query is traced: layers below open spans under the
  /// caller's span and attribute their counters/io deltas to them. Owned by
  /// the service layer (or whoever started the trace), never by the index.
  telemetry::TraceBuilder* trace = nullptr;
  /// The span the current layer should parent its spans under.
  size_t trace_span = static_cast<size_t>(-1);
};

// --- uniform request validation --------------------------------------------
// Every PrivacyAwareIndex rejects malformed requests with the SAME status
// codes (tests/service_test.cc holds all implementations to this):
//   * empty/inverted query rectangle -> InvalidArgument
//   * k == 0                         -> InvalidArgument
//   * unknown issuer                 -> NotFound

/// Empty or inverted (lo > hi on either axis) rectangles are invalid.
inline Status ValidateQueryRect(const Rect& range) {
  if (range.Empty()) {
    return Status::InvalidArgument("empty or inverted query rectangle");
  }
  return Status::OK();
}

/// k == 0 asks for nothing; uniformly rejected rather than answered.
inline Status ValidateQueryK(size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  return Status::OK();
}

/// The uniform unknown-issuer error. PEB-based indexes resolve the issuer
/// against the policy encoding; the filtering baseline (which has no
/// encoding) against its set of indexed users.
inline Status UnknownIssuerError(UserId issuer) {
  return Status::NotFound("issuer " + std::to_string(issuer) +
                          " is not known to this index");
}

/// A moving-object index answering privacy-aware queries.
class PrivacyAwareIndex {
 public:
  virtual ~PrivacyAwareIndex() = default;

  /// Inserts a (new) user's state. Fails with AlreadyExists when present.
  virtual Status Insert(const MovingObject& object) = 0;

  /// Replaces the state of user `object.id` (delete + insert).
  virtual Status Update(const MovingObject& object) = 0;

  /// Removes user `id`. Fails with NotFound when absent.
  virtual Status Delete(UserId id) = 0;

  /// Number of indexed users.
  virtual size_t size() const = 0;

  /// Current stored state of user `id`; NotFound when not indexed. Standing
  /// structures (e.g. ContinuousQueryMonitor) re-evaluate memberships
  /// through this, which is what lets them run over any index.
  virtual Result<MovingObject> GetObject(UserId id) const = 0;

  /// True when PRQ/PkNN may be issued from several threads at once (the
  /// sharded engine). Single-tree indexes return false and callers (the
  /// service layer) must serialize queries externally.
  virtual bool SupportsConcurrentQueries() const { return false; }

  /// Adopts a new policy-encoding snapshot, atomically with respect to
  /// queries: swaps the index's encoding and re-keys `rekey` (delete +
  /// insert at the new quantized SV). `rekey == nullptr` means "diff every
  /// hosted record against the new snapshot" — self-sufficient but O(n)
  /// key computations. Users in `rekey` that are not currently indexed are
  /// skipped. Thread-safe indexes (the sharded engine) take their internal
  /// exclusive lock; single-tree indexes rely on the caller (the service
  /// layer) for exclusion, like every other mutation.
  virtual Status AdoptSnapshot(std::shared_ptr<const EncodingSnapshot>,
                               const std::vector<UserId>* /*rekey*/) {
    return Status::NotSupported(
        "this index does not consume policy-encoding snapshots");
  }

  /// Epoch of the snapshot this index currently serves (0 for indexes that
  /// do not embed the encoding in their keys, until one is adopted).
  virtual uint64_t encoding_epoch() const { return 0; }

  /// PRQ (Definition 2) with per-query observability carried out by value:
  /// users inside `range` at time `tq` whose policies allow `issuer` to see
  /// them, sorted by user id. When `stats` is non-null it receives this
  /// query's own counters and buffer-pool traffic delta, exact even under
  /// concurrent submission (counters never live in shared index state).
  virtual Result<std::vector<UserId>> RangeQueryWithStats(
      UserId issuer, const Rect& range, Timestamp tq, QueryStats* stats) = 0;

  /// PkNN (Definition 3) with per-query observability: the k nearest users
  /// to `qloc` at `tq` among those whose policies allow `issuer`. Sorted by
  /// ascending distance; fewer than k entries when fewer qualify.
  virtual Result<std::vector<Neighbor>> KnnQueryWithStats(
      UserId issuer, const Point& qloc, size_t k, Timestamp tq,
      QueryStats* stats) = 0;

  /// Convenience PRQ for callers that do not need observability.
  Result<std::vector<UserId>> RangeQuery(UserId issuer, const Rect& range,
                                         Timestamp tq) {
    return RangeQueryWithStats(issuer, range, tq, nullptr);
  }

  /// Convenience PkNN for callers that do not need observability.
  Result<std::vector<Neighbor>> KnnQuery(UserId issuer, const Point& qloc,
                                         size_t k, Timestamp tq) {
    return KnnQueryWithStats(issuer, qloc, k, tq, nullptr);
  }

  /// The buffer pool serving this index (for I/O accounting). Indexes
  /// spanning several pools (e.g. a sharded engine) return a representative
  /// pool; use aggregate_io() for totals.
  virtual BufferPool* pool() = 0;

  /// Cumulative I/O totals across every buffer pool serving this index.
  /// For single-pool indexes this is pool()->stats(); a sharded engine sums
  /// its per-shard pools so benchmark numbers stay comparable to the
  /// paper's single-tree figures.
  virtual IoStats aggregate_io() const = 0;

  /// Zeroes the traffic counters of every pool serving this index. For
  /// separating experiment phases (build vs query); per-query accounting
  /// uses the IoStats delta carried in QueryStats/QueryResponse instead,
  /// which stays exact when queries overlap.
  virtual void ResetIo() = 0;
};

}  // namespace peb
