// Shared kNN enlargement schedule.
//
// The paper grows the kNN query square linearly: radius_j = j * rq with
// rq = Dk/k (Section 5.4). When the qualifying users are sparse relative to
// the population (the defining situation for privacy-aware queries), a
// purely linear schedule needs hundreds of rounds before the k-th
// qualified user is inside the inscribed circle, which repeatedly rescans
// and evicts the same pages. Both competitors therefore use the same
// bounded schedule: linear growth for the first kKnnLinearRounds rounds,
// doubling afterwards. Rings stay nested, so each key range is still
// scanned at most once per query; late rounds are merely coarser.
#pragma once

#include <cmath>
#include <cstddef>

namespace peb {

inline constexpr size_t kKnnLinearRounds = 8;

/// Radius of enlargement round `j` (0-based) for base step `rq`.
inline double KnnRadiusForRound(double rq, size_t j) {
  if (j < kKnnLinearRounds) return rq * static_cast<double>(j + 1);
  double base = rq * static_cast<double>(kKnnLinearRounds);
  return base * std::pow(2.0, static_cast<double>(j + 1 - kKnnLinearRounds));
}

/// Incremental-path schedule: round 0 starts at the cost-model-seeded
/// radius (costmodel::EstimateKnnSeedRadius, derived from the CANDIDATE
/// density rather than the population density), doubling afterwards. When
/// the seed is right, round 0 already contains the k-th qualified user and
/// the search closes after one annulus-free scan; a mis-seeded query
/// reaches any radius within log2 rounds instead of radius/rq rounds.
/// Rings stay nested, so annulus deltas remain well defined.
inline double KnnSeededRadiusForRound(double seed, size_t j) {
  return seed * std::pow(2.0, static_cast<double>(j));
}

}  // namespace peb
