// Bx-tree key machinery (Section 2.1, "The Bx-Tree"):
//
//   Bx_value(O, tu) = [index_partition]2 ⊕ [x_rep]2            (Eq. 1)
//   index_partition = (tlab/(Δtmu/n) − 1) mod (n+1)            (Eq. 2)
//   x_rep           = Z-curve(position as of tlab)             (Eq. 3)
//
// The time axis is cut into phases of length Δtmu/n; an update at tu is
// indexed as of the label timestamp two phases ahead, so at any instant at
// most n+1 distinct label timestamps — one per partition — hold live data.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

#include "common/types.h"

namespace peb {

/// Time partitioning shared by the Bx-tree and the PEB-tree.
struct TimePartitionLayout {
  /// Δtmu: the maximum update interval (objects must update at least this
  /// often). The value 120 follows the Bx-tree evaluation settings [13].
  double delta_t_mu = 120.0;
  /// n: phases per Δtmu (the Bx-tree default of 2 gives 3 partitions).
  uint32_t n = 2;

  double PhaseLength() const { return delta_t_mu / n; }
  uint32_t NumPartitions() const { return n + 1; }

  /// Integer label index: label timestamps are label_index * PhaseLength().
  /// An update at tu is indexed as of ⌈tu + Δtmu/n⌉_l, i.e. two phases
  /// ahead of the phase containing tu.
  int64_t LabelIndexFor(Timestamp tu) const {
    return static_cast<int64_t>(std::floor(tu / PhaseLength())) + 2;
  }

  Timestamp LabelTimestamp(int64_t label_index) const {
    return static_cast<double>(label_index) * PhaseLength();
  }

  /// Equation 2, expressed on the label index.
  uint32_t PartitionOf(int64_t label_index) const {
    int64_t p = (label_index - 1) % static_cast<int64_t>(NumPartitions());
    if (p < 0) p += NumPartitions();
    return static_cast<uint32_t>(p);
  }
};

/// Packs (partition, zv) into the 1-D Bx value.
struct BxKeyLayout {
  uint32_t tid_bits = 4;   ///< Bits for the partition number.
  uint32_t grid_bits = 10; ///< Bits per spatial dimension.

  uint32_t zv_bits() const { return 2 * grid_bits; }
  uint32_t total_bits() const { return tid_bits + zv_bits(); }

  uint64_t MakeKey(uint32_t partition, uint64_t zv) const {
    assert(partition < (1u << tid_bits));
    assert(zv < (1ull << zv_bits()));
    return (static_cast<uint64_t>(partition) << zv_bits()) | zv;
  }

  uint32_t PartitionOfKey(uint64_t key) const {
    return static_cast<uint32_t>(key >> zv_bits());
  }
  uint64_t ZvOfKey(uint64_t key) const {
    return key & ((1ull << zv_bits()) - 1);
  }
};

}  // namespace peb
