// The spatial-index filtering approach (Section 4): process privacy-aware
// queries as if they were plain spatial queries on the Bx-tree, then filter
// the preliminary result by evaluating each found user's location-privacy
// policies against the query issuer. This is the baseline the PEB-tree is
// compared with throughout Section 7.
#pragma once

#include <memory>

#include "bxtree/bxtree.h"
#include "bxtree/privacy_index.h"
#include "policy/policy_store.h"
#include "policy/role_registry.h"
#include "policy/sequence_value.h"

namespace peb {

class FilteringIndex final : public PrivacyAwareIndex {
 public:
  /// `store` and `roles` must outlive the index.
  FilteringIndex(BufferPool* pool, const MovingIndexOptions& options,
                 const PolicyStore* store, const RoleRegistry* roles,
                 double time_domain = kDefaultTimeDomain)
      : tree_(pool, options),
        store_(store),
        roles_(roles),
        time_domain_(time_domain) {}

  Status Insert(const MovingObject& object) override {
    return tree_.Insert(object);
  }
  Status Update(const MovingObject& object) override {
    return tree_.Update(object);
  }
  Status Delete(UserId id) override { return tree_.Delete(id); }
  size_t size() const override { return tree_.size(); }

  /// Snapshot adoption: the Bx key embeds no sequence values, so no record
  /// moves — the index only tracks the epoch it serves (responses report
  /// it) and keeps verifying against the live store, whose mutations the
  /// service serializes against queries.
  Status AdoptSnapshot(std::shared_ptr<const EncodingSnapshot> snapshot,
                       const std::vector<UserId>* /*rekey*/) override {
    if (snapshot == nullptr) {
      return Status::InvalidArgument("cannot adopt a null encoding snapshot");
    }
    snapshot_ = std::move(snapshot);
    return Status::OK();
  }
  uint64_t encoding_epoch() const override {
    return snapshot_ == nullptr ? 0 : snapshot_->epoch();
  }
  Result<MovingObject> GetObject(UserId id) const override {
    return tree_.GetObject(id);
  }
  BufferPool* pool() override { return tree_.pool(); }
  IoStats aggregate_io() const override { return tree_.pool()->stats(); }
  void ResetIo() override { tree_.pool()->ResetStats(); }

  /// PRQ: spatial range query, then policy filtering on the result. The
  /// counters come from the underlying BxTree's per-query slot, which is
  /// exact because this single-tree index is externally serialized.
  Result<std::vector<UserId>> RangeQueryWithStats(UserId issuer,
                                                  const Rect& range,
                                                  Timestamp tq,
                                                  QueryStats* stats) override;

  /// PkNN: iterative spatial enlargement that keeps going until k
  /// policy-qualified users are confirmed (the Section 4 example: when the
  /// spatial NN fails the policy check, "the query then needs to examine
  /// the next nearest neighbor, and this must be repeated").
  Result<std::vector<Neighbor>> KnnQueryWithStats(UserId issuer,
                                                  const Point& qloc, size_t k,
                                                  Timestamp tq,
                                                  QueryStats* stats) override;

  BxTree& tree() { return tree_; }

 private:
  /// Uniform validation: the filtering approach has no policy encoding, so
  /// its issuer universe is the set of currently indexed users (in the
  /// experiment harness every encoding-covered user is indexed, so the
  /// three indexes agree).
  Status ValidateIssuer(UserId issuer) const {
    if (!tree_.GetObject(issuer).ok()) return UnknownIssuerError(issuer);
    return Status::OK();
  }

  bool Qualifies(UserId issuer, const SpatialCandidate& cand,
                 Timestamp tq) const {
    return cand.uid != issuer &&
           store_->Allows(cand.uid, issuer, cand.pos, tq, *roles_,
                          time_domain_);
  }

  BxTree tree_;
  const PolicyStore* store_;
  const RoleRegistry* roles_;
  double time_domain_;
  /// The epoch this index reports; keys are encoding-independent.
  std::shared_ptr<const EncodingSnapshot> snapshot_;
};

}  // namespace peb
