#include "bxtree/filtering_index.h"

#include <algorithm>

namespace peb {

Result<std::vector<UserId>> FilteringIndex::RangeQuery(UserId issuer,
                                                       const Rect& range,
                                                       Timestamp tq) {
  PEB_RETURN_NOT_OK(ValidateQueryRect(range));
  PEB_RETURN_NOT_OK(ValidateIssuer(issuer));
  PEB_ASSIGN_OR_RETURN(auto candidates, tree_.RangeQuery(range, tq));
  std::vector<UserId> out;
  for (const SpatialCandidate& cand : candidates) {
    if (Qualifies(issuer, cand, tq)) out.push_back(cand.uid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

struct AcceptCtx {
  const FilteringIndex* self;
  UserId issuer;
  Timestamp tq;
  const PolicyStore* store;
  const RoleRegistry* roles;
  double time_domain;
};

bool PolicyAccept(void* raw, const SpatialCandidate& cand) {
  auto* ctx = static_cast<AcceptCtx*>(raw);
  return cand.uid != ctx->issuer &&
         ctx->store->Allows(cand.uid, ctx->issuer, cand.pos, ctx->tq,
                            *ctx->roles, ctx->time_domain);
}

}  // namespace

Result<std::vector<Neighbor>> FilteringIndex::KnnQuery(UserId issuer,
                                                       const Point& qloc,
                                                       size_t k,
                                                       Timestamp tq) {
  PEB_RETURN_NOT_OK(ValidateQueryK(k));
  PEB_RETURN_NOT_OK(ValidateIssuer(issuer));
  AcceptCtx ctx{this, issuer, tq, store_, roles_, time_domain_};
  return tree_.KnnQuery(qloc, k, tq, &PolicyAccept, &ctx);
}

}  // namespace peb
