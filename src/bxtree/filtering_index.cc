#include "bxtree/filtering_index.h"

#include <algorithm>

#include "telemetry/trace.h"

namespace peb {

Result<std::vector<UserId>> FilteringIndex::RangeQueryWithStats(
    UserId issuer, const Rect& range, Timestamp tq, QueryStats* stats) {
  PEB_RETURN_NOT_OK(ValidateQueryRect(range));
  PEB_RETURN_NOT_OK(ValidateIssuer(issuer));
  size_t span = telemetry::TraceScope::Open(stats, "bx-tree prq");
  BufferPool::ThreadIoScope io_scope(stats == nullptr ? nullptr
                                                      : &stats->io);
  PEB_ASSIGN_OR_RETURN(auto candidates, tree_.RangeQuery(range, tq));
  std::vector<UserId> out;
  for (const SpatialCandidate& cand : candidates) {
    if (Qualifies(issuer, cand, tq)) out.push_back(cand.uid);
  }
  std::sort(out.begin(), out.end());
  if (stats != nullptr) {
    // The BxTree's per-query slot is exact here: this single-tree index is
    // externally serialized, so no other query interleaved with ours.
    stats->counters = tree_.last_query();
    stats->counters.results = out.size();
    stats->epoch = encoding_epoch();
    telemetry::TraceScope::Close(stats, span, stats->counters, stats->io);
  }
  return out;
}

namespace {

struct AcceptCtx {
  const FilteringIndex* self;
  UserId issuer;
  Timestamp tq;
  const PolicyStore* store;
  const RoleRegistry* roles;
  double time_domain;
};

bool PolicyAccept(void* raw, const SpatialCandidate& cand) {
  auto* ctx = static_cast<AcceptCtx*>(raw);
  return cand.uid != ctx->issuer &&
         ctx->store->Allows(cand.uid, ctx->issuer, cand.pos, ctx->tq,
                            *ctx->roles, ctx->time_domain);
}

}  // namespace

Result<std::vector<Neighbor>> FilteringIndex::KnnQueryWithStats(
    UserId issuer, const Point& qloc, size_t k, Timestamp tq,
    QueryStats* stats) {
  PEB_RETURN_NOT_OK(ValidateQueryK(k));
  PEB_RETURN_NOT_OK(ValidateIssuer(issuer));
  size_t span = telemetry::TraceScope::Open(stats, "bx-tree pknn");
  BufferPool::ThreadIoScope io_scope(stats == nullptr ? nullptr
                                                      : &stats->io);
  AcceptCtx ctx{this, issuer, tq, store_, roles_, time_domain_};
  auto result = tree_.KnnQuery(qloc, k, tq, &PolicyAccept, &ctx);
  if (stats != nullptr) {
    stats->counters = tree_.last_query();
    stats->epoch = encoding_epoch();
    telemetry::TraceScope::Close(stats, span, stats->counters, stats->io);
  }
  return result;
}

}  // namespace peb
