// The Bx-tree (Jensen, Lin, Ooi [13]): B+-tree-based moving object index.
//
// Objects are mapped to 1-D values by concatenating the time-partition
// number with the Z-curve value of the object's position as of its label
// timestamp (bx_key.h). Range queries enlarge the window per partition to
// compensate for the time difference between the query time and the label
// timestamp (Figure 2), then scan the Z-value intervals of the enlarged
// window. kNN queries iteratively enlarge a range query until k neighbors
// are confirmed within the inscribed circle (Section 2.1 / 5.4).
//
// This is both (a) the privacy-unaware spatial index underlying the
// filtering baseline of Section 4, and (b) the base structure the PEB-tree
// extends with policy sequence values.
#pragma once

#include <unordered_map>
#include <vector>

#include "btree/btree.h"
#include "btree/btree_traits.h"
#include "bxtree/bx_key.h"
#include "bxtree/privacy_index.h"
#include "common/result.h"
#include "common/status.h"
#include "motion/moving_object.h"
#include "spatial/zcurve.h"
#include "spatial/zrange.h"
#include "storage/buffer_pool.h"

namespace peb {

/// Configuration shared by the Bx-tree and (extended) by the PEB-tree.
struct MovingIndexOptions {
  double space_side = 1000.0;
  uint32_t grid_bits = 10;  ///< Z-curve grid resolution per dimension.
  TimePartitionLayout partitions;
  /// Per-axis speed bound used for query-window enlargement. Must
  /// dominate every indexed object's |vx|, |vy|.
  double max_speed = 3.0;
  /// Optional cap on Z intervals per window (0 = exact decomposition).
  /// Indexes default to a small coalescing gap: merging near-adjacent Z
  /// intervals scans a few extra cells (discarded by query refinement, so
  /// answers are unchanged) but saves one key-range probe per merge.
  ZRangeOptions zrange{.max_intervals = 0, .coalesce_gap = 3};
  /// Scan intervals with a persistent LeafCursor (one descent plus
  /// sibling-link hops per batch of sorted probes) instead of one root
  /// descent per interval. The legacy path is kept for the
  /// result-equivalence tests and A/B benches.
  bool leaf_cursor_fast_path = true;
  /// Let scans hint the buffer pool to stage the next sibling leaf. Off by
  /// default: prefetch reads perturb the physical-read counts the figure
  /// benches compare against the paper.
  bool prefetch_next_leaf = false;
  /// Incremental PkNN fast path (PEB-tree only): the initial search radius
  /// is seeded from the analytic cost model's candidate-density estimate
  /// (doubling afterwards), each enlargement round scans only the exact
  /// annulus delta (the round's Z decomposition minus every interval a
  /// previous round already covered), and the sharded engine streams
  /// per-shard scans instead of barriering each round. The legacy
  /// Figure-9 path (fixed Dk/k step, cumulative single-span rings, global
  /// per-round barrier) is kept behind this flag as the result-equivalence
  /// oracle for tests and the A/B bench cell.
  bool incremental_knn = true;
  /// Coalesce friend rows whose quantized SVs differ by at most this much
  /// into one SV-run key-range scan spanning the run's whole interval list
  /// (0 = per-row probing). Under the paper's grouping factor an issuer's
  /// friends concentrate on few, often consecutive quantized SVs, so
  /// per-row probing multiplies seek descents; a run scan walks the run's
  /// sparse adjacent rows once instead (extra entries are discarded by the
  /// wanted-set filter, so answers are unchanged). Applies to PRQ
  /// per-friend scans and incremental PkNN.
  uint32_t qsv_run_gap = 1;
  /// Run the deep structural validators (ValidateInvariants) inside every
  /// exclusive batch section — ApplyBatch, LoadDataset, AdoptSnapshot —
  /// so a corrupting batch is rejected before any query can observe it.
  /// Costs a full tree walk per batch (see README "Correctness tooling");
  /// off by default, on in the randomized-churn invariant tests.
  bool paranoid_checks = false;
  /// Log-structured update ingestion (sharded engine only): updates append
  /// to a per-shard in-memory delta (memtable) under a cheap per-shard
  /// latch instead of applying to the B+-tree under the engine-wide
  /// exclusive state lock, and every read path merges the delta with the
  /// tree scan (delta entries shadow tree entries by object id, tombstones
  /// suppress them). Deltas drain into the trees in bounded merges — on a
  /// record-count threshold, an optional background thread, or explicit
  /// MergeDeltas(). The direct-apply path is kept behind this flag as the
  /// result-equivalence oracle for tests and the A/B interference bench
  /// cell, per the leaf_cursor / incremental_knn pattern.
  bool delta_ingest = true;
};

/// A candidate produced by the spatial search (pre-verification state).
struct SpatialCandidate {
  UserId uid = kInvalidUserId;
  Point pos;  ///< Position extrapolated to the query time.
  MovingObject state;
};

/// The Bx-tree. Answers plain (privacy-unaware) range and kNN queries; the
/// privacy-aware interface is provided by FilteringIndex on top.
class BxTree {
 public:
  BxTree(BufferPool* pool, const MovingIndexOptions& options);

  Status Insert(const MovingObject& object);
  Status Update(const MovingObject& object);
  Status Delete(UserId id);

  size_t size() const { return objects_.size(); }
  const MovingIndexOptions& options() const { return options_; }
  const BTreeStats& tree_stats() const { return tree_.stats(); }
  BufferPool* pool() { return pool_; }
  const BufferPool* pool() const { return pool_; }
  const QueryCounters& last_query() const { return counters_; }

  /// Current stored state of a user (for tests / the object table role).
  Result<MovingObject> GetObject(UserId id) const;

  /// All users whose position at `tq` falls within `range`.
  Result<std::vector<SpatialCandidate>> RangeQuery(const Rect& range,
                                                   Timestamp tq);

  /// The k users nearest to `qloc` at `tq`. `accept` filters candidates
  /// (the filtering baseline passes the policy check here); pass nullptr
  /// for the privacy-unaware query. Keeps enlarging until k accepted
  /// candidates are confirmed, exactly as Section 4 requires.
  using AcceptFn = bool (*)(void* ctx, const SpatialCandidate&);
  Result<std::vector<Neighbor>> KnnQuery(const Point& qloc, size_t k,
                                         Timestamp tq,
                                         AcceptFn accept = nullptr,
                                         void* accept_ctx = nullptr);

  /// The Bx value (partition ⊕ zv) an object is indexed under.
  uint64_t KeyFor(const MovingObject& object) const;

  /// Estimated k-NN distance Dk (Section 5.4's equation, scaled to the
  /// space side), given the current population size.
  double EstimateKnnDistance(size_t k) const;

  /// Deep structural self-check: the B+-tree's own invariants, object-table
  /// ↔ tree-entry agreement (counts, every object reachable under its
  /// recomputed Bx key with a payload matching the stored state), and the
  /// per-label histogram. Returns Corruption naming the first violation.
  /// Cost: one full tree walk plus one point lookup per object.
  Status ValidateInvariants() const;

 private:
  struct StoredObject {
    MovingObject state;
    int64_t label_index = 0;
    uint64_t key = 0;  ///< Bx value (without the uid component).
  };

  /// Scans one 1-D interval of one partition, collecting entries whose
  /// extrapolated position at `tq` is inside `refine` (when non-null).
  /// `cursor` carries the scan position across the sorted probes of one
  /// query (ignored on the legacy per-interval-descent path).
  Status ScanInterval(ObjectBTree::LeafCursor* cursor, uint32_t partition,
                      uint64_t zlo, uint64_t zhi, Timestamp tq,
                      const Rect* refine, std::vector<SpatialCandidate>* out);

  BufferPool* pool_;
  MovingIndexOptions options_;
  GridMapper grid_;
  BTree<ObjectTreeTraits> tree_;
  std::unordered_map<UserId, StoredObject> objects_;
  /// Live object count per label index; keys are the ≤ n+1 active labels.
  std::unordered_map<int64_t, size_t> label_counts_;
  QueryCounters counters_;

  friend class FilteringIndex;
};

}  // namespace peb
