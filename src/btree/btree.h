// A disk-based B+-tree over the buffer pool.
//
// This is the base structure of both the Bx-tree and the PEB-tree (the
// paper stresses that basing the index on the B+-tree "promises easy
// integration into existing commercial database systems", Section 1).
//
// Design:
//  * Templated on a Traits type supplying fixed-size key/value encodings
//    and a total order on keys (see btree_traits.h for the instantiations).
//  * Unique keys. The moving-object indexes guarantee uniqueness by using
//    the composite (index_key, user_id) as the B+-tree key.
//  * Leaves form a doubly-linked list; range scans follow right-sibling
//    links exactly as the paper's query algorithms describe.
//  * Deletion does full rebalancing (borrow from siblings, merge on
//    underflow), so the tree stays within classic occupancy bounds under
//    the paper's delete-heavy update workload.
//  * All node access goes through the BufferPool, so every query's I/O is
//    observable via IoStats.
//
// Node layout (within a 4 KiB page):
//   byte 0      : node type (1 = leaf, 2 = internal)
//   bytes 2..3  : entry count (uint16)
//   bytes 4..7  : leaf: prev sibling | internal: leftmost child
//   bytes 8..11 : leaf: next sibling | internal: unused
//   bytes 16..  : packed slots, sorted by key
//     leaf slot     : key | value
//     internal slot : key | right-child page id
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace peb {

/// Aggregate shape statistics, maintained incrementally.
struct BTreeStats {
  size_t num_entries = 0;
  size_t num_leaves = 0;
  size_t num_internals = 0;
  size_t height = 0;  ///< 0 = empty, 1 = single leaf.
};

template <typename Traits>
class BTree {
 public:
  using Key = typename Traits::Key;
  using Value = typename Traits::Value;

  static constexpr size_t kHeaderSize = 16;
  static constexpr size_t kLeafSlotSize = Traits::kKeySize + Traits::kValueSize;
  static constexpr size_t kInternalSlotSize = Traits::kKeySize + sizeof(PageId);

  static constexpr size_t ComputeLeafCapacity() {
    size_t cap = (kPageSize - kHeaderSize) / kLeafSlotSize;
    if (Traits::kFanoutCap != 0 && cap > Traits::kFanoutCap) {
      cap = Traits::kFanoutCap;
    }
    return cap;
  }
  static constexpr size_t ComputeInternalCapacity() {
    size_t cap = (kPageSize - kHeaderSize) / kInternalSlotSize;
    if (Traits::kFanoutCap != 0 && cap > Traits::kFanoutCap) {
      cap = Traits::kFanoutCap;
    }
    return cap;
  }

  /// Maximum number of (key, value) entries in a leaf.
  static constexpr size_t kLeafCapacity = ComputeLeafCapacity();
  /// Maximum number of keys in an internal node (children = keys + 1).
  static constexpr size_t kInternalCapacity = ComputeInternalCapacity();

  static_assert(kLeafCapacity >= 3, "page too small for leaf slots");
  static_assert(kInternalCapacity >= 3, "page too small for internal slots");

  explicit BTree(BufferPool* pool) : pool_(pool) {}

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts a key/value pair. Fails with AlreadyExists on a duplicate key.
  Status Insert(const Key& key, const Value& value);

  /// Bottom-up bulk load from strictly increasing (key, value) pairs into
  /// an empty tree: packs leaves left to right, links siblings, and builds
  /// each internal level in one pass. Far faster than repeated Insert for
  /// initial index construction; the resulting tree satisfies the same
  /// invariants (entries are spread so no node underflows).
  Status BulkLoad(const std::vector<std::pair<Key, Value>>& entries);

  /// Removes `key`. Fails with NotFound when absent.
  Status Delete(const Key& key);

  /// Point lookup.
  Result<Value> Lookup(const Key& key) const;

  const BTreeStats& stats() const { return stats_; }
  bool empty() const { return stats_.num_entries == 0; }
  PageId root() const { return root_; }

  /// Attaches this (empty) handle to a tree that already exists on the
  /// pool's disk — the reopen path for file-backed indexes. The caller
  /// supplies the persisted root page id and shape statistics (an index
  /// manifest); Validate() verifies both against the pages.
  Status Attach(PageId root, const BTreeStats& stats) {
    if (root_ != kInvalidPageId) {
      return Status::InvalidArgument("Attach requires an empty tree handle");
    }
    root_ = root;
    stats_ = stats;
    Status s = Validate();
    if (!s.ok()) {
      root_ = kInvalidPageId;
      stats_ = BTreeStats{};
    }
    return s;
  }

  /// A forward cursor over leaf entries. Holds a pin on the current leaf.
  /// The tree must not be mutated while an iterator is live.
  class Iterator {
   public:
    Iterator() = default;

    bool Valid() const { return guard_.valid() && slot_ < count_; }

    Key key() const {
      assert(Valid());
      return Traits::DecodeKey(LeafSlotPtr(*guard_.page(), slot_));
    }
    Value value() const {
      assert(Valid());
      return Traits::DecodeValue(LeafSlotPtr(*guard_.page(), slot_) +
                                 Traits::kKeySize);
    }

    /// Advances to the next entry, following the leaf chain. Sets
    /// `crossed_leaf` (observable via leaves_visited()) when a new leaf is
    /// pinned. Returns non-OK only on I/O failure.
    Status Next() {
      assert(Valid());
      if (++slot_ < count_) return Status::OK();
      PageId next = LeafNext(*guard_.page());
      guard_.Release();
      if (next == kInvalidPageId) return Status::OK();  // Now invalid.
      PEB_ASSIGN_OR_RETURN(guard_, pool_->FetchPage(next));
      leaves_visited_++;
      slot_ = 0;
      count_ = NodeCount(*guard_.page());
      return Status::OK();
    }

    /// Number of distinct leaves pinned by this iterator so far.
    size_t leaves_visited() const { return leaves_visited_; }

   private:
    friend class BTree;
    BufferPool* pool_ = nullptr;
    PageGuard guard_;
    uint16_t slot_ = 0;
    uint16_t count_ = 0;
    size_t leaves_visited_ = 0;
  };

  /// A reusable positioned cursor over leaf entries — the fast path for
  /// multi-interval range scans. Unlike Iterator (one root descent per
  /// seek), a LeafCursor keeps its current leaf pinned between seeks: when
  /// the next target key is forward-reachable it walks the sibling chain
  /// (at most kMaxChainHops page fetches) instead of re-descending. The
  /// moving-object query algorithms probe Z intervals in ascending key
  /// order, so nearly every probe after the first resolves in the current
  /// or an adjacent leaf.
  ///
  /// The tree must not be mutated while a cursor holds a position; Reset()
  /// (or destroy) the cursor before mutating.
  class LeafCursor {
   public:
    /// Leaf-chain hops one seek may spend before giving up and
    /// re-descending. Hops only ever touch leaves already resident in the
    /// buffer pool (cache hits — a cold sibling falls back to a root
    /// descent immediately, so the fast path never reads a page from disk
    /// that a descent would have skipped). The budget merely bounds the
    /// logical-fetch count per seek when a long resident run is ahead.
    static constexpr size_t kMaxChainHops = 4;

    LeafCursor() = default;

    bool Valid() const { return guard_.valid() && slot_ < count_; }

    Key key() const {
      assert(Valid());
      return Traits::DecodeKey(LeafSlotPtr(*guard_.page(), slot_));
    }
    Value value() const {
      assert(Valid());
      return Traits::DecodeValue(LeafSlotPtr(*guard_.page(), slot_) +
                                 Traits::kKeySize);
    }

    /// Advances to the next entry, following the leaf chain.
    Status Next() {
      assert(Valid());
      if (++slot_ < count_) return Status::OK();
      PageId next = LeafNext(*guard_.page());
      guard_.Release();
      slot_ = count_ = 0;
      if (next == kInvalidPageId) return Status::OK();  // Now invalid.
      PEB_ASSIGN_OR_RETURN(guard_, tree_->pool_->FetchPage(next));
      count_ = NodeCount(*guard_.page());
      if (prefetch_) tree_->pool_->Prefetch(LeafNext(*guard_.page()));
      return Status::OK();
    }

    /// Repositions at the first entry with key >= `key` (invalid when no
    /// such entry exists), reusing the current position when possible.
    Status SeekGE(const Key& key);

    /// Drops the pinned position (also required before tree mutations).
    void Reset() {
      guard_.Release();
      slot_ = count_ = 0;
    }

    /// Stage the next sibling leaf into the buffer pool on every leaf
    /// crossing. Off by default: prefetch reads perturb the physical-read
    /// counts the figure benches compare against the paper.
    void set_prefetch(bool on) { prefetch_ = on; }

    /// Root descents performed by SeekGE calls so far.
    size_t descents() const { return descents_; }
    /// Sibling-link page fetches spent by SeekGE calls so far.
    size_t chain_hops() const { return chain_hops_; }

   private:
    friend class BTree;
    explicit LeafCursor(const BTree* tree) : tree_(tree) {}

    const BTree* tree_ = nullptr;
    PageGuard guard_;
    uint16_t slot_ = 0;
    uint16_t count_ = 0;
    bool prefetch_ = false;
    size_t descents_ = 0;
    size_t chain_hops_ = 0;
  };

  /// An unpositioned cursor bound to this tree.
  LeafCursor NewCursor() const { return LeafCursor(this); }

  /// Positions an iterator at the first entry with key >= `key`. The
  /// iterator is invalid when no such entry exists.
  Result<Iterator> SeekGE(const Key& key) const;

  /// Positions an iterator at the smallest entry.
  Result<Iterator> SeekFirst() const;

  /// Checks every structural invariant (key order, separator correctness,
  /// occupancy bounds, sibling chain, entry count). Used by property tests.
  Status Validate() const;

 private:
  // --- raw node accessors -------------------------------------------------
  static uint8_t NodeType(const Page& p) { return p.ReadAt<uint8_t>(0); }
  static void SetNodeType(Page& p, uint8_t t) { p.WriteAt<uint8_t>(0, t); }
  static bool IsLeaf(const Page& p) { return NodeType(p) == 1; }
  static uint16_t NodeCount(const Page& p) { return p.ReadAt<uint16_t>(2); }
  static void SetNodeCount(Page& p, uint16_t c) { p.WriteAt<uint16_t>(2, c); }
  static PageId LeafPrev(const Page& p) { return p.ReadAt<PageId>(4); }
  static void SetLeafPrev(Page& p, PageId id) { p.WriteAt<PageId>(4, id); }
  static PageId LeafNext(const Page& p) { return p.ReadAt<PageId>(8); }
  static void SetLeafNext(Page& p, PageId id) { p.WriteAt<PageId>(8, id); }
  static PageId InternalChild0(const Page& p) { return p.ReadAt<PageId>(4); }
  static void SetInternalChild0(Page& p, PageId id) { p.WriteAt<PageId>(4, id); }

  static std::byte* LeafSlotPtr(Page& p, size_t i) {
    return p.data() + kHeaderSize + i * kLeafSlotSize;
  }
  static const std::byte* LeafSlotPtr(const Page& p, size_t i) {
    return p.data() + kHeaderSize + i * kLeafSlotSize;
  }
  static std::byte* InternalSlotPtr(Page& p, size_t i) {
    return p.data() + kHeaderSize + i * kInternalSlotSize;
  }
  static const std::byte* InternalSlotPtr(const Page& p, size_t i) {
    return p.data() + kHeaderSize + i * kInternalSlotSize;
  }

  static Key LeafKey(const Page& p, size_t i) {
    return Traits::DecodeKey(LeafSlotPtr(p, i));
  }
  static Value LeafValue(const Page& p, size_t i) {
    return Traits::DecodeValue(LeafSlotPtr(p, i) + Traits::kKeySize);
  }
  static void SetLeafSlot(Page& p, size_t i, const Key& k, const Value& v) {
    Traits::EncodeKey(LeafSlotPtr(p, i), k);
    Traits::EncodeValue(LeafSlotPtr(p, i) + Traits::kKeySize, v);
  }
  static Key InternalKey(const Page& p, size_t i) {
    return Traits::DecodeKey(InternalSlotPtr(p, i));
  }
  static PageId InternalChild(const Page& p, size_t i) {
    // Child i+1 (right child of separator i); child 0 is in the header.
    PageId id;
    std::memcpy(&id, InternalSlotPtr(p, i) + Traits::kKeySize, sizeof(PageId));
    return id;
  }
  static void SetInternalSlot(Page& p, size_t i, const Key& k, PageId child) {
    Traits::EncodeKey(InternalSlotPtr(p, i), k);
    std::memcpy(InternalSlotPtr(p, i) + Traits::kKeySize, &child,
                sizeof(PageId));
  }

  static void ShiftSlots(Page& p, size_t slot_size, size_t from, size_t to,
                         size_t n) {
    std::memmove(p.data() + kHeaderSize + to * slot_size,
                 p.data() + kHeaderSize + from * slot_size, n * slot_size);
  }

  /// First slot in a leaf with key >= k (binary search).
  static size_t LeafLowerBound(const Page& p, const Key& k) {
    size_t lo = 0, hi = NodeCount(p);
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (Traits::Compare(LeafKey(p, mid), k) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Child index (0..count) to descend into for key k: the number of
  /// separator keys <= k.
  static size_t InternalChildIndex(const Page& p, const Key& k) {
    size_t lo = 0, hi = NodeCount(p);
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (Traits::Compare(InternalKey(p, mid), k) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  static PageId ChildAt(const Page& p, size_t idx) {
    return idx == 0 ? InternalChild0(p) : InternalChild(p, idx - 1);
  }
  static void SetChildAt(Page& p, size_t idx, PageId id) {
    if (idx == 0) {
      SetInternalChild0(p, id);
    } else {
      PageId tmp = id;
      std::memcpy(InternalSlotPtr(p, idx - 1) + Traits::kKeySize, &tmp,
                  sizeof(PageId));
    }
  }

  // --- mutation helpers ---------------------------------------------------
  struct PathEntry {
    PageId pid;
    size_t child_idx;  ///< Which child we descended into.
  };

  Status InsertIntoParents(std::vector<PathEntry>& path, Key sep,
                           PageId new_child);
  Status RebalanceAfterDelete(std::vector<PathEntry>& path, PageId node_pid);
  Status ValidateNode(PageId pid, const Key* lower, const Key* upper,
                      size_t depth, size_t* entries, size_t* leaves,
                      size_t* internals, size_t* height,
                      std::vector<PageId>* leaf_chain) const;

  BufferPool* pool_;
  PageId root_ = kInvalidPageId;
  BTreeStats stats_;
};

// ---------------------------------------------------------------------------
// Lookup / seek
// ---------------------------------------------------------------------------

template <typename Traits>
Result<typename Traits::Value> BTree<Traits>::Lookup(const Key& key) const {
  if (root_ == kInvalidPageId) return Status::NotFound();
  PageId pid = root_;
  for (;;) {
    PEB_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(pid));
    const Page& p = *g.page();
    if (IsLeaf(p)) {
      size_t slot = LeafLowerBound(p, key);
      if (slot < NodeCount(p) && Traits::Compare(LeafKey(p, slot), key) == 0) {
        return LeafValue(p, slot);
      }
      return Status::NotFound();
    }
    pid = ChildAt(p, InternalChildIndex(p, key));
  }
}

template <typename Traits>
Result<typename BTree<Traits>::Iterator> BTree<Traits>::SeekGE(
    const Key& key) const {
  Iterator it;
  it.pool_ = pool_;
  if (root_ == kInvalidPageId) return it;
  PageId pid = root_;
  for (;;) {
    PEB_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(pid));
    const Page& p = *g.page();
    if (IsLeaf(p)) {
      size_t slot = LeafLowerBound(p, key);
      it.guard_ = std::move(g);
      it.leaves_visited_ = 1;
      it.slot_ = static_cast<uint16_t>(slot);
      it.count_ = NodeCount(*it.guard_.page());
      if (slot >= it.count_) {
        // The key is past this leaf's last entry: move to the next leaf.
        PageId next = LeafNext(*it.guard_.page());
        it.guard_.Release();
        if (next != kInvalidPageId) {
          PEB_ASSIGN_OR_RETURN(it.guard_, pool_->FetchPage(next));
          it.leaves_visited_++;
          it.slot_ = 0;
          it.count_ = NodeCount(*it.guard_.page());
        }
      }
      return it;
    }
    pid = ChildAt(p, InternalChildIndex(p, key));
  }
}

template <typename Traits>
Result<typename BTree<Traits>::Iterator> BTree<Traits>::SeekFirst() const {
  Iterator it;
  it.pool_ = pool_;
  if (root_ == kInvalidPageId) return it;
  PageId pid = root_;
  for (;;) {
    PEB_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(pid));
    const Page& p = *g.page();
    if (IsLeaf(p)) {
      it.guard_ = std::move(g);
      it.leaves_visited_ = 1;
      it.slot_ = 0;
      it.count_ = NodeCount(*it.guard_.page());
      return it;
    }
    pid = ChildAt(p, 0);
  }
}

template <typename Traits>
Status BTree<Traits>::LeafCursor::SeekGE(const Key& key) {
  const BTree& tree = *tree_;
  // Fast path: the cursor sits on a leaf and the target is not behind it —
  // walk the sibling chain instead of descending from the root.
  if (guard_.valid()) {
    const Page* p = guard_.page();
    uint16_t cnt = NodeCount(*p);
    if (cnt > 0 && Traits::Compare(key, LeafKey(*p, 0)) >= 0) {
      for (size_t hops = 0;; ++hops) {
        if (cnt > 0 && Traits::Compare(LeafKey(*p, cnt - 1), key) >= 0) {
          slot_ = static_cast<uint16_t>(LeafLowerBound(*p, key));
          count_ = cnt;
          return Status::OK();
        }
        PageId next = LeafNext(*p);
        if (next == kInvalidPageId) {
          // Past the last entry of the tree: cursor becomes invalid.
          Reset();
          return Status::OK();
        }
        if (hops == kMaxChainHops) break;  // Too far ahead: re-descend.
        PageGuard g = tree.pool_->FetchIfResident(next);
        if (!g.valid()) break;  // Cold sibling: a descent is cheaper.
        guard_ = std::move(g);
        chain_hops_++;
        p = guard_.page();
        cnt = NodeCount(*p);
      }
    }
    guard_.Release();
  }

  // Slow path: root descent (same walk as BTree::SeekGE).
  descents_++;
  slot_ = count_ = 0;
  if (tree.root_ == kInvalidPageId) return Status::OK();
  PageId pid = tree.root_;
  for (;;) {
    PEB_ASSIGN_OR_RETURN(PageGuard g, tree.pool_->FetchPage(pid));
    const Page& p = *g.page();
    if (IsLeaf(p)) {
      size_t slot = LeafLowerBound(p, key);
      guard_ = std::move(g);
      count_ = NodeCount(*guard_.page());
      slot_ = static_cast<uint16_t>(slot);
      if (slot >= count_) {
        // The key is past this leaf's last entry: move to the next leaf.
        PageId next = LeafNext(*guard_.page());
        Reset();
        if (next != kInvalidPageId) {
          PEB_ASSIGN_OR_RETURN(guard_, tree.pool_->FetchPage(next));
          chain_hops_++;
          count_ = NodeCount(*guard_.page());
        }
      }
      return Status::OK();
    }
    pid = ChildAt(p, InternalChildIndex(p, key));
  }
}

// ---------------------------------------------------------------------------
// Bulk load
// ---------------------------------------------------------------------------

template <typename Traits>
Status BTree<Traits>::BulkLoad(
    const std::vector<std::pair<Key, Value>>& entries) {
  if (root_ != kInvalidPageId) {
    return Status::InvalidArgument("BulkLoad requires an empty tree");
  }
  for (size_t i = 1; i < entries.size(); ++i) {
    if (Traits::Compare(entries[i - 1].first, entries[i].first) >= 0) {
      return Status::InvalidArgument(
          "BulkLoad input must be strictly increasing");
    }
  }
  if (entries.empty()) return Status::OK();

  // Split `total` items into chunks of at most `cap`, as evenly as
  // possible, so every chunk is at least half full (non-root invariant).
  auto chunk_sizes = [](size_t total, size_t cap) {
    size_t chunks = (total + cap - 1) / cap;
    size_t base = total / chunks;
    size_t extra = total % chunks;  // First `extra` chunks get one more.
    std::vector<size_t> out(chunks, base);
    for (size_t i = 0; i < extra; ++i) out[i]++;
    return out;
  };

  // --- leaf level ----------------------------------------------------------
  struct ChildRef {
    Key first_key;
    PageId pid;
  };
  std::vector<ChildRef> level;
  {
    auto sizes = chunk_sizes(entries.size(), kLeafCapacity);
    size_t pos = 0;
    PageId prev = kInvalidPageId;
    for (size_t chunk = 0; chunk < sizes.size(); ++chunk) {
      PEB_ASSIGN_OR_RETURN(PageGuard g, pool_->NewPage());
      Page& p = *g.page();
      SetNodeType(p, 1);
      SetLeafPrev(p, prev);
      SetLeafNext(p, kInvalidPageId);
      for (size_t i = 0; i < sizes[chunk]; ++i, ++pos) {
        SetLeafSlot(p, i, entries[pos].first, entries[pos].second);
      }
      SetNodeCount(p, static_cast<uint16_t>(sizes[chunk]));
      g.MarkDirty();
      if (prev != kInvalidPageId) {
        PEB_ASSIGN_OR_RETURN(PageGuard pg, pool_->FetchPage(prev));
        SetLeafNext(*pg.page(), g.id());
        pg.MarkDirty();
      }
      level.push_back({entries[pos - sizes[chunk]].first, g.id()});
      prev = g.id();
      stats_.num_leaves++;
    }
  }
  stats_.num_entries = entries.size();
  stats_.height = 1;

  // --- internal levels -------------------------------------------------------
  while (level.size() > 1) {
    std::vector<ChildRef> next;
    auto sizes = chunk_sizes(level.size(), kInternalCapacity + 1);
    size_t pos = 0;
    for (size_t chunk = 0; chunk < sizes.size(); ++chunk) {
      PEB_ASSIGN_OR_RETURN(PageGuard g, pool_->NewPage());
      Page& p = *g.page();
      SetNodeType(p, 2);
      SetInternalChild0(p, level[pos].pid);
      Key node_first = level[pos].first_key;
      for (size_t i = 1; i < sizes[chunk]; ++i) {
        SetInternalSlot(p, i - 1, level[pos + i].first_key,
                        level[pos + i].pid);
      }
      SetNodeCount(p, static_cast<uint16_t>(sizes[chunk] - 1));
      g.MarkDirty();
      next.push_back({node_first, g.id()});
      pos += sizes[chunk];
      stats_.num_internals++;
    }
    level = std::move(next);
    stats_.height++;
  }
  root_ = level[0].pid;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

template <typename Traits>
Status BTree<Traits>::Insert(const Key& key, const Value& value) {
  if (root_ == kInvalidPageId) {
    PEB_ASSIGN_OR_RETURN(PageGuard g, pool_->NewPage());
    Page& p = *g.page();
    SetNodeType(p, 1);
    SetNodeCount(p, 0);
    SetLeafPrev(p, kInvalidPageId);
    SetLeafNext(p, kInvalidPageId);
    SetLeafSlot(p, 0, key, value);
    SetNodeCount(p, 1);
    g.MarkDirty();
    root_ = g.id();
    stats_ = BTreeStats{1, 1, 0, 1};
    return Status::OK();
  }

  // Descend, remembering the path for split propagation.
  std::vector<PathEntry> path;
  PageId pid = root_;
  for (;;) {
    PEB_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(pid));
    const Page& p = *g.page();
    if (IsLeaf(p)) break;
    size_t idx = InternalChildIndex(p, key);
    path.push_back({pid, idx});
    pid = ChildAt(p, idx);
  }

  PEB_ASSIGN_OR_RETURN(PageGuard leaf_guard, pool_->FetchPage(pid));
  Page& leaf = *leaf_guard.page();
  size_t slot = LeafLowerBound(leaf, key);
  size_t count = NodeCount(leaf);
  if (slot < count && Traits::Compare(LeafKey(leaf, slot), key) == 0) {
    return Status::AlreadyExists("duplicate B+-tree key");
  }

  if (count < kLeafCapacity) {
    ShiftSlots(leaf, kLeafSlotSize, slot, slot + 1, count - slot);
    SetLeafSlot(leaf, slot, key, value);
    SetNodeCount(leaf, static_cast<uint16_t>(count + 1));
    leaf_guard.MarkDirty();
    stats_.num_entries++;
    return Status::OK();
  }

  // Split the leaf: left keeps ceil((cap+1)/2) of the cap+1 logical entries.
  PEB_ASSIGN_OR_RETURN(PageGuard right_guard, pool_->NewPage());
  Page& right = *right_guard.page();
  SetNodeType(right, 1);

  size_t total = count + 1;
  size_t left_n = (total + 1) / 2;

  // Materialize the post-insert order into the two nodes.
  // Temporary staging buffer keeps the logic simple and obviously correct.
  std::vector<std::byte> staging(total * kLeafSlotSize);
  size_t before = slot;  // entries before the new one
  std::memcpy(staging.data(), LeafSlotPtr(leaf, 0), before * kLeafSlotSize);
  Traits::EncodeKey(staging.data() + before * kLeafSlotSize, key);
  Traits::EncodeValue(
      staging.data() + before * kLeafSlotSize + Traits::kKeySize, value);
  std::memcpy(staging.data() + (before + 1) * kLeafSlotSize,
              LeafSlotPtr(leaf, before), (count - before) * kLeafSlotSize);

  std::memcpy(LeafSlotPtr(leaf, 0), staging.data(), left_n * kLeafSlotSize);
  SetNodeCount(leaf, static_cast<uint16_t>(left_n));
  std::memcpy(LeafSlotPtr(right, 0), staging.data() + left_n * kLeafSlotSize,
              (total - left_n) * kLeafSlotSize);
  SetNodeCount(right, static_cast<uint16_t>(total - left_n));

  // Maintain the doubly-linked leaf chain.
  PageId old_next = LeafNext(leaf);
  SetLeafNext(right, old_next);
  SetLeafPrev(right, leaf_guard.id());
  SetLeafNext(leaf, right_guard.id());
  if (old_next != kInvalidPageId) {
    PEB_ASSIGN_OR_RETURN(PageGuard nn, pool_->FetchPage(old_next));
    SetLeafPrev(*nn.page(), right_guard.id());
    nn.MarkDirty();
  }

  leaf_guard.MarkDirty();
  right_guard.MarkDirty();
  stats_.num_entries++;
  stats_.num_leaves++;

  Key sep = LeafKey(right, 0);
  PageId new_child = right_guard.id();
  leaf_guard.Release();
  right_guard.Release();
  return InsertIntoParents(path, sep, new_child);
}

template <typename Traits>
Status BTree<Traits>::InsertIntoParents(std::vector<PathEntry>& path, Key sep,
                                        PageId new_child) {
  for (;;) {
    if (path.empty()) {
      // Split reached the root: grow the tree by one level.
      PEB_ASSIGN_OR_RETURN(PageGuard g, pool_->NewPage());
      Page& p = *g.page();
      SetNodeType(p, 2);
      SetInternalChild0(p, root_);
      SetInternalSlot(p, 0, sep, new_child);
      SetNodeCount(p, 1);
      g.MarkDirty();
      root_ = g.id();
      stats_.num_internals++;
      stats_.height++;
      return Status::OK();
    }

    PathEntry entry = path.back();
    path.pop_back();
    PEB_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(entry.pid));
    Page& p = *g.page();
    size_t count = NodeCount(p);
    size_t idx = entry.child_idx;  // Insert separator at slot idx.

    if (count < kInternalCapacity) {
      ShiftSlots(p, kInternalSlotSize, idx, idx + 1, count - idx);
      SetInternalSlot(p, idx, sep, new_child);
      SetNodeCount(p, static_cast<uint16_t>(count + 1));
      g.MarkDirty();
      return Status::OK();
    }

    // Split internal node. Stage count+1 slots, push the median up.
    size_t total = count + 1;
    std::vector<std::byte> staging(total * kInternalSlotSize);
    std::memcpy(staging.data(), InternalSlotPtr(p, 0), idx * kInternalSlotSize);
    Traits::EncodeKey(staging.data() + idx * kInternalSlotSize, sep);
    std::memcpy(staging.data() + idx * kInternalSlotSize + Traits::kKeySize,
                &new_child, sizeof(PageId));
    std::memcpy(staging.data() + (idx + 1) * kInternalSlotSize,
                InternalSlotPtr(p, idx), (count - idx) * kInternalSlotSize);

    size_t left_n = total / 2;        // keys kept in the left node
    size_t median = left_n;           // key pushed up
    size_t right_n = total - left_n - 1;

    PEB_ASSIGN_OR_RETURN(PageGuard rg, pool_->NewPage());
    Page& r = *rg.page();
    SetNodeType(r, 2);

    std::memcpy(InternalSlotPtr(p, 0), staging.data(),
                left_n * kInternalSlotSize);
    SetNodeCount(p, static_cast<uint16_t>(left_n));

    Key up_key = Traits::DecodeKey(staging.data() + median * kInternalSlotSize);
    PageId median_child;
    std::memcpy(&median_child,
                staging.data() + median * kInternalSlotSize + Traits::kKeySize,
                sizeof(PageId));
    SetInternalChild0(r, median_child);
    std::memcpy(InternalSlotPtr(r, 0),
                staging.data() + (median + 1) * kInternalSlotSize,
                right_n * kInternalSlotSize);
    SetNodeCount(r, static_cast<uint16_t>(right_n));

    g.MarkDirty();
    rg.MarkDirty();
    stats_.num_internals++;

    sep = up_key;
    new_child = rg.id();
  }
}

// ---------------------------------------------------------------------------
// Delete
// ---------------------------------------------------------------------------

template <typename Traits>
Status BTree<Traits>::Delete(const Key& key) {
  if (root_ == kInvalidPageId) return Status::NotFound();

  std::vector<PathEntry> path;
  PageId pid = root_;
  for (;;) {
    PEB_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(pid));
    const Page& p = *g.page();
    if (IsLeaf(p)) break;
    size_t idx = InternalChildIndex(p, key);
    path.push_back({pid, idx});
    pid = ChildAt(p, idx);
  }

  {
    PEB_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(pid));
    Page& leaf = *g.page();
    size_t slot = LeafLowerBound(leaf, key);
    size_t count = NodeCount(leaf);
    if (slot >= count || Traits::Compare(LeafKey(leaf, slot), key) != 0) {
      return Status::NotFound();
    }
    ShiftSlots(leaf, kLeafSlotSize, slot + 1, slot, count - slot - 1);
    SetNodeCount(leaf, static_cast<uint16_t>(count - 1));
    g.MarkDirty();
    stats_.num_entries--;
  }

  return RebalanceAfterDelete(path, pid);
}

template <typename Traits>
Status BTree<Traits>::RebalanceAfterDelete(std::vector<PathEntry>& path,
                                           PageId node_pid) {
  for (;;) {
    PEB_ASSIGN_OR_RETURN(PageGuard ng, pool_->FetchPage(node_pid));
    Page& node = *ng.page();
    bool leaf = IsLeaf(node);
    size_t count = NodeCount(node);
    size_t cap = leaf ? kLeafCapacity : kInternalCapacity;
    size_t min_fill = cap / 2;

    if (path.empty()) {
      // At the root.
      if (!leaf && count == 0) {
        // Shrink the tree by one level.
        PageId only_child = InternalChild0(node);
        ng.Release();
        PEB_RETURN_NOT_OK(pool_->DeletePage(node_pid));
        root_ = only_child;
        stats_.num_internals--;
        stats_.height--;
        return Status::OK();
      }
      if (leaf && count == 0) {
        ng.Release();
        PEB_RETURN_NOT_OK(pool_->DeletePage(node_pid));
        root_ = kInvalidPageId;
        stats_ = BTreeStats{};
        return Status::OK();
      }
      return Status::OK();
    }

    if (count >= min_fill) return Status::OK();

    PathEntry parent_entry = path.back();
    path.pop_back();
    PEB_ASSIGN_OR_RETURN(PageGuard pg, pool_->FetchPage(parent_entry.pid));
    Page& parent = *pg.page();
    size_t pidx = parent_entry.child_idx;
    size_t pcount = NodeCount(parent);

    // Prefer borrowing from the left sibling, then right; merge otherwise.
    if (pidx > 0) {
      PageId left_pid = ChildAt(parent, pidx - 1);
      PEB_ASSIGN_OR_RETURN(PageGuard lg, pool_->FetchPage(left_pid));
      Page& left = *lg.page();
      size_t lcount = NodeCount(left);
      if (lcount > min_fill) {
        // Borrow one from the left.
        if (leaf) {
          ShiftSlots(node, kLeafSlotSize, 0, 1, count);
          std::memcpy(LeafSlotPtr(node, 0), LeafSlotPtr(left, lcount - 1),
                      kLeafSlotSize);
          SetNodeCount(node, static_cast<uint16_t>(count + 1));
          SetNodeCount(left, static_cast<uint16_t>(lcount - 1));
          // Update the separator (key at parent slot pidx-1).
          Key new_sep = LeafKey(node, 0);
          PageId keep_child = InternalChild(parent, pidx - 1);
          SetInternalSlot(parent, pidx - 1, new_sep, keep_child);
        } else {
          // Rotate through the parent separator.
          Key sep = InternalKey(parent, pidx - 1);
          ShiftSlots(node, kInternalSlotSize, 0, 1, count);
          SetInternalSlot(node, 0, sep, InternalChild0(node));
          SetInternalChild0(node, InternalChild(left, lcount - 1));
          SetNodeCount(node, static_cast<uint16_t>(count + 1));
          Key new_sep = InternalKey(left, lcount - 1);
          SetNodeCount(left, static_cast<uint16_t>(lcount - 1));
          PageId keep_child = InternalChild(parent, pidx - 1);
          SetInternalSlot(parent, pidx - 1, new_sep, keep_child);
        }
        ng.MarkDirty();
        lg.MarkDirty();
        pg.MarkDirty();
        return Status::OK();
      }
    }

    if (pidx < pcount) {
      PageId right_pid = ChildAt(parent, pidx + 1);
      PEB_ASSIGN_OR_RETURN(PageGuard rg, pool_->FetchPage(right_pid));
      Page& right = *rg.page();
      size_t rcount = NodeCount(right);
      if (rcount > min_fill) {
        // Borrow one from the right.
        if (leaf) {
          std::memcpy(LeafSlotPtr(node, count), LeafSlotPtr(right, 0),
                      kLeafSlotSize);
          ShiftSlots(right, kLeafSlotSize, 1, 0, rcount - 1);
          SetNodeCount(node, static_cast<uint16_t>(count + 1));
          SetNodeCount(right, static_cast<uint16_t>(rcount - 1));
          Key new_sep = LeafKey(right, 0);
          PageId keep_child = InternalChild(parent, pidx);
          SetInternalSlot(parent, pidx, new_sep, keep_child);
        } else {
          Key sep = InternalKey(parent, pidx);
          SetInternalSlot(node, count, sep, InternalChild0(right));
          SetNodeCount(node, static_cast<uint16_t>(count + 1));
          SetInternalChild0(right, InternalChild(right, 0));
          Key new_sep = InternalKey(right, 0);
          ShiftSlots(right, kInternalSlotSize, 1, 0, rcount - 1);
          SetNodeCount(right, static_cast<uint16_t>(rcount - 1));
          PageId keep_child = InternalChild(parent, pidx);
          SetInternalSlot(parent, pidx, new_sep, keep_child);
        }
        ng.MarkDirty();
        rg.MarkDirty();
        pg.MarkDirty();
        return Status::OK();
      }
    }

    // Merge with a sibling. Normalize to (left, right) so we always merge
    // into the left node and delete the right one.
    size_t sep_idx;  // Parent separator between left and right.
    PageId left_pid, right_pid;
    if (pidx > 0) {
      sep_idx = pidx - 1;
      left_pid = ChildAt(parent, pidx - 1);
      right_pid = node_pid;
    } else {
      sep_idx = pidx;
      left_pid = node_pid;
      right_pid = ChildAt(parent, pidx + 1);
    }
    ng.Release();

    {
      PEB_ASSIGN_OR_RETURN(PageGuard lg, pool_->FetchPage(left_pid));
      PEB_ASSIGN_OR_RETURN(PageGuard rg, pool_->FetchPage(right_pid));
      Page& left = *lg.page();
      Page& right = *rg.page();
      size_t lcount = NodeCount(left);
      size_t rcount = NodeCount(right);

      if (leaf) {
        assert(lcount + rcount <= kLeafCapacity);
        std::memcpy(LeafSlotPtr(left, lcount), LeafSlotPtr(right, 0),
                    rcount * kLeafSlotSize);
        SetNodeCount(left, static_cast<uint16_t>(lcount + rcount));
        PageId rnext = LeafNext(right);
        SetLeafNext(left, rnext);
        if (rnext != kInvalidPageId) {
          PEB_ASSIGN_OR_RETURN(PageGuard nn, pool_->FetchPage(rnext));
          SetLeafPrev(*nn.page(), left_pid);
          nn.MarkDirty();
        }
        stats_.num_leaves--;
      } else {
        assert(lcount + rcount + 1 <= kInternalCapacity);
        Key sep = InternalKey(parent, sep_idx);
        SetInternalSlot(left, lcount, sep, InternalChild0(right));
        std::memcpy(InternalSlotPtr(left, lcount + 1), InternalSlotPtr(right, 0),
                    rcount * kInternalSlotSize);
        SetNodeCount(left, static_cast<uint16_t>(lcount + rcount + 1));
        stats_.num_internals--;
      }
      lg.MarkDirty();
      rg.Release();
      PEB_RETURN_NOT_OK(pool_->DeletePage(right_pid));
    }

    // Remove separator sep_idx (and the right child pointer) from parent.
    {
      size_t pc = NodeCount(parent);
      ShiftSlots(parent, kInternalSlotSize, sep_idx + 1, sep_idx,
                 pc - sep_idx - 1);
      SetNodeCount(parent, static_cast<uint16_t>(pc - 1));
      pg.MarkDirty();
    }
    pg.Release();

    // The parent may now underflow: loop with the parent as current node.
    node_pid = parent_entry.pid;
  }
}

// ---------------------------------------------------------------------------
// Validation (used by tests)
// ---------------------------------------------------------------------------

template <typename Traits>
Status BTree<Traits>::ValidateNode(PageId pid, const Key* lower,
                                   const Key* upper, size_t depth,
                                   size_t* entries, size_t* leaves,
                                   size_t* internals, size_t* height,
                                   std::vector<PageId>* leaf_chain) const {
  PEB_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(pid));
  const Page& p = *g.page();
  size_t count = NodeCount(p);
  bool is_root = (depth == 0);

  if (IsLeaf(p)) {
    if (*height == 0) {
      *height = depth + 1;
    } else if (*height != depth + 1) {
      return Status::Corruption("leaves at different depths");
    }
    if (!is_root && count < kLeafCapacity / 2) {
      return Status::Corruption("leaf underflow at page " + std::to_string(pid));
    }
    for (size_t i = 0; i < count; ++i) {
      Key k = LeafKey(p, i);
      if (i > 0 && Traits::Compare(LeafKey(p, i - 1), k) >= 0) {
        return Status::Corruption("unsorted leaf keys");
      }
      if (lower != nullptr && Traits::Compare(k, *lower) < 0) {
        return Status::Corruption("leaf key below separator bound");
      }
      if (upper != nullptr && Traits::Compare(k, *upper) >= 0) {
        return Status::Corruption("leaf key above separator bound");
      }
    }
    *entries += count;
    (*leaves)++;
    leaf_chain->push_back(pid);
    return Status::OK();
  }

  if (!is_root && count < kInternalCapacity / 2) {
    return Status::Corruption("internal underflow at page " +
                              std::to_string(pid));
  }
  if (count == 0 && !is_root) {
    return Status::Corruption("empty internal node");
  }
  (*internals)++;

  for (size_t i = 0; i < count; ++i) {
    Key k = InternalKey(p, i);
    if (i > 0 && Traits::Compare(InternalKey(p, i - 1), k) >= 0) {
      return Status::Corruption("unsorted internal keys");
    }
    if (lower != nullptr && Traits::Compare(k, *lower) < 0) {
      return Status::Corruption("separator below bound");
    }
    if (upper != nullptr && Traits::Compare(k, *upper) >= 0) {
      return Status::Corruption("separator above bound");
    }
  }
  for (size_t i = 0; i <= count; ++i) {
    Key lo_key{}, hi_key{};
    const Key* lo = lower;
    const Key* hi = upper;
    if (i > 0) {
      lo_key = InternalKey(p, i - 1);
      lo = &lo_key;
    }
    if (i < count) {
      hi_key = InternalKey(p, i);
      hi = &hi_key;
    }
    PEB_RETURN_NOT_OK(ValidateNode(ChildAt(p, i), lo, hi, depth + 1, entries,
                                   leaves, internals, height, leaf_chain));
  }
  return Status::OK();
}

template <typename Traits>
Status BTree<Traits>::Validate() const {
  if (root_ == kInvalidPageId) {
    if (stats_.num_entries != 0 || stats_.num_leaves != 0 ||
        stats_.num_internals != 0 || stats_.height != 0) {
      return Status::Corruption("empty tree with non-zero stats");
    }
    return Status::OK();
  }
  size_t entries = 0, leaves = 0, internals = 0, height = 0;
  std::vector<PageId> leaf_chain;
  PEB_RETURN_NOT_OK(ValidateNode(root_, nullptr, nullptr, 0, &entries, &leaves,
                                 &internals, &height, &leaf_chain));
  if (entries != stats_.num_entries) {
    return Status::Corruption("entry count mismatch: counted " +
                              std::to_string(entries) + " vs stats " +
                              std::to_string(stats_.num_entries));
  }
  if (leaves != stats_.num_leaves || internals != stats_.num_internals ||
      height != stats_.height) {
    return Status::Corruption("shape stats mismatch");
  }
  // Verify the doubly-linked leaf chain matches the in-order leaf sequence.
  for (size_t i = 0; i < leaf_chain.size(); ++i) {
    PEB_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(leaf_chain[i]));
    const Page& p = *g.page();
    PageId want_prev = i == 0 ? kInvalidPageId : leaf_chain[i - 1];
    PageId want_next =
        i + 1 == leaf_chain.size() ? kInvalidPageId : leaf_chain[i + 1];
    if (LeafPrev(p) != want_prev || LeafNext(p) != want_next) {
      return Status::Corruption("broken leaf sibling chain");
    }
  }
  return Status::OK();
}

}  // namespace peb
