// Concrete key/value trait instantiations for the B+-tree.
//
// The moving-object indexes use a composite key (index_key, user_id): the
// 1-D transformed value (Bx value or PEB key, Eq. 1 / Eq. 5) ordered first,
// with the user id breaking ties so that B+-tree keys are unique even when
// two users fall into the same cell with the same sequence value.
#pragma once

#include <cstdint>
#include <cstring>

#include "btree/btree.h"
#include "common/types.h"

namespace peb {

/// Composite B+-tree key: (1-D index value, user id), lexicographic.
struct CompositeKey {
  uint64_t primary = 0;
  UserId uid = 0;

  friend bool operator==(const CompositeKey&, const CompositeKey&) = default;

  /// Smallest key with the given primary value.
  static CompositeKey Min(uint64_t primary) { return {primary, 0}; }
  /// Largest key with the given primary value.
  static CompositeKey Max(uint64_t primary) {
    return {primary, kInvalidUserId};
  }
};

/// Leaf payload: the paper's leaf format <PEB_key, UID, x, y, vx, vy, t,
/// pntp> (Section 5.2). The key and UID live in the CompositeKey; the rest
/// is this record. `pntp` stands in for the paper's pointer to the user's
/// privacy-policy set (policies are keyed by UID in the PolicyStore, so the
/// field is informational).
struct ObjectRecord {
  double x = 0.0;
  double y = 0.0;
  double vx = 0.0;
  double vy = 0.0;
  double tu = 0.0;    ///< Time of the most recent update.
  uint32_t pntp = 0;  ///< Policy-set reference.
};

/// Traits for the moving-object trees (Bx-tree and PEB-tree).
struct ObjectTreeTraits {
  using Key = CompositeKey;
  using Value = ObjectRecord;

  static constexpr size_t kKeySize = 12;   // 8 (primary) + 4 (uid)
  static constexpr size_t kValueSize = 44; // 4*8 coords + 8 tu + 4 pntp
  static constexpr size_t kFanoutCap = 0;  // Use the full page.

  static int Compare(const Key& a, const Key& b) {
    if (a.primary != b.primary) return a.primary < b.primary ? -1 : 1;
    if (a.uid != b.uid) return a.uid < b.uid ? -1 : 1;
    return 0;
  }

  static void EncodeKey(std::byte* dst, const Key& k) {
    std::memcpy(dst, &k.primary, 8);
    std::memcpy(dst + 8, &k.uid, 4);
  }
  static Key DecodeKey(const std::byte* src) {
    Key k;
    std::memcpy(&k.primary, src, 8);
    std::memcpy(&k.uid, src + 8, 4);
    return k;
  }

  static void EncodeValue(std::byte* dst, const Value& v) {
    std::memcpy(dst, &v.x, 8);
    std::memcpy(dst + 8, &v.y, 8);
    std::memcpy(dst + 16, &v.vx, 8);
    std::memcpy(dst + 24, &v.vy, 8);
    std::memcpy(dst + 32, &v.tu, 8);
    std::memcpy(dst + 40, &v.pntp, 4);
  }
  static Value DecodeValue(const std::byte* src) {
    Value v;
    std::memcpy(&v.x, src, 8);
    std::memcpy(&v.y, src + 8, 8);
    std::memcpy(&v.vx, src + 16, 8);
    std::memcpy(&v.vy, src + 24, 8);
    std::memcpy(&v.tu, src + 32, 8);
    std::memcpy(&v.pntp, src + 40, 4);
    return v;
  }
};

/// Simple uint64 -> uint64 traits for tests and micro-benchmarks.
struct U64Traits {
  using Key = uint64_t;
  using Value = uint64_t;
  static constexpr size_t kKeySize = 8;
  static constexpr size_t kValueSize = 8;
  static constexpr size_t kFanoutCap = 0;

  static int Compare(Key a, Key b) { return a < b ? -1 : (a > b ? 1 : 0); }
  static void EncodeKey(std::byte* dst, Key k) { std::memcpy(dst, &k, 8); }
  static Key DecodeKey(const std::byte* src) {
    Key k;
    std::memcpy(&k, src, 8);
    return k;
  }
  static void EncodeValue(std::byte* dst, Value v) { std::memcpy(dst, &v, 8); }
  static Value DecodeValue(const std::byte* src) {
    Value v;
    std::memcpy(&v, src, 8);
    return v;
  }
};

/// Tiny-fanout traits: forces deep trees, splits, borrows, and merges with
/// few keys, so structural edge cases get exercised heavily in tests.
struct TinyFanoutTraits : U64Traits {
  static constexpr size_t kFanoutCap = 4;
};

/// The tree type both moving-object indexes build on.
using ObjectBTree = BTree<ObjectTreeTraits>;

}  // namespace peb
