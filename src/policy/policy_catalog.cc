#include "policy/policy_catalog.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

namespace peb {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Appends the deduplicated, ascending user ids of `raw` that are < n.
std::vector<UserId> SortedUniqueBelow(std::vector<UserId> raw, size_t n) {
  std::sort(raw.begin(), raw.end());
  raw.erase(std::unique(raw.begin(), raw.end()), raw.end());
  while (!raw.empty() && raw.back() >= n) raw.pop_back();
  return raw;
}

}  // namespace

PolicyCatalog::PolicyCatalog(PolicyStore store, RoleRegistry roles,
                             CatalogOptions options)
    : options_(options),
      quantizer_(options.sv_scale, options.sv_bits),
      store_(std::move(store)),
      roles_(std::move(roles)) {
  auto t0 = std::chrono::steady_clock::now();
  // Uncontended (no other thread can see the catalog yet); taken so the
  // thread-safety analysis covers the guarded-member writes below.
  MutexLock lock(&mu_);
  snapshot_ = std::make_shared<const EncodingSnapshot>(EncodingSnapshot::Build(
      store_, options_.num_users, options_.compat, options_.sv, quantizer_,
      options_.strategy));
  build_seconds_ = SecondsSince(t0);
  for (size_t u = 0; u < options_.num_users; ++u) {
    max_sv_ = std::max(max_sv_, snapshot_->sv(static_cast<UserId>(u)));
  }
}

std::shared_ptr<const EncodingSnapshot> PolicyCatalog::snapshot() const {
  MutexLock lock(&mu_);
  return snapshot_;
}

uint64_t PolicyCatalog::epoch() const {
  MutexLock lock(&mu_);
  return snapshot_->epoch();
}

size_t PolicyCatalog::dirty_count() const {
  MutexLock lock(&mu_);
  std::unordered_set<UserId> unique(dirty_.begin(), dirty_.end());
  return unique.size();
}

Status PolicyCatalog::ValidatePair(UserId owner, UserId peer) const {
  if (owner >= options_.num_users || peer >= options_.num_users) {
    return Status::InvalidArgument(
        "policy endpoints must lie inside the catalog population");
  }
  if (owner == peer) {
    return Status::InvalidArgument("a user cannot hold a policy toward "
                                   "themselves");
  }
  return Status::OK();
}

Status PolicyCatalog::AddPolicy(UserId owner, UserId peer,
                                const Lpp& policy) {
  PEB_RETURN_NOT_OK(ValidatePair(owner, peer));
  MutexLock lock(&mu_);
  if (policy.role == kInvalidRoleId ||
      policy.role >= roles_.num_roles()) {
    return Status::InvalidArgument("policy references an unregistered role");
  }
  store_.Add(owner, peer, policy);
  // The grant must be satisfiable: owner declares peer to hold the role
  // (Definition 1), mirroring the synthetic policy generator.
  roles_.AssignRole(owner, peer, policy.role);
  dirty_.push_back(owner);
  dirty_.push_back(peer);
  list_dirty_.push_back(peer);
  return Status::OK();
}

Result<size_t> PolicyCatalog::RemovePolicies(UserId owner, UserId peer) {
  PEB_RETURN_NOT_OK(ValidatePair(owner, peer));
  MutexLock lock(&mu_);
  size_t removed = store_.RemoveAll(owner, peer);
  if (removed > 0) {
    dirty_.push_back(owner);
    dirty_.push_back(peer);
    list_dirty_.push_back(peer);
  }
  return removed;
}

RoleId PolicyCatalog::DefineRole(const std::string& name) {
  MutexLock lock(&mu_);
  return roles_.RegisterRole(name);
}

Status PolicyCatalog::AssignRole(UserId owner, UserId peer, RoleId role) {
  PEB_RETURN_NOT_OK(ValidatePair(owner, peer));
  MutexLock lock(&mu_);
  if (role >= roles_.num_roles()) {
    return Status::InvalidArgument("unregistered role");
  }
  roles_.AssignRole(owner, peer, role);
  return Status::OK();
}

Status PolicyCatalog::RevokeRole(UserId owner, UserId peer, RoleId role) {
  PEB_RETURN_NOT_OK(ValidatePair(owner, peer));
  MutexLock lock(&mu_);
  roles_.RevokeRole(owner, peer, role);
  return Status::OK();
}

std::vector<UserId> PolicyCatalog::RelatedTo(UserId u) const {
  std::unordered_set<UserId> seen;
  for (UserId peer : store_.PeersOf(u)) seen.insert(peer);
  for (UserId owner : store_.OwnersToward(u)) seen.insert(owner);
  seen.erase(u);
  std::vector<UserId> related;
  related.reserve(seen.size());
  for (UserId v : seen) {
    if (v < options_.num_users &&
        Compatibility(store_, u, v, options_.compat) > 0.0) {
      related.push_back(v);
    }
  }
  std::sort(related.begin(), related.end());
  return related;
}

Result<ReencodeResult> PolicyCatalog::Reencode() {
  MutexLock lock(&mu_);
  auto t0 = std::chrono::steady_clock::now();

  ReencodeResult out;
  std::vector<UserId> dirty = SortedUniqueBelow(dirty_, options_.num_users);
  if (dirty.empty()) {
    // Clean catalog: nothing to do, epoch unchanged.
    out.snapshot = snapshot_;
    out.stats.epoch = snapshot_->epoch();
    out.stats.seconds = SecondsSince(t0);
    return out;
  }

  // --- 1. affected components: BFS outward from the dirty users ------------
  // Adjacency is computed lazily from the live store, so the walk costs
  // O(edges of the affected components), not O(all policies). Components
  // are closed under adjacency, so the induced subgraph is exactly a union
  // of whole components of the current relatedness graph.
  std::unordered_map<UserId, std::vector<UserId>> adjacency;
  std::vector<UserId> frontier;
  for (UserId seed : dirty) {
    if (adjacency.contains(seed)) continue;
    adjacency.emplace(seed, std::vector<UserId>{});
    frontier.push_back(seed);
    while (!frontier.empty()) {
      UserId u = frontier.back();
      frontier.pop_back();
      std::vector<UserId> related = RelatedTo(u);
      for (UserId v : related) {
        if (adjacency.try_emplace(v).second) frontier.push_back(v);
      }
      adjacency[u] = std::move(related);
    }
  }

  // Local subgraph ids follow ASCENDING GLOBAL ID, so the assignment's
  // degree-tie ordering matches a genuine Figure-5 run over the subgraph
  // (the equivalence the tests pin down).
  std::vector<UserId> affected;
  affected.reserve(adjacency.size());
  for (const auto& [u, related] : adjacency) affected.push_back(u);
  std::sort(affected.begin(), affected.end());
  size_t m = affected.size();
  std::unordered_map<UserId, size_t> local;
  local.reserve(m);
  for (size_t i = 0; i < m; ++i) local.emplace(affected[i], i);

  std::vector<std::vector<UserId>> groups(m);
  for (size_t i = 0; i < m; ++i) {
    const std::vector<UserId>& related = adjacency.at(affected[i]);
    groups[i].reserve(related.size());
    for (UserId v : related) {
      groups[i].push_back(static_cast<UserId>(local.at(v)));
    }
    std::sort(groups[i].begin(), groups[i].end());
  }
  auto compat_local = [&](UserId a, UserId b) {
    return Compatibility(store_, affected[a], affected[b], options_.compat);
  };

  // --- 2. Figure-5 (or BFS) re-assignment of the subgraph -------------------
  // Placed in fresh SV space above every existing value: the assignment is
  // translation-invariant, so these are exactly the values a full run over
  // the subgraph would produce, shifted to the fresh base — and untouched
  // users keep their SVs verbatim.
  SequenceValueOptions sub_options = options_.sv;
  sub_options.initial_sv = max_sv_ + options_.sv.delta;
  SequenceAssignment sub =
      options_.strategy == SequenceStrategy::kGroupOrder
          ? AssignSequenceValuesFromGraph(m, groups, compat_local,
                                          sub_options)
          : AssignSequenceValuesBfsFromGraph(m, groups, compat_local,
                                             sub_options);

  // --- 3. derive the new snapshot copy-on-write -----------------------------
  auto next = std::make_shared<EncodingSnapshot>(*snapshot_);
  next->epoch_ = snapshot_->epoch() + 1;
  std::vector<UserId> sv_changed;
  for (size_t i = 0; i < m; ++i) {
    UserId u = affected[i];
    double new_sv = sub.sv[i];
    max_sv_ = std::max(max_sv_, new_sv);
    if (new_sv != next->sv_[u]) sv_changed.push_back(u);
    uint32_t new_qsv = quantizer_.Quantize(new_sv);
    if (new_qsv != next->qsv_[u]) out.rekeyed.push_back(u);
    next->sv_[u] = new_sv;
    next->qsv_[u] = new_qsv;
  }

  // --- 4. rebuild exactly the friend lists that changed ---------------------
  // A user's list changes when their incoming edge set changed (mutation
  // peers) or when an incoming owner's SV moved.
  std::vector<UserId> rebuild = list_dirty_;
  for (UserId u : sv_changed) {
    for (UserId peer : store_.PeersOf(u)) rebuild.push_back(peer);
  }
  rebuild = SortedUniqueBelow(std::move(rebuild), options_.num_users);
  for (UserId v : rebuild) {
    auto owners = store_.OwnersToward(v);
    std::vector<FriendEntry> list;
    list.reserve(owners.size());
    for (UserId owner : owners) {
      if (owner == v || owner >= options_.num_users) continue;
      list.push_back({owner, next->sv_[owner], next->qsv_[owner]});
    }
    std::sort(list.begin(), list.end(),
              [](const FriendEntry& a, const FriendEntry& b) {
                if (a.qsv != b.qsv) return a.qsv < b.qsv;
                return a.uid < b.uid;
              });
    next->friends_[v] =
        std::make_shared<const std::vector<FriendEntry>>(std::move(list));
  }

  // --- 5. publish -----------------------------------------------------------
  std::sort(out.rekeyed.begin(), out.rekeyed.end());
  snapshot_ = next;
  dirty_.clear();
  list_dirty_.clear();

  out.snapshot = snapshot_;
  out.stats.epoch = snapshot_->epoch();
  out.stats.dirty_users = dirty.size();
  out.stats.component_users = m;
  out.stats.rekeyed = out.rekeyed.size();
  out.stats.lists_rebuilt = rebuild.size();
  out.stats.seconds = SecondsSince(t0);
  return out;
}

Result<ReencodeResult> PolicyCatalog::RebuildFull() {
  MutexLock lock(&mu_);
  auto t0 = std::chrono::steady_clock::now();

  auto next = std::make_shared<EncodingSnapshot>(EncodingSnapshot::Build(
      store_, options_.num_users, options_.compat, options_.sv, quantizer_,
      options_.strategy));
  next->epoch_ = snapshot_->epoch() + 1;

  ReencodeResult out;
  for (size_t u = 0; u < options_.num_users; ++u) {
    UserId uid = static_cast<UserId>(u);
    if (next->quantized_sv(uid) != snapshot_->quantized_sv(uid)) {
      out.rekeyed.push_back(uid);
    }
  }
  max_sv_ = 0.0;
  for (size_t u = 0; u < options_.num_users; ++u) {
    max_sv_ = std::max(max_sv_, next->sv(static_cast<UserId>(u)));
  }
  snapshot_ = std::move(next);
  std::unordered_set<UserId> unique_dirty(dirty_.begin(), dirty_.end());
  out.stats.dirty_users = unique_dirty.size();
  dirty_.clear();
  list_dirty_.clear();

  out.snapshot = snapshot_;
  out.stats.epoch = snapshot_->epoch();
  out.stats.component_users = options_.num_users;
  out.stats.rekeyed = out.rekeyed.size();
  out.stats.lists_rebuilt = options_.num_users;
  out.stats.full_rebuild = true;
  out.stats.seconds = SecondsSince(t0);
  return out;
}

}  // namespace peb
