// PolicyStore: all users' location-privacy policies, as held by the service
// provider ("we assume ... the server has access to all users' privacy
// policies", Section 3).
//
// Directed storage: policies_[owner -> peer] is the list of LPPs `owner`
// defined for `peer`. The reverse index (who has a policy *toward* me)
// backs the per-user friend lists the query algorithms need (Section 5.3:
// "we maintain a list for each user that stores the SV values of users who
// have policies with respect to the list owner").
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "policy/lpp.h"
#include "policy/role_registry.h"

namespace peb {

class PolicyStore {
 public:
  /// Adds a policy `owner` defines for `peer`. Multiple policies per pair
  /// are supported (the paper's future-work extension).
  void Add(UserId owner, UserId peer, const Lpp& policy);

  /// Removes all policies from `owner` toward `peer`. Returns how many were
  /// removed.
  size_t RemoveAll(UserId owner, UserId peer);

  /// Policies `owner` defined for `peer` (empty when none).
  std::span<const Lpp> Get(UserId owner, UserId peer) const;

  /// Users for whom `owner` has defined at least one policy (outgoing).
  std::span<const UserId> PeersOf(UserId owner) const;

  /// Users who have defined at least one policy toward `peer` (incoming) —
  /// the raw friend list of `peer`.
  std::span<const UserId> OwnersToward(UserId peer) const;

  /// Total number of stored policies.
  size_t num_policies() const { return num_policies_; }

  /// Number of outgoing policies of `owner` (the paper's per-user Np).
  size_t NumPoliciesOf(UserId owner) const;

  /// Evaluates whether `owner`'s policies allow `issuer` to see `owner` at
  /// position `pos` and absolute time `t` (Definition 2's conditions
  /// qID ∈ role, (x,y) ∈ locr, tq ∈ tint).
  bool Allows(UserId owner, UserId issuer, const Point& pos, double t,
              const RoleRegistry& roles,
              double time_domain = kDefaultTimeDomain) const;

 private:
  /// Guarded 64-bit packing of the (owner, peer) pair (common/types.h).
  static uint64_t PairKey(UserId owner, UserId peer) {
    return UserPairKey(owner, peer);
  }

  std::unordered_map<uint64_t, std::vector<Lpp>> policies_;
  std::unordered_map<UserId, std::vector<UserId>> outgoing_;
  std::unordered_map<UserId, std::vector<UserId>> incoming_;
  size_t num_policies_ = 0;
};

}  // namespace peb
