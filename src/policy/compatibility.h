// Policy comparison (Section 5.1): the score α ∈ [0,1] and the degree of
// compatibility C(u1, u2) of Equation 4.
//
// Cases:
//  * P1→2 ↔ P2→1 (both users may simultaneously disclose to each other,
//    i.e. their policies' locr and tint overlap):
//        α = O(locr1, locr2)/S · D(tint1, tint2)/T,       C = (1 + α)/2
//  * P1→2 = P2→1 (policies exist in at most one direction, or in both but
//    never simultaneously active):
//        α = 1/2 (|locr1|/S·|tint1|/T + |locr2|/S·|tint2|/T), C = α ≤ 1/2
//    (a missing side's term is omitted)
//  * no policies at all: α = 0, C = 0.
//
// Multiple policies per pair (the paper's future-work extension) are
// aggregated by taking the best (maximum) pairing, which degenerates to the
// paper's formulas for single policies.
#pragma once

#include <span>

#include "policy/lpp.h"
#include "policy/policy_store.h"
#include "spatial/geometry.h"

namespace peb {

/// Normalization constants: the area S of the space domain and the duration
/// T of the time domain (Section 5.1).
struct CompatibilityOptions {
  Rect space = Rect::Space(1000.0);
  double time_domain = kDefaultTimeDomain;
};

/// Which branch of Equation 4 applied.
enum class CompatibilityCase {
  kNone,           ///< α = 0: unrelated users.
  kOneDirectional, ///< P1→2 = P2→1 (C ≤ 0.5).
  kBidirectional,  ///< P1→2 ↔ P2→1 (C > 0.5).
};

/// α plus the case that produced it.
struct AlphaResult {
  double alpha = 0.0;
  CompatibilityCase kase = CompatibilityCase::kNone;
};

/// Computes α between two policy sets (either may be empty).
AlphaResult ComputeAlpha(std::span<const Lpp> p12, std::span<const Lpp> p21,
                         const CompatibilityOptions& options);

/// Equation 4 on top of ComputeAlpha.
double CompatibilityFromAlpha(const AlphaResult& alpha);

/// C(u1, u2) straight from a policy store.
double Compatibility(const PolicyStore& store, UserId u1, UserId u2,
                     const CompatibilityOptions& options);

}  // namespace peb
