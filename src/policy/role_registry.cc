#include "policy/role_registry.h"

#include <algorithm>

namespace peb {

namespace {
const std::string kEmpty;
}  // namespace

RoleId RoleRegistry::RegisterRole(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  RoleId id = static_cast<RoleId>(names_.size());
  names_.push_back(name);
  by_name_.emplace(name, id);
  return id;
}

const std::string& RoleRegistry::RoleName(RoleId id) const {
  return id < names_.size() ? names_[id] : kEmpty;
}

void RoleRegistry::AssignRole(UserId owner, UserId peer, RoleId role) {
  auto& roles = assignments_[PairKey(owner, peer)];
  if (std::find(roles.begin(), roles.end(), role) == roles.end()) {
    roles.push_back(role);
    num_assignments_++;
  }
}

void RoleRegistry::RevokeRole(UserId owner, UserId peer, RoleId role) {
  auto it = assignments_.find(PairKey(owner, peer));
  if (it == assignments_.end()) return;
  auto& roles = it->second;
  auto pos = std::find(roles.begin(), roles.end(), role);
  if (pos != roles.end()) {
    roles.erase(pos);
    num_assignments_--;
    if (roles.empty()) assignments_.erase(it);
  }
}

bool RoleRegistry::HasRole(UserId owner, UserId peer, RoleId role) const {
  auto it = assignments_.find(PairKey(owner, peer));
  if (it == assignments_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), role) !=
         it->second.end();
}

std::vector<RoleId> RoleRegistry::RolesOf(UserId owner, UserId peer) const {
  auto it = assignments_.find(PairKey(owner, peer));
  return it == assignments_.end() ? std::vector<RoleId>{} : it->second;
}

}  // namespace peb
