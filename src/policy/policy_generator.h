// Synthetic policy workload (Sections 6-7.1): users are divided into groups
// and each user gets Np random policies; the grouping factor θ = Ngr/Np is
// the fraction of a user's policies that target users in the same group
// (θ = 1: only in-group policies; θ = 0: targets chosen uniformly from the
// whole population). Policies get random rectangular regions and random
// time-of-day intervals, and each user has at most one policy toward any
// particular user (Section 7.4).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "policy/policy_store.h"
#include "policy/role_registry.h"
#include "spatial/geometry.h"

namespace peb {

struct PolicyGeneratorOptions {
  size_t num_users = 60000;       ///< Table 1 default.
  size_t policies_per_user = 50;  ///< Np (Table 1 default).
  double grouping_factor = 0.7;   ///< θ (Table 1 default).
  /// Users per group; 0 = auto: max(policies_per_user + 1, 64) so a user's
  /// in-group policies always have enough distinct targets.
  size_t group_size = 0;
  Rect space = Rect::Space(1000.0);
  double time_domain = kDefaultTimeDomain;
  /// Policy regions are random rectangles whose side is a uniform fraction
  /// of the space side within [min_region_fraction, max_region_fraction].
  double min_region_fraction = 0.1;
  double max_region_fraction = 0.6;
  /// Policy time windows cover a uniform fraction of the day within
  /// [min_time_fraction, max_time_fraction]; start is uniform (may wrap).
  double min_time_fraction = 0.1;
  double max_time_fraction = 0.6;
  uint64_t seed = 7;
};

/// Generator output: the policies, the role assignments backing them, and
/// the single role id used ("friend").
struct GeneratedPolicies {
  PolicyStore store;
  RoleRegistry roles;
  RoleId friend_role = kInvalidRoleId;
  size_t group_size = 0;  ///< The resolved (possibly auto) group size.
};

/// Generates the policy workload. Deterministic in options.seed.
GeneratedPolicies GeneratePolicies(const PolicyGeneratorOptions& options);

/// Draws a random policy region/time window pair (exposed for tests).
Lpp RandomLpp(Rng& rng, RoleId role, const PolicyGeneratorOptions& options);

}  // namespace peb
