#include "policy/policy_store.h"

#include <algorithm>

namespace peb {

void PolicyStore::Add(UserId owner, UserId peer, const Lpp& policy) {
  auto& list = policies_[PairKey(owner, peer)];
  if (list.empty()) {
    outgoing_[owner].push_back(peer);
    incoming_[peer].push_back(owner);
  }
  list.push_back(policy);
  num_policies_++;
}

size_t PolicyStore::RemoveAll(UserId owner, UserId peer) {
  auto it = policies_.find(PairKey(owner, peer));
  if (it == policies_.end()) return 0;
  size_t removed = it->second.size();
  policies_.erase(it);
  num_policies_ -= removed;
  auto erase_from = [](std::vector<UserId>& v, UserId x) {
    v.erase(std::remove(v.begin(), v.end(), x), v.end());
  };
  erase_from(outgoing_[owner], peer);
  erase_from(incoming_[peer], owner);
  return removed;
}

std::span<const Lpp> PolicyStore::Get(UserId owner, UserId peer) const {
  auto it = policies_.find(PairKey(owner, peer));
  return it == policies_.end() ? std::span<const Lpp>{}
                               : std::span<const Lpp>(it->second);
}

std::span<const UserId> PolicyStore::PeersOf(UserId owner) const {
  auto it = outgoing_.find(owner);
  return it == outgoing_.end() ? std::span<const UserId>{}
                               : std::span<const UserId>(it->second);
}

std::span<const UserId> PolicyStore::OwnersToward(UserId peer) const {
  auto it = incoming_.find(peer);
  return it == incoming_.end() ? std::span<const UserId>{}
                               : std::span<const UserId>(it->second);
}

size_t PolicyStore::NumPoliciesOf(UserId owner) const {
  size_t n = 0;
  for (UserId peer : PeersOf(owner)) n += Get(owner, peer).size();
  return n;
}

bool PolicyStore::Allows(UserId owner, UserId issuer, const Point& pos,
                         double t, const RoleRegistry& roles,
                         double time_domain) const {
  for (const Lpp& p : Get(owner, issuer)) {
    if (roles.HasRole(owner, issuer, p.role) && p.locr.Contains(pos) &&
        p.tint.Contains(t, time_domain)) {
      return true;
    }
  }
  return false;
}

}  // namespace peb
