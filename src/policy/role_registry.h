// RoleRegistry: who stands in which relationship to whom.
//
// Inspired by Role-Based Access Control (the paper cites Ferraiolo & Kuhn
// [7]): a user `owner` assigns a role (friend / colleague / family ...) to a
// peer, and policies reference the role instead of individual users. The
// PRQ/PkNN condition "qID ∈ role" (Definitions 2-3) is exactly
// HasRole(owner, qID, role).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace peb {

class RoleRegistry {
 public:
  /// Registers (or finds) a role by name; role names are global.
  RoleId RegisterRole(const std::string& name);

  /// Name of a registered role id (empty when unknown).
  const std::string& RoleName(RoleId id) const;

  /// Number of registered roles.
  size_t num_roles() const { return names_.size(); }

  /// Records that `owner` considers `peer` to hold `role`.
  void AssignRole(UserId owner, UserId peer, RoleId role);

  /// Removes a role assignment (no-op when absent).
  void RevokeRole(UserId owner, UserId peer, RoleId role);

  /// True iff `owner` has assigned `role` to `peer`.
  bool HasRole(UserId owner, UserId peer, RoleId role) const;

  /// All roles `owner` has assigned to `peer`.
  std::vector<RoleId> RolesOf(UserId owner, UserId peer) const;

  /// Total number of (owner, peer, role) assignments.
  size_t num_assignments() const { return num_assignments_; }

 private:
  /// Guarded 64-bit packing of the (owner, peer) pair (common/types.h).
  static uint64_t PairKey(UserId owner, UserId peer) {
    return UserPairKey(owner, peer);
  }

  std::vector<std::string> names_;
  std::unordered_map<std::string, RoleId> by_name_;
  std::unordered_map<uint64_t, std::vector<RoleId>> assignments_;
  size_t num_assignments_ = 0;
};

}  // namespace peb
