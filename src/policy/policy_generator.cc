#include "policy/policy_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace peb {

Lpp RandomLpp(Rng& rng, RoleId role, const PolicyGeneratorOptions& options) {
  Lpp p;
  p.role = role;

  double side = options.space.Width();
  double w = rng.Uniform(options.min_region_fraction,
                         options.max_region_fraction) *
             side;
  double h = rng.Uniform(options.min_region_fraction,
                         options.max_region_fraction) *
             side;
  Point center{rng.Uniform(0.0, side), rng.Uniform(0.0, side)};
  p.locr = Rect{{center.x - w / 2.0, center.y - h / 2.0},
                {center.x + w / 2.0, center.y + h / 2.0}}
               .ClampedTo(options.space);

  double T = options.time_domain;
  double dur =
      rng.Uniform(options.min_time_fraction, options.max_time_fraction) * T;
  double start = rng.Uniform(0.0, T);
  double end = start + dur;
  if (end >= T) end -= T;  // Wraps midnight.
  p.tint = {start, end};
  return p;
}

GeneratedPolicies GeneratePolicies(const PolicyGeneratorOptions& options) {
  GeneratedPolicies out;
  out.friend_role = out.roles.RegisterRole("friend");
  out.group_size = options.group_size != 0
                       ? options.group_size
                       : std::max(options.policies_per_user + 1, size_t{64});

  Rng rng(options.seed);
  size_t n = options.num_users;
  size_t np = options.policies_per_user;
  if (n < 2 || np == 0) return out;

  auto in_group_count = static_cast<size_t>(
      std::lround(options.grouping_factor * static_cast<double>(np)));

  for (UserId i = 0; i < static_cast<UserId>(n); ++i) {
    size_t group = i / out.group_size;
    size_t g_lo = group * out.group_size;
    size_t g_hi = std::min(g_lo + out.group_size, n);  // Exclusive.
    size_t g_len = g_hi - g_lo;

    std::unordered_set<UserId> targets;
    targets.reserve(np * 2);

    // θ·Np in-group targets (as many distinct ones as the group allows).
    size_t want_in = std::min(in_group_count, g_len - 1);
    size_t guard = 0;
    while (targets.size() < want_in && guard++ < 50 * np) {
      UserId t = static_cast<UserId>(g_lo + rng.NextBelow(g_len));
      if (t != i) targets.insert(t);
    }
    // Remaining targets uniform over the whole population.
    size_t want_total = std::min(np, n - 1);
    guard = 0;
    while (targets.size() < want_total && guard++ < 50 * np) {
      UserId t = static_cast<UserId>(rng.NextBelow(n));
      if (t != i) targets.insert(t);
    }

    // Sort targets so the stream of RandomLpp draws (and thus the whole
    // workload) is independent of hash-set iteration order.
    std::vector<UserId> sorted_targets(targets.begin(), targets.end());
    std::sort(sorted_targets.begin(), sorted_targets.end());
    for (UserId t : sorted_targets) {
      out.store.Add(i, t, RandomLpp(rng, out.friend_role, options));
      // The policy's role condition must be satisfiable: i declares t a
      // friend so the check "t ∈ role" can pass (Definition 1).
      out.roles.AssignRole(i, t, out.friend_role);
    }
  }
  return out;
}

}  // namespace peb
