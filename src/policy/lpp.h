// Location-Privacy Policies (Definition 1):
//   P_{1->2} = <role, locr, tint> states that if u2 is related to u1 by
//   `role`, then u2 may see u1's location while u1 is inside `locr` during
//   `tint`.
//
// `tint` is a time-of-day interval over a cyclic day (the paper's example:
// "8 a.m. to 5 p.m."); `locr` is a Euclidean region produced by policy
// translation (Section 5.1) — we represent it directly as a rectangle.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/types.h"
#include "spatial/geometry.h"

namespace peb {

/// Default time-domain length T: one day in minutes.
inline constexpr double kDefaultTimeDomain = 1440.0;

/// A cyclic time-of-day interval [start, end] within a day of length T.
/// start > end denotes an interval wrapping midnight, e.g. [22:00, 02:00].
struct TimeOfDayInterval {
  double start = 0.0;
  double end = 0.0;

  friend bool operator==(const TimeOfDayInterval&,
                         const TimeOfDayInterval&) = default;

  /// The whole day.
  static TimeOfDayInterval AllDay(double time_domain = kDefaultTimeDomain) {
    return {0.0, time_domain};
  }

  /// Interval duration within a day of length `T`.
  double Duration(double T = kDefaultTimeDomain) const {
    if (start <= end) return std::min(end - start, T);
    return (T - start) + end;  // Wraps midnight.
  }

  /// True iff the (absolute) time `t` falls in the interval, cyclically.
  bool Contains(double t, double T = kDefaultTimeDomain) const {
    double tod = std::fmod(t, T);
    if (tod < 0.0) tod += T;
    if (start <= end) return tod >= start && tod <= end;
    return tod >= start || tod <= end;
  }

  /// Duration of overlap with `o` within a day of length `T` — the paper's
  /// D(tint1, tint2).
  double OverlapDuration(const TimeOfDayInterval& o,
                         double T = kDefaultTimeDomain) const {
    // Decompose each cyclic interval into at most two linear segments and
    // sum the pairwise segment overlaps.
    struct Seg {
      double a, b;
    };
    auto segments = [T](const TimeOfDayInterval& iv, Seg out[2]) -> int {
      if (iv.start <= iv.end) {
        out[0] = {iv.start, std::min(iv.end, T)};
        return 1;
      }
      out[0] = {iv.start, T};
      out[1] = {0.0, iv.end};
      return 2;
    };
    Seg s1[2], s2[2];
    int n1 = segments(*this, s1);
    int n2 = segments(o, s2);
    double total = 0.0;
    for (int i = 0; i < n1; ++i) {
      for (int j = 0; j < n2; ++j) {
        total += std::max(
            0.0, std::min(s1[i].b, s2[j].b) - std::max(s1[i].a, s2[j].a));
      }
    }
    return total;
  }
};

/// A location-privacy policy (Definition 1).
struct Lpp {
  RoleId role = kInvalidRoleId;
  Rect locr;
  TimeOfDayInterval tint;

  friend bool operator==(const Lpp&, const Lpp&) = default;

  /// True iff this policy grants visibility for an issuer holding `role`
  /// toward an owner located at `pos` at absolute time `t`.
  bool Permits(RoleId issuer_role, const Point& pos, double t,
               double time_domain = kDefaultTimeDomain) const {
    return issuer_role == role && locr.Contains(pos) &&
           tint.Contains(t, time_domain);
  }
};

}  // namespace peb
