#include "policy/sequence_value.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace peb {

namespace {

/// Adjacency of the relatedness graph. Related users are those connected by
/// a policy in either direction with C > 0; computing C lazily per edge
/// keeps the cost linear in the number of policies rather than quadratic in
/// users.
std::vector<std::vector<UserId>> BuildRelatednessGraph(
    const PolicyStore& store, size_t num_users,
    const CompatibilityOptions& compat) {
  std::vector<std::vector<UserId>> groups(num_users);
  for (size_t i = 0; i < num_users; ++i) {
    UserId ui = static_cast<UserId>(i);
    std::unordered_set<UserId> seen;
    for (UserId peer : store.PeersOf(ui)) seen.insert(peer);
    for (UserId owner : store.OwnersToward(ui)) seen.insert(owner);
    seen.erase(ui);
    auto& g = groups[i];
    g.reserve(seen.size());
    for (UserId uj : seen) {
      if (uj < num_users && Compatibility(store, ui, uj, compat) > 0.0) {
        g.push_back(uj);
      }
    }
    std::sort(g.begin(), g.end());
  }
  return groups;
}

/// Users ordered by |G| descending, ties by id (Figure 5 line 5).
std::vector<UserId> OrderByDegreeDesc(
    size_t num_users, const std::vector<std::vector<UserId>>& groups) {
  std::vector<UserId> order(num_users);
  for (size_t i = 0; i < num_users; ++i) {
    order[i] = static_cast<UserId>(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    if (groups[a].size() != groups[b].size()) {
      return groups[a].size() > groups[b].size();
    }
    return a < b;
  });
  return order;
}

}  // namespace

SequenceAssignment AssignSequenceValues(const PolicyStore& store,
                                        size_t num_users,
                                        const CompatibilityOptions& compat,
                                        const SequenceValueOptions& options) {
  auto groups = BuildRelatednessGraph(store, num_users, compat);
  return AssignSequenceValuesFromGraph(
      num_users, groups,
      [&](UserId a, UserId b) { return Compatibility(store, a, b, compat); },
      options);
}

SequenceAssignment AssignSequenceValuesFromGraph(
    size_t num_users, const std::vector<std::vector<UserId>>& groups,
    const CompatFn& compat, const SequenceValueOptions& options) {
  SequenceAssignment out;
  out.sv.assign(num_users, -1.0);  // -1 = unassigned (⊥ in Figure 5).
  out.order = OrderByDegreeDesc(num_users, groups);

  // Step 3: assignment (Figure 5 lines 6-12).
  for (size_t k = 0; k < num_users; ++k) {
    UserId uk = out.order[k];
    if (out.sv[uk] >= 0.0) continue;  // Already assigned via a group.
    if (k == 0) {
      out.sv[uk] = options.initial_sv;
    } else {
      // SV(uk) = SV(u_{k-1}) + δ, where u_{k-1} is the previous user in the
      // sorted list (guaranteed assigned by now).
      out.sv[uk] = out.sv[out.order[k - 1]] + options.delta;
    }
    out.num_anchors++;
    for (UserId uj : groups[uk]) {
      if (out.sv[uj] < 0.0) {
        out.sv[uj] = out.sv[uk] + (1.0 - compat(uk, uj));
      }
    }
  }
  return out;
}

SequenceAssignment AssignSequenceValuesBfsFromGraph(
    size_t num_users, const std::vector<std::vector<UserId>>& groups,
    const CompatFn& compat, const SequenceValueOptions& options) {
  SequenceAssignment out;
  out.sv.assign(num_users, -1.0);
  out.order = OrderByDegreeDesc(num_users, groups);

  double cursor = options.initial_sv;  // Next component anchor value.
  double max_assigned = -1.0;
  std::vector<UserId> queue;
  for (UserId seed : out.order) {
    if (out.sv[seed] >= 0.0) continue;
    out.sv[seed] = cursor;
    max_assigned = std::max(max_assigned, cursor);
    out.num_anchors++;
    queue.clear();
    queue.push_back(seed);
    for (size_t head = 0; head < queue.size(); ++head) {
      UserId u = queue[head];
      for (UserId v : groups[u]) {
        if (out.sv[v] >= 0.0) continue;
        out.sv[v] = out.sv[u] + (1.0 - compat(u, v));
        max_assigned = std::max(max_assigned, out.sv[v]);
        queue.push_back(v);
      }
    }
    cursor = max_assigned + options.delta;
  }
  return out;
}

EncodingSnapshot EncodingSnapshot::Build(const PolicyStore& store,
                                         size_t num_users,
                                         const CompatibilityOptions& compat,
                                         const SequenceValueOptions& sv_options,
                                         const SvQuantizer& quantizer,
                                         SequenceStrategy strategy) {
  EncodingSnapshot enc(quantizer);
  auto graph = BuildRelatednessGraph(store, num_users, compat);
  auto edge_compat = [&](UserId a, UserId b) {
    return Compatibility(store, a, b, compat);
  };
  enc.assignment_ =
      strategy == SequenceStrategy::kGroupOrder
          ? AssignSequenceValuesFromGraph(num_users, graph, edge_compat,
                                          sv_options)
          : AssignSequenceValuesBfsFromGraph(num_users, graph, edge_compat,
                                             sv_options);
  enc.sv_ = enc.assignment_.sv;
  enc.qsv_.resize(num_users);
  for (size_t i = 0; i < num_users; ++i) {
    enc.qsv_[i] = quantizer.Quantize(enc.sv_[i]);
  }

  enc.friends_.resize(num_users);
  for (size_t i = 0; i < num_users; ++i) {
    UserId u = static_cast<UserId>(i);
    auto owners = store.OwnersToward(u);
    std::vector<FriendEntry> list;
    list.reserve(owners.size());
    for (UserId owner : owners) {
      if (owner == u || owner >= num_users) continue;
      list.push_back({owner, enc.sv_[owner], enc.qsv_[owner]});
    }
    std::sort(list.begin(), list.end(), [](const FriendEntry& a,
                                           const FriendEntry& b) {
      if (a.qsv != b.qsv) return a.qsv < b.qsv;
      return a.uid < b.uid;
    });
    enc.friends_[i] =
        std::make_shared<const std::vector<FriendEntry>>(std::move(list));
  }
  return enc;
}

}  // namespace peb
