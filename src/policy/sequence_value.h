// Sequence-value assignment (Section 5.1, Figure 5) and the PolicyEncoding
// bundle that the PEB-tree and its query algorithms consume.
//
// The algorithm:
//  1. For each user, collect the group G(ui) of related users (C > 0).
//  2. Sort users by |G| descending (ties by id, for determinism).
//  3. Walk the sorted list; an unassigned user uk becomes an "anchor" with
//     SV(uk) = SV(u_{k-1}) + δ (the first gets the initial value), and every
//     still-unassigned member uj of G(uk) gets SV(uk) + (1 − C(uk, uj)), so
//     higher compatibility ⇒ closer sequence values.
//
// SV values are reals; the PEB key needs integers, so SvQuantizer maps them
// into a fixed bit budget via fixed-point scaling. Queries use the same
// quantized values, so quantization can only merge neighboring users — it
// never loses query results.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "policy/compatibility.h"
#include "policy/policy_store.h"

namespace peb {

/// Parameters of the assignment (Section 5.1: sv > 1, δ > 1; the worked
/// example uses initial value 2 and δ = 2).
struct SequenceValueOptions {
  double initial_sv = 2.0;
  double delta = 2.0;
};

/// Raw assignment output.
struct SequenceAssignment {
  /// SV per user id (size = num_users).
  std::vector<double> sv;
  /// Users in the order the algorithm processed them (|G| descending).
  std::vector<UserId> order;
  /// Number of users that became anchors (started a new group span).
  size_t num_anchors = 0;
};

/// Runs the Figure-5 algorithm over all users 0..num_users-1.
SequenceAssignment AssignSequenceValues(const PolicyStore& store,
                                        size_t num_users,
                                        const CompatibilityOptions& compat,
                                        const SequenceValueOptions& options = {});

/// Compatibility oracle: C(u1, u2) in [0, 1].
using CompatFn = std::function<double(UserId, UserId)>;

/// Core of the Figure-5 algorithm over an explicit relatedness graph:
/// `groups[u]` must list u's related users (C > 0), and `compat` must be
/// symmetric. Exposed separately so the paper's worked example (Section
/// 5.1) can be checked against given C values.
SequenceAssignment AssignSequenceValuesFromGraph(
    size_t num_users, const std::vector<std::vector<UserId>>& groups,
    const CompatFn& compat, const SequenceValueOptions& options = {});

/// How sequence values are derived from the relatedness graph. The paper
/// lists "new encoding techniques" as future work (Section 8); the BFS
/// strategy is our implementation of that direction.
enum class SequenceStrategy {
  /// Figure 5: anchors in descending |G| order; only an anchor's direct
  /// neighbors receive compatibility-offset values. The paper's default.
  kGroupOrder,
  /// Breadth-first traversal of each connected component from its
  /// highest-degree user: every edge (not just anchor edges) contributes a
  /// compatibility offset, so transitively-related users stay adjacent
  /// instead of being pushed δ apart.
  kBfsTraversal,
};

/// The BFS-encoding counterpart of AssignSequenceValuesFromGraph.
SequenceAssignment AssignSequenceValuesBfsFromGraph(
    size_t num_users, const std::vector<std::vector<UserId>>& groups,
    const CompatFn& compat, const SequenceValueOptions& options = {});

/// Fixed-point quantizer for SV values.
class SvQuantizer {
 public:
  /// `scale` fixed-point steps per SV unit; values clamp into `bits` bits.
  SvQuantizer(double scale, uint32_t bits) : scale_(scale), bits_(bits) {}

  uint32_t bits() const { return bits_; }
  double scale() const { return scale_; }

  uint32_t Quantize(double sv) const {
    if (sv <= 0.0) return 0;
    uint64_t q = static_cast<uint64_t>(sv * scale_ + 0.5);
    uint64_t max = (1ull << bits_) - 1;
    return static_cast<uint32_t>(q > max ? max : q);
  }

 private:
  double scale_;
  uint32_t bits_;
};

/// A friend-list entry: a user who has at least one policy toward the list
/// owner, with their sequence value.
struct FriendEntry {
  UserId uid = kInvalidUserId;
  double sv = 0.0;
  uint32_t qsv = 0;  ///< Quantized sv.
};

/// Everything policy-related an index needs at query and insert time:
/// per-user sequence values (raw + quantized) and per-user friend lists
/// sorted by ascending SV — stamped with an **epoch**.
///
/// An EncodingSnapshot is immutable once published. The online policy
/// lifecycle (policy/policy_catalog.h) derives new snapshots from old ones
/// (epoch + 1) when policies change; indexes, engines, and monitors hold a
/// `std::shared_ptr<const EncodingSnapshot>` and swap it atomically with
/// the re-keying of affected users, so any in-flight query sees exactly one
/// (encoding, index-keys) epoch. Per-user friend lists are internally
/// shared between snapshots (copy-on-write), which keeps deriving a new
/// epoch O(affected users), not O(total policies).
class EncodingSnapshot {
 public:
  /// Runs policy comparison + sequence-value assignment + quantization +
  /// friend-list construction, producing the epoch-0 snapshot. This is the
  /// offline preprocessing whose cost Figure 11 reports.
  static EncodingSnapshot Build(const PolicyStore& store, size_t num_users,
                                const CompatibilityOptions& compat,
                                const SequenceValueOptions& sv_options,
                                const SvQuantizer& quantizer,
                                SequenceStrategy strategy =
                                    SequenceStrategy::kGroupOrder);

  /// Monotonic version of the policy encoding (0 = initial build). An
  /// index's stored keys are always consistent with exactly one epoch.
  uint64_t epoch() const { return epoch_; }

  size_t num_users() const { return sv_.size(); }
  double sv(UserId u) const { return sv_[u]; }
  uint32_t quantized_sv(UserId u) const { return qsv_[u]; }
  const SvQuantizer& quantizer() const { return quantizer_; }
  /// The initial (epoch-0) build's raw assignment, for shape statistics.
  const SequenceAssignment& assignment() const { return assignment_; }

  /// Users with a policy toward `u`, ascending by (qsv, uid). These are the
  /// candidates any privacy-aware query issued by `u` can ever return.
  const std::vector<FriendEntry>& FriendsOf(UserId u) const {
    return *friends_[u];
  }

 private:
  friend class PolicyCatalog;  // Derives epoch+1 snapshots copy-on-write.

  using FriendList = std::shared_ptr<const std::vector<FriendEntry>>;

  explicit EncodingSnapshot(SvQuantizer q) : quantizer_(q) {}

  uint64_t epoch_ = 0;
  SvQuantizer quantizer_;
  SequenceAssignment assignment_;
  std::vector<double> sv_;
  std::vector<uint32_t> qsv_;
  /// Per-user friend lists, shared across derived snapshots (never null).
  std::vector<FriendList> friends_;
};

/// Legacy name from the one-shot (frozen-policy) era; the type is now the
/// epoch-snapshot. Kept so static-world callers read naturally.
using PolicyEncoding = EncodingSnapshot;

}  // namespace peb
