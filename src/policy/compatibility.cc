#include "policy/compatibility.h"

#include <algorithm>

namespace peb {

namespace {

/// |locr|/S · |tint|/T for a single policy.
double PolicyWeight(const Lpp& p, const CompatibilityOptions& options) {
  double S = options.space.Area();
  double T = options.time_domain;
  // Clamp the region into the space domain so |locr| <= S.
  double area = p.locr.OverlapArea(options.space);
  return (area / S) * (p.tint.Duration(T) / T);
}

}  // namespace

AlphaResult ComputeAlpha(std::span<const Lpp> p12, std::span<const Lpp> p21,
                         const CompatibilityOptions& options) {
  if (p12.empty() && p21.empty()) return {0.0, CompatibilityCase::kNone};

  double S = options.space.Area();
  double T = options.time_domain;

  // Bidirectional case: some pair of policies overlaps in both space and
  // time, so the two users can simultaneously disclose to each other.
  double best_bidir = -1.0;
  for (const Lpp& a : p12) {
    for (const Lpp& b : p21) {
      double o = a.locr.OverlapArea(b.locr);
      double d = a.tint.OverlapDuration(b.tint, T);
      if (o > 0.0 && d > 0.0) {
        best_bidir = std::max(best_bidir, (o / S) * (d / T));
      }
    }
  }
  if (best_bidir >= 0.0) {
    return {best_bidir, CompatibilityCase::kBidirectional};
  }

  // One-directional case: each side contributes its own (best) policy
  // weight; a missing side's term is omitted.
  double w12 = 0.0;
  for (const Lpp& a : p12) w12 = std::max(w12, PolicyWeight(a, options));
  double w21 = 0.0;
  for (const Lpp& b : p21) w21 = std::max(w21, PolicyWeight(b, options));
  double alpha = 0.5 * (w12 + w21);
  return {alpha, alpha > 0.0 ? CompatibilityCase::kOneDirectional
                             : CompatibilityCase::kNone};
}

double CompatibilityFromAlpha(const AlphaResult& r) {
  switch (r.kase) {
    case CompatibilityCase::kBidirectional:
      return 0.5 * (1.0 + r.alpha);
    case CompatibilityCase::kOneDirectional:
      return r.alpha;
    case CompatibilityCase::kNone:
      return 0.0;
  }
  return 0.0;
}

double Compatibility(const PolicyStore& store, UserId u1, UserId u2,
                     const CompatibilityOptions& options) {
  return CompatibilityFromAlpha(
      ComputeAlpha(store.Get(u1, u2), store.Get(u2, u1), options));
}

}  // namespace peb
