// PolicyCatalog — the online policy lifecycle.
//
// The paper treats policy translation and sequence-value assignment
// (Section 5.1, Figure 5) as one-shot preprocessing and defers dynamic
// policies to future work (Section 8). The catalog lifts that freeze: it
// owns the live PolicyStore and RoleRegistry plus the current immutable
// EncodingSnapshot, accepts policy/role mutations at runtime, and derives
// new snapshots **incrementally**:
//
//  * Mutations (AddPolicy / RemovePolicies) accumulate a dirty-set of
//    directly touched users.
//  * Reencode() walks the relatedness graph (C > 0 edges) outward from the
//    dirty users, collecting the affected connected components, and re-runs
//    the configured assignment strategy (Figure-5 group order or BFS) on
//    exactly that subgraph. The sub-assignment is placed in fresh sequence-
//    value space above every existing value, so untouched users keep their
//    SVs verbatim — the component's values are exactly what a full Figure-5
//    run over the subgraph would produce, translated by the fresh base
//    (the algorithm is translation-invariant).
//  * A new snapshot (epoch + 1) is published copy-on-write: sv/qsv arrays
//    are patched for affected users only, and friend lists are rebuilt only
//    for users whose incoming edges or incoming SVs changed; all other
//    per-user lists are shared with the previous snapshot.
//
// The Reencode result also names the users whose *quantized* SV changed —
// the only users whose PEB keys move — so the index layer re-keys the
// affected component instead of rebuilding the population.
//
// Thread-safety: all methods are serialized on an internal mutex, so the
// catalog itself is safe to mutate from any thread. The live store/roles,
// however, are also read by query verification inside the indexes — the
// service layer runs catalog mutations under the index's exclusive lock
// (queries hold it shared) so verification never races a mutation. Callers
// bypassing the service must provide that exclusion themselves.
//
// Visibility semantics between a mutation and the next Reencode(): a
// REMOVED policy stops granting visibility immediately (verification reads
// the live store, so revocation is instant — the privacy-safe direction),
// while an ADDED policy only starts producing query results once the next
// snapshot is published (the owner enters the peer's friend list at that
// epoch). Reencode-on-mutation (the service's default) closes the window.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "common/types.h"
#include "policy/compatibility.h"
#include "policy/policy_store.h"
#include "policy/role_registry.h"
#include "policy/sequence_value.h"

namespace peb {

/// Catalog configuration: the population and the encoding knobs (the same
/// parameters EncodingSnapshot::Build takes).
struct CatalogOptions {
  size_t num_users = 0;
  CompatibilityOptions compat;
  SequenceValueOptions sv;
  double sv_scale = 64.0;  ///< Fixed-point steps per SV unit.
  uint32_t sv_bits = 26;   ///< Quantizer bit budget.
  SequenceStrategy strategy = SequenceStrategy::kGroupOrder;
};

/// What one Reencode() did — the per-mutation observability the service
/// forwards in mutation responses and bench_policy_churn aggregates.
struct ReencodeStats {
  uint64_t epoch = 0;          ///< Epoch of the published snapshot.
  size_t dirty_users = 0;      ///< Direct endpoints of the mutations.
  size_t component_users = 0;  ///< Users in the affected components.
  size_t rekeyed = 0;          ///< Users whose quantized SV changed.
  size_t lists_rebuilt = 0;    ///< Friend lists rebuilt for the snapshot.
  bool full_rebuild = false;   ///< True for RebuildFull().
  double seconds = 0.0;        ///< Wall-clock spent re-encoding.
};

/// A published snapshot plus the re-key delta the index layer must apply.
struct ReencodeResult {
  std::shared_ptr<const EncodingSnapshot> snapshot;
  /// Users whose quantized SV changed between the previous snapshot and
  /// this one (ascending) — exactly the records whose PEB keys must move.
  std::vector<UserId> rekeyed;
  ReencodeStats stats;
};

class PolicyCatalog {
 public:
  /// Takes ownership of the policy corpus and builds the epoch-0 snapshot
  /// (the Figure-11 offline step; its cost is build_seconds()).
  PolicyCatalog(PolicyStore store, RoleRegistry roles, CatalogOptions options);

  PolicyCatalog(const PolicyCatalog&) = delete;
  PolicyCatalog& operator=(const PolicyCatalog&) = delete;

  // --- read access ----------------------------------------------------------

  /// The live policy store / role registry. Stable addresses for the
  /// catalog's lifetime (indexes keep pointers to them for verification).
  const PolicyStore& store() const { return store_; }
  const RoleRegistry& roles() const { return roles_; }

  /// The current snapshot (shared ownership; safe to hold across epochs).
  std::shared_ptr<const EncodingSnapshot> snapshot() const;

  /// Reference to the current snapshot — valid until the next Reencode()/
  /// RebuildFull(). For static worlds and measurement code, where no
  /// concurrent re-encode exists by construction — hence exempt from the
  /// thread-safety analysis.
  const EncodingSnapshot& current() const NO_THREAD_SAFETY_ANALYSIS {
    return *snapshot_;
  }

  uint64_t epoch() const;
  size_t num_users() const { return options_.num_users; }
  const CatalogOptions& options() const { return options_; }

  /// Users whose mutations have not been re-encoded yet.
  size_t dirty_count() const;

  /// Wall-clock seconds of the epoch-0 build (Figure 11's metric).
  double build_seconds() const { return build_seconds_; }

  // --- mutations (accumulate the dirty-set) ---------------------------------

  /// Adds a policy `owner` defines for `peer` and assigns the policy's role
  /// (owner -> peer) so the grant is satisfiable (Definition 1's qID ∈
  /// role condition). The grant becomes visible at the next re-encode.
  Status AddPolicy(UserId owner, UserId peer, const Lpp& policy);

  /// Removes all policies from `owner` toward `peer`; returns how many were
  /// removed (0 when none existed). Revocation is effective immediately at
  /// verification; the friend-list entry disappears at the next re-encode.
  Result<size_t> RemovePolicies(UserId owner, UserId peer);

  /// Registers (or finds) a role by name. Role definition does not touch
  /// the encoding.
  RoleId DefineRole(const std::string& name);

  /// Role assignment/revocation (no encoding impact; verification-time).
  Status AssignRole(UserId owner, UserId peer, RoleId role);
  Status RevokeRole(UserId owner, UserId peer, RoleId role);

  // --- re-encoding ----------------------------------------------------------

  /// Incrementally re-encodes the connected components touched by the
  /// accumulated mutations and publishes a new snapshot (epoch + 1). A
  /// clean catalog returns the current snapshot with an empty re-key list
  /// and does not advance the epoch.
  Result<ReencodeResult> Reencode();

  /// Full Figure-5 rebuild over the whole population (epoch + 1): the
  /// escape hatch when accumulated churn has fragmented SV space, and the
  /// reference the equivalence tests compare incremental results against.
  /// The re-key list contains every user whose quantized SV moved.
  Result<ReencodeResult> RebuildFull();

 private:
  /// Users adjacent to `u` in the relatedness graph (C > 0), computed
  /// lazily from the live store. `memo` caches compatibility per pair.
  std::vector<UserId> RelatedTo(UserId u) const;

  Status ValidatePair(UserId owner, UserId peer) const;

  CatalogOptions options_;
  SvQuantizer quantizer_;
  double build_seconds_ = 0.0;

  mutable Mutex mu_;
  /// Mutated under mu_, but also read lock-free by query verification
  /// inside the indexes (via store()/roles()): the service layer provides
  /// that exclusion by running catalog mutations under the index's
  /// exclusive lock, so the protocol cannot be expressed as a GUARDED_BY
  /// (see the header comment's thread-safety contract).
  PolicyStore store_;
  RoleRegistry roles_;
  std::shared_ptr<const EncodingSnapshot> snapshot_ GUARDED_BY(mu_);
  /// Largest raw SV any user currently holds; fresh component bases are
  /// allocated above it so untouched users never collide.
  double max_sv_ GUARDED_BY(mu_) = 0.0;
  /// Direct endpoints of un-re-encoded mutations.
  std::vector<UserId> dirty_ GUARDED_BY(mu_);
  /// Users whose incoming friend list changed shape (policy add/remove
  /// peers) and must be rebuilt at the next snapshot derivation.
  std::vector<UserId> list_dirty_ GUARDED_BY(mu_);
};

}  // namespace peb
