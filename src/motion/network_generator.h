// Network-based synthetic data (Section 7.1): a reimplementation of the
// behavior of the generator of Šaltenis et al. [27], which is not publicly
// distributed. Users move in a network of two-way routes connecting a
// configurable number of destinations ("hubs"):
//   * objects start at random positions on routes;
//   * each object belongs to one of three groups with maximum speeds
//     0.75, 1.5, and 3;
//   * on reaching a destination, the next target destination is chosen at
//     random;
//   * objects accelerate as they leave a destination and decelerate as they
//     approach one — modeled as piecewise-constant speed phases (ramp-up /
//     cruise / ramp-down), each phase boundary being a position/velocity
//     update, which matches the linear-motion update model of the indexes.
//
// The number of hubs controls spatial skew (fewer hubs = more skew), which
// is the property Figure 16 varies.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "motion/moving_object.h"

namespace peb {

/// The three speed groups of [27] as reported in Section 7.1.
inline constexpr std::array<double, 3> kNetworkSpeedGroups = {0.75, 1.5, 3.0};

/// A network of two-way straight-line routes between destination hubs.
class RoadNetwork {
 public:
  /// Generates `num_hubs` hubs uniformly in the space and connects each hub
  /// to its `degree` nearest neighbors, then adds edges until the network is
  /// connected.
  static RoadNetwork Generate(size_t num_hubs, double space_side,
                              uint64_t seed, size_t degree = 3);

  size_t num_hubs() const { return hubs_.size(); }
  const Point& hub(size_t i) const { return hubs_[i]; }
  const std::vector<size_t>& neighbors(size_t i) const { return adj_[i]; }
  double space_side() const { return space_side_; }

  /// True iff every hub can reach every other hub.
  bool IsConnected() const;

 private:
  std::vector<Point> hubs_;
  std::vector<std::vector<size_t>> adj_;
  double space_side_ = 0.0;
};

/// Per-object route-following state.
struct RouteState {
  size_t from_hub = 0;
  size_t to_hub = 0;
  double distance_on_edge = 0.0;  ///< Distance traveled from from_hub.
  double cruise_speed = 0.0;      ///< This object's group maximum speed.
};

/// Options for the network workload.
struct NetworkWorkloadOptions {
  size_t num_objects = 60000;
  size_t num_hubs = 100;
  double space_side = 1000.0;
  uint64_t seed = 1;
  /// Fraction of each edge driven at reduced speed while leaving /
  /// approaching a hub.
  double ramp_fraction = 0.2;
  /// Speed multiplier within ramp phases.
  double ramp_speed_factor = 0.5;
};

/// A simulation of objects moving through a RoadNetwork. Produces the
/// initial dataset snapshot and per-object update events at phase
/// boundaries.
class NetworkWorkload {
 public:
  explicit NetworkWorkload(const NetworkWorkloadOptions& options);

  const RoadNetwork& network() const { return network_; }

  /// Snapshot of all objects at time 0 (each object mid-route, in a random
  /// phase of a random edge).
  const Dataset& initial_dataset() const { return dataset_; }

  /// Advances object `id` from its current state to its next phase boundary
  /// and returns the update event there. Successive calls walk the object
  /// through the network indefinitely.
  UpdateEvent NextUpdate(UserId id);

  /// Issues an update for object `id` at time `t` without crossing a phase
  /// boundary (requires state_time <= t <= NextUpdateTime(id)). Used for
  /// forced refreshes under the maximum-update-interval contract.
  UpdateEvent ForceUpdate(UserId id, Timestamp t);

  /// Time at which object `id` reaches its next phase boundary.
  Timestamp NextUpdateTime(UserId id) const { return next_time_[id]; }

 private:
  struct PhaseInfo {
    double length;  ///< Distance covered by the current phase.
    double speed;   ///< Speed within the current phase.
  };

  /// Phase covering edge offset `d` on an edge of length `len`.
  PhaseInfo PhaseAt(double d, double len, double cruise) const;
  /// Builds the MovingObject snapshot for object i at time t.
  MovingObject Snapshot(size_t i, Timestamp t) const;
  /// Chooses the next edge after arriving at `state.to_hub`.
  void AdvanceToNextEdge(RouteState* state);

  NetworkWorkloadOptions options_;
  RoadNetwork network_;
  Dataset dataset_;
  std::vector<RouteState> states_;
  std::vector<Timestamp> state_time_;  ///< Time of each object's RouteState.
  std::vector<Timestamp> next_time_;   ///< Next phase-boundary time.
  Rng rng_;
};

}  // namespace peb
