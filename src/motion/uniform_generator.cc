#include "motion/uniform_generator.h"

#include <cmath>
#include <numbers>

namespace peb {

Point RandomVelocity(Rng& rng, double max_speed) {
  double angle = rng.Uniform(0.0, 2.0 * std::numbers::pi);
  double speed = rng.Uniform(0.0, max_speed);
  return {speed * std::cos(angle), speed * std::sin(angle)};
}

Dataset GenerateUniformDataset(const UniformGeneratorOptions& options) {
  Dataset ds;
  ds.space_side = options.space_side;
  ds.max_speed = options.max_speed;
  ds.objects.reserve(options.num_objects);
  Rng rng(options.seed);
  for (size_t i = 0; i < options.num_objects; ++i) {
    MovingObject o;
    o.id = static_cast<UserId>(i);
    o.pos = {rng.Uniform(0.0, options.space_side),
             rng.Uniform(0.0, options.space_side)};
    o.vel = RandomVelocity(rng, options.max_speed);
    o.tu = options.stagger_window > 0.0
               ? rng.Uniform(0.0, options.stagger_window)
               : 0.0;
    ds.objects.push_back(o);
  }
  return ds;
}

}  // namespace peb
