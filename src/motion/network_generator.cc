#include "motion/network_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace peb {

namespace {

/// Union-find for connectivity repair.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

void AddEdge(std::vector<std::vector<size_t>>& adj, size_t a, size_t b) {
  if (a == b) return;
  auto& na = adj[a];
  if (std::find(na.begin(), na.end(), b) != na.end()) return;
  na.push_back(b);
  adj[b].push_back(a);
}

}  // namespace

RoadNetwork RoadNetwork::Generate(size_t num_hubs, double space_side,
                                  uint64_t seed, size_t degree) {
  assert(num_hubs >= 2);
  RoadNetwork net;
  net.space_side_ = space_side;
  net.hubs_.reserve(num_hubs);
  Rng rng(seed ^ 0x0FF0ADull);
  for (size_t i = 0; i < num_hubs; ++i) {
    net.hubs_.push_back(
        {rng.Uniform(0.0, space_side), rng.Uniform(0.0, space_side)});
  }
  net.adj_.assign(num_hubs, {});

  // Connect each hub to its `degree` nearest neighbors.
  std::vector<size_t> order(num_hubs);
  for (size_t i = 0; i < num_hubs; ++i) {
    std::iota(order.begin(), order.end(), size_t{0});
    size_t want = std::min(degree + 1, num_hubs);  // +1: self sorts first.
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(want),
                      order.end(), [&](size_t a, size_t b) {
                        return net.hubs_[i].DistanceTo(net.hubs_[a]) <
                               net.hubs_[i].DistanceTo(net.hubs_[b]);
                      });
    for (size_t j = 0; j < want; ++j) {
      if (order[j] != i) AddEdge(net.adj_, i, order[j]);
    }
  }

  // Repair connectivity: greedily connect each unreached component to the
  // nearest hub of the growing component.
  DisjointSets ds(num_hubs);
  for (size_t i = 0; i < num_hubs; ++i) {
    for (size_t j : net.adj_[i]) ds.Union(i, j);
  }
  for (size_t i = 1; i < num_hubs; ++i) {
    if (ds.Find(i) == ds.Find(0)) continue;
    // Find the closest cross-component pair (i's component vs 0's).
    size_t best_a = i, best_b = 0;
    double best = std::numeric_limits<double>::max();
    for (size_t a = 0; a < num_hubs; ++a) {
      if (ds.Find(a) != ds.Find(i)) continue;
      for (size_t b = 0; b < num_hubs; ++b) {
        if (ds.Find(b) == ds.Find(i)) continue;
        double d = net.hubs_[a].DistanceTo(net.hubs_[b]);
        if (d < best) {
          best = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    AddEdge(net.adj_, best_a, best_b);
    ds.Union(best_a, best_b);
  }
  return net;
}

bool RoadNetwork::IsConnected() const {
  if (hubs_.empty()) return true;
  std::vector<bool> seen(hubs_.size(), false);
  std::vector<size_t> stack{0};
  seen[0] = true;
  size_t reached = 1;
  while (!stack.empty()) {
    size_t u = stack.back();
    stack.pop_back();
    for (size_t v : adj_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        reached++;
        stack.push_back(v);
      }
    }
  }
  return reached == hubs_.size();
}

NetworkWorkload::NetworkWorkload(const NetworkWorkloadOptions& options)
    : options_(options),
      network_(RoadNetwork::Generate(options.num_hubs, options.space_side,
                                     options.seed)),
      rng_(options.seed * 0x9E3779B97F4A7C15ull + 7) {
  dataset_.space_side = options.space_side;
  dataset_.max_speed = kNetworkSpeedGroups.back();
  dataset_.objects.reserve(options.num_objects);
  states_.reserve(options.num_objects);
  state_time_.assign(options.num_objects, 0.0);
  next_time_.assign(options.num_objects, 0.0);

  for (size_t i = 0; i < options.num_objects; ++i) {
    RouteState st;
    st.from_hub = rng_.NextBelow(network_.num_hubs());
    const auto& nbrs = network_.neighbors(st.from_hub);
    assert(!nbrs.empty());
    st.to_hub = nbrs[rng_.NextBelow(nbrs.size())];
    double len =
        network_.hub(st.from_hub).DistanceTo(network_.hub(st.to_hub));
    st.distance_on_edge = rng_.Uniform(0.0, len);
    st.cruise_speed = kNetworkSpeedGroups[rng_.NextBelow(3)];
    states_.push_back(st);
    dataset_.objects.push_back(Snapshot(i, 0.0));
    // Next boundary: end of the current phase.
    PhaseInfo ph = PhaseAt(st.distance_on_edge, len, st.cruise_speed);
    next_time_[i] = ph.length / ph.speed;
  }
}

NetworkWorkload::PhaseInfo NetworkWorkload::PhaseAt(double d, double len,
                                                    double cruise) const {
  double ramp = options_.ramp_fraction * len;
  double slow = cruise * options_.ramp_speed_factor;
  if (d < ramp) return {ramp - d, slow};              // Leaving the hub.
  if (d < len - ramp) return {len - ramp - d, cruise};  // Cruising.
  return {len - d, slow};                             // Approaching the hub.
}

MovingObject NetworkWorkload::Snapshot(size_t i, Timestamp t) const {
  const RouteState& st = states_[i];
  Point a = network_.hub(st.from_hub);
  Point b = network_.hub(st.to_hub);
  double len = a.DistanceTo(b);
  Point dir = len > 0.0 ? (b - a) * (1.0 / len) : Point{0.0, 0.0};
  PhaseInfo ph = PhaseAt(st.distance_on_edge, len, st.cruise_speed);
  MovingObject o;
  o.id = static_cast<UserId>(i);
  o.pos = a + dir * st.distance_on_edge;
  o.vel = dir * ph.speed;
  o.tu = t;
  return o;
}

void NetworkWorkload::AdvanceToNextEdge(RouteState* state) {
  const auto& nbrs = network_.neighbors(state->to_hub);
  assert(!nbrs.empty());
  size_t next = nbrs[rng_.NextBelow(nbrs.size())];
  // Avoid immediate backtracking when an alternative exists ("chooses the
  // next target destination at random" — we exclude the U-turn unless the
  // hub is a dead end).
  if (next == state->from_hub && nbrs.size() > 1) {
    next = nbrs[rng_.NextBelow(nbrs.size())];
    if (next == state->from_hub) {
      for (size_t cand : nbrs) {
        if (cand != state->from_hub) {
          next = cand;
          break;
        }
      }
    }
  }
  state->from_hub = state->to_hub;
  state->to_hub = next;
  state->distance_on_edge = 0.0;
}

UpdateEvent NetworkWorkload::NextUpdate(UserId id) {
  RouteState& st = states_[id];
  double len = network_.hub(st.from_hub).DistanceTo(network_.hub(st.to_hub));
  PhaseInfo ph = PhaseAt(st.distance_on_edge, len, st.cruise_speed);
  Timestamp t = next_time_[id];

  st.distance_on_edge += ph.length;
  if (st.distance_on_edge >= len - 1e-9) {
    AdvanceToNextEdge(&st);
    len = network_.hub(st.from_hub).DistanceTo(network_.hub(st.to_hub));
  }
  state_time_[id] = t;

  UpdateEvent ev;
  ev.t = t;
  ev.state = Snapshot(id, t);

  PhaseInfo next_ph = PhaseAt(st.distance_on_edge, len, st.cruise_speed);
  next_time_[id] = t + std::max(next_ph.length / next_ph.speed, 1e-9);
  return ev;
}

UpdateEvent NetworkWorkload::ForceUpdate(UserId id, Timestamp t) {
  RouteState& st = states_[id];
  assert(t >= state_time_[id] && t <= next_time_[id] + 1e-9);
  double len = network_.hub(st.from_hub).DistanceTo(network_.hub(st.to_hub));
  PhaseInfo ph = PhaseAt(st.distance_on_edge, len, st.cruise_speed);
  st.distance_on_edge += ph.speed * (t - state_time_[id]);
  state_time_[id] = t;

  UpdateEvent ev;
  ev.t = t;
  ev.state = Snapshot(id, t);
  return ev;
}

}  // namespace peb
