// Uniform synthetic dataset (Section 7.1): "user positions are chosen
// randomly, and they move in randomly chosen directions and at speeds
// ranging from 0 to `max_speed`" in a `space_side` x `space_side` space.
#pragma once

#include "common/rng.h"
#include "motion/moving_object.h"

namespace peb {

/// Parameters for the uniform workload.
struct UniformGeneratorOptions {
  size_t num_objects = 60000;  ///< Table 1 default.
  double space_side = 1000.0;
  double max_speed = 3.0;
  /// Update times of the initial population are staggered uniformly over
  /// [0, stagger_window) so objects spread across index time partitions.
  double stagger_window = 0.0;
  uint64_t seed = 1;
};

/// Generates a uniform dataset. Object ids are 0..num_objects-1.
Dataset GenerateUniformDataset(const UniformGeneratorOptions& options);

/// Draws a fresh uniform velocity: random direction, speed uniform in
/// [0, max_speed].
Point RandomVelocity(Rng& rng, double max_speed);

}  // namespace peb
