// Update streams: time-ordered sequences of position/velocity updates.
//
// Objects "issue an update at least once within a maximum update time
// delta_t_mu in order to keep the server informed about their existence"
// (Section 2.1). The experiment harness consumes these streams to drive
// index updates (Section 7.9 measures query cost while 25% chunks of the
// dataset are updated).
#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "motion/moving_object.h"
#include "motion/network_generator.h"

namespace peb {

/// Abstract time-ordered update producer.
class UpdateStream {
 public:
  virtual ~UpdateStream() = default;

  /// The next update event in global time order.
  virtual UpdateEvent Next() = 0;
};

/// Options for the uniform-motion update stream.
struct UniformUpdateStreamOptions {
  double max_update_interval = 120.0;  ///< delta_t_mu.
  /// Updates are spaced uniformly in
  /// [min_interval_fraction * delta_t_mu, delta_t_mu].
  double min_interval_fraction = 0.5;
  uint64_t seed = 42;
};

/// Update stream for the uniform dataset: each object re-randomizes its
/// velocity at every update; objects reflect off the space boundary so the
/// population stays inside the domain.
class UniformUpdateStream final : public UpdateStream {
 public:
  UniformUpdateStream(const Dataset& dataset,
                      UniformUpdateStreamOptions options);

  UpdateEvent Next() override;

 private:
  struct Pending {
    Timestamp t;
    UserId id;
    bool operator>(const Pending& o) const { return t > o.t; }
  };

  double SampleInterval();

  Dataset dataset_;  // Current object states (mutated as updates fire).
  UniformUpdateStreamOptions options_;
  Rng rng_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
};

/// Update stream for the network workload: updates fire at route phase
/// boundaries (hub arrivals and speed changes), plus a forced refresh when
/// an object would otherwise exceed the maximum update interval.
class NetworkUpdateStream final : public UpdateStream {
 public:
  NetworkUpdateStream(NetworkWorkload* workload, double max_update_interval);

  UpdateEvent Next() override;

 private:
  struct Pending {
    Timestamp t;
    UserId id;
    bool operator>(const Pending& o) const { return t > o.t; }
  };

  NetworkWorkload* workload_;
  double max_update_interval_;
  std::vector<Timestamp> last_update_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
};

/// Reflects a position into [0, side] and flips the matching velocity
/// components; used to keep uniform-motion objects in the domain.
void ReflectIntoSpace(double side, Point* pos, Point* vel);

}  // namespace peb
