#include "motion/update_stream.h"

#include <algorithm>
#include <cassert>

#include "motion/uniform_generator.h"

namespace peb {

void ReflectIntoSpace(double side, Point* pos, Point* vel) {
  // Fold the coordinate into [0, 2*side) and mirror the upper half; flip the
  // velocity when the fold mirrored the position.
  auto reflect1 = [side](double* p, double* v) {
    double period = 2.0 * side;
    double m = std::fmod(*p, period);
    if (m < 0.0) m += period;
    if (m > side) {
      m = period - m;
      *v = -*v;
    }
    *p = m;
  };
  reflect1(&pos->x, &vel->x);
  reflect1(&pos->y, &vel->y);
}

UniformUpdateStream::UniformUpdateStream(const Dataset& dataset,
                                         UniformUpdateStreamOptions options)
    : dataset_(dataset), options_(options), rng_(options.seed) {
  assert(options_.min_interval_fraction > 0.0 &&
         options_.min_interval_fraction <= 1.0);
  for (const MovingObject& o : dataset_.objects) {
    queue_.push({o.tu + SampleInterval(), o.id});
  }
}

double UniformUpdateStream::SampleInterval() {
  return rng_.Uniform(
      options_.min_interval_fraction * options_.max_update_interval,
      options_.max_update_interval);
}

UpdateEvent UniformUpdateStream::Next() {
  assert(!queue_.empty());
  Pending p = queue_.top();
  queue_.pop();

  MovingObject& o = dataset_.objects[p.id];
  Point pos = o.PositionAt(p.t);
  Point vel = RandomVelocity(rng_, dataset_.max_speed);
  ReflectIntoSpace(dataset_.space_side, &pos, &vel);
  o.pos = pos;
  o.vel = vel;
  o.tu = p.t;

  queue_.push({p.t + SampleInterval(), p.id});
  return {p.t, o};
}

NetworkUpdateStream::NetworkUpdateStream(NetworkWorkload* workload,
                                         double max_update_interval)
    : workload_(workload), max_update_interval_(max_update_interval) {
  size_t n = workload_->initial_dataset().objects.size();
  last_update_.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    UserId id = static_cast<UserId>(i);
    Timestamp t = std::min(workload_->NextUpdateTime(id),
                           last_update_[i] + max_update_interval_);
    queue_.push({t, id});
  }
}

UpdateEvent NetworkUpdateStream::Next() {
  assert(!queue_.empty());
  Pending p = queue_.top();
  queue_.pop();

  // Forced refresh when the max-update-interval deadline precedes the next
  // route phase boundary; otherwise advance to the boundary.
  UpdateEvent ev = p.t + 1e-9 < workload_->NextUpdateTime(p.id)
                       ? workload_->ForceUpdate(p.id, p.t)
                       : workload_->NextUpdate(p.id);
  last_update_[p.id] = ev.t;
  Timestamp t = std::min(workload_->NextUpdateTime(p.id),
                         ev.t + max_update_interval_);
  queue_.push({std::max(t, ev.t + 1e-6), p.id});
  return ev;
}

}  // namespace peb
