// The moving-object model shared by the paper and this library
// (Section 2.1): an object's position is a linear function of time,
// x(t) = x + v * (t - tu), valid until the next update; objects must update
// at least every delta_t_mu (the maximum update interval).
#pragma once

#include <vector>

#include "common/types.h"
#include "spatial/geometry.h"

namespace peb {

/// A moving user: the triple (position, velocity, update time) plus identity.
struct MovingObject {
  UserId id = kInvalidUserId;
  Point pos;       ///< Position at time `tu`.
  Point vel;       ///< Velocity (distance units per time unit).
  Timestamp tu = 0;

  /// Linearly extrapolated position at time `t` (t may precede tu; the
  /// linear model extrapolates both ways, as Bx-tree queries require).
  Point PositionAt(Timestamp t) const {
    return pos + vel * (t - tu);
  }
};

/// A position/velocity update issued by an object at time `t`.
struct UpdateEvent {
  Timestamp t = 0;
  MovingObject state;  ///< state.tu == t.
};

/// A dataset: objects plus the motion parameters they obey.
struct Dataset {
  std::vector<MovingObject> objects;
  double space_side = 1000.0;  ///< Square space [0, side]^2 (Section 7.1).
  double max_speed = 3.0;      ///< Per-axis speed bound used by queries.
};

}  // namespace peb
