// Aligned console tables for the benchmark binaries, so each bench prints
// the rows/series of its paper figure in a readable form.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace peb {
namespace eval {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Adds a data row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a header rule.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.34").
std::string Fmt(double v, int precision = 2);

/// Section banner used by the bench binaries.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace eval
}  // namespace peb
