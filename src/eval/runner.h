// Query-set generation and measurement (Section 7.1: "we measure the
// average I/O cost of 200 queries"). I/O per query is the number of
// physical page reads performed while answering it — read from the
// QueryResponse's own IoStats delta (exact even under concurrency); the
// 50-page buffer stays warm across the query batch, as in the paper's
// simulation. All measurement drives the index through the
// MovingObjectService request/response API.
#pragma once

#include <vector>

#include "bxtree/privacy_index.h"
#include "common/rng.h"
#include "eval/workload.h"
#include "service/service.h"

namespace peb {
namespace eval {

/// A privacy-aware range query instance.
struct PrqQuery {
  UserId issuer = kInvalidUserId;
  Rect range;
  Timestamp tq = 0.0;
};

/// A privacy-aware kNN query instance.
struct PknnQuery {
  UserId issuer = kInvalidUserId;
  Point qloc;
  size_t k = 5;
  Timestamp tq = 0.0;
};

/// Query-set parameters (Table 1 defaults).
struct QuerySetOptions {
  size_t count = 200;
  double window_side = 200.0;  ///< PRQ window side length.
  size_t k = 5;                ///< PkNN k.
  uint64_t seed = 99;
};

/// Uniformly random PRQ instances: random issuer, random window center.
std::vector<PrqQuery> MakePrqQueries(const Workload& workload,
                                     const QuerySetOptions& options);

/// PkNN instances: random issuer, query location = the issuer's own
/// position at query time (Definition 3's qLoc).
std::vector<PknnQuery> MakePknnQueries(const Workload& workload,
                                       const QuerySetOptions& options);

/// Aggregated measurement over a query batch.
struct RunResult {
  double avg_io = 0.0;          ///< Physical reads per query.
  double avg_candidates = 0.0;  ///< Leaf entries inspected per query.
  double avg_results = 0.0;     ///< Result size per query.
  double avg_probes = 0.0;      ///< 1-D key ranges searched per query.
  double avg_rounds = 0.0;      ///< kNN enlargement rounds per query.
  double avg_descents = 0.0;    ///< Root descents per query.
  double wall_ms = 0.0;         ///< Total wall time for the batch.
};

/// Runs the PRQ batch through `service`, returning averages (per-query I/O
/// and counters come from each QueryResponse). Aborts the process on
/// errors (experiments must not silently drop queries).
RunResult RunPrqBatch(service::MovingObjectService& service,
                      const std::vector<PrqQuery>& queries);

/// Runs the PkNN batch through `service`.
RunResult RunPknnBatch(service::MovingObjectService& service,
                       const std::vector<PknnQuery>& queries);

/// Verifies that both indexes return identical PRQ answers on the batch
/// (used by integration tests and optionally by benches). Returns the
/// number of queries checked; aborts on a mismatch.
size_t CrossCheckPrq(Workload& workload, const std::vector<PrqQuery>& queries);

/// Same for PkNN (compares distances within tolerance).
size_t CrossCheckPknn(Workload& workload,
                      const std::vector<PknnQuery>& queries);

}  // namespace eval
}  // namespace peb
