#include "eval/runner.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace peb {
namespace eval {

namespace {

[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "runner: %s\n", msg.c_str());
  std::abort();
}

}  // namespace

std::vector<PrqQuery> MakePrqQueries(const Workload& workload,
                                     const QuerySetOptions& options) {
  Rng rng(options.seed);
  const auto& params = workload.params();
  std::vector<PrqQuery> out;
  out.reserve(options.count);
  for (size_t i = 0; i < options.count; ++i) {
    PrqQuery q;
    q.issuer = static_cast<UserId>(rng.NextBelow(params.num_users));
    Point center{rng.Uniform(0.0, params.space_side),
                 rng.Uniform(0.0, params.space_side)};
    q.range = Rect::CenteredSquare(center, options.window_side)
                  .ClampedTo(Rect::Space(params.space_side));
    q.tq = workload.now();
    out.push_back(q);
  }
  return out;
}

std::vector<PknnQuery> MakePknnQueries(const Workload& workload,
                                       const QuerySetOptions& options) {
  Rng rng(options.seed ^ 0xD1CEull);
  const auto& params = workload.params();
  std::vector<PknnQuery> out;
  out.reserve(options.count);
  for (size_t i = 0; i < options.count; ++i) {
    PknnQuery q;
    q.issuer = static_cast<UserId>(rng.NextBelow(params.num_users));
    q.k = options.k;
    q.tq = workload.now();
    q.qloc = workload.dataset().objects[q.issuer].PositionAt(q.tq);
    out.push_back(q);
  }
  return out;
}

RunResult RunPrqBatch(service::MovingObjectService& service,
                      const std::vector<PrqQuery>& queries) {
  RunResult r;
  if (queries.empty()) return r;
  auto t0 = std::chrono::steady_clock::now();
  for (const PrqQuery& q : queries) {
    service::QueryResponse resp =
        service.Execute(service::QueryRequest::Prq(q.issuer, q.range, q.tq));
    if (!resp.ok()) Die("PRQ failed: " + resp.status.ToString());
    r.avg_io += static_cast<double>(resp.io.physical_reads);
    r.avg_candidates +=
        static_cast<double>(resp.counters.candidates_examined);
    r.avg_probes += static_cast<double>(resp.counters.range_probes);
    r.avg_rounds += static_cast<double>(resp.counters.rounds);
    r.avg_descents += static_cast<double>(resp.counters.seek_descents);
    r.avg_results += static_cast<double>(resp.ids.size());
  }
  auto t1 = std::chrono::steady_clock::now();
  double n = static_cast<double>(queries.size());
  r.avg_io /= n;
  r.avg_candidates /= n;
  r.avg_probes /= n;
  r.avg_rounds /= n;
  r.avg_descents /= n;
  r.avg_results /= n;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return r;
}

RunResult RunPknnBatch(service::MovingObjectService& service,
                       const std::vector<PknnQuery>& queries) {
  RunResult r;
  if (queries.empty()) return r;
  auto t0 = std::chrono::steady_clock::now();
  for (const PknnQuery& q : queries) {
    service::QueryResponse resp = service.Execute(
        service::QueryRequest::Pknn(q.issuer, q.qloc, q.k, q.tq));
    if (!resp.ok()) Die("PkNN failed: " + resp.status.ToString());
    r.avg_io += static_cast<double>(resp.io.physical_reads);
    r.avg_candidates +=
        static_cast<double>(resp.counters.candidates_examined);
    r.avg_probes += static_cast<double>(resp.counters.range_probes);
    r.avg_rounds += static_cast<double>(resp.counters.rounds);
    r.avg_descents += static_cast<double>(resp.counters.seek_descents);
    r.avg_results += static_cast<double>(resp.neighbors.size());
  }
  auto t1 = std::chrono::steady_clock::now();
  double n = static_cast<double>(queries.size());
  r.avg_io /= n;
  r.avg_candidates /= n;
  r.avg_probes /= n;
  r.avg_rounds /= n;
  r.avg_descents /= n;
  r.avg_results /= n;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return r;
}

size_t CrossCheckPrq(Workload& workload,
                     const std::vector<PrqQuery>& queries) {
  for (const PrqQuery& q : queries) {
    service::QueryRequest req =
        service::QueryRequest::Prq(q.issuer, q.range, q.tq);
    service::QueryResponse a = workload.peb_service().Execute(req);
    service::QueryResponse b = workload.spatial_service().Execute(req);
    if (!a.ok() || !b.ok()) Die("cross-check query failed");
    if (a.ids != b.ids) {
      Die("PRQ mismatch: PEB returned " + std::to_string(a.ids.size()) +
          " users, spatial returned " + std::to_string(b.ids.size()));
    }
  }
  return queries.size();
}

size_t CrossCheckPknn(Workload& workload,
                      const std::vector<PknnQuery>& queries) {
  for (const PknnQuery& q : queries) {
    service::QueryRequest req =
        service::QueryRequest::Pknn(q.issuer, q.qloc, q.k, q.tq);
    service::QueryResponse a = workload.peb_service().Execute(req);
    service::QueryResponse b = workload.spatial_service().Execute(req);
    if (!a.ok() || !b.ok()) Die("cross-check query failed");
    if (a.neighbors.size() != b.neighbors.size()) {
      Die("PkNN size mismatch: " + std::to_string(a.neighbors.size()) +
          " vs " + std::to_string(b.neighbors.size()));
    }
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      if (std::abs(a.neighbors[i].distance - b.neighbors[i].distance) >
          1e-6) {
        Die("PkNN distance mismatch at rank " + std::to_string(i));
      }
    }
  }
  return queries.size();
}

}  // namespace eval
}  // namespace peb
