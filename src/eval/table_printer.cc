#include "eval/table_printer.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace peb {
namespace eval {

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "" : "  ");
      os << row[i];
      for (size_t pad = row[i].size(); pad < widths[i]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  for (size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace eval
}  // namespace peb
