// Experiment workloads following Table 1 (Section 7.1). A Workload bundles
// the dataset, the policy corpus, the policy encoding, and the two
// competitors — the PEB-tree and the Bx-tree+filtering baseline — each on
// its own disk and 50-page LRU buffer pool, mirroring the paper's setup.
#pragma once

#include <memory>
#include <vector>

#include "bxtree/filtering_index.h"
#include "bxtree/privacy_index.h"
#include "common/status.h"
#include "engine/sharded_engine.h"
#include "motion/moving_object.h"
#include "motion/network_generator.h"
#include "motion/update_stream.h"
#include "peb/peb_tree.h"
#include "policy/policy_catalog.h"
#include "policy/policy_generator.h"
#include "policy/sequence_value.h"
#include "service/service.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace peb {
namespace eval {

/// Spatial distribution of the synthetic users.
enum class Distribution { kUniform, kNetwork };

/// All Table-1 knobs (defaults are the paper's bold defaults).
struct WorkloadParams {
  size_t num_users = 60000;
  size_t policies_per_user = 50;
  double grouping_factor = 0.7;
  double space_side = 1000.0;
  double max_speed = 3.0;
  Distribution distribution = Distribution::kUniform;
  size_t num_hubs = 100;          ///< Network data only.
  double delta_t_mu = 120.0;      ///< Maximum update interval [13].
  uint32_t partitions_n = 2;      ///< Bx-tree sub-partitions [13].
  size_t buffer_pages = 50;       ///< "a 50-page LRU buffer is simulated".
  uint32_t grid_bits = 10;
  uint32_t sv_bits = 26;
  double sv_scale = 64.0;         ///< Fixed-point steps per SV unit.
  size_t max_z_intervals = 32;    ///< Window decomposition cap.
  double time_domain = kDefaultTimeDomain;
  PrqStrategy prq_strategy = PrqStrategy::kPerFriendIntervals;
  KnnOrder knn_order = KnnOrder::kTriangular;
  SequenceStrategy sequence_strategy = SequenceStrategy::kGroupOrder;
  uint64_t seed = 1;
};

/// The MovingIndexOptions implied by Table-1 params (shared by every index
/// a workload hosts, including engine shards).
MovingIndexOptions IndexOptionsFor(const WorkloadParams& params);

/// The PEB-tree configuration implied by Table-1 params. Workload::Build
/// and MakeEngine both use this, so the single tree and every engine shard
/// index identically.
PebTreeOptions PebOptionsFor(const WorkloadParams& params);

/// A built experiment: data + policies + encoding + both indexes, loaded.
class Workload {
 public:
  /// Generates everything and bulk-loads both indexes. `now()` afterwards
  /// is delta_t_mu: the initial population's update times are staggered
  /// over [0, delta_t_mu), so objects span the index time partitions.
  static Workload Build(const WorkloadParams& params);

  const WorkloadParams& params() const { return params_; }
  Timestamp now() const { return now_; }
  const Dataset& dataset() const { return dataset_; }

  /// The policy lifecycle owner: live store + roles + current snapshot.
  /// Mutations (catalog()->AddPolicy / service policy requests) must not
  /// run concurrently with queries on indexes the mutating service does
  /// not front — the service only excludes queries on its own index.
  PolicyCatalog* catalog() { return catalog_.get(); }
  const PolicyCatalog& catalog() const { return *catalog_; }

  const PolicyStore& store() const { return catalog_->store(); }
  const RoleRegistry& roles() const { return catalog_->roles(); }
  /// The CURRENT encoding snapshot — valid until the next re-encode.
  const EncodingSnapshot& encoding() const { return catalog_->current(); }

  PebTree& peb() { return *peb_; }
  FilteringIndex& spatial() { return *spatial_; }

  /// Request/response services over the two competitors — the query
  /// surface every bench, tool, and measurement harness drives. Built in
  /// inline mode (no worker threads) so measurement stays deterministic.
  service::MovingObjectService& peb_service() { return *peb_service_; }
  service::MovingObjectService& spatial_service() {
    return *spatial_service_;
  }

  /// Wall-clock seconds spent in policy encoding (Figure 11's metric).
  double preprocessing_seconds() const { return preprocessing_seconds_; }

  /// Applies the next `count` updates from the update stream to the
  /// dataset snapshot and both indexes, advancing now() to the last update
  /// time. Used by the Figure-18 experiment.
  Status ApplyUpdates(size_t count);

  /// Applies a single update and returns it, for callers that mirror
  /// updates into secondary structures (e.g. ContinuousQueryMonitor).
  Result<UpdateEvent> ApplyNextUpdate();

  /// Brings BOTH hosted indexes to the catalog's current snapshot (each
  /// diffs its hosted records and re-keys the moved ones). For drivers —
  /// like peb_shell — that mutate the catalog through one service but keep
  /// the sibling index queryable. Single-threaded callers only.
  Status SyncIndexesToCatalog();

 private:
  Workload() = default;

  WorkloadParams params_;
  Timestamp now_ = 0.0;
  Dataset dataset_;
  std::unique_ptr<NetworkWorkload> network_;  // Network distribution only.
  std::unique_ptr<PolicyCatalog> catalog_;
  double preprocessing_seconds_ = 0.0;

  std::unique_ptr<InMemoryDiskManager> peb_disk_;
  std::unique_ptr<BufferPool> peb_pool_;
  std::unique_ptr<PebTree> peb_;

  std::unique_ptr<InMemoryDiskManager> spatial_disk_;
  std::unique_ptr<BufferPool> spatial_pool_;
  std::unique_ptr<FilteringIndex> spatial_;

  std::unique_ptr<service::MovingObjectService> peb_service_;
  std::unique_ptr<service::MovingObjectService> spatial_service_;

  std::unique_ptr<UpdateStream> updates_;
};

/// Builds a ShardedPebEngine over `workload`'s policies/encoding with the
/// same per-shard tree configuration as its single PEB-tree, and loads the
/// workload's current dataset into it. Every shard tree lives on one
/// shared sharded-clock pool whose budget is exactly the workload's
/// buffer_pages, so engine I/O is directly comparable to the single tree.
std::unique_ptr<engine::ShardedPebEngine> MakeEngine(
    const Workload& workload, size_t num_shards, size_t num_threads,
    engine::RouterPolicy policy = engine::RouterPolicy::kHashUser,
    telemetry::TelemetryOptions telemetry = {});

/// A deterministic clone of the workload's update stream (same dataset
/// snapshot, same seed), for feeding a BatchUpdateApplier the exact event
/// sequence Workload::ApplyUpdates will consume. Uniform distribution only
/// (returns nullptr otherwise), and the clone matches only when taken
/// before any ApplyUpdates call on the workload.
std::unique_ptr<UpdateStream> CloneUniformUpdateStream(
    const Workload& workload);

}  // namespace eval
}  // namespace peb
