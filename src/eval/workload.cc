#include "eval/workload.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "motion/uniform_generator.h"

namespace peb {
namespace eval {

namespace {

/// Dies loudly on harness errors: experiment setup is not allowed to fail.
void CheckOk(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "workload %s failed: %s\n", what,
                 s.ToString().c_str());
    std::abort();
  }
}

/// Stream options shared by Workload::Build and CloneUniformUpdateStream —
/// one derivation, so the clone's event sequence provably matches.
UniformUpdateStreamOptions UniformStreamOptionsFor(
    const WorkloadParams& params) {
  UniformUpdateStreamOptions us;
  us.max_update_interval = params.delta_t_mu;
  us.seed = params.seed + 0xABCD;
  return us;
}

}  // namespace

MovingIndexOptions IndexOptionsFor(const WorkloadParams& params) {
  MovingIndexOptions idx;
  idx.space_side = params.space_side;
  idx.grid_bits = params.grid_bits;
  idx.partitions.delta_t_mu = params.delta_t_mu;
  idx.partitions.n = params.partitions_n;
  idx.max_speed = params.max_speed;
  idx.zrange.max_intervals = params.max_z_intervals;
  return idx;
}

PebTreeOptions PebOptionsFor(const WorkloadParams& params) {
  PebTreeOptions opts;
  opts.index = IndexOptionsFor(params);
  opts.sv_bits = params.sv_bits;
  opts.prq_strategy = params.prq_strategy;
  opts.knn_order = params.knn_order;
  opts.time_domain = params.time_domain;
  return opts;
}

Workload Workload::Build(const WorkloadParams& params) {
  Workload w;
  w.params_ = params;

  // --- data ---------------------------------------------------------------
  if (params.distribution == Distribution::kUniform) {
    UniformGeneratorOptions gen;
    gen.num_objects = params.num_users;
    gen.space_side = params.space_side;
    gen.max_speed = params.max_speed;
    gen.stagger_window = params.delta_t_mu;
    gen.seed = params.seed;
    w.dataset_ = GenerateUniformDataset(gen);
  } else {
    NetworkWorkloadOptions gen;
    gen.num_objects = params.num_users;
    gen.num_hubs = params.num_hubs;
    gen.space_side = params.space_side;
    gen.seed = params.seed;
    w.network_ = std::make_unique<NetworkWorkload>(gen);
    w.dataset_ = w.network_->initial_dataset();
  }

  // --- policies + encoding (the Figure-11 offline step) --------------------
  PolicyGeneratorOptions pg;
  pg.num_users = params.num_users;
  pg.policies_per_user = params.policies_per_user;
  pg.grouping_factor = params.grouping_factor;
  pg.space = Rect::Space(params.space_side);
  pg.time_domain = params.time_domain;
  pg.seed = params.seed + 0x9E37;
  GeneratedPolicies gen_policies = GeneratePolicies(pg);

  CatalogOptions cat;
  cat.num_users = params.num_users;
  cat.compat.space = Rect::Space(params.space_side);
  cat.compat.time_domain = params.time_domain;
  cat.sv_scale = params.sv_scale;
  cat.sv_bits = params.sv_bits;
  cat.strategy = params.sequence_strategy;
  w.catalog_ = std::make_unique<PolicyCatalog>(
      std::move(gen_policies.store), std::move(gen_policies.roles), cat);
  w.preprocessing_seconds_ = w.catalog_->build_seconds();

  // --- indexes -------------------------------------------------------------
  MovingIndexOptions idx = IndexOptionsFor(params);

  BufferPoolOptions pool_opts;
  pool_opts.capacity = params.buffer_pages;

  w.peb_disk_ = std::make_unique<InMemoryDiskManager>();
  w.peb_pool_ = std::make_unique<BufferPool>(w.peb_disk_.get(), pool_opts);
  PebTreeOptions peb_opts = PebOptionsFor(params);
  w.peb_ = std::make_unique<PebTree>(w.peb_pool_.get(), peb_opts,
                                     &w.catalog_->store(),
                                     &w.catalog_->roles(),
                                     w.catalog_->snapshot());

  w.spatial_disk_ = std::make_unique<InMemoryDiskManager>();
  w.spatial_pool_ =
      std::make_unique<BufferPool>(w.spatial_disk_.get(), pool_opts);
  w.spatial_ = std::make_unique<FilteringIndex>(w.spatial_pool_.get(), idx,
                                                &w.catalog_->store(),
                                                &w.catalog_->roles(),
                                                params.time_domain);
  // The baseline reports epochs too (its keys are encoding-free).
  CheckOk(w.spatial_->AdoptSnapshot(w.catalog_->snapshot(), nullptr),
          "spatial snapshot");

  // Request/response services over both competitors (inline execution so
  // measurement is deterministic; async callers build their own). Both are
  // catalog-backed, so policy-lifecycle requests work out of the box.
  service::ServiceOptions svc;
  svc.time_domain = params.time_domain;
  w.peb_service_ = std::make_unique<service::MovingObjectService>(
      w.peb_.get(), w.catalog_.get(), svc);
  w.spatial_service_ = std::make_unique<service::MovingObjectService>(
      w.spatial_.get(), w.catalog_.get(), svc);

  // --- load ----------------------------------------------------------------
  for (const MovingObject& o : w.dataset_.objects) {
    CheckOk(w.peb_->Insert(o), "peb insert");
    CheckOk(w.spatial_->Insert(o), "spatial insert");
  }

  // --- update stream -------------------------------------------------------
  if (params.distribution == Distribution::kUniform) {
    w.updates_ = std::make_unique<UniformUpdateStream>(
        w.dataset_, UniformStreamOptionsFor(params));
  } else {
    w.updates_ = std::make_unique<NetworkUpdateStream>(w.network_.get(),
                                                       params.delta_t_mu);
  }

  // Queries run as of one maximum update interval after the start, so the
  // staggered initial population is all still "fresh".
  w.now_ = params.delta_t_mu;
  return w;
}

Result<UpdateEvent> Workload::ApplyNextUpdate() {
  UpdateEvent ev = updates_->Next();
  PEB_RETURN_NOT_OK(peb_->Update(ev.state));
  PEB_RETURN_NOT_OK(spatial_->Update(ev.state));
  dataset_.objects[ev.state.id] = ev.state;
  if (ev.t > now_) now_ = ev.t;
  return ev;
}

Status Workload::ApplyUpdates(size_t count) {
  for (size_t i = 0; i < count; ++i) {
    PEB_RETURN_NOT_OK(ApplyNextUpdate().status());
  }
  return Status::OK();
}

Status Workload::SyncIndexesToCatalog() {
  auto snapshot = catalog_->snapshot();
  PEB_RETURN_NOT_OK(peb_->AdoptSnapshot(snapshot, /*rekey=*/nullptr));
  return spatial_->AdoptSnapshot(std::move(snapshot), /*rekey=*/nullptr);
}

std::unique_ptr<engine::ShardedPebEngine> MakeEngine(
    const Workload& workload, size_t num_shards, size_t num_threads,
    engine::RouterPolicy policy, telemetry::TelemetryOptions telemetry) {
  const WorkloadParams& params = workload.params();
  engine::EngineOptions opts;
  opts.num_shards = num_shards;
  opts.num_threads = num_threads;
  opts.router = policy;
  opts.buffer_pages = params.buffer_pages;
  opts.tree = PebOptionsFor(params);
  opts.telemetry = telemetry;
  auto engine = std::make_unique<engine::ShardedPebEngine>(
      opts, &workload.store(), &workload.roles(),
      workload.catalog().snapshot());
  CheckOk(engine->LoadDataset(workload.dataset()), "engine load");
  return engine;
}

std::unique_ptr<UpdateStream> CloneUniformUpdateStream(
    const Workload& workload) {
  const WorkloadParams& params = workload.params();
  if (params.distribution != Distribution::kUniform) return nullptr;
  return std::make_unique<UniformUpdateStream>(
      workload.dataset(), UniformStreamOptionsFor(params));
}

}  // namespace eval
}  // namespace peb
