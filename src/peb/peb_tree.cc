#include "peb/peb_tree.h"

#include "bxtree/knn_schedule.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace peb {

PebTree::PebTree(BufferPool* pool, const PebTreeOptions& options,
                 const PolicyStore* store, const RoleRegistry* roles,
                 std::shared_ptr<const EncodingSnapshot> snapshot)
    : pool_(pool),
      options_(options),
      grid_(options.index.space_side, options.index.grid_bits),
      tree_(pool),
      store_(store),
      roles_(roles),
      snapshot_(std::move(snapshot)) {
  layout_.sv_bits = options.sv_bits;
  layout_.grid_bits = options.index.grid_bits;
  assert(layout_.Fits() && "PEB key layout exceeds 64 bits");
  assert(snapshot_->quantizer().bits() <= options.sv_bits &&
         "SV quantizer wider than the key's SV field");
}

uint64_t PebTree::KeyFor(const MovingObject& object) const {
  int64_t label = options_.index.partitions.LabelIndexFor(object.tu);
  Timestamp tlab = options_.index.partitions.LabelTimestamp(label);
  Point projected = object.PositionAt(tlab);
  uint64_t zv = grid_.ZValueOf(projected);
  uint32_t qsv = snapshot_->quantized_sv(object.id);
  return layout_.MakeKey(options_.index.partitions.PartitionOf(label), qsv,
                         zv);
}

Status PebTree::Insert(const MovingObject& object) {
  if (objects_.contains(object.id)) {
    return Status::AlreadyExists("object " + std::to_string(object.id) +
                                 " already indexed");
  }
  if (object.id >= snapshot_->num_users()) {
    return Status::InvalidArgument("object id outside the policy encoding");
  }
  StoredObject stored;
  stored.state = object;
  stored.label_index = options_.index.partitions.LabelIndexFor(object.tu);
  stored.key = KeyFor(object);

  ObjectRecord rec;
  rec.x = object.pos.x;
  rec.y = object.pos.y;
  rec.vx = object.vel.x;
  rec.vy = object.vel.y;
  rec.tu = object.tu;
  rec.pntp = object.id;

  PEB_RETURN_NOT_OK(tree_.Insert({stored.key, object.id}, rec));
  objects_.emplace(object.id, stored);
  label_counts_[stored.label_index]++;
  return Status::OK();
}

Status PebTree::Delete(UserId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  PEB_RETURN_NOT_OK(tree_.Delete({it->second.key, id}));
  auto lc = label_counts_.find(it->second.label_index);
  if (--lc->second == 0) label_counts_.erase(lc);
  objects_.erase(it);
  return Status::OK();
}

Status PebTree::Update(const MovingObject& object) {
  if (objects_.contains(object.id)) {
    PEB_RETURN_NOT_OK(Delete(object.id));
  }
  return Insert(object);
}

Result<MovingObject> PebTree::GetObject(UserId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  return it->second.state;
}

Status PebTree::AdoptSnapshot(std::shared_ptr<const EncodingSnapshot> snapshot,
                              const std::vector<UserId>* rekey) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("cannot adopt a null encoding snapshot");
  }
  if (snapshot->num_users() != snapshot_->num_users()) {
    return Status::InvalidArgument(
        "snapshot population differs from the tree's encoding");
  }
  if (snapshot->quantizer().bits() > options_.sv_bits) {
    return Status::InvalidArgument(
        "snapshot quantizer wider than the key's SV field");
  }
  snapshot_ = std::move(snapshot);

  // Re-key through the normal update path: Delete uses the remembered old
  // key, Insert recomputes KeyFor under the new snapshot. Collect hosted
  // ids first — Update mutates objects_.
  std::vector<UserId> moved;
  if (rekey != nullptr) {
    moved.reserve(rekey->size());
    for (UserId uid : *rekey) {
      if (objects_.contains(uid)) moved.push_back(uid);
    }
  } else {
    // Self-sufficient mode: diff every hosted record's key.
    for (const auto& [uid, stored] : objects_) {
      if (KeyFor(stored.state) != stored.key) moved.push_back(uid);
    }
  }
  for (UserId uid : moved) {
    // By value: Update deletes the map node the reference would point into.
    MovingObject state = objects_.at(uid).state;
    PEB_RETURN_NOT_OK(Update(state));
  }
  return Status::OK();
}

Status PebTree::AttachExisting(const PebTreeManifest& manifest) {
  if (!objects_.empty()) {
    return Status::InvalidArgument("AttachExisting requires an empty index");
  }
  PEB_RETURN_NOT_OK(tree_.Attach(manifest.root, manifest.stats));

  // Rebuild the direct-access object table and partition counts from the
  // leaf level. Every leaf entry is self-describing: the key carries the
  // PEB value and uid, the record carries the motion state.
  PEB_ASSIGN_OR_RETURN(auto it, tree_.SeekFirst());
  while (it.Valid()) {
    CompositeKey key = it.key();
    ObjectRecord rec = it.value();
    StoredObject stored;
    stored.state.id = key.uid;
    stored.state.pos = {rec.x, rec.y};
    stored.state.vel = {rec.vx, rec.vy};
    stored.state.tu = rec.tu;
    stored.label_index = options_.index.partitions.LabelIndexFor(rec.tu);
    stored.key = key.primary;
    if (objects_.contains(key.uid)) {
      objects_.clear();
      label_counts_.clear();
      return Status::Corruption("duplicate uid " + std::to_string(key.uid) +
                                " in persisted index");
    }
    objects_.emplace(key.uid, stored);
    label_counts_[stored.label_index]++;
    PEB_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

std::vector<PebTree::SvRow> PebTree::BuildRows(
    const std::vector<FriendEntry>& friends) {
  std::vector<SvRow> rows;
  rows.reserve(friends.size());
  for (const FriendEntry& f : friends) {  // Ascending (qsv, uid).
    if (rows.empty() || rows.back().qsv != f.qsv) {
      rows.push_back({f.qsv, {}});
    }
    rows.back().uids.push_back(f.uid);
  }
  return rows;
}

bool PebTree::Verify(UserId issuer, const SpatialCandidate& cand,
                     Timestamp tq) const {
  return cand.uid != issuer &&
         store_->Allows(cand.uid, issuer, cand.pos, tq, *roles_,
                        options_.time_domain);
}

namespace {

/// Consumes entries from an iterator-like positioned at the scan start
/// until the key leaves [.., end_primary]. Shared by the LeafCursor fast
/// path and the legacy per-interval-descent path.
template <typename It>
Status ConsumePebEntries(It& it, uint64_t end_primary,
                         const std::unordered_set<UserId>* wanted,
                         std::unordered_set<UserId>* found,
                         std::vector<SpatialCandidate>* out, Timestamp tq,
                         QueryCounters* counters) {
  while (it.Valid()) {
    CompositeKey key = it.key();
    if (key.primary > end_primary) break;
    counters->candidates_examined++;
    UserId uid = key.uid;
    if ((wanted == nullptr || wanted->contains(uid)) &&
        !found->contains(uid)) {
      found->insert(uid);
      ObjectRecord rec = it.value();
      MovingObject obj;
      obj.id = uid;
      obj.pos = {rec.x, rec.y};
      obj.vel = {rec.vx, rec.vy};
      obj.tu = rec.tu;
      out->push_back({uid, obj.PositionAt(tq), obj});
    }
    PEB_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

}  // namespace

Status PebTree::ScanKeyRange(ObjectBTree::LeafCursor* cursor,
                             CompositeKey start, uint64_t end_primary,
                             const std::unordered_set<UserId>* wanted,
                             std::unordered_set<UserId>* found,
                             std::vector<SpatialCandidate>* out, Timestamp tq,
                             QueryCounters* counters) const {
  counters->range_probes++;
  if (options_.index.leaf_cursor_fast_path && cursor != nullptr) {
    size_t d0 = cursor->descents();
    size_t h0 = cursor->chain_hops();
    PEB_RETURN_NOT_OK(cursor->SeekGE(start));
    counters->seek_descents += cursor->descents() - d0;
    counters->leaf_hops += cursor->chain_hops() - h0;
    return ConsumePebEntries(*cursor, end_primary, wanted, found, out, tq,
                             counters);
  }
  counters->seek_descents++;
  PEB_ASSIGN_OR_RETURN(auto it, tree_.SeekGE(start));
  return ConsumePebEntries(it, end_primary, wanted, found, out, tq, counters);
}

Status PebTree::ScanSvInterval(ObjectBTree::LeafCursor* cursor,
                               uint32_t partition, uint32_t qsv, uint64_t zlo,
                               uint64_t zhi,
                               const std::unordered_set<UserId>* wanted,
                               std::unordered_set<UserId>* found,
                               std::vector<SpatialCandidate>* out,
                               Timestamp tq, QueryCounters* counters) const {
  if (zlo > zhi) return Status::OK();
  return ScanKeyRange(cursor,
                      CompositeKey::Min(layout_.MakeKey(partition, qsv, zlo)),
                      layout_.MakeKey(partition, qsv, zhi), wanted, found,
                      out, tq, counters);
}

// ---------------------------------------------------------------------------
// PRQ
// ---------------------------------------------------------------------------

Result<std::vector<UserId>> PebTree::RangeQuery(UserId issuer,
                                                const Rect& range,
                                                Timestamp tq) {
  PEB_RETURN_NOT_OK(ValidateQueryRect(range));
  // Pin the snapshot for the whole query: friends, quantizer, and the
  // tree's keys stay one consistent epoch.
  std::shared_ptr<const EncodingSnapshot> snap = snapshot_;
  if (issuer >= snap->num_users()) {
    return UnknownIssuerError(issuer);
  }
  return RangeQueryAmong(issuer, range, tq, snap->FriendsOf(issuer));
}

Result<std::vector<UserId>> PebTree::RangeQueryAmong(
    UserId issuer, const Rect& range, Timestamp tq,
    const std::vector<FriendEntry>& friends, SharedScanCache* shared) const {
  counters_ = QueryCounters{};
  std::vector<SvRow> rows = BuildRows(friends);
  switch (options_.prq_strategy) {
    case PrqStrategy::kPerFriendIntervals:
      return RangeQueryPerFriend(issuer, range, tq, rows, shared);
    case PrqStrategy::kSpanScan:
      return RangeQuerySpan(issuer, range, tq, rows, shared);
  }
  return Status::Internal("unknown PRQ strategy");
}

Result<std::vector<UserId>> PebTree::RangeQueryPerFriend(
    UserId issuer, const Rect& range, Timestamp tq,
    const std::vector<SvRow>& rows, SharedScanCache* shared) const {
  std::vector<UserId> results;
  if (rows.empty()) return results;

  std::unordered_set<UserId> found;
  std::vector<SpatialCandidate> candidates;
  candidates.reserve(rows.size());

  // Per-row wanted sets, built once instead of per (label, row) pair.
  std::vector<std::unordered_set<UserId>> row_wanted(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    row_wanted[i].insert(rows[i].uids.begin(), rows[i].uids.end());
  }

  ObjectBTree::LeafCursor cursor = tree_.NewCursor();
  cursor.set_prefetch(options_.index.prefetch_next_leaf);

  for (const auto& [label, count] : label_counts_) {
    Timestamp tlab = options_.index.partitions.LabelTimestamp(label);
    uint32_t partition = options_.index.partitions.PartitionOf(label);
    double d = options_.index.max_speed * std::abs(tq - tlab);
    auto compute = [&]() {
      return ZIntervalsForWindow(grid_, range.Expanded(d),
                                 options_.index.zrange);
    };
    // Cache hits share one immutable decomposition (no per-shard deep
    // copies); the uncached path computes into a local.
    std::vector<CurveInterval> local;
    SharedScanCache::IntervalsPtr cached;
    if (shared == nullptr) {
      local = compute();
    } else {
      cached = shared->PrqIntervals(label, compute);
    }
    const std::vector<CurveInterval>& intervals =
        shared == nullptr ? local : *cached;
    if (intervals.empty()) continue;

    // Rows ascend by qsv and intervals by Z, and qsv sits above zv in the
    // PEB key, so every probe within one label moves the cursor forward.
    for (size_t i = 0; i < rows.size(); ++i) {
      const SvRow& row = rows[i];
      // Skip rule: a user has one location; once each of the row's users
      // has been found (in any partition), its remaining ranges are dead.
      bool all_found = true;
      for (UserId u : row.uids) {
        if (!found.contains(u)) {
          all_found = false;
          break;
        }
      }
      if (all_found) continue;
      for (const CurveInterval& iv : intervals) {
        PEB_RETURN_NOT_OK(ScanSvInterval(&cursor, partition, row.qsv, iv.lo,
                                         iv.hi, &row_wanted[i], &found,
                                         &candidates, tq, &counters_));
        bool row_done = true;
        for (UserId u : row.uids) {
          if (!found.contains(u)) {
            row_done = false;
            break;
          }
        }
        if (row_done) break;
      }
    }
  }

  for (const SpatialCandidate& cand : candidates) {
    if (range.Contains(cand.pos) && Verify(issuer, cand, tq)) {
      results.push_back(cand.uid);
    }
  }
  std::sort(results.begin(), results.end());
  counters_.results = results.size();
  return results;
}

Result<std::vector<UserId>> PebTree::RangeQuerySpan(
    UserId issuer, const Rect& range, Timestamp tq,
    const std::vector<SvRow>& rows, SharedScanCache* shared) const {
  std::vector<UserId> results;
  if (rows.empty()) return results;

  uint32_t sv_min = rows.front().qsv;
  uint32_t sv_max = rows.back().qsv;
  std::unordered_set<UserId> wanted;
  for (const SvRow& row : rows) {
    wanted.insert(row.uids.begin(), row.uids.end());
  }
  std::unordered_set<UserId> found;
  std::vector<SpatialCandidate> candidates;
  candidates.reserve(rows.size());

  ObjectBTree::LeafCursor cursor = tree_.NewCursor();
  cursor.set_prefetch(options_.index.prefetch_next_leaf);

  for (const auto& [label, count] : label_counts_) {
    Timestamp tlab = options_.index.partitions.LabelTimestamp(label);
    uint32_t partition = options_.index.partitions.PartitionOf(label);
    double d = options_.index.max_speed * std::abs(tq - tlab);
    auto compute = [&]() {
      return ZIntervalsForWindow(grid_, range.Expanded(d),
                                 options_.index.zrange);
    };
    std::vector<CurveInterval> local;
    SharedScanCache::IntervalsPtr cached;
    if (shared == nullptr) {
      local = compute();
    } else {
      cached = shared->PrqIntervals(label, compute);
    }
    const std::vector<CurveInterval>& intervals =
        shared == nullptr ? local : *cached;

    for (const CurveInterval& iv : intervals) {
      // Figure 7 literally: StartPnt = TID ⊕ SVmin ⊕ ZVstart,
      // EndPnt = TID ⊕ SVmax ⊕ ZVend — a single scan spanning every
      // sequence value between the issuer's smallest and largest friend.
      // Note the spans of consecutive intervals interleave in key space
      // (each covers every SV between min and max), so the cursor mostly
      // re-descends here; the fast path still saves the within-span walk.
      PEB_RETURN_NOT_OK(ScanKeyRange(
          &cursor, CompositeKey::Min(layout_.MakeKey(partition, sv_min, iv.lo)),
          layout_.MakeKey(partition, sv_max, iv.hi), &wanted, &found,
          &candidates, tq, &counters_));
    }
  }

  for (const SpatialCandidate& cand : candidates) {
    if (range.Contains(cand.pos) && Verify(issuer, cand, tq)) {
      results.push_back(cand.uid);
    }
  }
  std::sort(results.begin(), results.end());
  counters_.results = results.size();
  return results;
}

// ---------------------------------------------------------------------------
// PkNN
// ---------------------------------------------------------------------------

double EstimateKnnDistanceFor(size_t n, size_t k, double space_side) {
  if (n == 0) n = 1;
  double ratio = std::min(1.0, static_cast<double>(k) / static_cast<double>(n));
  double inner = 1.0 - std::sqrt(ratio);
  double dk = 2.0 / std::sqrt(std::numbers::pi) *
              (1.0 - std::sqrt(std::max(0.0, inner)));
  return std::max(dk * space_side, 1e-6 * space_side);
}

double PebTree::EstimateKnnDistance(size_t k) const {
  return EstimateKnnDistanceFor(size(), k, options_.index.space_side);
}

Result<std::vector<Neighbor>> PebTree::KnnQuery(UserId issuer,
                                                const Point& qloc, size_t k,
                                                Timestamp tq) {
  PEB_RETURN_NOT_OK(ValidateQueryK(k));
  std::shared_ptr<const EncodingSnapshot> snap = snapshot_;
  if (issuer >= snap->num_users()) {
    return UnknownIssuerError(issuer);
  }
  return KnnQueryAmong(issuer, qloc, k, tq, snap->FriendsOf(issuer));
}

// --- KnnScan: the incremental per-tree search primitive --------------------

PebTree::KnnScan::KnnScan(const PebTree* tree, UserId issuer, Point qloc,
                          Timestamp tq, double rq,
                          const std::vector<FriendEntry>& friends,
                          SharedScanCache* shared)
    : tree_(tree),
      issuer_(issuer),
      qloc_(qloc),
      tq_(tq),
      rq_(rq),
      shared_(shared),
      rows_(BuildRows(friends)) {
  row_wanted_.resize(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    row_wanted_[i].insert(rows_[i].uids.begin(), rows_[i].uids.end());
    total_wanted_ += rows_[i].uids.size();
  }
  double space_diag = tree_->options_.index.space_side * std::numbers::sqrt2;
  while (KnnRadiusForRound(rq_, max_rounds_ - 1) < space_diag) max_rounds_++;

  cursor_ = tree_->tree_.NewCursor();
  cursor_.set_prefetch(tree_->options_.index.prefetch_next_leaf);

  // Snapshot the live labels (stable during the scan).
  const auto& opts = tree_->options_.index;
  for (const auto& [label, count] : tree_->label_counts_) {
    Timestamp tlab = opts.partitions.LabelTimestamp(label);
    labels_.push_back({label, opts.partitions.PartitionOf(label),
                       opts.max_speed * std::abs(tq - tlab)});
  }
  spans_.resize(labels_.size());
}

bool PebTree::KnnScan::RowDone(size_t i) const {
  for (UserId u : rows_[i].uids) {
    if (!found_.contains(u)) return false;
  }
  return true;
}

// Per-label, per-round single Z span (Section 5.4 uses one interval per
// round: the min/max of the round's decomposed 1-D values). Spans are
// cumulative, so the same (label, round) value is valid for every shard of
// a fanned-out query and is shared through the cache.
CurveInterval PebTree::KnnScan::SpanFor(size_t li, size_t j) {
  auto& memo = spans_[li];
  while (memo.size() <= j) {
    size_t round = memo.size();
    auto compute = [&]() -> CurveInterval {
      Rect rect =
          Rect::CenteredSquare(qloc_, 2.0 * KnnRadiusForRound(rq_, round));
      auto intervals =
          ZIntervalsForWindow(tree_->grid_, rect.Expanded(labels_[li].enlarge),
                              tree_->options_.index.zrange);
      if (intervals.empty()) {
        // Degenerate; cover nothing yet (outer rounds will grow).
        return {memo.empty() ? 1 : memo.back().lo,
                memo.empty() ? 0 : memo.back().hi};
      }
      uint64_t lo = intervals.front().lo;
      uint64_t hi = intervals.back().hi;
      if (!memo.empty()) {
        lo = std::min(lo, memo.back().lo);
        hi = std::max(hi, memo.back().hi);
      }
      return {lo, hi};
    };
    memo.push_back(shared_ == nullptr
                       ? compute()
                       : shared_->KnnSpan(labels_[li].label, round, compute));
  }
  return memo[j];
}

void PebTree::KnnScan::InsertVerified(std::vector<Neighbor>* verified) {
  for (const SpatialCandidate& cand : batch_) {
    if (tree_->Verify(issuer_, cand, tq_)) {
      Neighbor nb{cand.uid, cand.pos.DistanceTo(qloc_)};
      auto pos = std::lower_bound(verified->begin(), verified->end(), nb,
                                  [](const Neighbor& a, const Neighbor& b) {
                                    return a.distance < b.distance;
                                  });
      verified->insert(pos, nb);
    }
  }
}

Status PebTree::KnnScan::ScanCell(size_t i, size_t j,
                                  std::vector<Neighbor>* verified) {
  counters_.rounds = std::max(counters_.rounds, j + 1);
  if (RowDone(i)) return Status::OK();
  for (size_t li = 0; li < labels_.size(); ++li) {
    CurveInterval cur = SpanFor(li, j);
    if (cur.lo > cur.hi) continue;
    batch_.clear();
    const uint32_t partition = labels_[li].partition;
    const uint32_t qsv = rows_[i].qsv;
    if (j == 0) {
      PEB_RETURN_NOT_OK(tree_->ScanSvInterval(&cursor_, partition, qsv,
                                              cur.lo, cur.hi, &row_wanted_[i],
                                              &found_, &batch_, tq_,
                                              &counters_));
    } else {
      // Scan only the ring new to round j.
      CurveInterval prev = SpanFor(li, j - 1);
      if (prev.lo > prev.hi) {
        PEB_RETURN_NOT_OK(tree_->ScanSvInterval(&cursor_, partition, qsv,
                                                cur.lo, cur.hi,
                                                &row_wanted_[i], &found_,
                                                &batch_, tq_, &counters_));
      } else {
        if (cur.lo < prev.lo) {
          PEB_RETURN_NOT_OK(tree_->ScanSvInterval(&cursor_, partition, qsv,
                                                  cur.lo, prev.lo - 1,
                                                  &row_wanted_[i], &found_,
                                                  &batch_, tq_, &counters_));
        }
        if (cur.hi > prev.hi) {
          PEB_RETURN_NOT_OK(tree_->ScanSvInterval(&cursor_, partition, qsv,
                                                  prev.hi + 1, cur.hi,
                                                  &row_wanted_[i], &found_,
                                                  &batch_, tq_, &counters_));
        }
      }
    }
    InsertVerified(verified);
  }
  return Status::OK();
}

Status PebTree::KnnScan::ScanDiagonal(size_t d,
                                      std::vector<Neighbor>* verified) {
  if (rows_.empty()) return Status::OK();
  size_t i_hi = std::min(d, rows_.size() - 1);
  for (size_t i = 0; i <= i_hi; ++i) {
    size_t j = d - i;
    if (j >= max_rounds_) continue;
    PEB_RETURN_NOT_OK(ScanCell(i, j, verified));
  }
  return Status::OK();
}

Status PebTree::KnnScan::VerticalScan(double dk,
                                      std::vector<Neighbor>* verified) {
  Rect rect = Rect::CenteredSquare(qloc_, 2.0 * dk);
  for (size_t li = 0; li < labels_.size(); ++li) {
    auto compute = [&]() -> CurveInterval {
      auto intervals =
          ZIntervalsForWindow(tree_->grid_, rect.Expanded(labels_[li].enlarge),
                              tree_->options_.index.zrange);
      if (intervals.empty()) return {1, 0};
      return {intervals.front().lo, intervals.back().hi};
    };
    CurveInterval span =
        shared_ == nullptr ? compute()
                           : shared_->VerticalSpan(labels_[li].label, compute);
    if (span.lo > span.hi) continue;
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (RowDone(i)) continue;
      batch_.clear();
      PEB_RETURN_NOT_OK(tree_->ScanSvInterval(&cursor_, labels_[li].partition,
                                              rows_[i].qsv, span.lo, span.hi,
                                              &row_wanted_[i], &found_,
                                              &batch_, tq_, &counters_));
      InsertVerified(verified);
    }
  }
  return Status::OK();
}

PebTree::KnnScan PebTree::NewKnnScan(UserId issuer, const Point& qloc,
                                     Timestamp tq, double rq,
                                     const std::vector<FriendEntry>& friends,
                                     SharedScanCache* shared) const {
  return KnnScan(this, issuer, qloc, tq, rq, friends, shared);
}

// --- single-tree PkNN: drive the scan cell by cell -------------------------

Result<std::vector<Neighbor>> PebTree::KnnQueryAmong(
    UserId issuer, const Point& qloc, size_t k, Timestamp tq,
    const std::vector<FriendEntry>& friends) const {
  counters_ = QueryCounters{};
  std::vector<Neighbor> verified;
  if (k == 0) return verified;  // Among-path legacy tolerance; the public
                                // KnnQuery rejects k == 0 uniformly.
  double rq = EstimateKnnDistance(k) / static_cast<double>(k);
  KnnScan scan(this, issuer, qloc, tq, rq, friends, nullptr);
  size_t m = scan.num_rows();
  if (m == 0) return verified;
  size_t max_rounds = scan.max_rounds();

  // After every cell: with k candidates in hand, run the final vertical
  // scan (Section 5.4) and stop; also stop when every friend is located.
  bool done = false;
  auto after_cell = [&]() -> Result<bool> {
    if (verified.size() >= k) {
      PEB_RETURN_NOT_OK(scan.VerticalScan(verified[k - 1].distance,
                                          &verified));
      return true;
    }
    if (scan.AllFound()) return true;
    return false;
  };

  // Triangular (anti-diagonal) traversal of the (m x max_rounds) matrix,
  // or spatial-first column-major for the ablation variant.
  if (options_.knn_order == KnnOrder::kTriangular) {
    for (size_t d = 0; d < m + max_rounds - 1 && !done; ++d) {
      size_t i_hi = std::min(d, m - 1);
      for (size_t i = 0; i <= i_hi && !done; ++i) {
        size_t j = d - i;
        if (j >= max_rounds) continue;
        PEB_RETURN_NOT_OK(scan.ScanCell(i, j, &verified));
        PEB_ASSIGN_OR_RETURN(done, after_cell());
      }
    }
  } else {
    for (size_t j = 0; j < max_rounds && !done; ++j) {
      for (size_t i = 0; i < m && !done; ++i) {
        PEB_RETURN_NOT_OK(scan.ScanCell(i, j, &verified));
        PEB_ASSIGN_OR_RETURN(done, after_cell());
      }
    }
  }

  if (verified.size() > k) verified.resize(k);
  counters_ = scan.counters();  // Single-tree path: publish for last_query().
  counters_.results = verified.size();
  return verified;
}

}  // namespace peb
