#include "peb/peb_tree.h"

#include "bxtree/knn_schedule.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace peb {

PebTree::PebTree(BufferPool* pool, const PebTreeOptions& options,
                 const PolicyStore* store, const RoleRegistry* roles,
                 const PolicyEncoding* encoding)
    : pool_(pool),
      options_(options),
      grid_(options.index.space_side, options.index.grid_bits),
      tree_(pool),
      store_(store),
      roles_(roles),
      encoding_(encoding) {
  layout_.sv_bits = options.sv_bits;
  layout_.grid_bits = options.index.grid_bits;
  assert(layout_.Fits() && "PEB key layout exceeds 64 bits");
  assert(encoding_->quantizer().bits() <= options.sv_bits &&
         "SV quantizer wider than the key's SV field");
}

uint64_t PebTree::KeyFor(const MovingObject& object) const {
  int64_t label = options_.index.partitions.LabelIndexFor(object.tu);
  Timestamp tlab = options_.index.partitions.LabelTimestamp(label);
  Point projected = object.PositionAt(tlab);
  uint64_t zv = grid_.ZValueOf(projected);
  uint32_t qsv = encoding_->quantized_sv(object.id);
  return layout_.MakeKey(options_.index.partitions.PartitionOf(label), qsv,
                         zv);
}

Status PebTree::Insert(const MovingObject& object) {
  if (objects_.contains(object.id)) {
    return Status::AlreadyExists("object " + std::to_string(object.id) +
                                 " already indexed");
  }
  if (object.id >= encoding_->num_users()) {
    return Status::InvalidArgument("object id outside the policy encoding");
  }
  StoredObject stored;
  stored.state = object;
  stored.label_index = options_.index.partitions.LabelIndexFor(object.tu);
  stored.key = KeyFor(object);

  ObjectRecord rec;
  rec.x = object.pos.x;
  rec.y = object.pos.y;
  rec.vx = object.vel.x;
  rec.vy = object.vel.y;
  rec.tu = object.tu;
  rec.pntp = object.id;

  PEB_RETURN_NOT_OK(tree_.Insert({stored.key, object.id}, rec));
  objects_.emplace(object.id, stored);
  label_counts_[stored.label_index]++;
  return Status::OK();
}

Status PebTree::Delete(UserId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  PEB_RETURN_NOT_OK(tree_.Delete({it->second.key, id}));
  auto lc = label_counts_.find(it->second.label_index);
  if (--lc->second == 0) label_counts_.erase(lc);
  objects_.erase(it);
  return Status::OK();
}

Status PebTree::Update(const MovingObject& object) {
  if (objects_.contains(object.id)) {
    PEB_RETURN_NOT_OK(Delete(object.id));
  }
  return Insert(object);
}

Result<MovingObject> PebTree::GetObject(UserId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  return it->second.state;
}

Status PebTree::AttachExisting(const PebTreeManifest& manifest) {
  if (!objects_.empty()) {
    return Status::InvalidArgument("AttachExisting requires an empty index");
  }
  PEB_RETURN_NOT_OK(tree_.Attach(manifest.root, manifest.stats));

  // Rebuild the direct-access object table and partition counts from the
  // leaf level. Every leaf entry is self-describing: the key carries the
  // PEB value and uid, the record carries the motion state.
  PEB_ASSIGN_OR_RETURN(auto it, tree_.SeekFirst());
  while (it.Valid()) {
    CompositeKey key = it.key();
    ObjectRecord rec = it.value();
    StoredObject stored;
    stored.state.id = key.uid;
    stored.state.pos = {rec.x, rec.y};
    stored.state.vel = {rec.vx, rec.vy};
    stored.state.tu = rec.tu;
    stored.label_index = options_.index.partitions.LabelIndexFor(rec.tu);
    stored.key = key.primary;
    if (objects_.contains(key.uid)) {
      objects_.clear();
      label_counts_.clear();
      return Status::Corruption("duplicate uid " + std::to_string(key.uid) +
                                " in persisted index");
    }
    objects_.emplace(key.uid, stored);
    label_counts_[stored.label_index]++;
    PEB_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

std::vector<PebTree::SvRow> PebTree::BuildRows(UserId issuer) const {
  std::vector<SvRow> rows;
  const auto& friends = encoding_->FriendsOf(issuer);  // Ascending (qsv, uid).
  for (const FriendEntry& f : friends) {
    if (rows.empty() || rows.back().qsv != f.qsv) {
      rows.push_back({f.qsv, {}});
    }
    rows.back().uids.push_back(f.uid);
  }
  return rows;
}

bool PebTree::Verify(UserId issuer, const SpatialCandidate& cand,
                     Timestamp tq) const {
  return cand.uid != issuer &&
         store_->Allows(cand.uid, issuer, cand.pos, tq, *roles_,
                        options_.time_domain);
}

Status PebTree::ScanSvInterval(uint32_t partition, uint32_t qsv, uint64_t zlo,
                               uint64_t zhi,
                               const std::unordered_set<UserId>* wanted,
                               std::unordered_set<UserId>* found,
                               std::vector<SpatialCandidate>* out,
                               Timestamp tq) {
  if (zlo > zhi) return Status::OK();
  CompositeKey start = CompositeKey::Min(layout_.MakeKey(partition, qsv, zlo));
  uint64_t end_primary = layout_.MakeKey(partition, qsv, zhi);
  counters_.range_probes++;

  PEB_ASSIGN_OR_RETURN(auto it, tree_.SeekGE(start));
  while (it.Valid()) {
    CompositeKey key = it.key();
    if (key.primary > end_primary) break;
    counters_.candidates_examined++;
    UserId uid = key.uid;
    if ((wanted == nullptr || wanted->contains(uid)) &&
        !found->contains(uid)) {
      found->insert(uid);
      ObjectRecord rec = it.value();
      MovingObject obj;
      obj.id = uid;
      obj.pos = {rec.x, rec.y};
      obj.vel = {rec.vx, rec.vy};
      obj.tu = rec.tu;
      out->push_back({uid, obj.PositionAt(tq), obj});
    }
    PEB_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// PRQ
// ---------------------------------------------------------------------------

Result<std::vector<UserId>> PebTree::RangeQuery(UserId issuer,
                                                const Rect& range,
                                                Timestamp tq) {
  counters_ = QueryCounters{};
  switch (options_.prq_strategy) {
    case PrqStrategy::kPerFriendIntervals:
      return RangeQueryPerFriend(issuer, range, tq);
    case PrqStrategy::kSpanScan:
      return RangeQuerySpan(issuer, range, tq);
  }
  return Status::Internal("unknown PRQ strategy");
}

Result<std::vector<UserId>> PebTree::RangeQueryPerFriend(UserId issuer,
                                                         const Rect& range,
                                                         Timestamp tq) {
  std::vector<SvRow> rows = BuildRows(issuer);
  std::vector<UserId> results;
  if (rows.empty()) return results;

  std::unordered_set<UserId> found;
  std::vector<SpatialCandidate> candidates;

  for (const auto& [label, count] : label_counts_) {
    Timestamp tlab = options_.index.partitions.LabelTimestamp(label);
    uint32_t partition = options_.index.partitions.PartitionOf(label);
    double d = options_.index.max_speed * std::abs(tq - tlab);
    auto intervals =
        ZIntervalsForWindow(grid_, range.Expanded(d), options_.index.zrange);
    if (intervals.empty()) continue;

    for (const SvRow& row : rows) {
      std::unordered_set<UserId> wanted(row.uids.begin(), row.uids.end());
      // Skip rule: a user has one location; once each of the row's users
      // has been found (in any partition), its remaining ranges are dead.
      bool all_found = true;
      for (UserId u : row.uids) {
        if (!found.contains(u)) {
          all_found = false;
          break;
        }
      }
      if (all_found) continue;
      for (const CurveInterval& iv : intervals) {
        PEB_RETURN_NOT_OK(ScanSvInterval(partition, row.qsv, iv.lo, iv.hi,
                                         &wanted, &found, &candidates, tq));
        bool row_done = true;
        for (UserId u : row.uids) {
          if (!found.contains(u)) {
            row_done = false;
            break;
          }
        }
        if (row_done) break;
      }
    }
  }

  for (const SpatialCandidate& cand : candidates) {
    if (range.Contains(cand.pos) && Verify(issuer, cand, tq)) {
      results.push_back(cand.uid);
    }
  }
  std::sort(results.begin(), results.end());
  counters_.results = results.size();
  return results;
}

Result<std::vector<UserId>> PebTree::RangeQuerySpan(UserId issuer,
                                                    const Rect& range,
                                                    Timestamp tq) {
  std::vector<SvRow> rows = BuildRows(issuer);
  std::vector<UserId> results;
  if (rows.empty()) return results;

  uint32_t sv_min = rows.front().qsv;
  uint32_t sv_max = rows.back().qsv;
  std::unordered_set<UserId> wanted;
  for (const SvRow& row : rows) {
    wanted.insert(row.uids.begin(), row.uids.end());
  }
  std::unordered_set<UserId> found;
  std::vector<SpatialCandidate> candidates;

  for (const auto& [label, count] : label_counts_) {
    Timestamp tlab = options_.index.partitions.LabelTimestamp(label);
    uint32_t partition = options_.index.partitions.PartitionOf(label);
    double d = options_.index.max_speed * std::abs(tq - tlab);
    auto intervals =
        ZIntervalsForWindow(grid_, range.Expanded(d), options_.index.zrange);

    for (const CurveInterval& iv : intervals) {
      // Figure 7 literally: StartPnt = TID ⊕ SVmin ⊕ ZVstart,
      // EndPnt = TID ⊕ SVmax ⊕ ZVend — a single scan spanning every
      // sequence value between the issuer's smallest and largest friend.
      CompositeKey start =
          CompositeKey::Min(layout_.MakeKey(partition, sv_min, iv.lo));
      uint64_t end_primary = layout_.MakeKey(partition, sv_max, iv.hi);
      counters_.range_probes++;
      PEB_ASSIGN_OR_RETURN(auto it, tree_.SeekGE(start));
      while (it.Valid()) {
        CompositeKey key = it.key();
        if (key.primary > end_primary) break;
        counters_.candidates_examined++;
        UserId uid = key.uid;
        if (wanted.contains(uid) && !found.contains(uid)) {
          found.insert(uid);
          ObjectRecord rec = it.value();
          MovingObject obj;
          obj.id = uid;
          obj.pos = {rec.x, rec.y};
          obj.vel = {rec.vx, rec.vy};
          obj.tu = rec.tu;
          candidates.push_back({uid, obj.PositionAt(tq), obj});
        }
        PEB_RETURN_NOT_OK(it.Next());
      }
    }
  }

  for (const SpatialCandidate& cand : candidates) {
    if (range.Contains(cand.pos) && Verify(issuer, cand, tq)) {
      results.push_back(cand.uid);
    }
  }
  std::sort(results.begin(), results.end());
  counters_.results = results.size();
  return results;
}

// ---------------------------------------------------------------------------
// PkNN
// ---------------------------------------------------------------------------

double PebTree::EstimateKnnDistance(size_t k) const {
  size_t n = std::max<size_t>(size(), 1);
  double ratio = std::min(1.0, static_cast<double>(k) / static_cast<double>(n));
  double inner = 1.0 - std::sqrt(ratio);
  double dk = 2.0 / std::sqrt(std::numbers::pi) *
              (1.0 - std::sqrt(std::max(0.0, inner)));
  return std::max(dk * options_.index.space_side,
                  1e-6 * options_.index.space_side);
}

Result<std::vector<Neighbor>> PebTree::KnnQuery(UserId issuer,
                                                const Point& qloc, size_t k,
                                                Timestamp tq) {
  counters_ = QueryCounters{};
  std::vector<Neighbor> verified;
  if (k == 0) return verified;
  std::vector<SvRow> rows = BuildRows(issuer);
  if (rows.empty()) return verified;
  size_t m = rows.size();

  size_t total_friends = 0;
  std::vector<std::unordered_set<UserId>> row_wanted(m);
  for (size_t i = 0; i < m; ++i) {
    row_wanted[i].insert(rows[i].uids.begin(), rows[i].uids.end());
    total_friends += rows[i].uids.size();
  }

  double dk_estimate = EstimateKnnDistance(k);
  double rq = dk_estimate / static_cast<double>(k);
  double space_diag = options_.index.space_side * std::numbers::sqrt2;
  size_t max_rounds = 1;
  while (KnnRadiusForRound(rq, max_rounds - 1) < space_diag) max_rounds++;

  // Snapshot the live labels (stable during the query).
  struct LabelInfo {
    int64_t label;
    uint32_t partition;
    double enlarge;
  };
  std::vector<LabelInfo> labels;
  for (const auto& [label, count] : label_counts_) {
    Timestamp tlab = options_.index.partitions.LabelTimestamp(label);
    labels.push_back({label, options_.index.partitions.PartitionOf(label),
                      options_.index.max_speed * std::abs(tq - tlab)});
  }

  // Per-label, per-round single Z span (Section 5.4 uses one interval per
  // round: the min/max of the round's decomposed 1-D values).
  std::vector<std::vector<CurveInterval>> spans(labels.size());
  auto span_for = [&](size_t li, size_t j) -> CurveInterval {
    auto& memo = spans[li];
    while (memo.size() <= j) {
      size_t round = memo.size();
      Rect rect =
          Rect::CenteredSquare(qloc, 2.0 * KnnRadiusForRound(rq, round));
      auto intervals = ZIntervalsForWindow(
          grid_, rect.Expanded(labels[li].enlarge), options_.index.zrange);
      if (intervals.empty()) {
        // Degenerate; cover nothing yet (outer rounds will grow).
        memo.push_back(
            {memo.empty() ? 1 : memo.back().lo, memo.empty() ? 0 : memo.back().hi});
      } else {
        uint64_t lo = intervals.front().lo;
        uint64_t hi = intervals.back().hi;
        if (!memo.empty()) {
          lo = std::min(lo, memo.back().lo);
          hi = std::max(hi, memo.back().hi);
        }
        memo.push_back({lo, hi});
      }
    }
    return memo[j];
  };

  std::unordered_set<UserId> found;
  std::vector<SpatialCandidate> batch;

  // Processes matrix cell (row i, round j): scans the ring new to round j
  // for the row's sequence value, in every partition.
  auto process_cell = [&](size_t i, size_t j) -> Status {
    bool all_found = true;
    for (UserId u : rows[i].uids) {
      if (!found.contains(u)) {
        all_found = false;
        break;
      }
    }
    if (all_found) return Status::OK();
    for (size_t li = 0; li < labels.size(); ++li) {
      CurveInterval cur = span_for(li, j);
      if (cur.lo > cur.hi) continue;
      batch.clear();
      if (j == 0) {
        PEB_RETURN_NOT_OK(ScanSvInterval(labels[li].partition, rows[i].qsv,
                                         cur.lo, cur.hi, &row_wanted[i],
                                         &found, &batch, tq));
      } else {
        CurveInterval prev = span_for(li, j - 1);
        if (prev.lo > prev.hi) {
          PEB_RETURN_NOT_OK(ScanSvInterval(labels[li].partition, rows[i].qsv,
                                           cur.lo, cur.hi, &row_wanted[i],
                                           &found, &batch, tq));
        } else {
          if (cur.lo < prev.lo) {
            PEB_RETURN_NOT_OK(ScanSvInterval(labels[li].partition,
                                             rows[i].qsv, cur.lo, prev.lo - 1,
                                             &row_wanted[i], &found, &batch,
                                             tq));
          }
          if (cur.hi > prev.hi) {
            PEB_RETURN_NOT_OK(ScanSvInterval(labels[li].partition,
                                             rows[i].qsv, prev.hi + 1, cur.hi,
                                             &row_wanted[i], &found, &batch,
                                             tq));
          }
        }
      }
      for (const SpatialCandidate& cand : batch) {
        if (Verify(issuer, cand, tq)) {
          Neighbor nb{cand.uid, cand.pos.DistanceTo(qloc)};
          auto pos = std::lower_bound(
              verified.begin(), verified.end(), nb,
              [](const Neighbor& a, const Neighbor& b) {
                return a.distance < b.distance;
              });
          verified.insert(pos, nb);
        }
      }
    }
    return Status::OK();
  };

  // Final step (Section 5.4): with k candidates in hand, scan the square of
  // side 2 * d(q, kth candidate) for every friend not yet located, to rule
  // out closer unexamined users.
  auto vertical_scan = [&]() -> Status {
    double dk = verified[k - 1].distance;
    Rect rect = Rect::CenteredSquare(qloc, 2.0 * dk);
    for (size_t li = 0; li < labels.size(); ++li) {
      auto intervals = ZIntervalsForWindow(
          grid_, rect.Expanded(labels[li].enlarge), options_.index.zrange);
      if (intervals.empty()) continue;
      uint64_t lo = intervals.front().lo;
      uint64_t hi = intervals.back().hi;
      for (size_t i = 0; i < m; ++i) {
        bool all_found = true;
        for (UserId u : rows[i].uids) {
          if (!found.contains(u)) {
            all_found = false;
            break;
          }
        }
        if (all_found) continue;
        batch.clear();
        PEB_RETURN_NOT_OK(ScanSvInterval(labels[li].partition, rows[i].qsv,
                                         lo, hi, &row_wanted[i], &found,
                                         &batch, tq));
        for (const SpatialCandidate& cand : batch) {
          if (Verify(issuer, cand, tq)) {
            Neighbor nb{cand.uid, cand.pos.DistanceTo(qloc)};
            auto pos = std::lower_bound(
                verified.begin(), verified.end(), nb,
                [](const Neighbor& a, const Neighbor& b) {
                  return a.distance < b.distance;
                });
            verified.insert(pos, nb);
          }
        }
      }
    }
    return Status::OK();
  };

  // Triangular (anti-diagonal) traversal of the (m x max_rounds) matrix,
  // or spatial-first column-major for the ablation variant.
  bool done = false;
  auto after_cell = [&](size_t j) -> Result<bool> {
    counters_.rounds = std::max(counters_.rounds, j + 1);
    if (verified.size() >= k) {
      PEB_RETURN_NOT_OK(vertical_scan());
      return true;
    }
    if (found.size() >= total_friends) return true;
    return false;
  };

  if (options_.knn_order == KnnOrder::kTriangular) {
    for (size_t d = 0; d < m + max_rounds - 1 && !done; ++d) {
      size_t i_hi = std::min(d, m - 1);
      for (size_t i = 0; i <= i_hi && !done; ++i) {
        size_t j = d - i;
        if (j >= max_rounds) continue;
        PEB_RETURN_NOT_OK(process_cell(i, j));
        PEB_ASSIGN_OR_RETURN(done, after_cell(j));
      }
    }
  } else {
    for (size_t j = 0; j < max_rounds && !done; ++j) {
      for (size_t i = 0; i < m && !done; ++i) {
        PEB_RETURN_NOT_OK(process_cell(i, j));
        PEB_ASSIGN_OR_RETURN(done, after_cell(j));
      }
    }
  }

  if (verified.size() > k) verified.resize(k);
  counters_.results = verified.size();
  return verified;
}

}  // namespace peb
