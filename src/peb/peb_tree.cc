#include "peb/peb_tree.h"

#include "bxtree/knn_schedule.h"
#include "costmodel/cost_model.h"
#include "telemetry/trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>

namespace peb {

PebTree::PebTree(BufferPool* pool, const PebTreeOptions& options,
                 const PolicyStore* store, const RoleRegistry* roles,
                 std::shared_ptr<const EncodingSnapshot> snapshot)
    : pool_(pool),
      options_(options),
      grid_(options.index.space_side, options.index.grid_bits),
      tree_(pool),
      store_(store),
      roles_(roles),
      snapshot_(std::move(snapshot)) {
  layout_.sv_bits = options.sv_bits;
  layout_.grid_bits = options.index.grid_bits;
  assert(layout_.Fits() && "PEB key layout exceeds 64 bits");
  assert(snapshot_->quantizer().bits() <= options.sv_bits &&
         "SV quantizer wider than the key's SV field");
}

uint64_t PebTree::KeyFor(const MovingObject& object) const {
  int64_t label = options_.index.partitions.LabelIndexFor(object.tu);
  Timestamp tlab = options_.index.partitions.LabelTimestamp(label);
  Point projected = object.PositionAt(tlab);
  uint64_t zv = grid_.ZValueOf(projected);
  uint32_t qsv = snapshot_->quantized_sv(object.id);
  return layout_.MakeKey(options_.index.partitions.PartitionOf(label), qsv,
                         zv);
}

Status PebTree::Insert(const MovingObject& object) {
  if (objects_.contains(object.id)) {
    return Status::AlreadyExists("object " + std::to_string(object.id) +
                                 " already indexed");
  }
  if (object.id >= snapshot_->num_users()) {
    return Status::InvalidArgument("object id outside the policy encoding");
  }
  StoredObject stored;
  stored.state = object;
  stored.label_index = options_.index.partitions.LabelIndexFor(object.tu);
  stored.key = KeyFor(object);

  ObjectRecord rec;
  rec.x = object.pos.x;
  rec.y = object.pos.y;
  rec.vx = object.vel.x;
  rec.vy = object.vel.y;
  rec.tu = object.tu;
  rec.pntp = object.id;

  PEB_RETURN_NOT_OK(tree_.Insert({stored.key, object.id}, rec));
  objects_.emplace(object.id, stored);
  label_counts_[stored.label_index]++;
  return Status::OK();
}

Status PebTree::Delete(UserId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  PEB_RETURN_NOT_OK(tree_.Delete({it->second.key, id}));
  auto lc = label_counts_.find(it->second.label_index);
  if (--lc->second == 0) label_counts_.erase(lc);
  objects_.erase(it);
  return Status::OK();
}

Status PebTree::Update(const MovingObject& object) {
  if (objects_.contains(object.id)) {
    PEB_RETURN_NOT_OK(Delete(object.id));
  }
  return Insert(object);
}

Result<MovingObject> PebTree::GetObject(UserId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  return it->second.state;
}

Status PebTree::AdoptSnapshot(std::shared_ptr<const EncodingSnapshot> snapshot,
                              const std::vector<UserId>* rekey) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("cannot adopt a null encoding snapshot");
  }
  if (snapshot->num_users() != snapshot_->num_users()) {
    return Status::InvalidArgument(
        "snapshot population differs from the tree's encoding");
  }
  if (snapshot->quantizer().bits() > options_.sv_bits) {
    return Status::InvalidArgument(
        "snapshot quantizer wider than the key's SV field");
  }
  snapshot_ = std::move(snapshot);

  // Re-key through the normal update path: Delete uses the remembered old
  // key, Insert recomputes KeyFor under the new snapshot. Collect hosted
  // ids first — Update mutates objects_.
  std::vector<UserId> moved;
  if (rekey != nullptr) {
    moved.reserve(rekey->size());
    for (UserId uid : *rekey) {
      if (objects_.contains(uid)) moved.push_back(uid);
    }
  } else {
    // Self-sufficient mode: diff every hosted record's key.
    for (const auto& [uid, stored] : objects_) {
      if (KeyFor(stored.state) != stored.key) moved.push_back(uid);
    }
  }
  for (UserId uid : moved) {
    // By value: Update deletes the map node the reference would point into.
    MovingObject state = objects_.at(uid).state;
    PEB_RETURN_NOT_OK(Update(state));
  }
  return Status::OK();
}

Status PebTree::AttachExisting(const PebTreeManifest& manifest) {
  if (!objects_.empty()) {
    return Status::InvalidArgument("AttachExisting requires an empty index");
  }
  PEB_RETURN_NOT_OK(tree_.Attach(manifest.root, manifest.stats));

  // Rebuild the direct-access object table and partition counts from the
  // leaf level. Every leaf entry is self-describing: the key carries the
  // PEB value and uid, the record carries the motion state.
  PEB_ASSIGN_OR_RETURN(auto it, tree_.SeekFirst());
  while (it.Valid()) {
    CompositeKey key = it.key();
    ObjectRecord rec = it.value();
    StoredObject stored;
    stored.state.id = key.uid;
    stored.state.pos = {rec.x, rec.y};
    stored.state.vel = {rec.vx, rec.vy};
    stored.state.tu = rec.tu;
    stored.label_index = options_.index.partitions.LabelIndexFor(rec.tu);
    stored.key = key.primary;
    if (objects_.contains(key.uid)) {
      objects_.clear();
      label_counts_.clear();
      return Status::Corruption("duplicate uid " + std::to_string(key.uid) +
                                " in persisted index");
    }
    objects_.emplace(key.uid, stored);
    label_counts_[stored.label_index]++;
    PEB_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

Status PebTree::ValidateInvariants() const {
  // Layer 1: the B+-tree's own structural walk (key order, separator
  // bounds, occupancy, uniform depth, leaf chain, stats agreement).
  PEB_RETURN_NOT_OK(tree_.Validate());

  // Layer 2: tree ↔ object-table correspondence.
  if (tree_.stats().num_entries != objects_.size()) {
    return Status::Corruption(
        "tree holds " + std::to_string(tree_.stats().num_entries) +
        " entries but the object table holds " +
        std::to_string(objects_.size()));
  }
  std::unordered_map<int64_t, size_t> recount;
  for (const auto& [uid, stored] : objects_) {
    if (stored.state.id != uid) {
      return Status::Corruption("object table slot " + std::to_string(uid) +
                                " holds state of user " +
                                std::to_string(stored.state.id));
    }
    // Layer 3: every composite key re-derives from the state under the
    // PINNED snapshot (partition ⊕ quantized SV ⊕ Z value, Eq. 5) — a
    // missed re-key after snapshot adoption shows up here.
    const uint64_t expect = KeyFor(stored.state);
    if (stored.key != expect) {
      return Status::Corruption(
          "user " + std::to_string(uid) + " stored under key " +
          std::to_string(stored.key) +
          " but the pinned snapshot derives key " + std::to_string(expect));
    }
    const int64_t label =
        options_.index.partitions.LabelIndexFor(stored.state.tu);
    if (stored.label_index != label) {
      return Status::Corruption(
          "user " + std::to_string(uid) + " carries label index " +
          std::to_string(stored.label_index) + " but tu derives " +
          std::to_string(label));
    }
    recount[label]++;
    Result<ObjectRecord> rec = tree_.Lookup({stored.key, uid});
    if (!rec.ok()) {
      return Status::Corruption("user " + std::to_string(uid) +
                                " unreachable under its composite key: " +
                                rec.status().ToString());
    }
    if (rec->x != stored.state.pos.x || rec->y != stored.state.pos.y ||
        rec->vx != stored.state.vel.x || rec->vy != stored.state.vel.y ||
        rec->tu != stored.state.tu) {
      return Status::Corruption("user " + std::to_string(uid) +
                                ": leaf payload disagrees with the object "
                                "table");
    }
  }
  // Layer 4: the per-label population histogram the query planner
  // enumerates (one scan loop per live label) is exact.
  if (recount != label_counts_) {
    return Status::Corruption("label population histogram drifted (" +
                              std::to_string(label_counts_.size()) +
                              " labels tracked, " +
                              std::to_string(recount.size()) + " live)");
  }
  return Status::OK();
}

std::vector<PebTree::SvRun> PebTree::BuildRuns(
    const std::vector<FriendEntry>& friends, uint32_t gap) {
  std::vector<SvRun> runs;
  runs.reserve(friends.size());
  for (const FriendEntry& f : friends) {  // Ascending (qsv, uid).
    if (runs.empty() || f.qsv > runs.back().qsv_hi + gap) {
      runs.emplace_back();
      runs.back().qsv_lo = f.qsv;
    }
    SvRun& run = runs.back();
    run.qsv_hi = f.qsv;
    if (run.wanted.insert(f.uid).second) run.remaining++;
  }
  return runs;
}

bool PebTree::VerifyAgainst(const PolicyStore& store,
                            const RoleRegistry& roles, double time_domain,
                            UserId issuer, UserId uid, const Point& pos,
                            Timestamp tq) {
  return uid != issuer &&
         store.Allows(uid, issuer, pos, tq, roles, time_domain);
}

bool PebTree::Verify(UserId issuer, const SpatialCandidate& cand,
                     Timestamp tq) const {
  return VerifyAgainst(*store_, *roles_, options_.time_domain, issuer,
                       cand.uid, cand.pos, tq);
}

namespace {

/// Consumes entries from an iterator-like positioned at the scan start
/// until the key leaves [.., end_primary] — or until `*remaining` hits
/// zero, after which no further wanted user can appear. Shared by the
/// LeafCursor fast path and the legacy per-interval-descent path.
template <typename It>
Status ConsumePebEntries(It& it, uint64_t end_primary,
                         const std::unordered_set<UserId>* wanted,
                         std::unordered_set<UserId>* found, size_t* remaining,
                         std::vector<SpatialCandidate>* out, Timestamp tq,
                         QueryCounters* counters) {
  while (it.Valid()) {
    CompositeKey key = it.key();
    if (key.primary > end_primary) break;
    counters->candidates_examined++;
    UserId uid = key.uid;
    if ((wanted == nullptr || wanted->contains(uid)) &&
        !found->contains(uid)) {
      found->insert(uid);
      ObjectRecord rec = it.value();
      MovingObject obj;
      obj.id = uid;
      obj.pos = {rec.x, rec.y};
      obj.vel = {rec.vx, rec.vy};
      obj.tu = rec.tu;
      out->push_back({uid, obj.PositionAt(tq), obj});
      if (remaining != nullptr && --*remaining == 0) break;
    }
    PEB_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

}  // namespace

Status PebTree::ScanKeyRange(ObjectBTree::LeafCursor* cursor,
                             CompositeKey start, uint64_t end_primary,
                             const std::unordered_set<UserId>* wanted,
                             std::unordered_set<UserId>* found,
                             size_t* remaining,
                             std::vector<SpatialCandidate>* out, Timestamp tq,
                             QueryCounters* counters) const {
  counters->range_probes++;
  if (options_.index.leaf_cursor_fast_path && cursor != nullptr) {
    size_t d0 = cursor->descents();
    size_t h0 = cursor->chain_hops();
    PEB_RETURN_NOT_OK(cursor->SeekGE(start));
    counters->seek_descents += cursor->descents() - d0;
    counters->leaf_hops += cursor->chain_hops() - h0;
    return ConsumePebEntries(*cursor, end_primary, wanted, found, remaining,
                             out, tq, counters);
  }
  counters->seek_descents++;
  PEB_ASSIGN_OR_RETURN(auto it, tree_.SeekGE(start));
  return ConsumePebEntries(it, end_primary, wanted, found, remaining, out, tq,
                           counters);
}

Status PebTree::ScanSvRun(ObjectBTree::LeafCursor* cursor, uint32_t partition,
                          uint32_t qsv_lo, uint32_t qsv_hi, uint64_t zlo,
                          uint64_t zhi,
                          const std::unordered_set<UserId>* wanted,
                          std::unordered_set<UserId>* found,
                          size_t* remaining,
                          std::vector<SpatialCandidate>* out, Timestamp tq,
                          QueryCounters* counters) const {
  if (zlo > zhi) return Status::OK();
  return ScanKeyRange(
      cursor, CompositeKey::Min(layout_.MakeKey(partition, qsv_lo, zlo)),
      layout_.MakeKey(partition, qsv_hi, zhi), wanted, found, remaining, out,
      tq, counters);
}

// ---------------------------------------------------------------------------
// PRQ
// ---------------------------------------------------------------------------

Result<std::vector<UserId>> PebTree::RangeQueryWithStats(UserId issuer,
                                                         const Rect& range,
                                                         Timestamp tq,
                                                         QueryStats* stats) {
  PEB_RETURN_NOT_OK(ValidateQueryRect(range));
  // Pin the snapshot for the whole query: friends, quantizer, and the
  // tree's keys stay one consistent epoch.
  std::shared_ptr<const EncodingSnapshot> snap = snapshot_;
  if (issuer >= snap->num_users()) {
    return UnknownIssuerError(issuer);
  }
  if (stats == nullptr) {
    return RangeQueryAmong(issuer, range, tq, snap->FriendsOf(issuer));
  }
  stats->epoch = snap->epoch();
  size_t span = telemetry::TraceScope::Open(stats, "peb-tree prq");
  BufferPool::ThreadIoScope io_scope(&stats->io);
  auto result = RangeQueryAmong(issuer, range, tq, snap->FriendsOf(issuer),
                                nullptr, &stats->counters);
  telemetry::TraceScope::Close(stats, span, stats->counters, stats->io);
  return result;
}

Result<std::vector<UserId>> PebTree::RangeQueryAmong(
    UserId issuer, const Rect& range, Timestamp tq,
    const std::vector<FriendEntry>& friends, SharedScanCache* shared,
    QueryCounters* counters) const {
  QueryCounters local;
  QueryCounters* c = counters != nullptr ? counters : &local;
  *c = QueryCounters{};
  switch (options_.prq_strategy) {
    case PrqStrategy::kPerFriendIntervals: {
      std::vector<SvRun> runs = BuildRuns(friends, options_.index.qsv_run_gap);
      return RangeQueryPerFriend(issuer, range, tq, runs, shared, c);
    }
    case PrqStrategy::kSpanScan:
      return RangeQuerySpan(issuer, range, tq, friends, shared, c);
  }
  return Status::Internal("unknown PRQ strategy");
}

Result<std::vector<UserId>> PebTree::RangeQueryPerFriend(
    UserId issuer, const Rect& range, Timestamp tq, std::vector<SvRun>& runs,
    SharedScanCache* shared, QueryCounters* counters) const {
  std::vector<UserId> results;
  if (runs.empty()) return results;

  std::unordered_set<UserId> found;
  std::vector<SpatialCandidate> candidates;
  candidates.reserve(runs.size());

  ObjectBTree::LeafCursor cursor = tree_.NewCursor();
  cursor.set_prefetch(options_.index.prefetch_next_leaf);

  for (const auto& [label, count] : label_counts_) {
    Timestamp tlab = options_.index.partitions.LabelTimestamp(label);
    uint32_t partition = options_.index.partitions.PartitionOf(label);
    double d = options_.index.max_speed * std::abs(tq - tlab);
    auto compute = [&]() {
      return ZIntervalsForWindow(grid_, range.Expanded(d),
                                 options_.index.zrange);
    };
    // Cache hits share one immutable decomposition (no per-shard deep
    // copies); the uncached path computes into a local.
    std::vector<CurveInterval> local;
    SharedScanCache::IntervalsPtr cached;
    if (shared == nullptr) {
      local = compute();
    } else {
      cached = shared->PrqIntervals(label, compute);
    }
    const std::vector<CurveInterval>& intervals =
        shared == nullptr ? local : *cached;
    if (intervals.empty()) continue;

    // Runs ascend by qsv and intervals by Z, and qsv sits above zv in the
    // PEB key, so every probe within one label moves the cursor forward.
    for (SvRun& run : runs) {
      // Skip rule: a user has one location; once each of the run's users
      // has been found (in any partition), its remaining ranges are dead.
      // `remaining` is maintained inside the scans, so this is O(1).
      if (run.remaining == 0) continue;
      if (run.qsv_lo != run.qsv_hi) {
        // Coalesced SV run: the rows are adjacent in key space, so ONE
        // scan spanning the whole run replaces |intervals| probes per
        // row. The scan walks each row's (sparse) full extent once —
        // per-interval probing would re-read those same entries once per
        // interval instead, since every probe [lo ⊕ ZVs, hi ⊕ ZVe]
        // crosses all the rows in between.
        PEB_RETURN_NOT_OK(ScanSvRun(&cursor, partition, run.qsv_lo,
                                    run.qsv_hi, intervals.front().lo,
                                    intervals.back().hi, &run.wanted, &found,
                                    &run.remaining, &candidates, tq,
                                    counters));
        continue;
      }
      for (const CurveInterval& iv : intervals) {
        PEB_RETURN_NOT_OK(ScanSvRun(&cursor, partition, run.qsv_lo,
                                    run.qsv_hi, iv.lo, iv.hi, &run.wanted,
                                    &found, &run.remaining, &candidates, tq,
                                    counters));
        if (run.remaining == 0) break;
      }
    }
  }

  for (const SpatialCandidate& cand : candidates) {
    if (range.Contains(cand.pos) && Verify(issuer, cand, tq)) {
      results.push_back(cand.uid);
    }
  }
  std::sort(results.begin(), results.end());
  counters->results = results.size();
  return results;
}

Result<std::vector<UserId>> PebTree::RangeQuerySpan(
    UserId issuer, const Rect& range, Timestamp tq,
    const std::vector<FriendEntry>& friends, SharedScanCache* shared,
    QueryCounters* counters) const {
  std::vector<UserId> results;
  if (friends.empty()) return results;

  uint32_t sv_min = friends.front().qsv;  // Ascending (qsv, uid).
  uint32_t sv_max = friends.back().qsv;
  std::unordered_set<UserId> wanted;
  for (const FriendEntry& f : friends) wanted.insert(f.uid);
  size_t remaining = wanted.size();
  std::unordered_set<UserId> found;
  std::vector<SpatialCandidate> candidates;
  candidates.reserve(wanted.size());

  ObjectBTree::LeafCursor cursor = tree_.NewCursor();
  cursor.set_prefetch(options_.index.prefetch_next_leaf);

  for (const auto& [label, count] : label_counts_) {
    Timestamp tlab = options_.index.partitions.LabelTimestamp(label);
    uint32_t partition = options_.index.partitions.PartitionOf(label);
    double d = options_.index.max_speed * std::abs(tq - tlab);
    auto compute = [&]() {
      return ZIntervalsForWindow(grid_, range.Expanded(d),
                                 options_.index.zrange);
    };
    std::vector<CurveInterval> local;
    SharedScanCache::IntervalsPtr cached;
    if (shared == nullptr) {
      local = compute();
    } else {
      cached = shared->PrqIntervals(label, compute);
    }
    const std::vector<CurveInterval>& intervals =
        shared == nullptr ? local : *cached;

    for (const CurveInterval& iv : intervals) {
      // Figure 7 literally: StartPnt = TID ⊕ SVmin ⊕ ZVstart,
      // EndPnt = TID ⊕ SVmax ⊕ ZVend — a single scan spanning every
      // sequence value between the issuer's smallest and largest friend.
      // Note the spans of consecutive intervals interleave in key space
      // (each covers every SV between min and max), so the cursor mostly
      // re-descends here; the fast path still saves the within-span walk.
      PEB_RETURN_NOT_OK(ScanKeyRange(
          &cursor, CompositeKey::Min(layout_.MakeKey(partition, sv_min, iv.lo)),
          layout_.MakeKey(partition, sv_max, iv.hi), &wanted, &found,
          &remaining, &candidates, tq, counters));
      if (remaining == 0) break;
    }
    if (remaining == 0) break;
  }

  for (const SpatialCandidate& cand : candidates) {
    if (range.Contains(cand.pos) && Verify(issuer, cand, tq)) {
      results.push_back(cand.uid);
    }
  }
  std::sort(results.begin(), results.end());
  counters->results = results.size();
  return results;
}

// ---------------------------------------------------------------------------
// PkNN
// ---------------------------------------------------------------------------

double EstimateKnnDistanceFor(size_t n, size_t k, double space_side) {
  // Delegates to the analytic cost model's closed form (Section 5.4).
  return ExpectedKnnDistance(static_cast<double>(n == 0 ? 1 : n), k,
                             space_side);
}

double PebTree::EstimateKnnDistance(size_t k) const {
  return EstimateKnnDistanceFor(size(), k, options_.index.space_side);
}

double KnnSeedRadiusFor(size_t num_candidates, size_t indexed,
                        size_t population, size_t k, double space_side) {
  // Local density estimate: of the issuer's `num_candidates` friends, only
  // the indexed fraction of the population can be in the index at all.
  double live = 1.0;
  if (population > 0) {
    live = std::min(1.0, static_cast<double>(indexed) /
                             static_cast<double>(population));
  }
  KnnSeedInputs in;
  in.candidate_count =
      std::max(1.0, static_cast<double>(num_candidates) * live);
  in.k = k;
  in.space_side = space_side;
  return EstimateKnnSeedRadius(in);
}

double PebTree::KnnSeedRadius(size_t num_candidates, size_t k) const {
  return KnnSeedRadiusFor(num_candidates, size(), snapshot_->num_users(), k,
                          options_.index.space_side);
}

Result<std::vector<Neighbor>> PebTree::KnnQueryWithStats(UserId issuer,
                                                         const Point& qloc,
                                                         size_t k,
                                                         Timestamp tq,
                                                         QueryStats* stats) {
  PEB_RETURN_NOT_OK(ValidateQueryK(k));
  std::shared_ptr<const EncodingSnapshot> snap = snapshot_;
  if (issuer >= snap->num_users()) {
    return UnknownIssuerError(issuer);
  }
  if (stats == nullptr) {
    return KnnQueryAmong(issuer, qloc, k, tq, snap->FriendsOf(issuer));
  }
  stats->epoch = snap->epoch();
  size_t span = telemetry::TraceScope::Open(stats, "peb-tree pknn");
  BufferPool::ThreadIoScope io_scope(&stats->io);
  auto result = KnnQueryAmong(issuer, qloc, k, tq, snap->FriendsOf(issuer),
                              &stats->counters);
  telemetry::TraceScope::Close(stats, span, stats->counters, stats->io);
  return result;
}

// --- KnnScan: the incremental per-tree search primitive --------------------

PebTree::KnnScan::KnnScan(const PebTree* tree, UserId issuer, Point qloc,
                          Timestamp tq, double rq,
                          const std::vector<FriendEntry>& friends,
                          SharedScanCache* shared)
    : tree_(tree),
      issuer_(issuer),
      qloc_(qloc),
      tq_(tq),
      rq_(rq),
      incremental_(tree->options_.index.incremental_knn),
      shared_(shared),
      runs_(BuildRuns(friends, incremental_
                                   ? tree->options_.index.qsv_run_gap
                                   : 0)) {
  for (const SvRun& run : runs_) total_wanted_ += run.remaining;
  double space_diag = tree_->options_.index.space_side * std::numbers::sqrt2;
  while (RadiusForRound(max_rounds_ - 1) < space_diag) max_rounds_++;

  cursor_ = tree_->tree_.NewCursor();
  cursor_.set_prefetch(tree_->options_.index.prefetch_next_leaf);

  // Snapshot the live labels (stable during the scan).
  const auto& opts = tree_->options_.index;
  for (const auto& [label, count] : tree_->label_counts_) {
    Timestamp tlab = opts.partitions.LabelTimestamp(label);
    labels_.push_back({label, opts.partitions.PartitionOf(label),
                       opts.max_speed * std::abs(tq - tlab)});
  }
  if (incremental_) {
    rings_.resize(labels_.size());
  } else {
    spans_.resize(labels_.size());
  }
}

double PebTree::KnnScan::RadiusForRound(size_t j) const {
  return incremental_ ? KnnSeededRadiusForRound(rq_, j)
                      : KnnRadiusForRound(rq_, j);
}

double PebTree::KnnScan::CoveredRadiusAfterDiagonal(size_t d) const {
  double covered = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (runs_[i].remaining == 0) continue;  // Nothing left to find there.
    if (d < i) return 0.0;  // Run not started: no coverage at all yet.
    covered = std::min(covered, RadiusForRound(std::min(d - i,
                                                        max_rounds_ - 1)));
  }
  return covered;
}

// Per-label, per-round single Z span (Section 5.4 uses one interval per
// round: the min/max of the round's decomposed 1-D values). Spans are
// cumulative, so the same (label, round) value is valid for every shard of
// a fanned-out query and is shared through the cache.
CurveInterval PebTree::KnnScan::SpanFor(size_t li, size_t j) {
  auto& memo = spans_[li];
  while (memo.size() <= j) {
    size_t round = memo.size();
    auto compute = [&]() -> CurveInterval {
      Rect rect =
          Rect::CenteredSquare(qloc_, 2.0 * KnnRadiusForRound(rq_, round));
      auto intervals =
          ZIntervalsForWindow(tree_->grid_, rect.Expanded(labels_[li].enlarge),
                              tree_->options_.index.zrange);
      if (intervals.empty()) {
        // Degenerate; cover nothing yet (outer rounds will grow).
        return {memo.empty() ? 1 : memo.back().lo,
                memo.empty() ? 0 : memo.back().hi};
      }
      uint64_t lo = intervals.front().lo;
      uint64_t hi = intervals.back().hi;
      if (!memo.empty()) {
        lo = std::min(lo, memo.back().lo);
        hi = std::max(hi, memo.back().hi);
      }
      return {lo, hi};
    };
    memo.push_back(shared_ == nullptr
                       ? compute()
                       : shared_->KnnSpan(labels_[li].label, round, compute));
  }
  return memo[j];
}

const SharedScanCache::RingEntry& PebTree::KnnScan::RingFor(size_t li,
                                                            size_t j) {
  auto& memo = rings_[li];
  while (memo.size() <= j) {
    size_t round = memo.size();
    // The previous round's cumulative covered set — built strictly in
    // round order, so it is already in the memo. Deterministic for a
    // given (query, label, round), which is what lets every shard of a
    // fanned-out query share one copy through the cache.
    auto compute = [&]() -> SharedScanCache::RingEntry {
      Rect rect = Rect::CenteredSquare(qloc_, 2.0 * RadiusForRound(round));
      static const std::vector<CurveInterval> kNone;
      const std::vector<CurveInterval>& covered_in =
          round == 0 ? kNone : *memo[round - 1].covered;
      RingDecomposition rd =
          ZRingForWindow(tree_->grid_, rect.Expanded(labels_[li].enlarge),
                         covered_in, tree_->options_.index.zrange);
      SharedScanCache::RingEntry entry;
      entry.ring = std::make_shared<const std::vector<CurveInterval>>(
          std::move(rd.ring));
      entry.covered = std::make_shared<const std::vector<CurveInterval>>(
          std::move(rd.covered));
      return entry;
    };
    memo.push_back(shared_ == nullptr
                       ? compute()
                       : shared_->KnnRing(labels_[li].label, round, compute));
  }
  return memo[j];
}

void PebTree::KnnScan::InsertVerified(std::vector<Neighbor>* verified) {
  for (const SpatialCandidate& cand : batch_) {
    if (tree_->Verify(issuer_, cand, tq_)) {
      Neighbor nb{cand.uid, cand.pos.DistanceTo(qloc_)};
      auto pos = std::lower_bound(verified->begin(), verified->end(), nb,
                                  [](const Neighbor& a, const Neighbor& b) {
                                    return a.distance < b.distance;
                                  });
      verified->insert(pos, nb);
    }
  }
}

Status PebTree::KnnScan::ScanCell(size_t i, size_t j,
                                  std::vector<Neighbor>* verified) {
  counters_.rounds = std::max(counters_.rounds, j + 1);
  if (RowDone(i)) return Status::OK();
  SvRun& run = runs_[i];
  for (size_t li = 0; li < labels_.size(); ++li) {
    const uint32_t partition = labels_[li].partition;
    if (incremental_) {
      // Exact annulus delta: scan only the intervals new to round j. The
      // persistent cursor carries its leaf position across rounds, so a
      // later round never re-fetches leaves an earlier round examined.
      const SharedScanCache::RingEntry& ring = RingFor(li, j);
      if (ring.ring->empty()) continue;
      batch_.clear();
      if (run.qsv_lo != run.qsv_hi) {
        // Coalesced SV run: one scan bounding the whole ring replaces a
        // probe per (row, interval) — per-interval probing would re-read
        // the run's sparse row extents once per interval.
        PEB_RETURN_NOT_OK(tree_->ScanSvRun(&cursor_, partition, run.qsv_lo,
                                           run.qsv_hi, ring.ring->front().lo,
                                           ring.ring->back().hi, &run.wanted,
                                           &found_, &run.remaining, &batch_,
                                           tq_, &counters_));
      } else {
        for (const CurveInterval& iv : *ring.ring) {
          PEB_RETURN_NOT_OK(tree_->ScanSvRun(&cursor_, partition, run.qsv_lo,
                                             run.qsv_hi, iv.lo, iv.hi,
                                             &run.wanted, &found_,
                                             &run.remaining, &batch_, tq_,
                                             &counters_));
          if (run.remaining == 0) break;
        }
      }
      InsertVerified(verified);
      if (run.remaining == 0) break;
      continue;
    }
    CurveInterval cur = SpanFor(li, j);
    if (cur.lo > cur.hi) continue;
    batch_.clear();
    const uint32_t qsv = run.qsv_lo;  // Legacy runs are single rows.
    if (j == 0) {
      PEB_RETURN_NOT_OK(tree_->ScanSvRun(&cursor_, partition, qsv, qsv,
                                         cur.lo, cur.hi, &run.wanted,
                                         &found_, &run.remaining, &batch_,
                                         tq_, &counters_));
    } else {
      // Scan only the ring new to round j.
      CurveInterval prev = SpanFor(li, j - 1);
      if (prev.lo > prev.hi) {
        PEB_RETURN_NOT_OK(tree_->ScanSvRun(&cursor_, partition, qsv, qsv,
                                           cur.lo, cur.hi, &run.wanted,
                                           &found_, &run.remaining, &batch_,
                                           tq_, &counters_));
      } else {
        if (cur.lo < prev.lo) {
          PEB_RETURN_NOT_OK(tree_->ScanSvRun(&cursor_, partition, qsv, qsv,
                                             cur.lo, prev.lo - 1,
                                             &run.wanted, &found_,
                                             &run.remaining, &batch_, tq_,
                                             &counters_));
        }
        if (cur.hi > prev.hi) {
          PEB_RETURN_NOT_OK(tree_->ScanSvRun(&cursor_, partition, qsv, qsv,
                                             prev.hi + 1, cur.hi,
                                             &run.wanted, &found_,
                                             &run.remaining, &batch_, tq_,
                                             &counters_));
        }
      }
    }
    InsertVerified(verified);
  }
  run.rounds_done = std::max(run.rounds_done, j + 1);
  return Status::OK();
}

Status PebTree::KnnScan::ScanDiagonal(size_t d,
                                      std::vector<Neighbor>* verified) {
  if (runs_.empty()) return Status::OK();
  size_t i_hi = std::min(d, runs_.size() - 1);
  for (size_t i = 0; i <= i_hi; ++i) {
    size_t j = d - i;
    if (j >= max_rounds_) continue;
    PEB_RETURN_NOT_OK(ScanCell(i, j, verified));
  }
  return Status::OK();
}

Status PebTree::KnnScan::VerticalScan(double dk,
                                      std::vector<Neighbor>* verified) {
  Rect rect = Rect::CenteredSquare(qloc_, 2.0 * dk);
  for (size_t li = 0; li < labels_.size(); ++li) {
    if (incremental_) {
      // Scan only the part of the vertical window this run has NOT already
      // covered during its enlargement rounds — usually nothing, since dk
      // is bounded by the last scanned radius.
      auto compute = [&]() -> std::vector<CurveInterval> {
        return ZIntervalsForWindow(tree_->grid_,
                                   rect.Expanded(labels_[li].enlarge),
                                   tree_->options_.index.zrange);
      };
      SharedScanCache::IntervalsPtr vert =
          shared_ == nullptr
              ? std::make_shared<const std::vector<CurveInterval>>(compute())
              : shared_->VerticalIntervals(labels_[li].label, compute);
      if (vert->empty()) continue;
      for (size_t i = 0; i < runs_.size(); ++i) {
        if (RowDone(i)) continue;
        SvRun& run = runs_[i];
        std::vector<CurveInterval> local;
        const std::vector<CurveInterval>* delta = vert.get();
        if (run.rounds_done > 0) {
          local = SubtractIntervals(
              *vert, *RingFor(li, run.rounds_done - 1).covered);
          delta = &local;
        }
        if (delta->empty()) continue;
        batch_.clear();
        if (run.qsv_lo != run.qsv_hi) {
          PEB_RETURN_NOT_OK(tree_->ScanSvRun(&cursor_, labels_[li].partition,
                                             run.qsv_lo, run.qsv_hi,
                                             delta->front().lo,
                                             delta->back().hi, &run.wanted,
                                             &found_, &run.remaining,
                                             &batch_, tq_, &counters_));
        } else {
          for (const CurveInterval& iv : *delta) {
            PEB_RETURN_NOT_OK(tree_->ScanSvRun(
                &cursor_, labels_[li].partition, run.qsv_lo, run.qsv_hi,
                iv.lo, iv.hi, &run.wanted, &found_, &run.remaining, &batch_,
                tq_, &counters_));
            if (run.remaining == 0) break;
          }
        }
        InsertVerified(verified);
      }
      continue;
    }
    auto compute = [&]() -> CurveInterval {
      auto intervals =
          ZIntervalsForWindow(tree_->grid_, rect.Expanded(labels_[li].enlarge),
                              tree_->options_.index.zrange);
      if (intervals.empty()) return {1, 0};
      return {intervals.front().lo, intervals.back().hi};
    };
    CurveInterval span =
        shared_ == nullptr ? compute()
                           : shared_->VerticalSpan(labels_[li].label, compute);
    if (span.lo > span.hi) continue;
    for (size_t i = 0; i < runs_.size(); ++i) {
      if (RowDone(i)) continue;
      SvRun& run = runs_[i];
      batch_.clear();
      PEB_RETURN_NOT_OK(tree_->ScanSvRun(&cursor_, labels_[li].partition,
                                         run.qsv_lo, run.qsv_hi, span.lo,
                                         span.hi, &run.wanted, &found_,
                                         &run.remaining, &batch_, tq_,
                                         &counters_));
      InsertVerified(verified);
    }
  }
  return Status::OK();
}

PebTree::KnnScan PebTree::NewKnnScan(UserId issuer, const Point& qloc,
                                     Timestamp tq, double rq,
                                     const std::vector<FriendEntry>& friends,
                                     SharedScanCache* shared) const {
  return KnnScan(this, issuer, qloc, tq, rq, friends, shared);
}

// --- single-tree PkNN: drive the scan cell by cell -------------------------

Result<std::vector<Neighbor>> PebTree::KnnQueryAmong(
    UserId issuer, const Point& qloc, size_t k, Timestamp tq,
    const std::vector<FriendEntry>& friends,
    QueryCounters* counters) const {
  if (counters != nullptr) *counters = QueryCounters{};
  std::vector<Neighbor> verified;
  if (k == 0) return verified;  // Among-path legacy tolerance; the public
                                // KnnQuery rejects k == 0 uniformly.
  // Incremental path: the round-0 radius comes from the cost model's
  // candidate-density estimate (most queries close without enlarging).
  // Legacy path: the paper-literal Dk/k per-round step.
  double rq = options_.index.incremental_knn
                  ? KnnSeedRadius(friends.size(), k)
                  : EstimateKnnDistance(k) / static_cast<double>(k);
  KnnScan scan(this, issuer, qloc, tq, rq, friends, nullptr);
  size_t m = scan.num_rows();
  if (m == 0) return verified;
  size_t max_rounds = scan.max_rounds();

  // After every cell: with k candidates in hand, run the final vertical
  // scan (Section 5.4) and stop; also stop when every friend is located.
  bool done = false;
  auto after_cell = [&]() -> Result<bool> {
    if (verified.size() >= k) {
      PEB_RETURN_NOT_OK(scan.VerticalScan(verified[k - 1].distance,
                                          &verified));
      return true;
    }
    if (scan.AllFound()) return true;
    return false;
  };

  // Triangular (anti-diagonal) traversal of the (m x max_rounds) matrix,
  // or spatial-first column-major for the ablation variant.
  if (options_.knn_order == KnnOrder::kTriangular) {
    for (size_t d = 0; d < m + max_rounds - 1 && !done; ++d) {
      size_t i_hi = std::min(d, m - 1);
      for (size_t i = 0; i <= i_hi && !done; ++i) {
        size_t j = d - i;
        if (j >= max_rounds) continue;
        PEB_RETURN_NOT_OK(scan.ScanCell(i, j, &verified));
        PEB_ASSIGN_OR_RETURN(done, after_cell());
      }
    }
  } else {
    for (size_t j = 0; j < max_rounds && !done; ++j) {
      for (size_t i = 0; i < m && !done; ++i) {
        PEB_RETURN_NOT_OK(scan.ScanCell(i, j, &verified));
        PEB_ASSIGN_OR_RETURN(done, after_cell());
      }
    }
  }

  if (verified.size() > k) verified.resize(k);
  if (counters != nullptr) {
    *counters = scan.counters();
    counters->results = verified.size();
  }
  return verified;
}

}  // namespace peb
