// PEB key construction (Section 5.2, Equation 5):
//
//   PEB_key = [TID]2 ⊕ [SV]2 ⊕ [ZV]2
//
// The sequence value sits in more significant bits than the Z value: "the
// construction of the PEB_key gives higher priority to sequence values than
// to location mapping values", because the users related to a query issuer
// are usually far fewer than the unrelated users near the query. Users with
// compatible policies therefore cluster in the same leaves, with location
// ordering within each SV bucket.
#pragma once

#include <cassert>
#include <cstdint>

#include "bxtree/bx_key.h"

namespace peb {

struct PebKeyLayout {
  uint32_t tid_bits = 4;    ///< Partition bits.
  uint32_t sv_bits = 26;    ///< Quantized sequence-value bits.
  uint32_t grid_bits = 10;  ///< Z-curve bits per dimension.

  uint32_t zv_bits() const { return 2 * grid_bits; }
  uint32_t total_bits() const { return tid_bits + sv_bits + zv_bits(); }
  bool Fits() const { return total_bits() <= 64; }

  uint64_t MakeKey(uint32_t partition, uint32_t qsv, uint64_t zv) const {
    assert(Fits());
    assert(partition < (1u << tid_bits));
    assert(static_cast<uint64_t>(qsv) < (1ull << sv_bits));
    assert(zv < (1ull << zv_bits()));
    return (static_cast<uint64_t>(partition) << (sv_bits + zv_bits())) |
           (static_cast<uint64_t>(qsv) << zv_bits()) | zv;
  }

  uint32_t PartitionOfKey(uint64_t key) const {
    return static_cast<uint32_t>(key >> (sv_bits + zv_bits()));
  }
  uint32_t SvOfKey(uint64_t key) const {
    return static_cast<uint32_t>((key >> zv_bits()) &
                                 ((1ull << sv_bits) - 1));
  }
  uint64_t ZvOfKey(uint64_t key) const {
    return key & ((1ull << zv_bits()) - 1);
  }
};

}  // namespace peb
