#include "peb/continuous.h"

#include <algorithm>

namespace peb {

ContinuousQueryMonitor::ContinuousQueryMonitor(PrivacyAwareIndex* index,
                                               const PolicyStore* store,
                                               const RoleRegistry* roles,
                                               const PolicyEncoding* encoding,
                                               double time_domain)
    : index_(index),
      store_(store),
      roles_(roles),
      encoding_(encoding),
      time_domain_(time_domain) {}

bool ContinuousQueryMonitor::Qualifies(const RegisteredQuery& q, UserId uid,
                                       const Point& pos,
                                       Timestamp now) const {
  return uid != q.issuer && q.range.Contains(pos) &&
         store_->Allows(uid, q.issuer, pos, now, *roles_, time_domain_);
}

void ContinuousQueryMonitor::SetMembership(ContinuousQueryId id,
                                           RegisteredQuery& q, UserId uid,
                                           bool in_result, Timestamp now) {
  bool was_member = q.members.contains(uid);
  if (in_result == was_member) return;
  if (in_result) {
    q.members.insert(uid);
  } else {
    q.members.erase(uid);
  }
  events_.push_back({id, uid, in_result, now});
}

Result<ContinuousQueryId> ContinuousQueryMonitor::Register(UserId issuer,
                                                           const Rect& range,
                                                           Timestamp now,
                                                           QueryStats* stats) {
  PEB_RETURN_NOT_OK(ValidateQueryRect(range));
  if (issuer >= encoding_->num_users()) {
    return UnknownIssuerError(issuer);
  }
  RegisteredQuery q;
  q.issuer = issuer;
  q.range = range;

  // Seed with a one-shot index query (no events for the initial members).
  PEB_ASSIGN_OR_RETURN(
      std::vector<UserId> seed,
      index_->RangeQueryWithStats(issuer, range, now, stats));
  q.members.insert(seed.begin(), seed.end());

  ContinuousQueryId id = next_id_++;
  for (const FriendEntry& f : encoding_->FriendsOf(issuer)) {
    watchers_[f.uid].push_back(id);
  }
  queries_.emplace(id, std::move(q));
  return id;
}

Status ContinuousQueryMonitor::Unregister(ContinuousQueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("continuous query " + std::to_string(id));
  }
  for (const FriendEntry& f : encoding_->FriendsOf(it->second.issuer)) {
    auto w = watchers_.find(f.uid);
    if (w == watchers_.end()) continue;
    auto& list = w->second;
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
    if (list.empty()) watchers_.erase(w);
  }
  queries_.erase(it);
  return Status::OK();
}

Status ContinuousQueryMonitor::OnUpdate(const MovingObject& state,
                                        Timestamp now) {
  auto w = watchers_.find(state.id);
  if (w == watchers_.end()) return Status::OK();
  Point pos = state.PositionAt(now);
  for (ContinuousQueryId id : w->second) {
    auto q = queries_.find(id);
    if (q == queries_.end()) continue;
    SetMembership(id, q->second, state.id,
                  Qualifies(q->second, state.id, pos, now), now);
  }
  return Status::OK();
}

Status ContinuousQueryMonitor::Advance(Timestamp now) {
  for (auto& [id, q] : queries_) {
    for (const FriendEntry& f : encoding_->FriendsOf(q.issuer)) {
      auto state = index_->GetObject(f.uid);
      if (!state.ok()) {
        // Friend not currently indexed: cannot be in any answer.
        SetMembership(id, q, f.uid, false, now);
        continue;
      }
      SetMembership(id, q, f.uid,
                    Qualifies(q, f.uid, state->PositionAt(now), now), now);
    }
  }
  return Status::OK();
}

Result<std::vector<UserId>> ContinuousQueryMonitor::ResultOf(
    ContinuousQueryId id) const {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("continuous query " + std::to_string(id));
  }
  std::vector<UserId> out(it->second.members.begin(),
                          it->second.members.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ContinuousQueryEvent> ContinuousQueryMonitor::TakeEvents() {
  std::vector<ContinuousQueryEvent> out;
  out.swap(events_);
  return out;
}

}  // namespace peb
