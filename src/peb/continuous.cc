#include "peb/continuous.h"

#include <algorithm>

namespace peb {

ContinuousQueryMonitor::ContinuousQueryMonitor(
    PrivacyAwareIndex* index, const PolicyStore* store,
    const RoleRegistry* roles,
    std::shared_ptr<const EncodingSnapshot> snapshot, double time_domain)
    : index_(index),
      store_(store),
      roles_(roles),
      snapshot_(std::move(snapshot)),
      time_domain_(time_domain) {}

bool ContinuousQueryMonitor::Qualifies(const RegisteredQuery& q, UserId uid,
                                       const Point& pos,
                                       Timestamp now) const {
  return uid != q.issuer && q.range.Contains(pos) &&
         store_->Allows(uid, q.issuer, pos, now, *roles_, time_domain_);
}

void ContinuousQueryMonitor::SetMembership(ContinuousQueryId id,
                                           RegisteredQuery& q, UserId uid,
                                           bool in_result, Timestamp now) {
  bool was_member = q.members.contains(uid);
  if (in_result == was_member) return;
  if (in_result) {
    q.members.insert(uid);
  } else {
    q.members.erase(uid);
  }
  events_.push_back({id, uid, in_result, now});
}

Result<ContinuousQueryId> ContinuousQueryMonitor::Register(UserId issuer,
                                                           const Rect& range,
                                                           Timestamp now,
                                                           QueryStats* stats) {
  PEB_RETURN_NOT_OK(ValidateQueryRect(range));
  if (issuer >= snapshot_->num_users()) {
    return UnknownIssuerError(issuer);
  }
  RegisteredQuery q;
  q.issuer = issuer;
  q.range = range;

  // Seed with a one-shot index query (no events for the initial members).
  PEB_ASSIGN_OR_RETURN(
      std::vector<UserId> seed,
      index_->RangeQueryWithStats(issuer, range, now, stats));
  q.members.insert(seed.begin(), seed.end());

  ContinuousQueryId id = next_id_++;
  for (const FriendEntry& f : snapshot_->FriendsOf(issuer)) {
    watchers_[f.uid].push_back(id);
  }
  queries_.emplace(id, std::move(q));
  return id;
}

Status ContinuousQueryMonitor::Unregister(ContinuousQueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("continuous query " + std::to_string(id));
  }
  for (const FriendEntry& f : snapshot_->FriendsOf(it->second.issuer)) {
    auto w = watchers_.find(f.uid);
    if (w == watchers_.end()) continue;
    auto& list = w->second;
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
    if (list.empty()) watchers_.erase(w);
  }
  queries_.erase(it);
  return Status::OK();
}

Status ContinuousQueryMonitor::OnUpdate(const MovingObject& state,
                                        Timestamp now) {
  auto w = watchers_.find(state.id);
  if (w == watchers_.end()) return Status::OK();
  Point pos = state.PositionAt(now);
  for (ContinuousQueryId id : w->second) {
    auto q = queries_.find(id);
    if (q == queries_.end()) continue;
    SetMembership(id, q->second, state.id,
                  Qualifies(q->second, state.id, pos, now), now);
  }
  return Status::OK();
}

void ContinuousQueryMonitor::ReevaluateQuery(ContinuousQueryId id,
                                             RegisteredQuery& q,
                                             Timestamp now) {
  // Members no longer on the friend list can never re-qualify (the list is
  // the universe of possible answers): emit their departure explicitly,
  // since the friend loop below will not visit them.
  const std::vector<FriendEntry>& friends = snapshot_->FriendsOf(q.issuer);
  std::unordered_set<UserId> friend_set;
  friend_set.reserve(friends.size());
  for (const FriendEntry& f : friends) friend_set.insert(f.uid);
  std::vector<UserId> gone;
  for (UserId m : q.members) {
    if (!friend_set.contains(m)) gone.push_back(m);
  }
  // Ascending departures: event order must not depend on set iteration
  // order (1-shard and N-shard instances emit identical streams).
  std::sort(gone.begin(), gone.end());
  for (UserId m : gone) SetMembership(id, q, m, false, now);

  for (const FriendEntry& f : friends) {
    auto state = index_->GetObject(f.uid);
    if (!state.ok()) {
      // Friend not currently indexed: cannot be in any answer.
      SetMembership(id, q, f.uid, false, now);
      continue;
    }
    SetMembership(id, q, f.uid,
                  Qualifies(q, f.uid, state->PositionAt(now), now), now);
  }
}

Status ContinuousQueryMonitor::Advance(Timestamp now) {
  // Ascending query id: deterministic event order across instances.
  std::vector<ContinuousQueryId> ids;
  ids.reserve(queries_.size());
  for (const auto& [id, q] : queries_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (ContinuousQueryId id : ids) {
    ReevaluateQuery(id, queries_.at(id), now);
  }
  return Status::OK();
}

Status ContinuousQueryMonitor::AdoptSnapshot(
    std::shared_ptr<const EncodingSnapshot> snapshot, Timestamp now) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("cannot adopt a null encoding snapshot");
  }
  snapshot_ = std::move(snapshot);
  // Watcher lists follow the new friend lists so OnUpdate keeps touching
  // exactly the affected queries.
  watchers_.clear();
  for (auto& [id, q] : queries_) {
    for (const FriendEntry& f : snapshot_->FriendsOf(q.issuer)) {
      watchers_[f.uid].push_back(id);
    }
  }
  // Re-evaluate memberships under the new epoch: revoked policies leave,
  // fresh grants may enter.
  return Advance(now);
}

Result<std::vector<UserId>> ContinuousQueryMonitor::ResultOf(
    ContinuousQueryId id) const {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("continuous query " + std::to_string(id));
  }
  std::vector<UserId> out(it->second.members.begin(),
                          it->second.members.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ContinuousQueryEvent> ContinuousQueryMonitor::TakeEvents() {
  std::vector<ContinuousQueryEvent> out;
  out.swap(events_);
  return out;
}

}  // namespace peb
