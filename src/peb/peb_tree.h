// The PEB-tree (Policy-Embedded Bx-tree) — the paper's contribution
// (Section 5). A B+-tree over PEB keys (peb_key.h) that clusters users by
// policy compatibility first and spatial proximity second, with query
// algorithms that search the cross product of the issuer's friend SV values
// and the query window's Z intervals:
//
//  * PRQ (Section 5.3 / Figure 7): per time partition, the enlarged window
//    is decomposed into Z intervals; for each friend sequence value, the
//    key ranges [TID ⊕ SV ⊕ ZVs, TID ⊕ SV ⊕ ZVe] are scanned. Once a
//    user's record is located, the remaining intervals for that SV are
//    skipped (a user has one location).
//  * PkNN (Section 5.4 / Figures 8-10): iterative range enlargement with
//    estimated initial radius Dk/k; the (friend x round) search matrix is
//    traversed in triangular (anti-diagonal) order; each round searches
//    only the ring new to that round; after k candidates are verified, a
//    final vertical scan bounded by the distance to the current k-th
//    candidate closes the search.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btree/btree.h"
#include "btree/btree_traits.h"
#include "bxtree/bx_key.h"
#include "bxtree/privacy_index.h"
#include "bxtree/bxtree.h"
#include "peb/peb_key.h"
#include "policy/policy_store.h"
#include "policy/role_registry.h"
#include "policy/sequence_value.h"
#include "spatial/zcurve.h"
#include "spatial/zrange.h"
#include "storage/buffer_pool.h"

namespace peb {

/// PRQ search-range construction strategy.
enum class PrqStrategy {
  /// Section 5.3: one key range per (friend SV, Z interval) pair, with the
  /// per-user skip rule. The default.
  kPerFriendIntervals,
  /// Figure 7 taken literally: one scan from SVmin ⊕ ZVs to SVmax ⊕ ZVe
  /// per Z interval. Reads every user between the two sequence values;
  /// kept as an ablation variant.
  kSpanScan,
};

/// PkNN search-matrix traversal order.
enum class KnnOrder {
  kTriangular,   ///< Figure 9 anti-diagonal sweep. The default.
  kColumnMajor,  ///< Spatial-first: whole column (round) at a time.
};

/// PEB-tree configuration.
struct PebTreeOptions {
  MovingIndexOptions index;  ///< Shared moving-index parameters.
  uint32_t sv_bits = 26;     ///< Bits reserved for the quantized SV.
  PrqStrategy prq_strategy = PrqStrategy::kPerFriendIntervals;
  KnnOrder knn_order = KnnOrder::kTriangular;
  double time_domain = kDefaultTimeDomain;
};

/// The Dk estimate of Section 5.4 for a population of `n` users, scaled to
/// the space side (the initial PkNN radius is Dk/k).
double EstimateKnnDistanceFor(size_t n, size_t k, double space_side);

/// Per-query decomposition cache shared by the shards of one fanned-out
/// query: window/ring Z-decompositions depend only on the query and the
/// time-partition label — not on which shard scans them — so whichever
/// shard needs one first computes it and the rest reuse it. Thread-safe;
/// create one per logical query.
///
/// compute() runs OUTSIDE the lock: the callbacks are deterministic pure
/// functions of the query, so when two shards race on the same key the
/// loser's duplicate work is wasted but harmless, and the decomposition —
/// the hot CPU cost the cache exists to deduplicate — never serializes the
/// other shards' lookups behind it.
class SharedScanCache {
 public:
  using ComputeIntervals = std::function<std::vector<CurveInterval>()>;
  using ComputeSpan = std::function<CurveInterval()>;
  using IntervalsPtr = std::shared_ptr<const std::vector<CurveInterval>>;

  /// PRQ: the enlarged window's Z intervals for a label. Returned by
  /// shared pointer so concurrent shard lookups share one immutable
  /// decomposition instead of deep-copying it on every hit.
  IntervalsPtr PrqIntervals(int64_t label, const ComputeIntervals& compute) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = prq_.find(label);
      if (it != prq_.end()) return it->second;
    }
    auto value =
        std::make_shared<const std::vector<CurveInterval>>(compute());
    std::lock_guard<std::mutex> lock(mu_);
    return prq_.try_emplace(label, std::move(value)).first->second;
  }

  /// PkNN: the cumulative ring span for (label, round).
  CurveInterval KnnSpan(int64_t label, size_t round,
                        const ComputeSpan& compute) {
    auto key = std::make_pair(label, round);
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = knn_.find(key);
      if (it != knn_.end()) return it->second;
    }
    CurveInterval value = compute();
    std::lock_guard<std::mutex> lock(mu_);
    return knn_.try_emplace(key, value).first->second;
  }

  /// PkNN: the final vertical-scan span for a label.
  CurveInterval VerticalSpan(int64_t label, const ComputeSpan& compute) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = vertical_.find(label);
      if (it != vertical_.end()) return it->second;
    }
    CurveInterval value = compute();
    std::lock_guard<std::mutex> lock(mu_);
    return vertical_.try_emplace(label, value).first->second;
  }

 private:
  std::mutex mu_;
  std::unordered_map<int64_t, IntervalsPtr> prq_;
  std::map<std::pair<int64_t, size_t>, CurveInterval> knn_;
  std::unordered_map<int64_t, CurveInterval> vertical_;
};

/// Everything about a persisted PEB-tree that is not stored in its pages:
/// the root page id and shape statistics. Together with the backing file
/// (FileDiskManager) and the policy encoding, this is sufficient to reopen
/// an index without re-inserting (see PebTree::AttachExisting).
struct PebTreeManifest {
  PageId root = kInvalidPageId;
  BTreeStats stats;
};

/// The PEB-tree. Policies and roles must outlive the tree; the encoding
/// snapshot is shared (the tree keeps it alive) and must have been built
/// with a quantizer whose bit width fits options.sv_bits. The snapshot can
/// be swapped online via AdoptSnapshot — the policy-lifecycle re-key path.
class PebTree final : public PrivacyAwareIndex {
 private:
  /// Friends of the issuer grouped by quantized SV (ascending).
  struct SvRow {
    uint32_t qsv = 0;
    std::vector<UserId> uids;
  };

 public:
  PebTree(BufferPool* pool, const PebTreeOptions& options,
          const PolicyStore* store, const RoleRegistry* roles,
          std::shared_ptr<const EncodingSnapshot> snapshot);

  /// Legacy bridge for static worlds: a non-owning view of `encoding`,
  /// which must outlive the tree.
  PebTree(BufferPool* pool, const PebTreeOptions& options,
          const PolicyStore* store, const RoleRegistry* roles,
          const PolicyEncoding* encoding)
      : PebTree(pool, options, store, roles,
                std::shared_ptr<const EncodingSnapshot>(
                    std::shared_ptr<const EncodingSnapshot>(), encoding)) {}

  Status Insert(const MovingObject& object) override;
  Status Update(const MovingObject& object) override;
  Status Delete(UserId id) override;
  size_t size() const override { return objects_.size(); }
  BufferPool* pool() override { return pool_; }
  IoStats aggregate_io() const override { return pool_->stats(); }
  void ResetIo() override { pool_->ResetStats(); }
  const QueryCounters& last_query() const override { return counters_; }

  /// Swaps in a new encoding snapshot and re-keys the named users (nullptr
  /// = diff all hosted records). Mutation: callers serialize against
  /// queries exactly as for Insert/Update/Delete.
  Status AdoptSnapshot(std::shared_ptr<const EncodingSnapshot> snapshot,
                       const std::vector<UserId>* rekey) override;
  uint64_t encoding_epoch() const override { return snapshot_->epoch(); }
  /// The snapshot this tree currently keys by.
  const std::shared_ptr<const EncodingSnapshot>& snapshot() const {
    return snapshot_;
  }

  Result<std::vector<UserId>> RangeQuery(UserId issuer, const Rect& range,
                                         Timestamp tq) override;
  Result<std::vector<Neighbor>> KnnQuery(UserId issuer, const Point& qloc,
                                         size_t k, Timestamp tq) override;

  /// PRQ restricted to an explicit candidate list (a subset of the issuer's
  /// friends, ascending by (qsv, uid)). This is the const read path the
  /// sharded engine fans out across shards: each shard is asked only about
  /// the friends it hosts. Only the (mutable) per-query counters and the
  /// buffer pool's LRU state change, so distinct trees may be queried from
  /// distinct threads concurrently. `shared`, when given, deduplicates the
  /// window decomposition across the shards of one fanned-out query.
  Result<std::vector<UserId>> RangeQueryAmong(
      UserId issuer, const Rect& range, Timestamp tq,
      const std::vector<FriendEntry>& friends,
      SharedScanCache* shared = nullptr) const;

  /// PkNN restricted to an explicit candidate list; see RangeQueryAmong.
  Result<std::vector<Neighbor>> KnnQueryAmong(
      UserId issuer, const Point& qloc, size_t k, Timestamp tq,
      const std::vector<FriendEntry>& friends) const;

  /// Incremental PkNN scan state over this tree — the engine's per-shard
  /// primitive. The engine drives the Figure-9 search matrix round by
  /// round across every shard (so enlargement stops as soon as k verified
  /// candidates exist globally), while each shard scans only the cells of
  /// its own friend rows. KnnQueryAmong is built on the same object, so
  /// the single-tree and fanned-out searches share one implementation.
  class KnnScan {
   public:
    size_t num_rows() const { return rows_.size(); }
    size_t max_rounds() const { return max_rounds_; }
    /// Work counters accumulated by this scan's own cells. Each scan owns
    /// its counters (they never pass through the tree's shared last_query()
    /// slot), so concurrent fanned-out queries on the same shard tree stay
    /// exact. Read after the last Scan* call.
    const QueryCounters& counters() const { return counters_; }
    /// Anti-diagonals in this shard's (rows x rounds) matrix.
    size_t max_diagonals() const {
      return rows_.empty() ? 0 : rows_.size() + max_rounds_ - 1;
    }
    /// True once every wanted user of row i has been located.
    bool RowDone(size_t i) const;
    /// True once every wanted user has been located.
    bool AllFound() const { return found_.size() >= total_wanted_; }

    /// Scans matrix cell (row i, round j): the ring new to round j for the
    /// row's sequence value, in every live partition. Policy-verified
    /// candidates are inserted into *verified, kept ascending by distance.
    Status ScanCell(size_t i, size_t j, std::vector<Neighbor>* verified);

    /// Scans every cell of anti-diagonal d (cells (i, d-i)).
    Status ScanDiagonal(size_t d, std::vector<Neighbor>* verified);

    /// Section 5.4's final step: scans the square of half-side dk around
    /// the query point for every row with unfound users, ruling out closer
    /// unexamined candidates. After this the verified list is exact.
    Status VerticalScan(double dk, std::vector<Neighbor>* verified);

   private:
    friend class PebTree;

    struct LabelInfo {
      int64_t label;
      uint32_t partition;
      double enlarge;
    };

    KnnScan(const PebTree* tree, UserId issuer, Point qloc, Timestamp tq,
            double rq, const std::vector<FriendEntry>& friends,
            SharedScanCache* shared);

    /// Cumulative ring span for (label li, round j), memoized per label and
    /// deduplicated across shards via the shared cache.
    CurveInterval SpanFor(size_t li, size_t j);
    void InsertVerified(std::vector<Neighbor>* verified);

    const PebTree* tree_;
    UserId issuer_;
    Point qloc_;
    Timestamp tq_;
    double rq_;
    SharedScanCache* shared_;
    std::vector<SvRow> rows_;
    std::vector<std::unordered_set<UserId>> row_wanted_;
    size_t total_wanted_ = 0;
    size_t max_rounds_ = 1;
    std::vector<LabelInfo> labels_;
    std::vector<std::vector<CurveInterval>> spans_;
    std::unordered_set<UserId> found_;
    std::vector<SpatialCandidate> batch_;
    /// Persistent scan position, reused across cells and rounds.
    ObjectBTree::LeafCursor cursor_;
    /// Scan-owned work counters (see counters()).
    QueryCounters counters_;
  };

  /// Starts an incremental PkNN scan. `rq` is the per-round enlargement
  /// step (Dk/k); the engine derives it from the global population so all
  /// shards enlarge identically. The scan accumulates work counters of its
  /// own (KnnScan::counters()); the tree's last_query() is not touched.
  KnnScan NewKnnScan(UserId issuer, const Point& qloc, Timestamp tq,
                     double rq, const std::vector<FriendEntry>& friends,
                     SharedScanCache* shared = nullptr) const;

  const PebTreeOptions& options() const { return options_; }
  const BTreeStats& tree_stats() const { return tree_.stats(); }

  /// The PEB key (Eq. 5 value, without the uid tiebreaker) for an object.
  uint64_t KeyFor(const MovingObject& object) const;

  /// Current stored state of a user.
  Result<MovingObject> GetObject(UserId id) const override;

  /// Dk estimate (Section 5.4), scaled to the space side.
  double EstimateKnnDistance(size_t k) const;

  /// Snapshot of the out-of-page state needed to reopen this index later.
  /// Flush the buffer pool before persisting the manifest.
  PebTreeManifest Manifest() const {
    return {tree_.root(), tree_.stats()};
  }

  /// Reopens a persisted index: attaches to the pages already on the
  /// pool's disk (validating structure) and rebuilds the in-memory object
  /// table and partition counts by scanning the leaves. The tree handle
  /// must be freshly constructed (empty).
  Status AttachExisting(const PebTreeManifest& manifest);

 private:
  struct StoredObject {
    MovingObject state;
    int64_t label_index = 0;
    uint64_t key = 0;
  };

  /// Groups a friend list (ascending by (qsv, uid)) into per-SV rows.
  static std::vector<SvRow> BuildRows(const std::vector<FriendEntry>& friends);

  /// Scans composite keys [start, end_primary]. For every entry whose uid
  /// is in `wanted`, marks it found and appends its state. `cursor`
  /// carries the position across the sorted probes of one query; the
  /// legacy per-interval-descent path (leaf_cursor_fast_path off) ignores
  /// it and re-descends from the root. Work is accounted into `counters`
  /// (the tree's own for whole-query entry points, a KnnScan's own for
  /// fanned-out scans — never shared between concurrent queries).
  Status ScanKeyRange(ObjectBTree::LeafCursor* cursor, CompositeKey start,
                      uint64_t end_primary,
                      const std::unordered_set<UserId>* wanted,
                      std::unordered_set<UserId>* found,
                      std::vector<SpatialCandidate>* out, Timestamp tq,
                      QueryCounters* counters) const;

  /// ScanKeyRange over the PEB keys [MakeKey(p, qsv, zlo),
  /// MakeKey(p, qsv, zhi)] of one (partition, sequence value) pair.
  Status ScanSvInterval(ObjectBTree::LeafCursor* cursor, uint32_t partition,
                        uint32_t qsv, uint64_t zlo, uint64_t zhi,
                        const std::unordered_set<UserId>* wanted,
                        std::unordered_set<UserId>* found,
                        std::vector<SpatialCandidate>* out, Timestamp tq,
                        QueryCounters* counters) const;

  /// Verification: Definition 2's policy conditions.
  bool Verify(UserId issuer, const SpatialCandidate& cand, Timestamp tq) const;

  Result<std::vector<UserId>> RangeQueryPerFriend(
      UserId issuer, const Rect& range, Timestamp tq,
      const std::vector<SvRow>& rows, SharedScanCache* shared) const;
  Result<std::vector<UserId>> RangeQuerySpan(
      UserId issuer, const Rect& range, Timestamp tq,
      const std::vector<SvRow>& rows, SharedScanCache* shared) const;

  BufferPool* pool_;
  PebTreeOptions options_;
  PebKeyLayout layout_;
  GridMapper grid_;
  BTree<ObjectTreeTraits> tree_;
  const PolicyStore* store_;
  const RoleRegistry* roles_;
  /// The encoding epoch this tree's keys are consistent with. Swapped only
  /// by AdoptSnapshot (serialized against queries by the caller).
  std::shared_ptr<const EncodingSnapshot> snapshot_;

  std::unordered_map<UserId, StoredObject> objects_;
  std::unordered_map<int64_t, size_t> label_counts_;
  /// Per-query work counters. Mutable so the query methods form a const
  /// read path (queries are logically read-only).
  mutable QueryCounters counters_;
};

}  // namespace peb
