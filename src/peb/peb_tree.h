// The PEB-tree (Policy-Embedded Bx-tree) — the paper's contribution
// (Section 5). A B+-tree over PEB keys (peb_key.h) that clusters users by
// policy compatibility first and spatial proximity second, with query
// algorithms that search the cross product of the issuer's friend SV values
// and the query window's Z intervals:
//
//  * PRQ (Section 5.3 / Figure 7): per time partition, the enlarged window
//    is decomposed into Z intervals; for each friend sequence value, the
//    key ranges [TID ⊕ SV ⊕ ZVs, TID ⊕ SV ⊕ ZVe] are scanned. Once a
//    user's record is located, the remaining intervals for that SV are
//    skipped (a user has one location).
//  * PkNN (Section 5.4 / Figures 8-10): iterative range enlargement with
//    estimated initial radius Dk/k; the (friend x round) search matrix is
//    traversed in triangular (anti-diagonal) order; each round searches
//    only the ring new to that round; after k candidates are verified, a
//    final vertical scan bounded by the distance to the current k-th
//    candidate closes the search.
//
// The default PkNN path (MovingIndexOptions::incremental_knn) sharpens
// Figure 9 in three ways: the round-0 radius is seeded from the cost
// model's candidate-density Dk (costmodel EstimateKnnSeedRadius) so a
// typical query closes in 1-2 rounds; each later round scans only the
// EXACT annulus delta (the round's Z decomposition minus every interval a
// previous round covered, via ZRingForWindow) instead of the cumulative
// bounding span; and adjacent quantized-SV friend rows coalesce into
// single SV-run scans. The paper-literal path is kept behind the flag as
// the result-equivalence oracle.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btree/btree.h"
#include "btree/btree_traits.h"
#include "bxtree/bx_key.h"
#include "bxtree/privacy_index.h"
#include "bxtree/bxtree.h"
#include "common/thread_annotations.h"
#include "peb/peb_key.h"
#include "policy/policy_store.h"
#include "policy/role_registry.h"
#include "policy/sequence_value.h"
#include "spatial/zcurve.h"
#include "spatial/zrange.h"
#include "storage/buffer_pool.h"

namespace peb {

/// PRQ search-range construction strategy.
enum class PrqStrategy {
  /// Section 5.3: one key range per (friend SV, Z interval) pair, with the
  /// per-user skip rule. The default.
  kPerFriendIntervals,
  /// Figure 7 taken literally: one scan from SVmin ⊕ ZVs to SVmax ⊕ ZVe
  /// per Z interval. Reads every user between the two sequence values;
  /// kept as an ablation variant.
  kSpanScan,
};

/// PkNN search-matrix traversal order.
enum class KnnOrder {
  kTriangular,   ///< Figure 9 anti-diagonal sweep. The default.
  kColumnMajor,  ///< Spatial-first: whole column (round) at a time.
};

/// PEB-tree configuration.
struct PebTreeOptions {
  MovingIndexOptions index;  ///< Shared moving-index parameters.
  uint32_t sv_bits = 26;     ///< Bits reserved for the quantized SV.
  PrqStrategy prq_strategy = PrqStrategy::kPerFriendIntervals;
  KnnOrder knn_order = KnnOrder::kTriangular;
  double time_domain = kDefaultTimeDomain;
};

/// The Dk estimate of Section 5.4 for a population of `n` users, scaled to
/// the space side (the initial PkNN radius is Dk/k).
double EstimateKnnDistanceFor(size_t n, size_t k, double space_side);

/// The incremental PkNN seed radius for `num_candidates` friends of which
/// only the indexed fraction (`indexed` of `population`) can qualify —
/// the ONE formula both the single tree and the engine seed from, so all
/// shards of a fanned-out query enlarge identically.
double KnnSeedRadiusFor(size_t num_candidates, size_t indexed,
                        size_t population, size_t k, double space_side);

/// Per-query decomposition cache shared by the shards of one fanned-out
/// query: window/ring Z-decompositions depend only on the query and the
/// time-partition label — not on which shard scans them — so whichever
/// shard needs one first computes it and the rest reuse it. Thread-safe;
/// create one per logical query.
///
/// compute() runs OUTSIDE the lock: the callbacks are deterministic pure
/// functions of the query, so when two shards race on the same key the
/// loser's duplicate work is wasted but harmless, and the decomposition —
/// the hot CPU cost the cache exists to deduplicate — never serializes the
/// other shards' lookups behind it.
class SharedScanCache {
 public:
  using ComputeIntervals = std::function<std::vector<CurveInterval>()>;
  using ComputeSpan = std::function<CurveInterval()>;
  using IntervalsPtr = std::shared_ptr<const std::vector<CurveInterval>>;

  /// PRQ: the enlarged window's Z intervals for a label. Returned by
  /// shared pointer so concurrent shard lookups share one immutable
  /// decomposition instead of deep-copying it on every hit.
  IntervalsPtr PrqIntervals(int64_t label, const ComputeIntervals& compute) {
    {
      MutexLock lock(&mu_);
      auto it = prq_.find(label);
      if (it != prq_.end()) return it->second;
    }
    auto value =
        std::make_shared<const std::vector<CurveInterval>>(compute());
    MutexLock lock(&mu_);
    return prq_.try_emplace(label, std::move(value)).first->second;
  }

  /// PkNN: the cumulative ring span for (label, round). Legacy round path.
  CurveInterval KnnSpan(int64_t label, size_t round,
                        const ComputeSpan& compute) {
    auto key = std::make_pair(label, round);
    {
      MutexLock lock(&mu_);
      auto it = knn_.find(key);
      if (it != knn_.end()) return it->second;
    }
    CurveInterval value = compute();
    MutexLock lock(&mu_);
    return knn_.try_emplace(key, value).first->second;
  }

  /// Incremental PkNN: one round's exact annulus delta for (label, round) —
  /// the intervals new to the round plus the cumulative covered set the
  /// NEXT round subtracts. Both are deterministic functions of the query
  /// and the label, so every shard of a fanned-out query shares one copy.
  struct RingEntry {
    IntervalsPtr ring;
    IntervalsPtr covered;
  };
  using ComputeRing = std::function<RingEntry()>;

  RingEntry KnnRing(int64_t label, size_t round, const ComputeRing& compute) {
    auto key = std::make_pair(label, round);
    {
      MutexLock lock(&mu_);
      auto it = rings_.find(key);
      if (it != rings_.end()) return it->second;
    }
    RingEntry value = compute();
    MutexLock lock(&mu_);
    return rings_.try_emplace(key, std::move(value)).first->second;
  }

  /// PkNN: the final vertical-scan span for a label. Legacy round path.
  CurveInterval VerticalSpan(int64_t label, const ComputeSpan& compute) {
    {
      MutexLock lock(&mu_);
      auto it = vertical_.find(label);
      if (it != vertical_.end()) return it->second;
    }
    CurveInterval value = compute();
    MutexLock lock(&mu_);
    return vertical_.try_emplace(label, value).first->second;
  }

  /// Incremental PkNN: the final vertical window's full decomposition for a
  /// label (each scan subtracts its own covered set from it).
  IntervalsPtr VerticalIntervals(int64_t label,
                                 const ComputeIntervals& compute) {
    {
      MutexLock lock(&mu_);
      auto it = vertical_intervals_.find(label);
      if (it != vertical_intervals_.end()) return it->second;
    }
    auto value =
        std::make_shared<const std::vector<CurveInterval>>(compute());
    MutexLock lock(&mu_);
    return vertical_intervals_.try_emplace(label, std::move(value))
        .first->second;
  }

 private:
  Mutex mu_;
  std::unordered_map<int64_t, IntervalsPtr> prq_ GUARDED_BY(mu_);
  std::map<std::pair<int64_t, size_t>, CurveInterval> knn_ GUARDED_BY(mu_);
  std::map<std::pair<int64_t, size_t>, RingEntry> rings_ GUARDED_BY(mu_);
  std::unordered_map<int64_t, CurveInterval> vertical_ GUARDED_BY(mu_);
  std::unordered_map<int64_t, IntervalsPtr> vertical_intervals_
      GUARDED_BY(mu_);
};

/// Everything about a persisted PEB-tree that is not stored in its pages:
/// the root page id and shape statistics. Together with the backing file
/// (FileDiskManager) and the policy encoding, this is sufficient to reopen
/// an index without re-inserting (see PebTree::AttachExisting).
struct PebTreeManifest {
  PageId root = kInvalidPageId;
  BTreeStats stats;
};

/// The PEB-tree. Policies and roles must outlive the tree; the encoding
/// snapshot is shared (the tree keeps it alive) and must have been built
/// with a quantizer whose bit width fits options.sv_bits. The snapshot can
/// be swapped online via AdoptSnapshot — the policy-lifecycle re-key path.
class PebTree final : public PrivacyAwareIndex {
 private:
  /// A run of the issuer's friends over consecutive quantized SVs
  /// (ascending; `qsv_lo == qsv_hi` for a single row). Rows whose SVs
  /// differ by at most MovingIndexOptions::qsv_run_gap coalesce into one
  /// run, which costs ONE key-range scan [qsv_lo ⊕ ZVs, qsv_hi ⊕ ZVe]
  /// spanning the whole interval list instead of one probe per (row,
  /// interval): the run's rows are adjacent in key space and sparse, so a
  /// single pass over their full extents is cheaper than |intervals|
  /// probes that each cross the same rows anyway. `remaining` counts the
  /// run's not-yet-located users: it is decremented inside the scan
  /// itself, so the paper's skip rule ("a user has one location") costs
  /// O(1) per check and a scan can stop the moment its run is done.
  struct SvRun {
    uint32_t qsv_lo = 0;
    uint32_t qsv_hi = 0;
    std::unordered_set<UserId> wanted;
    size_t remaining = 0;
    /// Contiguously completed enlargement rounds (incremental PkNN only;
    /// the final vertical scan subtracts the covered set of this round).
    size_t rounds_done = 0;
  };

 public:
  PebTree(BufferPool* pool, const PebTreeOptions& options,
          const PolicyStore* store, const RoleRegistry* roles,
          std::shared_ptr<const EncodingSnapshot> snapshot);

  /// Legacy bridge for static worlds: a non-owning view of `encoding`,
  /// which must outlive the tree.
  PebTree(BufferPool* pool, const PebTreeOptions& options,
          const PolicyStore* store, const RoleRegistry* roles,
          const PolicyEncoding* encoding)
      : PebTree(pool, options, store, roles,
                std::shared_ptr<const EncodingSnapshot>(
                    std::shared_ptr<const EncodingSnapshot>(), encoding)) {}

  Status Insert(const MovingObject& object) override;
  Status Update(const MovingObject& object) override;
  Status Delete(UserId id) override;
  size_t size() const override { return objects_.size(); }
  BufferPool* pool() override { return pool_; }
  IoStats aggregate_io() const override { return pool_->stats(); }
  void ResetIo() override { pool_->ResetStats(); }

  /// Swaps in a new encoding snapshot and re-keys the named users (nullptr
  /// = diff all hosted records). Mutation: callers serialize against
  /// queries exactly as for Insert/Update/Delete.
  Status AdoptSnapshot(std::shared_ptr<const EncodingSnapshot> snapshot,
                       const std::vector<UserId>* rekey) override;
  uint64_t encoding_epoch() const override { return snapshot_->epoch(); }
  /// The snapshot this tree currently keys by.
  const std::shared_ptr<const EncodingSnapshot>& snapshot() const {
    return snapshot_;
  }

  Result<std::vector<UserId>> RangeQueryWithStats(UserId issuer,
                                                  const Rect& range,
                                                  Timestamp tq,
                                                  QueryStats* stats) override;
  Result<std::vector<Neighbor>> KnnQueryWithStats(UserId issuer,
                                                  const Point& qloc, size_t k,
                                                  Timestamp tq,
                                                  QueryStats* stats) override;

  /// PRQ restricted to an explicit candidate list (a subset of the issuer's
  /// friends, ascending by (qsv, uid)). This is the const read path the
  /// sharded engine fans out across shards: each shard is asked only about
  /// the friends it hosts. Only the buffer pool's LRU state changes, so
  /// distinct trees may be queried from distinct threads concurrently —
  /// and, with `counters` supplied, the SAME tree too: all work accounting
  /// goes into the caller's scan-local slot, never the tree's shared
  /// last_query() member. `shared`, when given, deduplicates the window
  /// decomposition across the shards of one fanned-out query.
  Result<std::vector<UserId>> RangeQueryAmong(
      UserId issuer, const Rect& range, Timestamp tq,
      const std::vector<FriendEntry>& friends,
      SharedScanCache* shared = nullptr,
      QueryCounters* counters = nullptr) const;

  /// PkNN restricted to an explicit candidate list; see RangeQueryAmong.
  Result<std::vector<Neighbor>> KnnQueryAmong(
      UserId issuer, const Point& qloc, size_t k, Timestamp tq,
      const std::vector<FriendEntry>& friends,
      QueryCounters* counters = nullptr) const;

  /// Incremental PkNN scan state over this tree — the engine's per-shard
  /// primitive. The engine drives the Figure-9 search matrix round by
  /// round across every shard (so enlargement stops as soon as k verified
  /// candidates exist globally), while each shard scans only the cells of
  /// its own friend rows. KnnQueryAmong is built on the same object, so
  /// the single-tree and fanned-out searches share one implementation.
  class KnnScan {
   public:
    /// Number of SV runs (coalesced friend rows) this scan searches.
    size_t num_rows() const { return runs_.size(); }
    size_t max_rounds() const { return max_rounds_; }
    /// Work counters accumulated by this scan's own cells. Each scan owns
    /// its counters (they never pass through the tree's shared last_query()
    /// slot), so concurrent fanned-out queries on the same shard tree stay
    /// exact. Read after the last Scan* call.
    const QueryCounters& counters() const { return counters_; }
    /// Anti-diagonals in this shard's (runs x rounds) matrix.
    size_t max_diagonals() const {
      return runs_.empty() ? 0 : runs_.size() + max_rounds_ - 1;
    }
    /// True once every wanted user of run i has been located. O(1): the
    /// run's remaining-count is decremented inside the scans themselves.
    bool RowDone(size_t i) const { return runs_[i].remaining == 0; }
    /// True once every wanted user has been located.
    bool AllFound() const { return found_.size() >= total_wanted_; }

    /// Radius of enlargement round `j` under this scan's schedule
    /// (cost-model-seeded doubling on the incremental path, the legacy
    /// linear-then-doubling Dk/k schedule otherwise).
    double RadiusForRound(size_t j) const;

    /// The largest radius around the query point this scan has PROVABLY
    /// fully examined for every run that still has unlocated users, after
    /// anti-diagonal `d` completed (run i has then scanned rounds 0..d-i).
    /// Any user this scan has not yet located lies strictly farther than
    /// this, so a scan whose covered radius reaches the global k-th
    /// candidate distance can be retired — remaining annuli (and the final
    /// vertical scan) provably cannot improve the answer. Returns +inf
    /// when every run is done.
    double CoveredRadiusAfterDiagonal(size_t d) const;

    /// Scans matrix cell (run i, round j): the ring new to round j for the
    /// run's SV range, in every live partition. Policy-verified candidates
    /// are inserted into *verified, kept ascending by distance. On the
    /// incremental path the ring is the exact annulus delta — the round's
    /// Z decomposition minus every interval already covered — and the
    /// persistent LeafCursor carries the position across rounds, so a
    /// round never re-fetches leaves a previous round examined.
    Status ScanCell(size_t i, size_t j, std::vector<Neighbor>* verified);

    /// Scans every cell of anti-diagonal d (cells (i, d-i)).
    Status ScanDiagonal(size_t d, std::vector<Neighbor>* verified);

    /// Section 5.4's final step: scans the square of half-side dk around
    /// the query point for every run with unfound users, ruling out closer
    /// unexamined candidates. After this the verified list is exact. On
    /// the incremental path only the DELTA against the run's covered
    /// intervals is fetched (often nothing).
    Status VerticalScan(double dk, std::vector<Neighbor>* verified);

   private:
    friend class PebTree;

    struct LabelInfo {
      int64_t label;
      uint32_t partition;
      double enlarge;
    };

    KnnScan(const PebTree* tree, UserId issuer, Point qloc, Timestamp tq,
            double rq, const std::vector<FriendEntry>& friends,
            SharedScanCache* shared);

    /// Cumulative ring span for (label li, round j), memoized per label and
    /// deduplicated across shards via the shared cache. Legacy path.
    CurveInterval SpanFor(size_t li, size_t j);
    /// Exact annulus delta for (label li, round j); incremental path.
    const SharedScanCache::RingEntry& RingFor(size_t li, size_t j);
    void InsertVerified(std::vector<Neighbor>* verified);

    const PebTree* tree_;
    UserId issuer_;
    Point qloc_;
    Timestamp tq_;
    /// Incremental path: the cost-model-seeded round-0 radius. Legacy
    /// path: the per-round enlargement step (Dk/k).
    double rq_;
    bool incremental_ = false;
    SharedScanCache* shared_;
    std::vector<SvRun> runs_;
    size_t total_wanted_ = 0;
    size_t max_rounds_ = 1;
    std::vector<LabelInfo> labels_;
    /// Legacy path: cumulative single-span rings per (label, round).
    std::vector<std::vector<CurveInterval>> spans_;
    /// Incremental path: exact annulus deltas per (label, round).
    std::vector<std::vector<SharedScanCache::RingEntry>> rings_;
    std::unordered_set<UserId> found_;
    std::vector<SpatialCandidate> batch_;
    /// Persistent scan position, reused across cells and rounds.
    ObjectBTree::LeafCursor cursor_;
    /// Scan-owned work counters (see counters()).
    QueryCounters counters_;
  };

  /// Starts an incremental PkNN scan. On the incremental path `rq` is the
  /// cost-model-seeded round-0 radius; on the legacy path it is the
  /// per-round enlargement step (Dk/k). The engine derives either from
  /// GLOBAL workload state so all shards enlarge identically. The scan
  /// accumulates work counters of its own (KnnScan::counters()); the
  /// tree's last_query() is not touched.
  KnnScan NewKnnScan(UserId issuer, const Point& qloc, Timestamp tq,
                     double rq, const std::vector<FriendEntry>& friends,
                     SharedScanCache* shared = nullptr) const;

  /// The seed radius the incremental PkNN path starts from (cost model's
  /// candidate-density Dk; see costmodel::EstimateKnnSeedRadius).
  double KnnSeedRadius(size_t num_candidates, size_t k) const;

  const PebTreeOptions& options() const { return options_; }
  const BTreeStats& tree_stats() const { return tree_.stats(); }

  /// The PEB key (Eq. 5 value, without the uid tiebreaker) for an object.
  uint64_t KeyFor(const MovingObject& object) const;

  /// Current stored state of a user.
  Result<MovingObject> GetObject(UserId id) const override;

  /// Dk estimate (Section 5.4), scaled to the space side.
  double EstimateKnnDistance(size_t k) const;

  /// Snapshot of the out-of-page state needed to reopen this index later.
  /// Flush the buffer pool before persisting the manifest.
  PebTreeManifest Manifest() const {
    return {tree_.root(), tree_.stats()};
  }

  /// Reopens a persisted index: attaches to the pages already on the
  /// pool's disk (validating structure) and rebuilds the in-memory object
  /// table and partition counts by scanning the leaves. The tree handle
  /// must be freshly constructed (empty).
  Status AttachExisting(const PebTreeManifest& manifest);

  /// Visits every hosted user's current state (read path; callers
  /// serialize against mutations exactly as for queries).
  void ForEachObject(
      const std::function<void(UserId, const MovingObject&)>& fn) const {
    for (const auto& [uid, stored] : objects_) fn(uid, stored.state);
  }

  /// Definition 2's verification predicate, shared between the tree's scan
  /// paths (Verify) and the sharded engine's delta overlay: a candidate
  /// located OUTSIDE the tree (in a shard's ingestion delta) must pass
  /// exactly the check a tree-scanned candidate passes, or delta-ingest
  /// answers would diverge from the direct-apply oracle. `pos` is the
  /// candidate's position extrapolated to `tq`.
  static bool VerifyAgainst(const PolicyStore& store, const RoleRegistry& roles,
                            double time_domain, UserId issuer, UserId uid,
                            const Point& pos, Timestamp tq);

  /// Deep structural self-check: the underlying B+-tree's full walk
  /// (BTree::Validate — key order, separator bounds, occupancy, leaf
  /// chain), entry count agreement between tree and object table, every
  /// stored composite key re-derivable from the object's state under the
  /// PINNED encoding snapshot (partition from the label timestamp, Z value
  /// from the projected position, quantized SV from the snapshot — Eq. 5),
  /// each entry present in the tree with a payload matching the table, and
  /// the per-label population histogram exact. Returns Corruption naming
  /// the first violated invariant. Read path: serialize like a query.
  Status ValidateInvariants() const;

 private:
  struct StoredObject {
    MovingObject state;
    int64_t label_index = 0;
    uint64_t key = 0;
  };

  /// Groups a friend list (ascending by (qsv, uid)) into SV runs: rows
  /// whose quantized SVs differ by at most `gap` coalesce into one run
  /// (gap 0 = one run per distinct qsv, the legacy per-row layout).
  static std::vector<SvRun> BuildRuns(const std::vector<FriendEntry>& friends,
                                      uint32_t gap);

  /// Scans composite keys [start, end_primary]. For every entry whose uid
  /// is in `wanted`, marks it found, appends its state, and decrements
  /// `*remaining` (when given) — stopping the scan the moment it hits
  /// zero, since no further wanted user can appear. `cursor` carries the
  /// position across the sorted probes of one query; the legacy
  /// per-interval-descent path (leaf_cursor_fast_path off) ignores it and
  /// re-descends from the root. Work is accounted into `counters` (the
  /// caller's QueryStats slot for whole-query entry points, a KnnScan's own
  /// for fanned-out scans — never shared between concurrent queries).
  Status ScanKeyRange(ObjectBTree::LeafCursor* cursor, CompositeKey start,
                      uint64_t end_primary,
                      const std::unordered_set<UserId>* wanted,
                      std::unordered_set<UserId>* found, size_t* remaining,
                      std::vector<SpatialCandidate>* out, Timestamp tq,
                      QueryCounters* counters) const;

  /// ScanKeyRange over the PEB keys [MakeKey(p, qsv_lo, zlo),
  /// MakeKey(p, qsv_hi, zhi)] of one partition's SV run — ONE probe for
  /// the whole run of consecutive sequence values.
  Status ScanSvRun(ObjectBTree::LeafCursor* cursor, uint32_t partition,
                   uint32_t qsv_lo, uint32_t qsv_hi, uint64_t zlo,
                   uint64_t zhi, const std::unordered_set<UserId>* wanted,
                   std::unordered_set<UserId>* found, size_t* remaining,
                   std::vector<SpatialCandidate>* out, Timestamp tq,
                   QueryCounters* counters) const;

  /// Verification: Definition 2's policy conditions.
  bool Verify(UserId issuer, const SpatialCandidate& cand, Timestamp tq) const;

  Result<std::vector<UserId>> RangeQueryPerFriend(
      UserId issuer, const Rect& range, Timestamp tq,
      std::vector<SvRun>& runs, SharedScanCache* shared,
      QueryCounters* counters) const;
  Result<std::vector<UserId>> RangeQuerySpan(
      UserId issuer, const Rect& range, Timestamp tq,
      const std::vector<FriendEntry>& friends, SharedScanCache* shared,
      QueryCounters* counters) const;

  BufferPool* pool_;
  PebTreeOptions options_;
  PebKeyLayout layout_;
  GridMapper grid_;
  BTree<ObjectTreeTraits> tree_;
  const PolicyStore* store_;
  const RoleRegistry* roles_;
  /// The encoding epoch this tree's keys are consistent with. Swapped only
  /// by AdoptSnapshot (serialized against queries by the caller).
  std::shared_ptr<const EncodingSnapshot> snapshot_;

  std::unordered_map<UserId, StoredObject> objects_;
  std::unordered_map<int64_t, size_t> label_counts_;
};

}  // namespace peb
