// The PEB-tree (Policy-Embedded Bx-tree) — the paper's contribution
// (Section 5). A B+-tree over PEB keys (peb_key.h) that clusters users by
// policy compatibility first and spatial proximity second, with query
// algorithms that search the cross product of the issuer's friend SV values
// and the query window's Z intervals:
//
//  * PRQ (Section 5.3 / Figure 7): per time partition, the enlarged window
//    is decomposed into Z intervals; for each friend sequence value, the
//    key ranges [TID ⊕ SV ⊕ ZVs, TID ⊕ SV ⊕ ZVe] are scanned. Once a
//    user's record is located, the remaining intervals for that SV are
//    skipped (a user has one location).
//  * PkNN (Section 5.4 / Figures 8-10): iterative range enlargement with
//    estimated initial radius Dk/k; the (friend x round) search matrix is
//    traversed in triangular (anti-diagonal) order; each round searches
//    only the ring new to that round; after k candidates are verified, a
//    final vertical scan bounded by the distance to the current k-th
//    candidate closes the search.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btree/btree.h"
#include "btree/btree_traits.h"
#include "bxtree/bx_key.h"
#include "bxtree/privacy_index.h"
#include "bxtree/bxtree.h"
#include "peb/peb_key.h"
#include "policy/policy_store.h"
#include "policy/role_registry.h"
#include "policy/sequence_value.h"
#include "spatial/zcurve.h"
#include "spatial/zrange.h"
#include "storage/buffer_pool.h"

namespace peb {

/// PRQ search-range construction strategy.
enum class PrqStrategy {
  /// Section 5.3: one key range per (friend SV, Z interval) pair, with the
  /// per-user skip rule. The default.
  kPerFriendIntervals,
  /// Figure 7 taken literally: one scan from SVmin ⊕ ZVs to SVmax ⊕ ZVe
  /// per Z interval. Reads every user between the two sequence values;
  /// kept as an ablation variant.
  kSpanScan,
};

/// PkNN search-matrix traversal order.
enum class KnnOrder {
  kTriangular,   ///< Figure 9 anti-diagonal sweep. The default.
  kColumnMajor,  ///< Spatial-first: whole column (round) at a time.
};

/// PEB-tree configuration.
struct PebTreeOptions {
  MovingIndexOptions index;  ///< Shared moving-index parameters.
  uint32_t sv_bits = 26;     ///< Bits reserved for the quantized SV.
  PrqStrategy prq_strategy = PrqStrategy::kPerFriendIntervals;
  KnnOrder knn_order = KnnOrder::kTriangular;
  double time_domain = kDefaultTimeDomain;
};

/// Everything about a persisted PEB-tree that is not stored in its pages:
/// the root page id and shape statistics. Together with the backing file
/// (FileDiskManager) and the policy encoding, this is sufficient to reopen
/// an index without re-inserting (see PebTree::AttachExisting).
struct PebTreeManifest {
  PageId root = kInvalidPageId;
  BTreeStats stats;
};

/// The PEB-tree. Policies, roles, and the policy encoding must outlive the
/// tree; the encoding must have been built with a quantizer whose bit width
/// fits options.sv_bits.
class PebTree final : public PrivacyAwareIndex {
 public:
  PebTree(BufferPool* pool, const PebTreeOptions& options,
          const PolicyStore* store, const RoleRegistry* roles,
          const PolicyEncoding* encoding);

  Status Insert(const MovingObject& object) override;
  Status Update(const MovingObject& object) override;
  Status Delete(UserId id) override;
  size_t size() const override { return objects_.size(); }
  BufferPool* pool() override { return pool_; }
  const QueryCounters& last_query() const override { return counters_; }

  Result<std::vector<UserId>> RangeQuery(UserId issuer, const Rect& range,
                                         Timestamp tq) override;
  Result<std::vector<Neighbor>> KnnQuery(UserId issuer, const Point& qloc,
                                         size_t k, Timestamp tq) override;

  const PebTreeOptions& options() const { return options_; }
  const BTreeStats& tree_stats() const { return tree_.stats(); }

  /// The PEB key (Eq. 5 value, without the uid tiebreaker) for an object.
  uint64_t KeyFor(const MovingObject& object) const;

  /// Current stored state of a user.
  Result<MovingObject> GetObject(UserId id) const;

  /// Dk estimate (Section 5.4), scaled to the space side.
  double EstimateKnnDistance(size_t k) const;

  /// Snapshot of the out-of-page state needed to reopen this index later.
  /// Flush the buffer pool before persisting the manifest.
  PebTreeManifest Manifest() const {
    return {tree_.root(), tree_.stats()};
  }

  /// Reopens a persisted index: attaches to the pages already on the
  /// pool's disk (validating structure) and rebuilds the in-memory object
  /// table and partition counts by scanning the leaves. The tree handle
  /// must be freshly constructed (empty).
  Status AttachExisting(const PebTreeManifest& manifest);

 private:
  struct StoredObject {
    MovingObject state;
    int64_t label_index = 0;
    uint64_t key = 0;
  };

  /// Friends of the issuer grouped by quantized SV (ascending).
  struct SvRow {
    uint32_t qsv = 0;
    std::vector<UserId> uids;
  };

  std::vector<SvRow> BuildRows(UserId issuer) const;

  /// Scans PEB keys [MakeKey(p, qsv, zlo), MakeKey(p, qsv, zhi)]. For every
  /// entry whose uid is in `wanted`, marks it found and appends its state.
  Status ScanSvInterval(uint32_t partition, uint32_t qsv, uint64_t zlo,
                        uint64_t zhi,
                        const std::unordered_set<UserId>* wanted,
                        std::unordered_set<UserId>* found,
                        std::vector<SpatialCandidate>* out, Timestamp tq);

  /// Verification: Definition 2's policy conditions.
  bool Verify(UserId issuer, const SpatialCandidate& cand, Timestamp tq) const;

  Result<std::vector<UserId>> RangeQueryPerFriend(UserId issuer,
                                                  const Rect& range,
                                                  Timestamp tq);
  Result<std::vector<UserId>> RangeQuerySpan(UserId issuer, const Rect& range,
                                             Timestamp tq);

  BufferPool* pool_;
  PebTreeOptions options_;
  PebKeyLayout layout_;
  GridMapper grid_;
  BTree<ObjectTreeTraits> tree_;
  const PolicyStore* store_;
  const RoleRegistry* roles_;
  const PolicyEncoding* encoding_;

  std::unordered_map<UserId, StoredObject> objects_;
  std::unordered_map<int64_t, size_t> label_counts_;
  QueryCounters counters_;
};

}  // namespace peb
