// Continuous privacy-aware range queries — the paper's future-work
// direction "extend other types of location-based queries to take into
// account peer-wise privacy concerns" (Section 8).
//
// A continuous PRQ keeps its answer set current while users move and
// while policy time windows open and close. The monitor exploits the
// defining property of peer-wise privacy queries: the answer can only ever
// contain the issuer's friends (users with a policy toward the issuer), so
// maintenance is O(affected queries) per update instead of a spatial
// re-evaluation:
//
//  * Register   — seeds the result with a one-shot PEB-tree PRQ.
//  * OnUpdate   — feed every index update through the monitor, in stream
//                 (global time) order; only the queries whose friend lists
//                 contain the updated user are re-checked. Feed updates
//                 when they are APPLIED-OR-PUBLISHED, not when a
//                 log-structured engine later merges them into its trees:
//                 the service layer feeds each batch synchronously with
//                 its publication and asserts the non-decreasing feed
//                 clock (MovingObjectService::FeedContinuous).
//  * Advance    — re-evaluates memberships at a later time (linear motion
//                 and time-of-day policy windows change answers even
//                 without updates).
//
// Membership transitions are reported as Events (entered/left).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bxtree/privacy_index.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "policy/policy_store.h"
#include "policy/role_registry.h"
#include "policy/sequence_value.h"

namespace peb {

/// Identifier of a registered continuous query.
using ContinuousQueryId = uint32_t;

/// A membership transition in some registered query's answer set.
struct ContinuousQueryEvent {
  ContinuousQueryId query = 0;
  UserId user = kInvalidUserId;
  bool entered = false;  ///< true: entered the result; false: left it.
  Timestamp t = 0;

  friend bool operator==(const ContinuousQueryEvent&,
                         const ContinuousQueryEvent&) = default;
};

/// Maintains the answer sets of continuous privacy-aware range queries on
/// top of ANY PrivacyAwareIndex — a single PEB-tree or the sharded engine
/// (queries seed through RangeQueryWithStats, membership re-evaluation
/// through GetObject, both part of the index interface). Single-threaded:
/// callers that feed it from several threads serialize externally — the
/// service layer's continuous_mu_ IS that serialization (the monitor
/// pointer is PT_GUARDED_BY it), which is why this class carries no lock
/// and no annotations of its own. The index, store, roles, and encoding
/// must outlive the monitor.
class ContinuousQueryMonitor {
 public:
  ContinuousQueryMonitor(PrivacyAwareIndex* index, const PolicyStore* store,
                         const RoleRegistry* roles,
                         std::shared_ptr<const EncodingSnapshot> snapshot,
                         double time_domain = kDefaultTimeDomain);

  /// Legacy bridge: non-owning view of `encoding` (must outlive the
  /// monitor).
  ContinuousQueryMonitor(PrivacyAwareIndex* index, const PolicyStore* store,
                         const RoleRegistry* roles,
                         const PolicyEncoding* encoding,
                         double time_domain = kDefaultTimeDomain)
      : ContinuousQueryMonitor(index, store, roles,
                               std::shared_ptr<const EncodingSnapshot>(
                                   std::shared_ptr<const EncodingSnapshot>(),
                                   encoding),
                               time_domain) {}

  /// Adopts a new encoding snapshot at time `now`: watcher lists are
  /// rebuilt from the new friend lists and every registered query's
  /// membership is re-evaluated — users who lost their policy toward an
  /// issuer leave the answer (events emitted), fresh grants can enter.
  /// Call after the index adopted the same snapshot, holding whatever lock
  /// serializes this monitor's feeds.
  Status AdoptSnapshot(std::shared_ptr<const EncodingSnapshot> snapshot,
                       Timestamp now);

  /// Registers a continuous PRQ and seeds its result via the index. When
  /// `stats` is non-null it receives the seeding query's counters and I/O
  /// delta (forwarded into the service layer's QueryResponse).
  Result<ContinuousQueryId> Register(UserId issuer, const Rect& range,
                                     Timestamp now,
                                     QueryStats* stats = nullptr);

  /// Removes a query. Fails with NotFound for unknown ids.
  Status Unregister(ContinuousQueryId id);

  /// Notifies the monitor that `state` was just applied to the tree.
  /// Re-evaluates exactly the queries that can be affected.
  Status OnUpdate(const MovingObject& state, Timestamp now);

  /// Re-evaluates every registered query at time `now` (motion and policy
  /// time windows shift answers even without updates).
  Status Advance(Timestamp now);

  /// Current answer of query `id`, sorted by user id.
  Result<std::vector<UserId>> ResultOf(ContinuousQueryId id) const;

  /// Drains and returns the accumulated membership events, in order.
  std::vector<ContinuousQueryEvent> TakeEvents();

  size_t num_queries() const { return queries_.size(); }

 private:
  struct RegisteredQuery {
    UserId issuer = kInvalidUserId;
    Rect range;
    std::unordered_set<UserId> members;
  };

  /// Definition-2 membership of `uid` (at `pos`) in query `q` at `now`.
  bool Qualifies(const RegisteredQuery& q, UserId uid, const Point& pos,
                 Timestamp now) const;

  /// Applies a membership decision, emitting an event on transition.
  void SetMembership(ContinuousQueryId id, RegisteredQuery& q, UserId uid,
                     bool in_result, Timestamp now);

  /// Re-evaluates every member/friend of query `q` at `now` through the
  /// index (the shared body of Advance and AdoptSnapshot).
  void ReevaluateQuery(ContinuousQueryId id, RegisteredQuery& q,
                       Timestamp now);

  PrivacyAwareIndex* index_;
  const PolicyStore* store_;
  const RoleRegistry* roles_;
  std::shared_ptr<const EncodingSnapshot> snapshot_;
  double time_domain_;

  ContinuousQueryId next_id_ = 1;
  std::unordered_map<ContinuousQueryId, RegisteredQuery> queries_;
  /// uid -> queries whose friend list contains uid.
  std::unordered_map<UserId, std::vector<ContinuousQueryId>> watchers_;
  std::vector<ContinuousQueryEvent> events_;
};

}  // namespace peb
