#include "storage/fault_injection.h"

#include <string>

namespace peb {

FaultInjectingDiskManager::FaultInjectingDiskManager(std::string path,
                                                     FaultInjector* injector,
                                                     FileDiskOptions options)
    : injector_(injector) {
  // CreateNew runs in this (derived) constructor body, so its superblock
  // write already dispatches through the overridden PhysicalWrite.
  CreateNew(std::move(path), options);
}

Result<std::unique_ptr<FaultInjectingDiskManager>>
FaultInjectingDiskManager::OpenExisting(std::string path,
                                        FaultInjector* injector,
                                        FileDiskOptions options) {
  auto dm = std::unique_ptr<FaultInjectingDiskManager>(
      new FaultInjectingDiskManager(injector));
  PEB_RETURN_NOT_OK(dm->OpenImpl(std::move(path), options));
  return dm;
}

Status FaultInjectingDiskManager::PhysicalWrite(uint64_t offset,
                                                const void* data, size_t len) {
  switch (injector_->OnDurableWrite()) {
    case FaultInjector::WriteVerdict::kProceed:
      return FileDiskManager::PhysicalWrite(offset, data, len);
    case FaultInjector::WriteVerdict::kCrashDrop:
      return Status::IOError("injected crash: write of " +
                             std::to_string(len) + " bytes at offset " +
                             std::to_string(offset) + " dropped");
    case FaultInjector::WriteVerdict::kCrashTorn: {
      const size_t torn = len / 2;
      if (torn > 0) {
        (void)FileDiskManager::PhysicalWrite(offset, data, torn);
      }
      return Status::IOError("injected crash: torn write (" +
                             std::to_string(torn) + " of " +
                             std::to_string(len) + " bytes at offset " +
                             std::to_string(offset) + ")");
    }
  }
  return Status::Internal("unreachable fault verdict");
}

Status FaultInjectingDiskManager::PhysicalSync() {
  if (!injector_->OnSync()) {
    return Status::IOError("injected EIO on sync");
  }
  return FileDiskManager::PhysicalSync();
}

}  // namespace peb
