// DiskManager: the page-granularity persistence interface under the buffer
// pool. Three layers:
//   * InMemoryDiskManager — pages live in RAM; used by the experiment
//     harness, where "I/O cost" is the count of buffer-pool misses (the
//     metric the paper reports with a simulated 50-page LRU buffer).
//   * DurableDiskManager — the extra contract a crash-safe store adds on top
//     of DiskManager: an atomic Commit() that publishes a checkpoint, an
//     opaque metadata blob (the engine manifest), and introspection of the
//     not-yet-committed overlay for WAL page-image capture.
//   * FileDiskManager — the durable implementation: a real file with dual
//     CRC-protected superblocks, mmap'd I/O with ftruncate capacity
//     doubling (stdio fallback behind FileDiskOptions::use_mmap), and a
//     persisted free list.
//
// Crash-safety model (no-steal): every Write()/Allocate()/Free() between
// checkpoints lands in an in-RAM overlay; the backing file changes ONLY
// inside Commit(). A crash at any other moment therefore leaves the file
// exactly as the last checkpoint wrote it. Commit() itself is made atomic by
// the caller journaling the overlay (WAL page images) before Commit touches
// the file, plus the dual alternating-generation superblocks: a torn
// superblock write invalidates one slot's CRC and reopen falls back to the
// other.
//
// File layout (page-sized slots):
//   slot 0, slot 1   superblocks, alternating by generation parity
//   slot i + 2       data page with logical PageId i
//
// Superblock layout (little-endian, one 4 KiB page):
//   off  0  u64  magic "PEB_DB01"
//   off  8  u32  format version
//   off 12  u32  page size
//   off 16  u64  generation (monotone; highest valid slot wins on open)
//   off 24  u64  checkpoint sequence (last WAL seq folded into the file)
//   off 32  u64  encoding epoch (policy snapshot the page contents encode)
//   off 40  u32  next-page watermark
//   off 44  u8   clean-shutdown flag, 3 pad bytes
//   off 48  u32  total free-list entries
//   off 52  u32  free-list entries stored inline in this superblock
//   off 56  u32  overflow chain head (logical PageId, kInvalidPageId = none)
//   off 60  u32  metadata blob length
//   off 64  metadata blob, then 4-byte-aligned inline free-list entries
//   last 4  u32  CRC-32 of bytes [0, kPageSize - 4)
//
// Free-list entries that do not fit inline spill to overflow chain pages
// ([u32 next][u32 count][entries...][u32 crc]) taken from the free list
// itself — a spilled page is deliberately *not* listed as free in the
// superblock, so it cannot be reallocated before the next commit rewrites
// the chain; it returns to the allocatable pool at that commit.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

namespace peb {

/// Abstract page store. Not thread-safe; callers serialize (the buffer pool
/// funnels all disk traffic through its own disk mutex).
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Allocates a fresh page and returns its id. Page contents are zeroed.
  virtual Result<PageId> Allocate() = 0;

  /// Releases a page back to the free list. Reading a freed page is an error.
  virtual Status Free(PageId id) = 0;

  /// Reads page `id` into `*out`.
  virtual Status Read(PageId id, Page* out) = 0;

  /// Writes `page` to page `id`.
  virtual Status Write(PageId id, const Page& page) = 0;

  /// Number of pages ever allocated (including freed ones).
  virtual PageId capacity() const = 0;

  /// Number of currently live (allocated, not freed) pages.
  virtual size_t live_pages() const = 0;
};

/// RAM-backed page store.
class InMemoryDiskManager final : public DiskManager {
 public:
  InMemoryDiskManager() = default;

  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;
  PageId capacity() const override {
    return static_cast<PageId>(pages_.size());
  }
  size_t live_pages() const override { return pages_.size() - free_.size(); }

 private:
  Status CheckLive(PageId id) const;

  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<bool> freed_;
  std::vector<PageId> free_;
};

/// The durability contract layered on DiskManager. Between Commit() calls
/// the store buffers mutations in RAM (the "overlay"); Commit() atomically
/// folds the overlay plus allocation state plus a caller-supplied metadata
/// blob into the backing file. A crash between commits loses only the
/// overlay — the file remains the previous checkpoint.
class DurableDiskManager : public DiskManager {
 public:
  /// Non-OK when the backing file could not be opened or the store has hit
  /// an unrecoverable I/O error.
  virtual Status status() const = 0;

  /// Durably flushes previously committed bytes to stable storage.
  virtual Status Sync() = 0;

  /// Atomically publishes the overlay + allocation state + `metadata` as the
  /// new checkpoint. `checkpoint_seq` records the WAL sequence folded in;
  /// `epoch` is the encoding epoch; `clean` marks an orderly shutdown.
  virtual Status Commit(const std::string& metadata, uint64_t checkpoint_seq,
                        uint64_t epoch, bool clean) = 0;

  /// Metadata blob from the last Commit (or the superblock, after reopen).
  virtual const std::string& metadata() const = 0;

  /// WAL sequence number of the last commit.
  virtual uint64_t checkpoint_seq() const = 0;

  /// Encoding epoch recorded by the last commit.
  virtual uint64_t epoch() const = 0;

  /// True when the last commit marked an orderly shutdown.
  virtual bool clean_shutdown() const = 0;

  /// Number of overlay pages dirty since the last commit.
  virtual size_t dirty_page_count() const = 0;

  /// Visits every overlay page (ascending PageId). The visited pages are
  /// exactly what the next Commit() will write to the file; the engine
  /// journals them as WAL page images before committing.
  virtual void ForEachDirtyPage(
      const std::function<void(PageId, const Page&)>& fn) const = 0;

  /// Snapshot of the current free list (for WAL checkpoint records).
  virtual std::vector<PageId> FreeList() const = 0;

  /// Overwrites the allocation state (next-page watermark + free list) —
  /// recovery uses this to adopt the state recorded by an in-WAL checkpoint
  /// that never reached the superblock.
  virtual Status RestoreAllocationState(PageId next_page,
                                        const std::vector<PageId>& free_list) = 0;
};

struct FileDiskOptions {
  /// Use mmap + ftruncate doubling for file I/O; false selects the portable
  /// stdio (fseek/fread/fwrite) path.
  bool use_mmap = true;
  /// Allow create-mode construction to truncate a path that already holds a
  /// valid database. Off (the default) fails creation instead: reopening a
  /// database goes through OpenExisting, and silently recreating over one
  /// is almost always a caller bug that destroys data.
  bool overwrite_existing = false;
};

/// File-backed durable page store. See the file-format comment at the top of
/// this header. Subclassable via the PhysicalWrite/PhysicalSync seam
/// (FaultInjectingDiskManager); all other methods are the production path.
class FileDiskManager : public DurableDiskManager {
 public:
  /// Creates `path` and writes an empty generation-1 checkpoint. Refuses a
  /// path that already holds a valid database unless
  /// FileDiskOptions::overwrite_existing is set. Check `status()` before
  /// use.
  explicit FileDiskManager(std::string path, FileDiskOptions options = {});
  ~FileDiskManager() override;

  /// Opens an existing database file: validates both superblock slots,
  /// adopts the highest valid generation, and restores the next-page
  /// watermark, free list (inline + overflow chain), metadata blob, epoch,
  /// and clean-shutdown flag.
  static Result<std::unique_ptr<FileDiskManager>> OpenExisting(
      std::string path, FileDiskOptions options = {});

  FileDiskManager(const FileDiskManager&) = delete;
  FileDiskManager& operator=(const FileDiskManager&) = delete;

  Status status() const override { return status_; }

  // DiskManager. Reads consult the overlay first, then the committed file;
  // writes/allocates/frees touch only the overlay + RAM allocation state.
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;
  PageId capacity() const override { return next_page_; }
  size_t live_pages() const override { return next_page_ - free_.size(); }

  // DurableDiskManager.
  Status Sync() override;
  Status Commit(const std::string& metadata, uint64_t checkpoint_seq,
                uint64_t epoch, bool clean) override;
  const std::string& metadata() const override { return metadata_; }
  uint64_t checkpoint_seq() const override { return checkpoint_seq_; }
  uint64_t epoch() const override { return epoch_; }
  bool clean_shutdown() const override { return clean_shutdown_; }
  size_t dirty_page_count() const override { return overlay_.size(); }
  void ForEachDirtyPage(
      const std::function<void(PageId, const Page&)>& fn) const override;
  std::vector<PageId> FreeList() const override;
  Status RestoreAllocationState(
      PageId next_page, const std::vector<PageId>& free_list) override;

 protected:
  /// For subclasses (fault injection, OpenExisting): construct empty, then
  /// CreateNew() or OpenImpl(). Virtual dispatch to the PhysicalWrite
  /// override is live by the time either runs.
  FileDiskManager() = default;

  /// Writes `len` bytes at byte `offset` of the backing file. All durable
  /// bytes — data pages, free-list overflow pages, superblocks — funnel
  /// through here, which is the fault-injection seam.
  virtual Status PhysicalWrite(uint64_t offset, const void* data, size_t len);

  /// Durably flushes the backing file (msync + fsync, or fflush + fsync).
  virtual Status PhysicalSync();

  /// Create-mode initialization: truncates the file and commits an empty
  /// generation-1 checkpoint. Sets status_ on failure.
  void CreateNew(std::string path, FileDiskOptions options);

  /// Open-mode initialization: reads and validates the superblocks.
  Status OpenImpl(std::string path, FileDiskOptions options);

 private:
  Status CheckLive(PageId id) const;

  /// Reads `len` bytes at byte `offset`; distinguishes reading past the end
  /// of the file (short read) from an I/O error.
  Status PhysicalRead(uint64_t offset, void* data, size_t len);

  /// Grows the file (and the mapping) to hold at least `bytes`, doubling.
  Status EnsureCapacity(uint64_t bytes);

  /// Builds + writes the superblock for `generation_ + 1` and syncs.
  Status WriteSuperblock(const std::string& metadata, uint64_t checkpoint_seq,
                         uint64_t epoch, bool clean);

  std::string path_;
  FileDiskOptions options_;
  std::FILE* file_ = nullptr;
  int fd_ = -1;
  Status status_;

  // mmap state (use_mmap only).
  std::byte* map_ = nullptr;
  uint64_t mapped_bytes_ = 0;
  uint64_t file_bytes_ = 0;

  // Allocation state (RAM; persisted by Commit).
  PageId next_page_ = 0;
  std::vector<bool> freed_;
  std::vector<PageId> free_;

  // Pages written since the last commit. std::map keeps ForEachDirtyPage
  // (and therefore WAL page-image order and commit write order)
  // deterministic.
  std::map<PageId, std::unique_ptr<Page>> overlay_;

  // Free-list overflow chain pages owned by the current committed
  // superblock (excluded from free_ until the next commit rewrites them).
  std::vector<PageId> overflow_pages_;

  // Committed-checkpoint state.
  uint64_t generation_ = 0;
  uint64_t checkpoint_seq_ = 0;
  uint64_t epoch_ = 0;
  bool clean_shutdown_ = false;
  std::string metadata_;
  PageId base_pages_ = 0;  ///< next_page_ at the last commit (file contents).
};

}  // namespace peb
