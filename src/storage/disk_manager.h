// DiskManager: the page-granularity persistence interface under the buffer
// pool. Two implementations:
//   * InMemoryDiskManager — pages live in RAM; used by the experiment
//     harness, where "I/O cost" is the count of buffer-pool misses (the
//     metric the paper reports with a simulated 50-page LRU buffer).
//   * FileDiskManager — pages live in a real file; used to demonstrate that
//     the index is genuinely disk-resident.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

namespace peb {

/// Abstract page store. Not thread-safe; the library is single-threaded by
/// design (the paper's experiments are, too).
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Allocates a fresh page and returns its id. Page contents are zeroed.
  virtual Result<PageId> Allocate() = 0;

  /// Releases a page back to the free list. Reading a freed page is an error.
  virtual Status Free(PageId id) = 0;

  /// Reads page `id` into `*out`.
  virtual Status Read(PageId id, Page* out) = 0;

  /// Writes `page` to page `id`.
  virtual Status Write(PageId id, const Page& page) = 0;

  /// Number of pages ever allocated (including freed ones).
  virtual PageId capacity() const = 0;

  /// Number of currently live (allocated, not freed) pages.
  virtual size_t live_pages() const = 0;
};

/// RAM-backed page store.
class InMemoryDiskManager final : public DiskManager {
 public:
  InMemoryDiskManager() = default;

  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;
  PageId capacity() const override {
    return static_cast<PageId>(pages_.size());
  }
  size_t live_pages() const override { return pages_.size() - free_.size(); }

 private:
  Status CheckLive(PageId id) const;

  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<bool> freed_;
  std::vector<PageId> free_;
};

/// File-backed page store using stdio with explicit page offsets.
class FileDiskManager final : public DiskManager {
 public:
  /// Creates or truncates `path`. Check `status()` before use.
  explicit FileDiskManager(std::string path);
  ~FileDiskManager() override;

  /// Opens an existing database file without truncating it; every page
  /// already in the file (file size / page size) is registered as live.
  /// This is the reopen path for persisted indexes (PebTree::AttachExisting).
  static Result<std::unique_ptr<FileDiskManager>> OpenExisting(
      std::string path);

  FileDiskManager(const FileDiskManager&) = delete;
  FileDiskManager& operator=(const FileDiskManager&) = delete;

 private:
  FileDiskManager() = default;  // For OpenExisting.

 public:

  /// Non-OK when the backing file could not be opened.
  Status status() const { return status_; }

  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;
  PageId capacity() const override { return next_page_; }
  size_t live_pages() const override { return next_page_ - free_.size(); }

 private:
  Status CheckLive(PageId id) const;

  std::string path_;
  std::FILE* file_ = nullptr;
  Status status_;
  PageId next_page_ = 0;
  std::vector<bool> freed_;
  std::vector<PageId> free_;
};

}  // namespace peb
