#include "storage/disk_manager.h"

#include <cerrno>
#include <cstring>

namespace peb {

// ---------------------------------------------------------------------------
// InMemoryDiskManager
// ---------------------------------------------------------------------------

Result<PageId> InMemoryDiskManager::Allocate() {
  if (!free_.empty()) {
    PageId id = free_.back();
    free_.pop_back();
    freed_[id] = false;
    pages_[id]->Clear();
    return id;
  }
  PageId id = static_cast<PageId>(pages_.size());
  auto page = std::make_unique<Page>();
  page->Clear();
  pages_.push_back(std::move(page));
  freed_.push_back(false);
  return id;
}

Status InMemoryDiskManager::CheckLive(PageId id) const {
  if (id >= pages_.size()) {
    return Status::OutOfRange("page id " + std::to_string(id) +
                              " >= capacity " + std::to_string(pages_.size()));
  }
  if (freed_[id]) {
    return Status::InvalidArgument("access to freed page " + std::to_string(id));
  }
  return Status::OK();
}

Status InMemoryDiskManager::Free(PageId id) {
  PEB_RETURN_NOT_OK(CheckLive(id));
  freed_[id] = true;
  free_.push_back(id);
  return Status::OK();
}

Status InMemoryDiskManager::Read(PageId id, Page* out) {
  PEB_RETURN_NOT_OK(CheckLive(id));
  *out = *pages_[id];
  return Status::OK();
}

Status InMemoryDiskManager::Write(PageId id, const Page& page) {
  PEB_RETURN_NOT_OK(CheckLive(id));
  *pages_[id] = page;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FileDiskManager
// ---------------------------------------------------------------------------

FileDiskManager::FileDiskManager(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "w+b");
  if (file_ == nullptr) {
    status_ = Status::IOError("cannot open " + path_ + ": " +
                              std::strerror(errno));
  }
}

FileDiskManager::~FileDiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::OpenExisting(
    std::string path) {
  // Private-constructor-free approach: construct (which truncates a fresh
  // handle only when given "w+b"), so open manually here instead.
  auto dm = std::unique_ptr<FileDiskManager>(new FileDiskManager());
  dm->path_ = std::move(path);
  dm->file_ = std::fopen(dm->path_.c_str(), "r+b");
  if (dm->file_ == nullptr) {
    return Status::IOError("cannot open existing " + dm->path_ + ": " +
                           std::strerror(errno));
  }
  if (std::fseek(dm->file_, 0, SEEK_END) != 0) {
    return Status::IOError("fseek to end failed for " + dm->path_);
  }
  long size = std::ftell(dm->file_);
  if (size < 0) {
    return Status::IOError("ftell failed for " + dm->path_);
  }
  if (static_cast<size_t>(size) % kPageSize != 0) {
    return Status::Corruption(dm->path_ + " is not page-aligned (" +
                              std::to_string(size) + " bytes)");
  }
  dm->next_page_ = static_cast<PageId>(static_cast<size_t>(size) / kPageSize);
  dm->freed_.assign(dm->next_page_, false);
  return dm;
}

Status FileDiskManager::CheckLive(PageId id) const {
  if (id >= next_page_) {
    return Status::OutOfRange("page id " + std::to_string(id) +
                              " >= capacity " + std::to_string(next_page_));
  }
  if (freed_[id]) {
    return Status::InvalidArgument("access to freed page " + std::to_string(id));
  }
  return Status::OK();
}

Result<PageId> FileDiskManager::Allocate() {
  PEB_RETURN_NOT_OK(status_);
  if (!free_.empty()) {
    PageId id = free_.back();
    free_.pop_back();
    freed_[id] = false;
    Page zero;
    zero.Clear();
    PEB_RETURN_NOT_OK(Write(id, zero));
    return id;
  }
  PageId id = next_page_++;
  freed_.push_back(false);
  Page zero;
  zero.Clear();
  Status s = Write(id, zero);
  if (!s.ok()) {
    next_page_--;
    freed_.pop_back();
    return s;
  }
  return id;
}

Status FileDiskManager::Free(PageId id) {
  PEB_RETURN_NOT_OK(status_);
  PEB_RETURN_NOT_OK(CheckLive(id));
  freed_[id] = true;
  free_.push_back(id);
  return Status::OK();
}

Status FileDiskManager::Read(PageId id, Page* out) {
  PEB_RETURN_NOT_OK(status_);
  PEB_RETURN_NOT_OK(CheckLive(id));
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0) {
    return Status::IOError("fseek failed for page " + std::to_string(id));
  }
  if (std::fread(out->data(), 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("short read for page " + std::to_string(id));
  }
  return Status::OK();
}

Status FileDiskManager::Write(PageId id, const Page& page) {
  PEB_RETURN_NOT_OK(status_);
  if (id >= next_page_) {
    return Status::OutOfRange("write past capacity");
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0) {
    return Status::IOError("fseek failed for page " + std::to_string(id));
  }
  if (std::fwrite(page.data(), 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("short write for page " + std::to_string(id));
  }
  return Status::OK();
}

}  // namespace peb
