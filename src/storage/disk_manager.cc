#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/crc32.h"

namespace peb {

// ---------------------------------------------------------------------------
// InMemoryDiskManager
// ---------------------------------------------------------------------------

Result<PageId> InMemoryDiskManager::Allocate() {
  if (!free_.empty()) {
    PageId id = free_.back();
    free_.pop_back();
    freed_[id] = false;
    pages_[id]->Clear();
    return id;
  }
  PageId id = static_cast<PageId>(pages_.size());
  auto page = std::make_unique<Page>();
  page->Clear();
  pages_.push_back(std::move(page));
  freed_.push_back(false);
  return id;
}

Status InMemoryDiskManager::CheckLive(PageId id) const {
  if (id >= pages_.size()) {
    return Status::OutOfRange("page id " + std::to_string(id) +
                              " >= capacity " + std::to_string(pages_.size()));
  }
  if (freed_[id]) {
    return Status::InvalidArgument("access to freed page " + std::to_string(id));
  }
  return Status::OK();
}

Status InMemoryDiskManager::Free(PageId id) {
  PEB_RETURN_NOT_OK(CheckLive(id));
  freed_[id] = true;
  free_.push_back(id);
  return Status::OK();
}

Status InMemoryDiskManager::Read(PageId id, Page* out) {
  PEB_RETURN_NOT_OK(CheckLive(id));
  *out = *pages_[id];
  return Status::OK();
}

Status InMemoryDiskManager::Write(PageId id, const Page& page) {
  PEB_RETURN_NOT_OK(CheckLive(id));
  *pages_[id] = page;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FileDiskManager: file format constants
// ---------------------------------------------------------------------------

namespace {

constexpr uint64_t kSbMagic = 0x5045425F44423031ull;  // "PEB_DB01"
constexpr uint32_t kSbFormatVersion = 1;

// Superblock field offsets (see the layout comment in disk_manager.h).
constexpr size_t kSbOffMagic = 0;
constexpr size_t kSbOffVersion = 8;
constexpr size_t kSbOffPageSize = 12;
constexpr size_t kSbOffGeneration = 16;
constexpr size_t kSbOffCheckpointSeq = 24;
constexpr size_t kSbOffEpoch = 32;
constexpr size_t kSbOffNextPage = 40;
constexpr size_t kSbOffClean = 44;
constexpr size_t kSbOffFreeTotal = 48;
constexpr size_t kSbOffFreeInline = 52;
constexpr size_t kSbOffOverflowHead = 56;
constexpr size_t kSbOffMetaLen = 60;
constexpr size_t kSbOffMetaStart = 64;
constexpr size_t kSbCrcOffset = kPageSize - 4;

// Free-list overflow page: [u32 next][u32 count][u32 entries...][u32 crc].
constexpr size_t kOverflowHeaderBytes = 8;
constexpr size_t kOverflowEntryCapacity =
    (kPageSize - kOverflowHeaderBytes - 4) / 4;

constexpr size_t Align4(size_t n) { return (n + 3) & ~size_t{3}; }

uint64_t SlotOffset(uint64_t generation) {
  return (generation % 2) * kPageSize;
}

uint64_t DataOffset(PageId id) {
  return (static_cast<uint64_t>(id) + 2) * kPageSize;
}

/// Whether either superblock slot of `path` carries the database magic.
/// A cheap probe, deliberately weaker than OpenImpl's full validation: a
/// half-created or corrupt database still counts as one for the purpose of
/// refusing to silently truncate it.
bool HoldsDatabase(const std::string& path) {
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  if (probe == nullptr) return false;
  bool holds = false;
  for (int slot = 0; slot < 2 && !holds; ++slot) {
    uint64_t magic = 0;
    holds = std::fseek(probe, static_cast<long>(slot * kPageSize),
                       SEEK_SET) == 0 &&
            std::fread(&magic, 1, sizeof(magic), probe) == sizeof(magic) &&
            magic == kSbMagic;
  }
  std::fclose(probe);
  return holds;
}

}  // namespace

// ---------------------------------------------------------------------------
// FileDiskManager: lifecycle
// ---------------------------------------------------------------------------

FileDiskManager::FileDiskManager(std::string path, FileDiskOptions options) {
  CreateNew(std::move(path), options);
}

FileDiskManager::~FileDiskManager() {
  if (map_ != nullptr) ::munmap(map_, mapped_bytes_);
  if (file_ != nullptr) std::fclose(file_);
}

void FileDiskManager::CreateNew(std::string path, FileDiskOptions options) {
  path_ = std::move(path);
  options_ = options;
  if (!options_.overwrite_existing && HoldsDatabase(path_)) {
    status_ = Status::InvalidArgument(
        path_ + " already holds a database; reopen it with OpenExisting() "
                "(engine: ShardedPebEngine::Open), or set "
                "overwrite_existing to recreate it");
    return;
  }
  file_ = std::fopen(path_.c_str(), "w+b");
  if (file_ == nullptr) {
    status_ = Status::IOError("cannot open " + path_ + ": " +
                              std::strerror(errno));
    return;
  }
  fd_ = ::fileno(file_);
  status_ = EnsureCapacity(2 * kPageSize);
  if (!status_.ok()) return;
  // An empty generation-1 checkpoint, so a crash right after creation
  // reopens as an empty (and trivially consistent) store.
  status_ = WriteSuperblock(/*metadata=*/"", /*checkpoint_seq=*/0,
                            /*epoch=*/0, /*clean=*/true);
}

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::OpenExisting(
    std::string path, FileDiskOptions options) {
  auto dm = std::unique_ptr<FileDiskManager>(new FileDiskManager());
  PEB_RETURN_NOT_OK(dm->OpenImpl(std::move(path), options));
  return dm;
}

Status FileDiskManager::OpenImpl(std::string path, FileDiskOptions options) {
  path_ = std::move(path);
  options_ = options;
  file_ = std::fopen(path_.c_str(), "r+b");
  if (file_ == nullptr) {
    status_ = Status::IOError("cannot open existing " + path_ + ": " +
                              std::strerror(errno));
    return status_;
  }
  fd_ = ::fileno(file_);
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return status_ = Status::IOError("fseek to end failed for " + path_);
  }
  long size = std::ftell(file_);
  if (size < 0) {
    return status_ = Status::IOError("ftell failed for " + path_);
  }
  file_bytes_ = static_cast<uint64_t>(size);
  if (file_bytes_ < 2 * kPageSize) {
    return status_ = Status::Corruption(
               path_ + " is too small to hold a superblock (" +
               std::to_string(file_bytes_) + " bytes)");
  }
  if (options_.use_mmap) {
    void* map = ::mmap(nullptr, file_bytes_, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd_, 0);
    if (map == MAP_FAILED) {
      return status_ = Status::IOError("mmap failed for " + path_ + ": " +
                                       std::strerror(errno));
    }
    map_ = static_cast<std::byte*>(map);
    mapped_bytes_ = file_bytes_;
  }

  // Pick the valid superblock slot with the highest generation. A torn
  // superblock write fails its CRC and the previous generation wins.
  Page best;
  bool found = false;
  for (int slot = 0; slot < 2; ++slot) {
    Page sb;
    Status read = PhysicalRead(static_cast<uint64_t>(slot) * kPageSize,
                               sb.data(), kPageSize);
    if (!read.ok()) continue;
    if (sb.ReadAt<uint64_t>(kSbOffMagic) != kSbMagic) continue;
    if (sb.ReadAt<uint32_t>(kSbOffVersion) != kSbFormatVersion) continue;
    if (sb.ReadAt<uint32_t>(kSbOffPageSize) != kPageSize) continue;
    if (sb.ReadAt<uint32_t>(kSbCrcOffset) != Crc32(sb.data(), kSbCrcOffset)) {
      continue;
    }
    if (!found ||
        sb.ReadAt<uint64_t>(kSbOffGeneration) >
            best.ReadAt<uint64_t>(kSbOffGeneration)) {
      best = sb;
      found = true;
    }
  }
  if (!found) {
    return status_ =
               Status::Corruption("no valid superblock in " + path_ +
                                  " (bad magic, version, or checksum)");
  }

  generation_ = best.ReadAt<uint64_t>(kSbOffGeneration);
  checkpoint_seq_ = best.ReadAt<uint64_t>(kSbOffCheckpointSeq);
  epoch_ = best.ReadAt<uint64_t>(kSbOffEpoch);
  next_page_ = best.ReadAt<uint32_t>(kSbOffNextPage);
  clean_shutdown_ = best.ReadAt<uint8_t>(kSbOffClean) != 0;
  if (next_page_ > 0 && file_bytes_ < DataOffset(next_page_)) {
    return status_ = Status::Corruption(
               path_ + " truncated: superblock expects " +
               std::to_string(next_page_) + " data pages");
  }

  const uint32_t meta_len = best.ReadAt<uint32_t>(kSbOffMetaLen);
  const uint32_t free_total = best.ReadAt<uint32_t>(kSbOffFreeTotal);
  const uint32_t free_inline = best.ReadAt<uint32_t>(kSbOffFreeInline);
  const PageId overflow_head = best.ReadAt<uint32_t>(kSbOffOverflowHead);
  const size_t entries_start = Align4(kSbOffMetaStart + meta_len);
  if (meta_len > kSbCrcOffset - kSbOffMetaStart ||
      entries_start + size_t{free_inline} * 4 > kSbCrcOffset) {
    return status_ = Status::Corruption("superblock layout overflow in " +
                                        path_);
  }
  metadata_.assign(reinterpret_cast<const char*>(best.data()) + kSbOffMetaStart,
                   meta_len);

  // Restore the free list: inline entries, then the overflow chain. Chain
  // pages themselves stay off the free list until the next commit rewrites
  // them (see the header comment).
  freed_.assign(next_page_, false);
  free_.clear();
  auto add_free = [&](PageId id) -> Status {
    if (id >= next_page_ || freed_[id]) {
      return Status::Corruption("bad free-list entry " + std::to_string(id) +
                                " in " + path_);
    }
    freed_[id] = true;
    free_.push_back(id);
    return Status::OK();
  };
  for (uint32_t i = 0; i < free_inline; ++i) {
    PEB_RETURN_NOT_OK(
        status_ = add_free(best.ReadAt<uint32_t>(entries_start + i * 4)));
  }
  PageId chain = overflow_head;
  while (chain != kInvalidPageId) {
    if (chain >= next_page_ ||
        overflow_pages_.size() > static_cast<size_t>(next_page_)) {
      return status_ = Status::Corruption("bad free-list overflow chain in " +
                                          path_);
    }
    Page op;
    PEB_RETURN_NOT_OK(status_ =
                          PhysicalRead(DataOffset(chain), op.data(), kPageSize));
    if (op.ReadAt<uint32_t>(kSbCrcOffset) != Crc32(op.data(), kSbCrcOffset)) {
      return status_ = Status::Corruption(
                 "free-list overflow page " + std::to_string(chain) +
                 " failed its checksum in " + path_);
    }
    overflow_pages_.push_back(chain);
    const uint32_t count = op.ReadAt<uint32_t>(4);
    if (count > kOverflowEntryCapacity) {
      return status_ = Status::Corruption("bad free-list overflow count in " +
                                          path_);
    }
    for (uint32_t i = 0; i < count; ++i) {
      PEB_RETURN_NOT_OK(
          status_ = add_free(op.ReadAt<uint32_t>(kOverflowHeaderBytes + i * 4)));
    }
    chain = op.ReadAt<uint32_t>(0);
  }
  if (free_.size() != free_total) {
    return status_ = Status::Corruption(
               "free-list count mismatch in " + path_ + ": superblock says " +
               std::to_string(free_total) + ", found " +
               std::to_string(free_.size()));
  }
  for (PageId id : overflow_pages_) freed_[id] = true;
  base_pages_ = next_page_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FileDiskManager: physical I/O (the fault-injection seam)
// ---------------------------------------------------------------------------

Status FileDiskManager::PhysicalWrite(uint64_t offset, const void* data,
                                      size_t len) {
  PEB_RETURN_NOT_OK(EnsureCapacity(offset + len));
  if (options_.use_mmap) {
    std::memcpy(map_ + offset, data, len);
    return Status::OK();
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError("fseek failed at offset " + std::to_string(offset) +
                           " in " + path_);
  }
  if (std::fwrite(data, 1, len, file_) != len) {
    return Status::IOError("short write at offset " + std::to_string(offset) +
                           " in " + path_);
  }
  return Status::OK();
}

Status FileDiskManager::PhysicalSync() {
  if (options_.use_mmap) {
    if (map_ != nullptr && ::msync(map_, mapped_bytes_, MS_SYNC) != 0) {
      return Status::IOError("msync failed for " + path_ + ": " +
                             std::strerror(errno));
    }
  } else if (std::fflush(file_) != 0) {
    return Status::IOError("fflush failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status FileDiskManager::PhysicalRead(uint64_t offset, void* data, size_t len) {
  if (options_.use_mmap) {
    if (offset + len > file_bytes_) {
      return Status::IOError("short read at offset " + std::to_string(offset) +
                             " in " + path_ + " (unexpected end of file)");
    }
    std::memcpy(data, map_ + offset, len);
    return Status::OK();
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError("fseek failed at offset " + std::to_string(offset) +
                           " in " + path_);
  }
  const size_t got = std::fread(data, 1, len, file_);
  if (got == len) return Status::OK();
  // The satellite contract: a short read (end of file) and a device error
  // are different failures and get different messages.
  if (std::ferror(file_)) {
    std::clearerr(file_);
    return Status::IOError("read error at offset " + std::to_string(offset) +
                           " in " + path_ + ": " + std::strerror(errno));
  }
  return Status::IOError("short read at offset " + std::to_string(offset) +
                         " in " + path_ + " (unexpected end of file)");
}

Status FileDiskManager::EnsureCapacity(uint64_t bytes) {
  if (bytes <= file_bytes_) return Status::OK();
  uint64_t grown = file_bytes_ == 0 ? 2 * kPageSize : file_bytes_;
  while (grown < bytes) grown *= 2;
  if (::ftruncate(fd_, static_cast<off_t>(grown)) != 0) {
    return Status::IOError("ftruncate to " + std::to_string(grown) +
                           " bytes failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  if (options_.use_mmap) {
    if (map_ != nullptr) ::munmap(map_, mapped_bytes_);
    map_ = nullptr;
    mapped_bytes_ = 0;
    void* map =
        ::mmap(nullptr, grown, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
    if (map == MAP_FAILED) {
      return Status::IOError("mmap of " + std::to_string(grown) +
                             " bytes failed for " + path_ + ": " +
                             std::strerror(errno));
    }
    map_ = static_cast<std::byte*>(map);
    mapped_bytes_ = grown;
  }
  file_bytes_ = grown;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FileDiskManager: DiskManager surface (overlay semantics)
// ---------------------------------------------------------------------------

Status FileDiskManager::CheckLive(PageId id) const {
  if (id >= next_page_) {
    return Status::OutOfRange("page id " + std::to_string(id) +
                              " >= capacity " + std::to_string(next_page_));
  }
  if (freed_[id]) {
    return Status::InvalidArgument("access to freed page " + std::to_string(id));
  }
  return Status::OK();
}

Result<PageId> FileDiskManager::Allocate() {
  PEB_RETURN_NOT_OK(status_);
  PageId id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
    freed_[id] = false;
  } else {
    id = next_page_++;
    freed_.push_back(false);
  }
  // Fresh pages are zeroed, but only in the overlay: the file does not
  // change until the next Commit().
  auto page = std::make_unique<Page>();
  page->Clear();
  overlay_[id] = std::move(page);
  return id;
}

Status FileDiskManager::Free(PageId id) {
  PEB_RETURN_NOT_OK(status_);
  PEB_RETURN_NOT_OK(CheckLive(id));
  freed_[id] = true;
  free_.push_back(id);
  overlay_.erase(id);
  return Status::OK();
}

Status FileDiskManager::Read(PageId id, Page* out) {
  PEB_RETURN_NOT_OK(status_);
  PEB_RETURN_NOT_OK(CheckLive(id));
  auto it = overlay_.find(id);
  if (it != overlay_.end()) {
    *out = *it->second;
    return Status::OK();
  }
  if (id < base_pages_) {
    return PhysicalRead(DataOffset(id), out->data(), kPageSize);
  }
  // Allocated after the last checkpoint but absent from the overlay: only
  // reachable if recovery restored a watermark without replaying the page
  // images that back it.
  return Status::Corruption("page " + std::to_string(id) +
                            " is beyond the committed file and has no "
                            "buffered content");
}

Status FileDiskManager::Write(PageId id, const Page& page) {
  PEB_RETURN_NOT_OK(status_);
  PEB_RETURN_NOT_OK(CheckLive(id));
  auto it = overlay_.find(id);
  if (it != overlay_.end()) {
    *it->second = page;
  } else {
    overlay_[id] = std::make_unique<Page>(page);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FileDiskManager: DurableDiskManager surface
// ---------------------------------------------------------------------------

Status FileDiskManager::Sync() {
  PEB_RETURN_NOT_OK(status_);
  return PhysicalSync();
}

void FileDiskManager::ForEachDirtyPage(
    const std::function<void(PageId, const Page&)>& fn) const {
  for (const auto& [id, page] : overlay_) fn(id, *page);
}

std::vector<PageId> FileDiskManager::FreeList() const { return free_; }

Status FileDiskManager::RestoreAllocationState(
    PageId next_page, const std::vector<PageId>& free_list) {
  PEB_RETURN_NOT_OK(status_);
  next_page_ = next_page;
  freed_.assign(next_page_, false);
  free_.clear();
  for (PageId id : free_list) {
    if (id >= next_page_ || freed_[id]) {
      return status_ = Status::Corruption(
                 "bad restored free-list entry " + std::to_string(id));
    }
    freed_[id] = true;
    free_.push_back(id);
  }
  // Overflow chain pages of the opened superblock that the restored state
  // lists as free again are no longer the chain's responsibility; the rest
  // stay reserved until the next commit rewrites the chain.
  std::vector<PageId> kept;
  for (PageId id : overflow_pages_) {
    if (id < next_page_ && !freed_[id]) {
      freed_[id] = true;
      kept.push_back(id);
    }
  }
  overflow_pages_ = std::move(kept);
  return Status::OK();
}

Status FileDiskManager::Commit(const std::string& metadata,
                               uint64_t checkpoint_seq, uint64_t epoch,
                               bool clean) {
  PEB_RETURN_NOT_OK(status_);
  if (metadata.size() > kSbCrcOffset - kSbOffMetaStart) {
    return Status::InvalidArgument("superblock metadata blob too large (" +
                                   std::to_string(metadata.size()) + " bytes)");
  }
  // Any failure below leaves the file in an intermediate state that only the
  // WAL (journaled page images + old superblock) can disambiguate, so the
  // store latches unusable and the caller must reopen.
  Status st = EnsureCapacity(DataOffset(next_page_));
  if (!st.ok()) return status_ = st;

  // 1. Reclaim the previous commit's free-list overflow chain pages. They
  //    become allocatable in the NEW generation (its superblock lists them
  //    free), but must not be physically overwritten before that superblock
  //    is durable: until then a crash falls back to the previous
  //    generation, which still reads its free list from these very pages.
  //    So they rejoin free_ here but are excluded from spill-page selection
  //    in step 3.
  const std::vector<PageId> prev_chain = std::move(overflow_pages_);
  overflow_pages_.clear();
  for (PageId id : prev_chain) {
    // freed_[id] is already true; the page was merely held off free_.
    free_.push_back(id);
  }

  // 2. Fold the overlay into the file (ascending PageId).
  for (const auto& [id, page] : overlay_) {
    st = PhysicalWrite(DataOffset(id), page->data(), kPageSize);
    if (!st.ok()) return status_ = st;
  }

  // 3. Spill free-list entries that do not fit inline to overflow pages
  //    taken from the free list itself (so they cannot be reallocated
  //    before the next commit), skipping the previous chain's pages; if
  //    only those remain, extend the watermark with a fresh page rather
  //    than overwrite one the previous superblock still needs.
  const size_t entries_start = Align4(kSbOffMetaStart + metadata.size());
  const size_t inline_capacity = (kSbCrcOffset - entries_start) / 4;
  std::vector<PageId> spill_pages;
  size_t scan = free_.size();
  while (free_.size() >
         inline_capacity + spill_pages.size() * kOverflowEntryCapacity) {
    while (scan > 0 &&
           std::find(prev_chain.begin(), prev_chain.end(), free_[scan - 1]) !=
               prev_chain.end()) {
      --scan;
    }
    if (scan > 0) {
      --scan;
      spill_pages.push_back(free_[scan]);
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(scan));
    } else {
      // Reserved off the free list, exactly like any other chain page.
      spill_pages.push_back(next_page_++);
      freed_.push_back(true);
    }
  }
  const size_t inline_count = std::min(free_.size(), inline_capacity);
  size_t cursor = inline_count;  // Entries [0, inline_count) go inline.
  for (size_t j = 0; j < spill_pages.size(); ++j) {
    Page op;
    op.Clear();
    const size_t count =
        std::min(kOverflowEntryCapacity, free_.size() - cursor);
    op.WriteAt<uint32_t>(0, j + 1 < spill_pages.size() ? spill_pages[j + 1]
                                                       : kInvalidPageId);
    op.WriteAt<uint32_t>(4, static_cast<uint32_t>(count));
    for (size_t i = 0; i < count; ++i) {
      op.WriteAt<uint32_t>(kOverflowHeaderBytes + i * 4, free_[cursor + i]);
    }
    cursor += count;
    op.WriteAt<uint32_t>(kSbCrcOffset, Crc32(op.data(), kSbCrcOffset));
    st = PhysicalWrite(DataOffset(spill_pages[j]), op.data(), kPageSize);
    if (!st.ok()) return status_ = st;
  }

  // 4. Make the data durable before the superblock can point at it, then
  //    publish the new generation (WriteSuperblock syncs again).
  overflow_pages_ = std::move(spill_pages);
  st = PhysicalSync();
  if (!st.ok()) return status_ = st;
  st = WriteSuperblock(metadata, checkpoint_seq, epoch, clean);
  if (!st.ok()) return status_ = st;

  overlay_.clear();
  base_pages_ = next_page_;
  return Status::OK();
}

Status FileDiskManager::WriteSuperblock(const std::string& metadata,
                                        uint64_t checkpoint_seq, uint64_t epoch,
                                        bool clean) {
  const uint64_t new_generation = generation_ + 1;
  const size_t entries_start = Align4(kSbOffMetaStart + metadata.size());
  const size_t inline_count =
      std::min(free_.size(), (kSbCrcOffset - entries_start) / 4);

  Page sb;
  sb.Clear();
  sb.WriteAt<uint64_t>(kSbOffMagic, kSbMagic);
  sb.WriteAt<uint32_t>(kSbOffVersion, kSbFormatVersion);
  sb.WriteAt<uint32_t>(kSbOffPageSize, kPageSize);
  sb.WriteAt<uint64_t>(kSbOffGeneration, new_generation);
  sb.WriteAt<uint64_t>(kSbOffCheckpointSeq, checkpoint_seq);
  sb.WriteAt<uint64_t>(kSbOffEpoch, epoch);
  sb.WriteAt<uint32_t>(kSbOffNextPage, next_page_);
  sb.WriteAt<uint8_t>(kSbOffClean, clean ? 1 : 0);
  sb.WriteAt<uint32_t>(kSbOffFreeTotal, static_cast<uint32_t>(free_.size()));
  sb.WriteAt<uint32_t>(kSbOffFreeInline, static_cast<uint32_t>(inline_count));
  sb.WriteAt<uint32_t>(kSbOffOverflowHead, overflow_pages_.empty()
                                               ? kInvalidPageId
                                               : overflow_pages_.front());
  sb.WriteAt<uint32_t>(kSbOffMetaLen, static_cast<uint32_t>(metadata.size()));
  std::memcpy(sb.data() + kSbOffMetaStart, metadata.data(), metadata.size());
  for (size_t i = 0; i < inline_count; ++i) {
    sb.WriteAt<uint32_t>(entries_start + i * 4, free_[i]);
  }
  sb.WriteAt<uint32_t>(kSbCrcOffset, Crc32(sb.data(), kSbCrcOffset));

  PEB_RETURN_NOT_OK(PhysicalWrite(SlotOffset(new_generation), sb.data(),
                                  kPageSize));
  PEB_RETURN_NOT_OK(PhysicalSync());
  generation_ = new_generation;
  checkpoint_seq_ = checkpoint_seq;
  epoch_ = epoch;
  clean_shutdown_ = clean;
  metadata_ = metadata;
  return Status::OK();
}

}  // namespace peb
