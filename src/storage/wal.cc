#include "storage/wal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32.h"
#include "storage/fault_injection.h"

namespace peb {

namespace {

constexpr size_t kFrameHeaderBytes = 4 + 4 + 8 + 1;  // len, crc, seq, type.

// A frame longer than this cannot be legitimate (the largest records are
// page images); treat it as a corrupt tail rather than attempting a
// gigabyte-sized allocation from garbage bytes.
constexpr uint32_t kMaxPayloadBytes = 16u << 20;

uint32_t FrameCrc(const WalRecord& record) {
  uint32_t crc = Crc32Extend(0, &record.seq, sizeof(record.seq));
  crc = Crc32Extend(crc, &record.type, sizeof(record.type));
  return Crc32Extend(crc, record.payload.data(), record.payload.size());
}

}  // namespace

Status WriteAheadLog::CheckOpen() const {
  // file_ goes null when a failed freopen in Truncate() closed the stream.
  // The engine's durability latch normally keeps callers away afterwards,
  // but fwrite/fileno on a null FILE* is UB, so the log defends itself.
  if (file_ == nullptr) {
    return Status::IOError("WAL " + path_ +
                           " is closed (a previous truncate failed)");
  }
  return Status::OK();
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    std::string path, FaultInjector* injector) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IOError("cannot open WAL " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(std::move(path), file, injector));
}

WriteAheadLog::~WriteAheadLog() {
  MutexLock lock(&mu_);
  if (file_ != nullptr) std::fclose(file_);
}

Status WriteAheadLog::Append(const WalRecord& record) {
  if (record.payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("WAL payload too large: " +
                                   std::to_string(record.payload.size()));
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + record.payload.size());
  const auto put = [&frame](const void* p, size_t n) {
    frame.append(static_cast<const char*>(p), n);
  };
  const uint32_t len = static_cast<uint32_t>(record.payload.size());
  const uint32_t crc = FrameCrc(record);
  put(&len, sizeof(len));
  put(&crc, sizeof(crc));
  put(&record.seq, sizeof(record.seq));
  put(&record.type, sizeof(record.type));
  frame.append(record.payload);

  MutexLock lock(&mu_);
  PEB_RETURN_NOT_OK(CheckOpen());
  if (injector_ != nullptr) {
    switch (injector_->OnDurableWrite()) {
      case FaultInjector::WriteVerdict::kProceed:
        break;
      case FaultInjector::WriteVerdict::kCrashDrop:
        return Status::IOError("injected crash: WAL append dropped");
      case FaultInjector::WriteVerdict::kCrashTorn: {
        // Persist (and even flush) a prefix: this is the torn tail that
        // ReadAll's CRC check must reject on recovery.
        const size_t torn = frame.size() / 2;
        if (torn > 0) {
          (void)std::fwrite(frame.data(), 1, torn, file_);
          (void)std::fflush(file_);
        }
        return Status::IOError("injected crash: torn WAL append (" +
                               std::to_string(torn) + " of " +
                               std::to_string(frame.size()) + " bytes)");
      }
    }
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::IOError("WAL append failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  MutexLock lock(&mu_);
  PEB_RETURN_NOT_OK(CheckOpen());
  if (injector_ != nullptr && !injector_->OnSync()) {
    return Status::IOError("injected EIO on WAL sync");
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("WAL fflush failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IOError("WAL fsync failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status WriteAheadLog::Truncate() {
  MutexLock lock(&mu_);
  PEB_RETURN_NOT_OK(CheckOpen());
  if (injector_ != nullptr && !injector_->OnSync()) {
    return Status::IOError("injected EIO on WAL truncate");
  }
  std::FILE* reopened = std::freopen(path_.c_str(), "wb", file_);
  if (reopened == nullptr) {
    file_ = nullptr;  // freopen failure closes the old stream.
    return Status::IOError("WAL truncate failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  file_ = reopened;
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    return Status::IOError("WAL truncate sync failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<std::vector<WalRecord>> WriteAheadLog::ReadAll(
    const std::string& path) {
  std::vector<WalRecord> records;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) return records;  // No log: nothing to replay.
    return Status::IOError("cannot open WAL " + path + ": " +
                           std::strerror(errno));
  }
  for (;;) {
    unsigned char header[kFrameHeaderBytes];
    if (std::fread(header, 1, sizeof(header), file) != sizeof(header)) {
      break;  // Clean end of log, or a torn frame header: stop either way.
    }
    uint32_t len, crc;
    WalRecord record;
    std::memcpy(&len, header + 0, sizeof(len));
    std::memcpy(&crc, header + 4, sizeof(crc));
    std::memcpy(&record.seq, header + 8, sizeof(record.seq));
    std::memcpy(&record.type, header + 16, sizeof(record.type));
    if (len > kMaxPayloadBytes) break;  // Garbage length: corrupt tail.
    record.payload.resize(len);
    if (len > 0 && std::fread(record.payload.data(), 1, len, file) != len) {
      break;  // Torn payload.
    }
    if (FrameCrc(record) != crc) break;  // Bit rot or torn rewrite.
    records.push_back(std::move(record));
  }
  std::fclose(file);
  return records;
}

}  // namespace peb
