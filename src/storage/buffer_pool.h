// BufferPool: a pin-counted LRU page cache over a DiskManager.
//
// The paper's experiments report I/O cost under "a 50-page LRU buffer"
// (Section 7.1). IoStats.physical_reads is exactly that metric: the number
// of pages fetched from disk because they were not resident.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace peb {

/// Buffer pool configuration.
struct BufferPoolOptions {
  /// Number of page frames (the paper's default is 50).
  size_t capacity = 50;
};

/// Counters for disk and cache traffic.
struct IoStats {
  uint64_t physical_reads = 0;   ///< Pages fetched from the DiskManager.
  uint64_t physical_writes = 0;  ///< Dirty pages written back.
  uint64_t logical_fetches = 0;  ///< FetchPage calls.
  uint64_t cache_hits = 0;       ///< FetchPage calls served from the pool.

  /// Hit ratio in [0,1]; 0 when no fetches happened.
  double HitRatio() const {
    return logical_fetches == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(logical_fetches);
  }
};

class BufferPool;

/// RAII pin on a buffered page. Unpins on destruction; call MarkDirty()
/// after mutating the page bytes.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id, Page* page, bool* dirty_flag)
      : pool_(pool), id_(id), page_(page), dirty_flag_(dirty_flag) {}

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { MoveFrom(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  ~PageGuard() { Release(); }

  /// True iff this guard holds a pinned page.
  bool valid() const { return page_ != nullptr; }
  PageId id() const { return id_; }

  Page* page() { return page_; }
  const Page* page() const { return page_; }

  /// Marks the underlying frame dirty so eviction writes it back.
  void MarkDirty() {
    if (dirty_flag_ != nullptr) *dirty_flag_ = true;
  }

  /// Explicitly unpins early (idempotent).
  void Release();

 private:
  void MoveFrom(PageGuard& other) {
    pool_ = other.pool_;
    id_ = other.id_;
    page_ = other.page_;
    dirty_flag_ = other.dirty_flag_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    other.dirty_flag_ = nullptr;
  }

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  Page* page_ = nullptr;
  bool* dirty_flag_ = nullptr;
};

/// Pin-counted LRU buffer pool. Pinned pages are never evicted; an eviction
/// of a dirty page writes it back first.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, BufferPoolOptions options = {});

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  /// Allocates a new page on disk and returns it pinned (and dirty).
  Result<PageGuard> NewPage();

  /// Fetches page `id`, reading it from disk on a miss. Returns it pinned.
  Result<PageGuard> FetchPage(PageId id);

  /// Frees `id` on disk. The page must not be pinned.
  Status DeletePage(PageId id);

  /// Writes back all dirty frames (does not evict).
  Status FlushAll();

  /// Cumulative traffic counters.
  const IoStats& stats() const { return stats_; }

  /// Zeroes the traffic counters (used between experiment phases).
  void ResetStats() { stats_ = IoStats{}; }

  /// Number of frames.
  size_t capacity() const { return frames_.size(); }

  /// Number of resident pages.
  size_t resident() const { return table_.size(); }

  /// Pin count of `id`; 0 when unpinned or not resident.
  int PinCount(PageId id) const;

  DiskManager* disk() { return disk_; }

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    PageId id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    /// Position in lru_ when pin_count == 0 and resident.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(PageId id);
  /// Finds a frame to (re)use: a free frame, else the LRU victim.
  Result<size_t> GetVictimFrame();

  DiskManager* disk_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::vector<size_t> free_frames_;
  /// Frame indices with pin_count == 0, least-recently-used first.
  std::list<size_t> lru_;
  std::unordered_map<PageId, size_t> table_;
  IoStats stats_;
};

}  // namespace peb
