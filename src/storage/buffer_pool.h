// BufferPool: a sharded, clock-sweep page cache over a DiskManager.
//
// The paper's experiments report I/O cost under "a 50-page LRU buffer"
// (Section 7.1). IoStats.physical_reads is exactly that metric: the number
// of pages fetched from disk because they were not resident. The clock
// sweep is the classic second-chance approximation of LRU, so the counts
// stay directly comparable to the paper's figures while the pool becomes
// safe for concurrent access:
//
//  * Frames are statically partitioned into S shards by page id. Each shard
//    has its own latch, hash table, free list, clock hand, and IoStats
//    slice, so fetches on different shards never contend.
//  * Pin counts and dirty/reference bits are atomics on the frame. Unpin
//    (the hottest call: once per PageGuard) takes no latch at all.
//  * An eviction of a dirty page writes it back first. Pinned pages are
//    never evicted.
//  * Prefetch(id) is an optional hint (used by the B+-tree leaf cursor for
//    the next sibling leaf): it stages a page into the pool without
//    pinning. Reads it performs are counted separately in
//    IoStats.prefetch_reads (and in physical_reads, since they are disk
//    reads), so figure benches that do not opt in are unaffected.
//
// DiskManager implementations are not thread-safe; the pool serializes all
// disk calls behind one internal mutex (page I/O is a memcpy for the
// in-memory manager, so this is never the bottleneck — the contention the
// sharding removes is on the mapping table and replacement state).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace peb {

/// Buffer pool configuration.
struct BufferPoolOptions {
  /// Number of page frames (the paper's default is 50).
  size_t capacity = 50;
  /// Latch shards. 1 (the default) keeps the single sequential replacement
  /// domain of the paper's simulation; concurrent callers (the sharded
  /// engine, torture tests) raise it. Clamped so every shard owns at least
  /// one frame.
  size_t shards = 1;
};

/// Counters for disk and cache traffic.
struct IoStats {
  uint64_t physical_reads = 0;   ///< Pages fetched from the DiskManager.
  uint64_t physical_writes = 0;  ///< Dirty pages written back.
  /// Pages served: FetchPage calls plus FetchIfResident hits (a resident
  /// miss serves nothing and is not counted).
  uint64_t logical_fetches = 0;
  uint64_t cache_hits = 0;       ///< Served from the pool without disk I/O.
  uint64_t prefetch_reads = 0;   ///< physical_reads issued by Prefetch().
  uint64_t evictions = 0;        ///< Resident pages displaced by the clock.

  /// Hit ratio in [0,1]; 0 when no fetches happened.
  double HitRatio() const {
    return logical_fetches == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(logical_fetches);
  }

  /// The one summation everyone uses (per-shard aggregation, per-task
  /// query attribution) — new counters can't silently drop out of totals.
  IoStats& operator+=(const IoStats& o) {
    physical_reads += o.physical_reads;
    physical_writes += o.physical_writes;
    logical_fetches += o.logical_fetches;
    cache_hits += o.cache_hits;
    prefetch_reads += o.prefetch_reads;
    evictions += o.evictions;
    return *this;
  }
};

/// One page frame. Metadata the replacement policy and guards touch
/// concurrently is atomic; everything else is guarded by the owning
/// shard's latch.
struct BufferFrame {
  Page page;
  PageId id = kInvalidPageId;
  std::atomic<int> pin_count{0};
  std::atomic<bool> dirty{false};
  /// Clock reference bit (second chance).
  std::atomic<bool> referenced{false};
};

class BufferPool;

/// RAII pin on a buffered page. Unpins on destruction; call MarkDirty()
/// after mutating the page bytes.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, BufferFrame* frame)
      : pool_(pool), id_(frame->id), frame_(frame) {}

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { MoveFrom(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  ~PageGuard() { Release(); }

  /// True iff this guard holds a pinned page.
  bool valid() const { return frame_ != nullptr; }
  PageId id() const { return id_; }

  Page* page() { return &frame_->page; }
  const Page* page() const { return &frame_->page; }

  /// Marks the underlying frame dirty so eviction writes it back.
  void MarkDirty() {
    if (frame_ != nullptr) {
      frame_->dirty.store(true, std::memory_order_relaxed);
    }
  }

  /// Explicitly unpins early (idempotent).
  void Release();

 private:
  void MoveFrom(PageGuard& other) {
    pool_ = other.pool_;
    id_ = other.id_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
  }

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  BufferFrame* frame_ = nullptr;
};

/// Sharded, pin-counted clock buffer pool. Pinned pages are never evicted;
/// an eviction of a dirty page writes it back first. Safe for concurrent
/// use from multiple threads.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, BufferPoolOptions options = {});

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  /// Allocates a new page on disk and returns it pinned (and dirty).
  Result<PageGuard> NewPage();

  /// Fetches page `id`, reading it from disk on a miss. Returns it pinned.
  Result<PageGuard> FetchPage(PageId id);

  /// Fetches `id` only when it is already resident; returns an empty guard
  /// on a miss without touching the disk. A successful call is accounted
  /// as a logical fetch + cache hit; a miss is not accounted at all (no
  /// page was served — the caller's fallback fetch will be). The leaf
  /// cursor uses this to walk sibling chains only while doing so is free.
  PageGuard FetchIfResident(PageId id);

  /// Hints that `id` will be fetched soon: stages it into the pool without
  /// pinning. Failure to stage (all frames pinned, read error) is silently
  /// ignored — a hint must never fail a query.
  void Prefetch(PageId id);

  /// Frees `id` on disk. The page must not be pinned.
  Status DeletePage(PageId id);

  /// Writes back all dirty unpinned frames (does not evict). Frames
  /// pinned at the time of the call are skipped — their holders may still
  /// be mutating the page bytes, which only the pin protects — and are
  /// written back on eviction or a later flush. Call with all guards
  /// released (e.g. before persisting a manifest) to flush everything.
  Status FlushAll();

  /// FlushAll that refuses to skip: a dirty frame that is still pinned is an
  /// error, not a deferral. Checkpoints use this — a checkpoint taken while
  /// a writer still holds a dirty page would silently persist a stale
  /// version of it.
  Status FlushAllStrict();

  /// Cumulative traffic counters, aggregated over shards.
  IoStats stats() const;

  /// Cumulative traffic counters of latch shard `i` alone (i <
  /// num_shards()). The telemetry registry samples these per pool shard so
  /// skew across the replacement domains is visible.
  IoStats ShardStats(size_t i) const;

  /// RAII per-query I/O attribution. While a scope is active on a thread,
  /// every counter this thread bumps on ANY pool is additionally added to
  /// `into` — so a query fanned out over worker threads can sum exact
  /// per-task deltas instead of diffing the global stats() (which
  /// interleaves under concurrency). Scopes nest: the innermost wins for
  /// the duration of its lifetime (a nested task attributes to its own
  /// slot, never double-counting into the outer one). Passing nullptr
  /// suspends attribution for the scope's extent.
  class ThreadIoScope {
   public:
    explicit ThreadIoScope(IoStats* into) : prev_(tls_io_) { tls_io_ = into; }
    ~ThreadIoScope() { tls_io_ = prev_; }

    ThreadIoScope(const ThreadIoScope&) = delete;
    ThreadIoScope& operator=(const ThreadIoScope&) = delete;

   private:
    IoStats* prev_;
  };

  /// Zeroes the traffic counters (used between experiment phases).
  void ResetStats();

  /// Number of frames.
  size_t capacity() const { return frames_.size(); }

  /// Number of latch shards.
  size_t num_shards() const { return shards_.size(); }

  /// Number of resident pages.
  size_t resident() const;

  /// Pin count of `id`; 0 when unpinned or not resident.
  int PinCount(PageId id) const;

  DiskManager* disk() { return disk_; }

  /// Deep structural self-check of every latch shard: the frame table maps
  /// each resident page to a frame carrying exactly that id in this shard's
  /// replacement domain, free-listed frames are empty and unpinned (and
  /// listed once), no frame is simultaneously free and mapped, no valid
  /// frame is orphaned outside both, pin counts are non-negative, and the
  /// clock hand is in range. Returns Corruption naming the first violated
  /// invariant. Safe to call concurrently with normal traffic (each shard
  /// is checked under its latch).
  Status ValidateInvariants() const;

 private:
  friend class PageGuard;
  /// Test-only corruption injection (tests/invariants_test.cc).
  friend struct BufferPoolTestPeer;

  /// Per-shard replacement state. Frames are permanently owned by one
  /// shard; `frames` indexes into the pool-level frame store.
  struct Shard {
    mutable Mutex mu;
    /// Immutable after construction (the frame partition never changes);
    /// the frames' guarded metadata is covered by `mu`, their hot-path
    /// metadata (pin/dirty/reference bits) is atomic.
    std::vector<BufferFrame*> frames;
    std::vector<size_t> free_list GUARDED_BY(mu);  ///< Indices into `frames`.
    std::unordered_map<PageId, size_t> table GUARDED_BY(mu);
    size_t clock_hand GUARDED_BY(mu) = 0;
    IoStats stats GUARDED_BY(mu);
  };

  Shard& ShardOf(PageId id) {
    return *shards_[static_cast<size_t>(id) % shards_.size()];
  }
  const Shard& ShardOf(PageId id) const {
    return *shards_[static_cast<size_t>(id) % shards_.size()];
  }

  void Unpin(BufferFrame* frame);

  /// Finds a frame to (re)use within `shard` (latch held): a free frame,
  /// else a clock-sweep victim (written back when dirty). The returned
  /// frame is detached from the table.
  Result<size_t> GetVictimFrame(Shard& shard) REQUIRES(shard.mu);

  /// Installs `id` into `shard` (latch held) reading it from disk; returns
  /// the frame, pinned iff `pin`.
  Result<BufferFrame*> LoadPage(Shard& shard, PageId id, bool pin,
                                bool prefetch) REQUIRES(shard.mu);

  /// The thread's active per-query attribution target (see ThreadIoScope).
  static thread_local IoStats* tls_io_;

  DiskManager* disk_ PT_GUARDED_BY(disk_mu_);
  /// Serializes DiskManager access (implementations are not thread-safe).
  Mutex disk_mu_;
  std::vector<std::unique_ptr<BufferFrame>> frames_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace peb
