// Fault injection for the durable storage stack. A FaultInjector is a small
// shared failpoint switchboard; FileDiskManager (via its PhysicalWrite /
// PhysicalSync virtual seams, see FaultInjectingDiskManager) and
// WriteAheadLog both consult the same injector, so "crash after N durable
// writes" counts every byte range headed for disk — WAL appends, checkpoint
// page writes, and superblock commits alike. That is what lets the crash-
// recovery tests kill the engine at an arbitrary point mid-batch and then
// prove the reopened state bit-matches a never-crashed oracle.
//
// Failpoints:
//   * writes_until_crash — allow N durable writes, then fail the (N+1)th and
//     every write after it. With torn_on_crash the fatal write persists only
//     a prefix (a torn page / torn WAL record) before reporting the error —
//     the classic power-cut failure the CRCs exist to catch.
//   * fail_sync — the next Sync() reports EIO and the device is considered
//     gone (all later durable ops fail too).
//
// Once `crashed` latches, the process-level contract mimics a dead disk:
// every durable write and sync fails, while reads keep serving (the process
// is assumed to still hold its file mappings). Tests then discard the
// in-memory engine and reopen from the path, exactly like a restart.
#pragma once

#include <atomic>
#include <cstdint>

#include "storage/disk_manager.h"

namespace peb {

struct FaultInjector {
  /// Number of durable writes still allowed before the injected crash;
  /// negative means "never crash". Decremented on every durable write.
  std::atomic<int64_t> writes_until_crash{-1};

  /// When the crash fires, persist the first half of the fatal write before
  /// failing it (torn write) instead of dropping it entirely.
  std::atomic<bool> torn_on_crash{false};

  /// Fail the next Sync() with EIO (and latch `crashed`).
  std::atomic<bool> fail_sync{false};

  /// Latched once any failpoint fires; all later durable ops fail.
  std::atomic<bool> crashed{false};

  enum class WriteVerdict {
    kProceed,    ///< Let the write through untouched.
    kCrashDrop,  ///< Fail the write; nothing reaches the disk.
    kCrashTorn,  ///< Persist a prefix of the write, then fail it.
  };

  WriteVerdict OnDurableWrite() {
    if (crashed.load(std::memory_order_acquire)) {
      return WriteVerdict::kCrashDrop;
    }
    if (writes_until_crash.load(std::memory_order_relaxed) < 0) {
      return WriteVerdict::kProceed;
    }
    if (writes_until_crash.fetch_sub(1, std::memory_order_acq_rel) > 0) {
      return WriteVerdict::kProceed;
    }
    crashed.store(true, std::memory_order_release);
    return torn_on_crash.load(std::memory_order_relaxed)
               ? WriteVerdict::kCrashTorn
               : WriteVerdict::kCrashDrop;
  }

  /// Returns false if the sync must fail.
  bool OnSync() {
    if (crashed.load(std::memory_order_acquire)) return false;
    if (fail_sync.load(std::memory_order_relaxed)) {
      crashed.store(true, std::memory_order_release);
      return false;
    }
    return true;
  }

  /// Re-arms the injector (e.g. before a second crash in a double-crash
  /// recovery test).
  void Reset() {
    writes_until_crash.store(-1, std::memory_order_relaxed);
    torn_on_crash.store(false, std::memory_order_relaxed);
    fail_sync.store(false, std::memory_order_relaxed);
    crashed.store(false, std::memory_order_release);
  }
};

/// A FileDiskManager whose physical I/O consults a FaultInjector. Everything
/// above the PhysicalWrite/PhysicalSync seam — overlay semantics, superblock
/// commits, free-list persistence — is the production code path, which is the
/// point: the tests exercise the real commit protocol, only the disk lies.
class FaultInjectingDiskManager final : public FileDiskManager {
 public:
  /// Creates or truncates `path`. Check `status()` before use.
  FaultInjectingDiskManager(std::string path, FaultInjector* injector,
                            FileDiskOptions options = {});

  /// Opens an existing database file, with injection active from the first
  /// recovery write onward (double-crash tests crash during recovery's own
  /// checkpoint).
  static Result<std::unique_ptr<FaultInjectingDiskManager>> OpenExisting(
      std::string path, FaultInjector* injector, FileDiskOptions options = {});

 protected:
  Status PhysicalWrite(uint64_t offset, const void* data,
                       size_t len) override;
  Status PhysicalSync() override;

 private:
  explicit FaultInjectingDiskManager(FaultInjector* injector)
      : injector_(injector) {}

  FaultInjector* injector_;
};

}  // namespace peb
