// Fixed-size disk pages. The paper's evaluation uses 4 KiB pages.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/types.h"

namespace peb {

/// Size of a disk page in bytes (Section 7.1: "The disk page size is set at
/// 4K bytes").
inline constexpr size_t kPageSize = 4096;

/// Raw page payload. Typed page layouts (B+-tree nodes) are views over this.
struct alignas(8) Page {
  std::array<std::byte, kPageSize> bytes;

  /// Zeroes the page.
  void Clear() { bytes.fill(std::byte{0}); }

  std::byte* data() { return bytes.data(); }
  const std::byte* data() const { return bytes.data(); }

  /// Reads a trivially-copyable T at byte offset `off`.
  template <typename T>
  T ReadAt(size_t off) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    std::memcpy(&out, bytes.data() + off, sizeof(T));
    return out;
  }

  /// Writes a trivially-copyable T at byte offset `off`.
  template <typename T>
  void WriteAt(size_t off, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(bytes.data() + off, &v, sizeof(T));
  }
};

static_assert(sizeof(Page) == kPageSize);

}  // namespace peb
