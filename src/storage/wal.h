// Write-ahead log: an append-only file of length+CRC-framed, sequence-
// stamped records. The engine journals logical mutations (and, at
// checkpoint time, the page images the disk manager is about to fold into
// the database file) here *before* they can matter for durability; recovery
// replays the valid prefix on top of the last superblock checkpoint.
//
// Record framing (little-endian):
//   [u32 payload_len][u32 crc][u64 seq][u8 type][payload bytes]
// where crc covers seq + type + payload. ReadAll stops at the first frame
// that is truncated or fails its CRC — a torn tail is an expected crash
// artifact, not an error — so a record is atomic: it either replays whole
// or not at all.
//
// Record *types* are opaque bytes at this layer; the engine defines them
// (src/engine/engine_wal.h).
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace peb {

struct FaultInjector;

struct WalRecord {
  uint64_t seq = 0;
  uint8_t type = 0;
  std::string payload;
};

/// Thread-safe append-only log. Append/Sync/Truncate serialize on an
/// internal mutex; callers impose any cross-record ordering they need by
/// holding their own lock across Append (the engine's wal_mu_ does).
class WriteAheadLog {
 public:
  /// Opens `path` for appending, creating it if absent. Existing contents
  /// are preserved (recovery reads them first, then keeps appending).
  /// `injector` (optional) makes appends and syncs crash on cue.
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      std::string path, FaultInjector* injector = nullptr);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one framed record (buffered; not yet durable — call Sync()).
  Status Append(const WalRecord& record) EXCLUDES(mu_);

  /// Durably flushes all appended records.
  Status Sync() EXCLUDES(mu_);

  /// Empties the log (checkpoint: everything before this is folded into the
  /// database file) and syncs the truncation.
  Status Truncate() EXCLUDES(mu_);

  /// Reads the valid prefix of the log at `path`: stops silently at a torn
  /// or checksum-failing tail. A missing file yields an empty vector (a
  /// clean shutdown truncates the log to nothing).
  static Result<std::vector<WalRecord>> ReadAll(const std::string& path);

  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, std::FILE* file, FaultInjector* injector)
      : path_(std::move(path)), file_(file), injector_(injector) {}

  /// IOError when the stream is closed (a failed Truncate() nulled file_):
  /// Append/Sync/Truncate must fail cleanly instead of handing a null
  /// FILE* to stdio.
  Status CheckOpen() const REQUIRES(mu_);

  const std::string path_;
  mutable Mutex mu_;
  std::FILE* file_ GUARDED_BY(mu_) = nullptr;
  FaultInjector* const injector_;
};

}  // namespace peb
