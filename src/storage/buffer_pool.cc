#include "storage/buffer_pool.h"

#include <cassert>
#include <thread>

namespace peb {

namespace {

/// Victim-search retries when every frame of one latch shard is
/// momentarily pinned by concurrent readers. Transient pins clear within
/// a few scheduler yields; a genuinely exhausted shard (every frame held
/// by live guards) still fails fast enough for callers.
constexpr int kPinWaitRetries = 64;

}  // namespace

thread_local IoStats* BufferPool::tls_io_ = nullptr;

void PageGuard::Release() {
  if (pool_ != nullptr && frame_ != nullptr) {
    pool_->Unpin(frame_);
  }
  pool_ = nullptr;
  frame_ = nullptr;
}

BufferPool::BufferPool(DiskManager* disk, BufferPoolOptions options)
    : disk_(disk) {
  assert(options.capacity > 0);
  size_t num_shards = options.shards == 0 ? 1 : options.shards;
  if (num_shards > options.capacity) num_shards = options.capacity;

  frames_.reserve(options.capacity);
  for (size_t i = 0; i < options.capacity; ++i) {
    frames_.push_back(std::make_unique<BufferFrame>());
  }
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Deal frames round-robin so every shard owns capacity/S +- 1 frames.
  for (size_t i = 0; i < options.capacity; ++i) {
    shards_[i % num_shards]->frames.push_back(frames_[i].get());
  }
  for (auto& shard : shards_) {
    // Free-list popped from the back: lowest frame index is used first,
    // matching the previous pool's fill order.
    for (size_t i = shard->frames.size(); i > 0; --i) {
      shard->free_list.push_back(i - 1);
    }
  }
}

BufferPool::~BufferPool() {
  // Best-effort flush; errors are ignored in the destructor.
  (void)FlushAll();
}

void BufferPool::Unpin(BufferFrame* frame) {
  int prev = frame->pin_count.fetch_sub(1, std::memory_order_release);
  assert(prev > 0);
  (void)prev;
}

int BufferPool::PinCount(PageId id) const {
  const Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.table.find(id);
  return it == shard.table.end()
             ? 0
             : shard.frames[it->second]->pin_count.load(
                   std::memory_order_acquire);
}

Result<size_t> BufferPool::GetVictimFrame(Shard& shard) {
  if (!shard.free_list.empty()) {
    size_t idx = shard.free_list.back();
    shard.free_list.pop_back();
    return idx;
  }
  size_t n = shard.frames.size();
  // Two full sweeps: the first clears reference bits, the second must find
  // an unpinned frame unless every frame is pinned.
  for (size_t step = 0; step < 2 * n; ++step) {
    size_t idx = shard.clock_hand;
    shard.clock_hand = (shard.clock_hand + 1) % n;
    BufferFrame& f = *shard.frames[idx];
    if (f.pin_count.load(std::memory_order_acquire) != 0) continue;
    if (f.referenced.exchange(false, std::memory_order_relaxed)) continue;
    // Victim found. Pins only grow under this shard's latch, which we
    // hold, so the frame cannot be re-pinned while we evict it.
    if (f.dirty.load(std::memory_order_relaxed)) {
      {
        std::lock_guard<std::mutex> disk_lock(disk_mu_);
        PEB_RETURN_NOT_OK(disk_->Write(f.id, f.page));
      }
      shard.stats.physical_writes++;
      if (tls_io_ != nullptr) tls_io_->physical_writes++;
      f.dirty.store(false, std::memory_order_relaxed);
    }
    shard.table.erase(f.id);
    f.id = kInvalidPageId;
    shard.stats.evictions++;
    if (tls_io_ != nullptr) tls_io_->evictions++;
    return idx;
  }
  return Status::ResourceExhausted("all buffer frames are pinned");
}

Result<BufferFrame*> BufferPool::LoadPage(Shard& shard, PageId id, bool pin,
                                          bool prefetch) {
  PEB_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame(shard));
  BufferFrame& f = *shard.frames[idx];
  Status s;
  {
    std::lock_guard<std::mutex> disk_lock(disk_mu_);
    s = disk_->Read(id, &f.page);
  }
  if (!s.ok()) {
    shard.free_list.push_back(idx);
    return s;
  }
  shard.stats.physical_reads++;
  if (tls_io_ != nullptr) {
    tls_io_->physical_reads++;
    if (prefetch) tls_io_->prefetch_reads++;
  }
  if (prefetch) shard.stats.prefetch_reads++;
  f.id = id;
  f.pin_count.store(pin ? 1 : 0, std::memory_order_relaxed);
  f.dirty.store(false, std::memory_order_relaxed);
  f.referenced.store(true, std::memory_order_relaxed);
  shard.table[id] = idx;
  return &f;
}

Result<PageGuard> BufferPool::NewPage() {
  PageId id;
  {
    std::lock_guard<std::mutex> disk_lock(disk_mu_);
    PEB_ASSIGN_OR_RETURN(id, disk_->Allocate());
  }
  Shard& shard = ShardOf(id);
  for (int attempt = 0;; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      Result<size_t> victim = GetVictimFrame(shard);
      if (victim.ok()) {
        BufferFrame& f = *shard.frames[*victim];
        f.page.Clear();
        f.id = id;
        f.pin_count.store(1, std::memory_order_relaxed);
        f.dirty.store(true, std::memory_order_relaxed);  // Must reach disk
                                                         // even if never
                                                         // modified again.
        f.referenced.store(true, std::memory_order_relaxed);
        shard.table[id] = *victim;
        return PageGuard(this, &f);
      }
      if (!victim.status().IsResourceExhausted() ||
          attempt >= kPinWaitRetries) {
        return victim.status();
      }
    }
    std::this_thread::yield();  // Concurrent pins drain shortly.
  }
}

Result<PageGuard> BufferPool::FetchPage(PageId id) {
  Shard& shard = ShardOf(id);
  for (int attempt = 0;; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      // Re-check residency every attempt: another thread may have loaded
      // the page while we waited for a pinned shard to drain.
      auto it = shard.table.find(id);
      if (it != shard.table.end()) {
        shard.stats.logical_fetches++;
        shard.stats.cache_hits++;
        if (tls_io_ != nullptr) {
          tls_io_->logical_fetches++;
          tls_io_->cache_hits++;
        }
        BufferFrame& f = *shard.frames[it->second];
        f.pin_count.fetch_add(1, std::memory_order_acquire);
        f.referenced.store(true, std::memory_order_relaxed);
        return PageGuard(this, &f);
      }
      Result<BufferFrame*> f =
          LoadPage(shard, id, /*pin=*/true, /*prefetch=*/false);
      if (f.ok()) {
        shard.stats.logical_fetches++;
        if (tls_io_ != nullptr) tls_io_->logical_fetches++;
        return PageGuard(this, *f);
      }
      if (!f.status().IsResourceExhausted() || attempt >= kPinWaitRetries) {
        return f.status();  // Failed fetches served nothing: not counted.
      }
    }
    std::this_thread::yield();  // Concurrent pins drain shortly.
  }
}

PageGuard BufferPool::FetchIfResident(PageId id) {
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.table.find(id);
  if (it == shard.table.end()) return PageGuard{};
  shard.stats.logical_fetches++;
  shard.stats.cache_hits++;
  if (tls_io_ != nullptr) {
    tls_io_->logical_fetches++;
    tls_io_->cache_hits++;
  }
  BufferFrame& f = *shard.frames[it->second];
  f.pin_count.fetch_add(1, std::memory_order_acquire);
  f.referenced.store(true, std::memory_order_relaxed);
  return PageGuard(this, &f);
}

void BufferPool::Prefetch(PageId id) {
  if (id == kInvalidPageId) return;
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.table.find(id);
  if (it != shard.table.end()) {
    shard.frames[it->second]->referenced.store(true,
                                               std::memory_order_relaxed);
    return;
  }
  (void)LoadPage(shard, id, /*pin=*/false, /*prefetch=*/true);
}

Status BufferPool::DeletePage(PageId id) {
  Shard& shard = ShardOf(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.table.find(id);
    if (it != shard.table.end()) {
      BufferFrame& f = *shard.frames[it->second];
      if (f.pin_count.load(std::memory_order_acquire) > 0) {
        return Status::InvalidArgument("DeletePage on pinned page " +
                                       std::to_string(id));
      }
      f.id = kInvalidPageId;
      f.dirty.store(false, std::memory_order_relaxed);
      f.referenced.store(false, std::memory_order_relaxed);
      shard.free_list.push_back(it->second);
      shard.table.erase(it);
    }
  }
  std::lock_guard<std::mutex> disk_lock(disk_mu_);
  return disk_->Free(id);
}

Status BufferPool::FlushAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (BufferFrame* f : shard->frames) {
      // Skip pinned frames: their holders may be mid-write on the page
      // bytes. Pins only grow under this latch, so an unpinned frame
      // stays quiescent while we write it.
      if (f->pin_count.load(std::memory_order_acquire) != 0) continue;
      if (f->id != kInvalidPageId &&
          f->dirty.load(std::memory_order_relaxed)) {
        {
          std::lock_guard<std::mutex> disk_lock(disk_mu_);
          PEB_RETURN_NOT_OK(disk_->Write(f->id, f->page));
        }
        shard->stats.physical_writes++;
        f->dirty.store(false, std::memory_order_relaxed);
      }
    }
  }
  return Status::OK();
}

IoStats BufferPool::stats() const {
  IoStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->stats;
  }
  return total;
}

IoStats BufferPool::ShardStats(size_t i) const {
  const Shard& shard = *shards_[i];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.stats;
}

void BufferPool::ResetStats() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->stats = IoStats{};
  }
}

size_t BufferPool::resident() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->table.size();
  }
  return total;
}

}  // namespace peb
