#include "storage/buffer_pool.h"

#include <cassert>
#include <thread>

namespace peb {

namespace {

/// Victim-search retries when every frame of one latch shard is
/// momentarily pinned by concurrent readers. Transient pins clear within
/// a few scheduler yields; a genuinely exhausted shard (every frame held
/// by live guards) still fails fast enough for callers.
constexpr int kPinWaitRetries = 64;

}  // namespace

thread_local IoStats* BufferPool::tls_io_ = nullptr;

void PageGuard::Release() {
  if (pool_ != nullptr && frame_ != nullptr) {
    pool_->Unpin(frame_);
  }
  pool_ = nullptr;
  frame_ = nullptr;
}

BufferPool::BufferPool(DiskManager* disk, BufferPoolOptions options)
    : disk_(disk) {
  assert(options.capacity > 0);
  size_t num_shards = options.shards == 0 ? 1 : options.shards;
  if (num_shards > options.capacity) num_shards = options.capacity;

  frames_.reserve(options.capacity);
  for (size_t i = 0; i < options.capacity; ++i) {
    frames_.push_back(std::make_unique<BufferFrame>());
  }
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Deal frames round-robin so every shard owns capacity/S +- 1 frames.
  for (size_t i = 0; i < options.capacity; ++i) {
    shards_[i % num_shards]->frames.push_back(frames_[i].get());
  }
  for (auto& shard : shards_) {
    // Uncontended (no other thread can see the pool yet) but taken anyway:
    // free_list is guarded, and the analysis checks constructors too.
    MutexLock lock(&shard->mu);
    // Free-list popped from the back: lowest frame index is used first,
    // matching the previous pool's fill order.
    for (size_t i = shard->frames.size(); i > 0; --i) {
      shard->free_list.push_back(i - 1);
    }
  }
}

BufferPool::~BufferPool() {
  // Best-effort flush; errors are ignored in the destructor.
  (void)FlushAll();
}

void BufferPool::Unpin(BufferFrame* frame) {
  int prev = frame->pin_count.fetch_sub(1, std::memory_order_release);
  assert(prev > 0);
  (void)prev;
}

int BufferPool::PinCount(PageId id) const {
  const Shard& shard = ShardOf(id);
  MutexLock lock(&shard.mu);
  auto it = shard.table.find(id);
  return it == shard.table.end()
             ? 0
             : shard.frames[it->second]->pin_count.load(
                   std::memory_order_acquire);
}

Result<size_t> BufferPool::GetVictimFrame(Shard& shard) {
  if (!shard.free_list.empty()) {
    size_t idx = shard.free_list.back();
    shard.free_list.pop_back();
    return idx;
  }
  size_t n = shard.frames.size();
  // Two full sweeps: the first clears reference bits, the second must find
  // an unpinned frame unless every frame is pinned.
  for (size_t step = 0; step < 2 * n; ++step) {
    size_t idx = shard.clock_hand;
    shard.clock_hand = (shard.clock_hand + 1) % n;
    BufferFrame& f = *shard.frames[idx];
    if (f.pin_count.load(std::memory_order_acquire) != 0) continue;
    if (f.referenced.exchange(false, std::memory_order_relaxed)) continue;
    // Victim found. Pins only grow under this shard's latch, which we
    // hold, so the frame cannot be re-pinned while we evict it.
    if (f.dirty.load(std::memory_order_relaxed)) {
      {
        MutexLock disk_lock(&disk_mu_);
        PEB_RETURN_NOT_OK(disk_->Write(f.id, f.page));
      }
      shard.stats.physical_writes++;
      if (tls_io_ != nullptr) tls_io_->physical_writes++;
      f.dirty.store(false, std::memory_order_relaxed);
    }
    shard.table.erase(f.id);
    f.id = kInvalidPageId;
    shard.stats.evictions++;
    if (tls_io_ != nullptr) tls_io_->evictions++;
    return idx;
  }
  return Status::ResourceExhausted("all buffer frames are pinned");
}

Result<BufferFrame*> BufferPool::LoadPage(Shard& shard, PageId id, bool pin,
                                          bool prefetch) {
  PEB_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame(shard));
  BufferFrame& f = *shard.frames[idx];
  Status s;
  {
    MutexLock disk_lock(&disk_mu_);
    s = disk_->Read(id, &f.page);
  }
  if (!s.ok()) {
    shard.free_list.push_back(idx);
    return s;
  }
  shard.stats.physical_reads++;
  if (tls_io_ != nullptr) {
    tls_io_->physical_reads++;
    if (prefetch) tls_io_->prefetch_reads++;
  }
  if (prefetch) shard.stats.prefetch_reads++;
  f.id = id;
  f.pin_count.store(pin ? 1 : 0, std::memory_order_relaxed);
  f.dirty.store(false, std::memory_order_relaxed);
  f.referenced.store(true, std::memory_order_relaxed);
  shard.table[id] = idx;
  return &f;
}

Result<PageGuard> BufferPool::NewPage() {
  PageId id;
  {
    MutexLock disk_lock(&disk_mu_);
    PEB_ASSIGN_OR_RETURN(id, disk_->Allocate());
  }
  Shard& shard = ShardOf(id);
  for (int attempt = 0;; ++attempt) {
    {
      MutexLock lock(&shard.mu);
      Result<size_t> victim = GetVictimFrame(shard);
      if (victim.ok()) {
        BufferFrame& f = *shard.frames[*victim];
        f.page.Clear();
        f.id = id;
        f.pin_count.store(1, std::memory_order_relaxed);
        f.dirty.store(true, std::memory_order_relaxed);  // Must reach disk
                                                         // even if never
                                                         // modified again.
        f.referenced.store(true, std::memory_order_relaxed);
        shard.table[id] = *victim;
        return PageGuard(this, &f);
      }
      if (!victim.status().IsResourceExhausted() ||
          attempt >= kPinWaitRetries) {
        return victim.status();
      }
    }
    std::this_thread::yield();  // Concurrent pins drain shortly.
  }
}

Result<PageGuard> BufferPool::FetchPage(PageId id) {
  Shard& shard = ShardOf(id);
  for (int attempt = 0;; ++attempt) {
    {
      MutexLock lock(&shard.mu);
      // Re-check residency every attempt: another thread may have loaded
      // the page while we waited for a pinned shard to drain.
      auto it = shard.table.find(id);
      if (it != shard.table.end()) {
        shard.stats.logical_fetches++;
        shard.stats.cache_hits++;
        if (tls_io_ != nullptr) {
          tls_io_->logical_fetches++;
          tls_io_->cache_hits++;
        }
        BufferFrame& f = *shard.frames[it->second];
        f.pin_count.fetch_add(1, std::memory_order_acquire);
        f.referenced.store(true, std::memory_order_relaxed);
        return PageGuard(this, &f);
      }
      Result<BufferFrame*> f =
          LoadPage(shard, id, /*pin=*/true, /*prefetch=*/false);
      if (f.ok()) {
        shard.stats.logical_fetches++;
        if (tls_io_ != nullptr) tls_io_->logical_fetches++;
        return PageGuard(this, *f);
      }
      if (!f.status().IsResourceExhausted() || attempt >= kPinWaitRetries) {
        return f.status();  // Failed fetches served nothing: not counted.
      }
    }
    std::this_thread::yield();  // Concurrent pins drain shortly.
  }
}

PageGuard BufferPool::FetchIfResident(PageId id) {
  Shard& shard = ShardOf(id);
  MutexLock lock(&shard.mu);
  auto it = shard.table.find(id);
  if (it == shard.table.end()) return PageGuard{};
  shard.stats.logical_fetches++;
  shard.stats.cache_hits++;
  if (tls_io_ != nullptr) {
    tls_io_->logical_fetches++;
    tls_io_->cache_hits++;
  }
  BufferFrame& f = *shard.frames[it->second];
  f.pin_count.fetch_add(1, std::memory_order_acquire);
  f.referenced.store(true, std::memory_order_relaxed);
  return PageGuard(this, &f);
}

void BufferPool::Prefetch(PageId id) {
  if (id == kInvalidPageId) return;
  Shard& shard = ShardOf(id);
  MutexLock lock(&shard.mu);
  auto it = shard.table.find(id);
  if (it != shard.table.end()) {
    shard.frames[it->second]->referenced.store(true,
                                               std::memory_order_relaxed);
    return;
  }
  (void)LoadPage(shard, id, /*pin=*/false, /*prefetch=*/true);
}

Status BufferPool::DeletePage(PageId id) {
  Shard& shard = ShardOf(id);
  {
    MutexLock lock(&shard.mu);
    auto it = shard.table.find(id);
    if (it != shard.table.end()) {
      BufferFrame& f = *shard.frames[it->second];
      if (f.pin_count.load(std::memory_order_acquire) > 0) {
        return Status::InvalidArgument("DeletePage on pinned page " +
                                       std::to_string(id));
      }
      f.id = kInvalidPageId;
      f.dirty.store(false, std::memory_order_relaxed);
      f.referenced.store(false, std::memory_order_relaxed);
      shard.free_list.push_back(it->second);
      shard.table.erase(it);
    }
  }
  MutexLock disk_lock(&disk_mu_);
  return disk_->Free(id);
}

Status BufferPool::FlushAll() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (BufferFrame* f : shard->frames) {
      // Skip pinned frames: their holders may be mid-write on the page
      // bytes. Pins only grow under this latch, so an unpinned frame
      // stays quiescent while we write it.
      if (f->pin_count.load(std::memory_order_acquire) != 0) continue;
      if (f->id != kInvalidPageId &&
          f->dirty.load(std::memory_order_relaxed)) {
        {
          MutexLock disk_lock(&disk_mu_);
          PEB_RETURN_NOT_OK(disk_->Write(f->id, f->page));
        }
        shard->stats.physical_writes++;
        f->dirty.store(false, std::memory_order_relaxed);
      }
    }
  }
  return Status::OK();
}

Status BufferPool::FlushAllStrict() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (BufferFrame* f : shard->frames) {
      if (f->id == kInvalidPageId ||
          !f->dirty.load(std::memory_order_relaxed)) {
        continue;
      }
      if (f->pin_count.load(std::memory_order_acquire) != 0) {
        return Status::Internal("FlushAllStrict: page " +
                                std::to_string(f->id) +
                                " is dirty but still pinned");
      }
      {
        MutexLock disk_lock(&disk_mu_);
        PEB_RETURN_NOT_OK(disk_->Write(f->id, f->page));
      }
      shard->stats.physical_writes++;
      f->dirty.store(false, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

IoStats BufferPool::stats() const {
  IoStats total;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->stats;
  }
  return total;
}

IoStats BufferPool::ShardStats(size_t i) const {
  const Shard& shard = *shards_[i];
  MutexLock lock(&shard.mu);
  return shard.stats;
}

void BufferPool::ResetStats() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->stats = IoStats{};
  }
}

size_t BufferPool::resident() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->table.size();
  }
  return total;
}

namespace {

Status PoolCorruption(size_t shard, const std::string& what) {
  return Status::Corruption("buffer pool shard " + std::to_string(shard) +
                            ": " + what);
}

}  // namespace

Status BufferPool::ValidateInvariants() const {
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    MutexLock lock(&shard.mu);
    const size_t n = shard.frames.size();
    if (n == 0) return PoolCorruption(s, "owns no frames");
    if (shard.clock_hand >= n) {
      return PoolCorruption(
          s, "clock hand " + std::to_string(shard.clock_hand) +
                 " out of range (frames: " + std::to_string(n) + ")");
    }
    // 0 = in use, 1 = free-listed, 2 = mapped by the table.
    std::vector<char> state(n, 0);
    for (size_t idx : shard.free_list) {
      if (idx >= n) {
        return PoolCorruption(s, "free-list index " + std::to_string(idx) +
                                     " out of range");
      }
      if (state[idx] != 0) {
        return PoolCorruption(
            s, "frame " + std::to_string(idx) + " free-listed twice");
      }
      state[idx] = 1;
      const BufferFrame& f = *shard.frames[idx];
      if (f.id != kInvalidPageId) {
        return PoolCorruption(s, "free frame " + std::to_string(idx) +
                                     " still carries page " +
                                     std::to_string(f.id));
      }
      if (f.pin_count.load(std::memory_order_acquire) != 0) {
        return PoolCorruption(
            s, "free frame " + std::to_string(idx) + " is pinned");
      }
    }
    for (const auto& [id, idx] : shard.table) {
      if (idx >= n) {
        return PoolCorruption(s, "table index " + std::to_string(idx) +
                                     " out of range for page " +
                                     std::to_string(id));
      }
      if (state[idx] == 1) {
        return PoolCorruption(s, "frame " + std::to_string(idx) +
                                     " is both free-listed and mapped to "
                                     "page " +
                                     std::to_string(id));
      }
      if (state[idx] == 2) {
        return PoolCorruption(s, "frame " + std::to_string(idx) +
                                     " mapped by two table entries");
      }
      state[idx] = 2;
      const BufferFrame& f = *shard.frames[idx];
      if (f.id != id) {
        return PoolCorruption(s, "table maps page " + std::to_string(id) +
                                     " to a frame carrying page " +
                                     std::to_string(f.id));
      }
      if (&ShardOf(id) != &shard) {
        return PoolCorruption(
            s, "page " + std::to_string(id) + " resident in foreign shard");
      }
      if (f.pin_count.load(std::memory_order_acquire) < 0) {
        return PoolCorruption(s, "page " + std::to_string(id) +
                                     " has negative pin count " +
                                     std::to_string(f.pin_count.load(
                                         std::memory_order_acquire)));
      }
    }
    // Anything neither free nor mapped must be empty: a frame holding a
    // page id that the table does not know about is unreachable (it can
    // never be fetched or evicted) and means the table lost an entry.
    for (size_t idx = 0; idx < n; ++idx) {
      if (state[idx] == 0 && shard.frames[idx]->id != kInvalidPageId) {
        return PoolCorruption(s, "frame " + std::to_string(idx) +
                                     " holds page " +
                                     std::to_string(shard.frames[idx]->id) +
                                     " unknown to the frame table");
      }
    }
  }
  return Status::OK();
}

}  // namespace peb
