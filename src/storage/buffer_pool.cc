#include "storage/buffer_pool.h"

#include <cassert>

namespace peb {

void PageGuard::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    pool_->Unpin(id_);
  }
  pool_ = nullptr;
  page_ = nullptr;
  dirty_flag_ = nullptr;
}

BufferPool::BufferPool(DiskManager* disk, BufferPoolOptions options)
    : disk_(disk) {
  assert(options.capacity > 0);
  frames_.reserve(options.capacity);
  for (size_t i = 0; i < options.capacity; ++i) {
    frames_.push_back(std::make_unique<Frame>());
    free_frames_.push_back(options.capacity - 1 - i);
  }
}

BufferPool::~BufferPool() {
  // Best-effort flush; errors are ignored in the destructor.
  (void)FlushAll();
}

int BufferPool::PinCount(PageId id) const {
  auto it = table_.find(id);
  return it == table_.end() ? 0 : frames_[it->second]->pin_count;
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted("all buffer frames are pinned");
  }
  size_t idx = lru_.front();
  lru_.pop_front();
  Frame& f = *frames_[idx];
  f.in_lru = false;
  if (f.dirty) {
    PEB_RETURN_NOT_OK(disk_->Write(f.id, f.page));
    stats_.physical_writes++;
    f.dirty = false;
  }
  table_.erase(f.id);
  f.id = kInvalidPageId;
  return idx;
}

Result<PageGuard> BufferPool::NewPage() {
  PEB_ASSIGN_OR_RETURN(PageId id, disk_->Allocate());
  PEB_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = *frames_[idx];
  f.page.Clear();
  f.id = id;
  f.pin_count = 1;
  f.dirty = true;  // Must reach disk even if never modified again.
  table_[id] = idx;
  return PageGuard(this, id, &f.page, &f.dirty);
}

Result<PageGuard> BufferPool::FetchPage(PageId id) {
  stats_.logical_fetches++;
  auto it = table_.find(id);
  if (it != table_.end()) {
    stats_.cache_hits++;
    Frame& f = *frames_[it->second];
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.pin_count++;
    return PageGuard(this, id, &f.page, &f.dirty);
  }
  PEB_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = *frames_[idx];
  Status s = disk_->Read(id, &f.page);
  if (!s.ok()) {
    free_frames_.push_back(idx);
    return s;
  }
  stats_.physical_reads++;
  f.id = id;
  f.pin_count = 1;
  f.dirty = false;
  table_[id] = idx;
  return PageGuard(this, id, &f.page, &f.dirty);
}

void BufferPool::Unpin(PageId id) {
  auto it = table_.find(id);
  if (it == table_.end()) return;
  Frame& f = *frames_[it->second];
  assert(f.pin_count > 0);
  if (--f.pin_count == 0) {
    f.lru_pos = lru_.insert(lru_.end(), it->second);
    f.in_lru = true;
  }
}

Status BufferPool::DeletePage(PageId id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame& f = *frames_[it->second];
    if (f.pin_count > 0) {
      return Status::InvalidArgument("DeletePage on pinned page " +
                                     std::to_string(id));
    }
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.id = kInvalidPageId;
    f.dirty = false;
    free_frames_.push_back(it->second);
    table_.erase(it);
  }
  return disk_->Free(id);
}

Status BufferPool::FlushAll() {
  for (auto& fp : frames_) {
    Frame& f = *fp;
    if (f.id != kInvalidPageId && f.dirty) {
      PEB_RETURN_NOT_OK(disk_->Write(f.id, f.page));
      stats_.physical_writes++;
      f.dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace peb
