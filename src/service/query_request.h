// Request/response value types of the MovingObjectService front-end.
//
// A QueryRequest is a plain value describing one privacy-aware operation
// (PRQ, PkNN, continuous-query registration or cancellation, or a policy-
// lifecycle mutation) plus per-request options; a QueryResponse carries
// the answer AND the query's own observability — work counters, the exact
// buffer-pool traffic delta, and the policy-encoding epoch it executed
// against — BY VALUE. Nothing about a finished query lives in shared
// mutable index state, which is what lets the service fan thousands of
// requests out concurrently (MOIST-style batched front-ends) without the
// racy last_query()/ResetIo() observer pattern the single-call API needed.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bxtree/privacy_index.h"
#include "common/status.h"
#include "common/types.h"
#include "peb/continuous.h"
#include "policy/policy_catalog.h"
#include "spatial/geometry.h"
#include "telemetry/trace.h"

namespace peb {
namespace service {

/// The operation a QueryRequest describes.
enum class QueryKind : uint8_t {
  kRangeQuery = 0,          ///< PRQ (Definition 2).
  kKnnQuery = 1,            ///< PkNN (Definition 3).
  kContinuousRegister = 2,  ///< Register a standing PRQ.
  kContinuousCancel = 3,    ///< Cancel a standing PRQ.
  kAddPolicy = 4,           ///< Grant: owner defines a policy for peer.
  kRemovePolicy = 5,        ///< Revoke: drop all owner->peer policies.
  kDefineRole = 6,          ///< Register (or find) a role by name.
  kReencode = 7,            ///< Flush the dirty-set: re-encode + re-key.
};

/// Per-request execution options.
struct RequestOptions {
  /// Report QueryCounters and the per-query IoStats delta in the
  /// response. Off leaves them zeroed; the response epoch is pinned
  /// either way.
  bool collect_counters = true;
  /// Soft deadline in milliseconds measured from submission (0 = none).
  /// A request that has already waited past its deadline when a worker
  /// picks it up is answered with ResourceExhausted instead of executing —
  /// the admission-control hook for overload shedding.
  double deadline_ms = 0.0;
  /// Force a trace for this request regardless of the service's sampling
  /// rate. The finished span tree comes back in QueryResponse::trace.
  bool trace = false;
};

/// One privacy-aware operation, as a value. Build with the factories.
struct QueryRequest {
  QueryKind kind = QueryKind::kRangeQuery;
  UserId issuer = kInvalidUserId;
  Rect range;     ///< PRQ / continuous-register window.
  Point qloc;     ///< PkNN query location.
  size_t k = 0;   ///< PkNN result size.
  Timestamp tq = 0.0;  ///< Query (or registration / mutation) time.
  ContinuousQueryId continuous_id = 0;  ///< Continuous-cancel target.
  // --- policy-lifecycle fields ---
  UserId owner = kInvalidUserId;  ///< Policy owner (the protected user).
  UserId peer = kInvalidUserId;   ///< The user the policy is defined for.
  Lpp policy;                     ///< AddPolicy payload.
  std::string role_name;          ///< DefineRole payload.
  /// Mutations: re-encode + re-key + publish the new epoch as part of this
  /// request (one atomic lifecycle step). Off accumulates the dirty-set
  /// for a later kReencode — cheaper under bursty churn, but grants stay
  /// invisible until then.
  bool reencode_now = true;
  RequestOptions options;

  /// PRQ: users inside `range` at `tq` visible to `issuer`.
  static QueryRequest Prq(UserId issuer, const Rect& range, Timestamp tq) {
    QueryRequest r;
    r.kind = QueryKind::kRangeQuery;
    r.issuer = issuer;
    r.range = range;
    r.tq = tq;
    return r;
  }

  /// PkNN: the k nearest users to `qloc` at `tq` visible to `issuer`.
  static QueryRequest Pknn(UserId issuer, const Point& qloc, size_t k,
                           Timestamp tq) {
    QueryRequest r;
    r.kind = QueryKind::kKnnQuery;
    r.issuer = issuer;
    r.qloc = qloc;
    r.k = k;
    r.tq = tq;
    return r;
  }

  /// Registers a standing PRQ; the response carries the assigned
  /// continuous_id and the seeded initial answer.
  static QueryRequest RegisterContinuous(UserId issuer, const Rect& range,
                                         Timestamp now) {
    QueryRequest r;
    r.kind = QueryKind::kContinuousRegister;
    r.issuer = issuer;
    r.range = range;
    r.tq = now;
    return r;
  }

  /// Cancels a standing PRQ by id.
  static QueryRequest CancelContinuous(ContinuousQueryId id) {
    QueryRequest r;
    r.kind = QueryKind::kContinuousCancel;
    r.continuous_id = id;
    return r;
  }

  /// Grants `policy` from `owner` toward `peer` at time `now` (and assigns
  /// the policy's role so the grant is satisfiable).
  static QueryRequest AddPolicy(UserId owner, UserId peer, const Lpp& policy,
                                Timestamp now, bool reencode_now = true) {
    QueryRequest r;
    r.kind = QueryKind::kAddPolicy;
    r.owner = owner;
    r.peer = peer;
    r.policy = policy;
    r.tq = now;
    r.reencode_now = reencode_now;
    return r;
  }

  /// Revokes every policy `owner` defined for `peer` at time `now`.
  static QueryRequest RemovePolicy(UserId owner, UserId peer, Timestamp now,
                                   bool reencode_now = true) {
    QueryRequest r;
    r.kind = QueryKind::kRemovePolicy;
    r.owner = owner;
    r.peer = peer;
    r.tq = now;
    r.reencode_now = reencode_now;
    return r;
  }

  /// Registers (or finds) a role by name; the response carries its id.
  static QueryRequest DefineRole(std::string name) {
    QueryRequest r;
    r.kind = QueryKind::kDefineRole;
    r.role_name = std::move(name);
    return r;
  }

  /// Flushes accumulated policy mutations: incremental re-encode, re-key,
  /// epoch publish, standing-query reconciliation at time `now`.
  static QueryRequest Reencode(Timestamp now) {
    QueryRequest r;
    r.kind = QueryKind::kReencode;
    r.tq = now;
    return r;
  }
};

/// The outcome of one QueryRequest, self-contained by value.
struct QueryResponse {
  Status status;
  QueryKind kind = QueryKind::kRangeQuery;

  /// PRQ answer (ascending user id); also the initial answer of a freshly
  /// registered continuous query.
  std::vector<UserId> ids;
  /// PkNN answer (ascending distance).
  std::vector<Neighbor> neighbors;
  /// Id of a freshly registered continuous query.
  ContinuousQueryId continuous_id = 0;

  /// The policy-encoding epoch this request executed against (queries pin
  /// it at admission; mutations report the epoch they published). Always
  /// filled, independent of collect_counters.
  uint64_t epoch = 0;
  /// DefineRole answer.
  RoleId role_id = kInvalidRoleId;
  /// RemovePolicy answer: how many policies the revocation dropped.
  size_t removed_policies = 0;
  /// What the re-encode performed by this request did (kReencode, and
  /// mutations with reencode_now). Zero-epoch default otherwise.
  ReencodeStats reencode;

  /// THIS query's work counters — by value, exact under concurrent
  /// submission (zeroed when collect_counters was off).
  QueryCounters counters;
  /// THIS query's buffer-pool traffic delta — by value, exact under
  /// concurrent submission (zeroed when collect_counters was off).
  IoStats io;

  /// Milliseconds spent queued between Submit and execution start.
  double queue_ms = 0.0;
  /// Milliseconds spent executing.
  double exec_ms = 0.0;

  /// The request's span tree when it was traced (forced via
  /// RequestOptions::trace or caught by the service's sampling rate);
  /// empty() otherwise. By value, like everything else here.
  telemetry::QueryTrace trace;

  bool ok() const { return status.ok(); }
};

}  // namespace service
}  // namespace peb
