// Request/response value types of the MovingObjectService front-end.
//
// A QueryRequest is a plain value describing one privacy-aware operation
// (PRQ, PkNN, continuous-query registration or cancellation) plus
// per-request options; a QueryResponse carries the answer AND the query's
// own observability — work counters and the exact buffer-pool traffic
// delta — BY VALUE. Nothing about a finished query lives in shared mutable
// index state, which is what lets the service fan thousands of requests
// out concurrently (MOIST-style batched front-ends) without the racy
// last_query()/ResetIo() observer pattern the single-call API needed.
#pragma once

#include <cstdint>
#include <vector>

#include "bxtree/privacy_index.h"
#include "common/status.h"
#include "common/types.h"
#include "peb/continuous.h"
#include "spatial/geometry.h"

namespace peb {
namespace service {

/// The operation a QueryRequest describes.
enum class QueryKind : uint8_t {
  kRangeQuery = 0,          ///< PRQ (Definition 2).
  kKnnQuery = 1,            ///< PkNN (Definition 3).
  kContinuousRegister = 2,  ///< Register a standing PRQ.
  kContinuousCancel = 3,    ///< Cancel a standing PRQ.
};

/// Per-request execution options.
struct RequestOptions {
  /// Collect QueryCounters and the per-query IoStats delta into the
  /// response. Off skips all attribution work on the hot path.
  bool collect_counters = true;
  /// Soft deadline in milliseconds measured from submission (0 = none).
  /// A request that has already waited past its deadline when a worker
  /// picks it up is answered with ResourceExhausted instead of executing —
  /// the admission-control hook for overload shedding.
  double deadline_ms = 0.0;
};

/// One privacy-aware operation, as a value. Build with the factories.
struct QueryRequest {
  QueryKind kind = QueryKind::kRangeQuery;
  UserId issuer = kInvalidUserId;
  Rect range;     ///< PRQ / continuous-register window.
  Point qloc;     ///< PkNN query location.
  size_t k = 0;   ///< PkNN result size.
  Timestamp tq = 0.0;  ///< Query (or registration) time.
  ContinuousQueryId continuous_id = 0;  ///< Continuous-cancel target.
  RequestOptions options;

  /// PRQ: users inside `range` at `tq` visible to `issuer`.
  static QueryRequest Prq(UserId issuer, const Rect& range, Timestamp tq) {
    QueryRequest r;
    r.kind = QueryKind::kRangeQuery;
    r.issuer = issuer;
    r.range = range;
    r.tq = tq;
    return r;
  }

  /// PkNN: the k nearest users to `qloc` at `tq` visible to `issuer`.
  static QueryRequest Pknn(UserId issuer, const Point& qloc, size_t k,
                           Timestamp tq) {
    QueryRequest r;
    r.kind = QueryKind::kKnnQuery;
    r.issuer = issuer;
    r.qloc = qloc;
    r.k = k;
    r.tq = tq;
    return r;
  }

  /// Registers a standing PRQ; the response carries the assigned
  /// continuous_id and the seeded initial answer.
  static QueryRequest RegisterContinuous(UserId issuer, const Rect& range,
                                         Timestamp now) {
    QueryRequest r;
    r.kind = QueryKind::kContinuousRegister;
    r.issuer = issuer;
    r.range = range;
    r.tq = now;
    return r;
  }

  /// Cancels a standing PRQ by id.
  static QueryRequest CancelContinuous(ContinuousQueryId id) {
    QueryRequest r;
    r.kind = QueryKind::kContinuousCancel;
    r.continuous_id = id;
    return r;
  }
};

/// The outcome of one QueryRequest, self-contained by value.
struct QueryResponse {
  Status status;
  QueryKind kind = QueryKind::kRangeQuery;

  /// PRQ answer (ascending user id); also the initial answer of a freshly
  /// registered continuous query.
  std::vector<UserId> ids;
  /// PkNN answer (ascending distance).
  std::vector<Neighbor> neighbors;
  /// Id of a freshly registered continuous query.
  ContinuousQueryId continuous_id = 0;

  /// THIS query's work counters — by value, exact under concurrent
  /// submission (zeroed when collect_counters was off).
  QueryCounters counters;
  /// THIS query's buffer-pool traffic delta — by value, exact under
  /// concurrent submission (zeroed when collect_counters was off).
  IoStats io;

  /// Milliseconds spent queued between Submit and execution start.
  double queue_ms = 0.0;
  /// Milliseconds spent executing.
  double exec_ms = 0.0;

  bool ok() const { return status.ok(); }
};

}  // namespace service
}  // namespace peb
