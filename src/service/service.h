// MovingObjectService — the request/response front-end over any
// PrivacyAwareIndex.
//
// The ROADMAP's target is a system serving heavy traffic from millions of
// users; MOIST (Jiang et al.) drives its scalable moving-object indexer
// through a batched, parallel service front-end rather than one blocking
// virtual call per query. This facade is that layer:
//
//  * Execute(request)      — synchronous; safe from any thread.
//  * Submit(request)       — asynchronous, returns std::future<Response>;
//    SubmitBatch fans a request vector out on the service's own worker
//    pool (its own, NOT the engine's — engine workers must stay free for
//    shard fan-out, or a full service pool could deadlock waiting on
//    itself).
//  * OpenUpdateSession     — batched update ingestion wrapping
//    BatchUpdateApplier, feeding engine-wide continuous queries.
//  * Continuous queries    — registered through QueryRequests, maintained
//    by a ContinuousQueryMonitor lifted over the whole index (sharded
//    engine included), fed from the update path in stream order so event
//    streams are identical for any shard count.
//  * Policy lifecycle      — when constructed over a PolicyCatalog, the
//    service accepts AddPolicy/RemovePolicy/DefineRole/Reencode requests:
//    mutations run atomically with respect to queries (the engine's
//    exclusive state lock / the service index lock), the catalog derives
//    the next snapshot incrementally, the index re-keys only the users
//    whose quantized SV changed, and standing queries reconcile — all in
//    one request. Every response names the epoch it executed against.
//
// Every response carries its own counters and exact per-query IoStats
// delta by value (see query_request.h); the service never reads
// last_query() or diffs global pool stats.
//
// Thread-safety: thread-safe. Queries against an index that supports
// concurrent queries (the sharded engine) run genuinely in parallel;
// single-tree indexes are serialized internally, so Submit is safe — just
// not parallel — over a bare PebTree or FilteringIndex. Updates and
// continuous-query maintenance are exclusive.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bxtree/privacy_index.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/batch_applier.h"
#include "engine/sharded_engine.h"
#include "engine/thread_pool.h"
#include "motion/update_stream.h"
#include "peb/continuous.h"
#include "policy/policy_catalog.h"
#include "service/query_request.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace peb {
namespace service {

struct ServiceOptions {
  /// Worker threads executing Submit/SubmitBatch requests. 0 executes each
  /// request inline at submission (the returned future is already ready) —
  /// deterministic mode for tests and measurement harnesses.
  size_t num_workers = 0;
  /// Time domain for continuous-query policy evaluation.
  double time_domain = kDefaultTimeDomain;
  /// Service instruments (latency histograms, per-kind query and shed
  /// counters, queue depth, continuous-monitor and re-encode metrics),
  /// trace sampling, and the slow-query log.
  telemetry::TelemetryOptions telemetry;
  /// When non-empty, a background thread appends one registry
  /// SnapshotJson() line to this file every stats_dump_period_ms — the
  /// JSON-lines live-stats surface.
  std::string stats_dump_path;
  size_t stats_dump_period_ms = 1000;
};

class MovingObjectService {
 public:
  /// The full-lifecycle service: queries, continuous queries, AND online
  /// policy mutations, all against `catalog`'s live policy state. The
  /// index must have been built from one of the catalog's snapshots; both
  /// must outlive the service.
  ///
  /// A mutation re-keys THIS service's index only. Sibling indexes sharing
  /// the catalog (e.g. a workload's baseline) must re-sync afterwards via
  /// AdoptSnapshot(catalog->snapshot(), nullptr), and must not serve
  /// concurrent queries while the mutation runs — exclusion covers only
  /// the fronted index.
  MovingObjectService(PrivacyAwareIndex* index, PolicyCatalog* catalog,
                      ServiceOptions options = {});

  /// Static-world service: `store`/`roles`/`encoding` enable continuous-
  /// query requests (pass the workload's; nullptr disables them with
  /// NotSupported); policy mutations answer NotSupported. All referenced
  /// objects must outlive the service.
  MovingObjectService(PrivacyAwareIndex* index, const PolicyStore* store,
                      const RoleRegistry* roles,
                      const PolicyEncoding* encoding,
                      ServiceOptions options = {});

  /// Convenience: queries only (continuous requests -> NotSupported).
  explicit MovingObjectService(PrivacyAwareIndex* index,
                               ServiceOptions options = {});

  MovingObjectService(const MovingObjectService&) = delete;
  MovingObjectService& operator=(const MovingObjectService&) = delete;

  /// Stops the stats-dumper thread and unhooks the registry.
  ~MovingObjectService();

  // --- queries --------------------------------------------------------------

  /// Executes `request` synchronously and returns its self-contained
  /// response. Never blocks on other queries when the index supports
  /// concurrent queries.
  QueryResponse Execute(const QueryRequest& request);

  /// Enqueues `request` on the service worker pool; the future resolves to
  /// the same response Execute would produce, plus queue timing.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Submits every request and returns their futures in order.
  std::vector<std::future<QueryResponse>> SubmitBatch(
      std::vector<QueryRequest> requests);

  // --- updates --------------------------------------------------------------

  /// Applies one update and feeds continuous queries.
  Status ApplyUpdate(const MovingObject& state, Timestamp now);

  /// Applies a time-ordered batch atomically with respect to queries (the
  /// engine's batch path when available, else serialized one-by-one) and
  /// feeds continuous queries in stream order.
  Status ApplyBatch(const std::vector<UpdateEvent>& events);

  /// Notifies standing queries that `state` was applied to the index
  /// out-of-band (a caller that updates the index directly instead of
  /// through ApplyUpdate/ApplyBatch/update sessions). No index mutation.
  Status NotifyUpdated(const MovingObject& state, Timestamp now);

  /// A batched update-ingestion session over an UpdateStream. Wraps
  /// engine::BatchUpdateApplier when the service fronts a ShardedPebEngine
  /// (the applier's on_batch hook feeds the continuous monitor); falls
  /// back to service-level batching for single-tree indexes.
  class UpdateSession {
   public:
    /// Applies `count` events in batches.
    Status Apply(size_t count);

    size_t events_applied() const;
    size_t batches_applied() const;
    /// Timestamp of the most recently applied event (0 before any).
    Timestamp last_event_time() const;

   private:
    friend class MovingObjectService;
    UpdateSession() = default;

    MovingObjectService* service_ = nullptr;
    UpdateStream* stream_ = nullptr;
    size_t batch_size_ = 1024;
    /// Engine path: the wrapped applier. Null for single-tree indexes.
    std::unique_ptr<engine::BatchUpdateApplier> applier_;
    /// Fallback-path bookkeeping (the applier tracks its own).
    size_t events_applied_ = 0;
    size_t batches_applied_ = 0;
    Timestamp last_event_time_ = 0.0;
  };

  /// Opens an update session draining `stream` in batches of `batch_size`.
  /// The stream must outlive the session; one session at a time per stream.
  UpdateSession OpenUpdateSession(UpdateStream* stream,
                                  size_t batch_size = 1024);

  // --- continuous-query observers -------------------------------------------

  /// Current answer of a registered continuous query, sorted by user id.
  Result<std::vector<UserId>> ContinuousResult(ContinuousQueryId id) const;

  /// Drains the accumulated membership events, in order.
  std::vector<ContinuousQueryEvent> TakeContinuousEvents();

  /// Re-evaluates every continuous query at `now` (motion and policy time
  /// windows shift answers even without updates).
  Status AdvanceContinuous(Timestamp now);

  /// Number of registered continuous queries.
  size_t num_continuous_queries() const;

  // --- introspection --------------------------------------------------------

  PrivacyAwareIndex& index() { return *index_; }
  const PrivacyAwareIndex& index() const { return *index_; }
  /// Cumulative pool traffic of the underlying index (for totals; use the
  /// per-response IoStats for per-query accounting).
  IoStats aggregate_io() const { return index_->aggregate_io(); }
  size_t num_workers() const { return workers_.num_threads(); }

  // --- telemetry ------------------------------------------------------------

  /// The registry this service records into (null when telemetry is
  /// disabled). Snapshot with SnapshotJson() / PrometheusText().
  telemetry::MetricsRegistry* metrics() const { return registry_; }

  /// Snapshot of the slow-query log, oldest entry first (empty when the
  /// log is disabled).
  std::vector<telemetry::SlowQueryLog::Entry> SlowQueries() const;

  /// Live control over trace sampling: trace every Nth PRQ/PkNN request
  /// (0 disables sampling; RequestOptions::trace still forces a trace).
  void set_trace_sample_every(size_t every) {
    trace_sample_every_.store(every, std::memory_order_relaxed);
  }
  size_t trace_sample_every() const {
    return trace_sample_every_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// Execute with submission timing (queue_ms = pickup - submitted).
  QueryResponse ExecuteTimed(const QueryRequest& request,
                             Clock::time_point submitted);

  QueryResponse DoRange(const QueryRequest& request);
  QueryResponse DoKnn(const QueryRequest& request);
  QueryResponse DoContinuousRegister(const QueryRequest& request);
  QueryResponse DoContinuousCancel(const QueryRequest& request);
  /// kAddPolicy / kRemovePolicy / kDefineRole / kReencode.
  QueryResponse DoPolicyLifecycle(const QueryRequest& request);

  /// Runs a live policy-state mutation atomically with respect to queries:
  /// through the engine's exclusive state lock when fronting an engine,
  /// else under the service's own unique index lock.
  Status MutateExclusive(const std::function<Status()>& fn);

  /// Re-encodes the catalog's dirty-set, adopts the snapshot on the index
  /// (re-keying only the changed users) and reconciles standing queries at
  /// `now`. Fills `stats`.
  Status ReencodeAndAdopt(Timestamp now, ReencodeStats* stats)
      REQUIRES(continuous_mu_);

  /// Feeds an applied batch to the continuous monitor in stream order
  /// (asserted non-decreasing event time; see last_fed_t_).
  void FeedContinuous(const std::vector<UpdateEvent>& events)
      EXCLUDES(continuous_mu_);

  /// Resolves every service instrument eagerly (a disconnected instrument
  /// then reads zero in snapshots instead of being silently absent) and
  /// starts the stats-dumper thread when configured. Called once from
  /// every constructor.
  void InitTelemetry();

  /// Whether this request should carry a span tree: forced per-request or
  /// caught by the sampling rate (every Nth PRQ/PkNN).
  bool ShouldTrace(const QueryRequest& request);

  /// Records latency histograms, the per-kind request counter, and the
  /// slow-query log for one finished request. Untraced slow queries get a
  /// synthesized root-only trace from the response's by-value stats.
  void FinishRequest(const QueryRequest& request, const QueryResponse& response);

  PrivacyAwareIndex* index_;
  /// Set when `index_` is a ShardedPebEngine: enables the engine batch
  /// update path and lock-free (shared) query execution.
  engine::ShardedPebEngine* engine_;
  /// Set by the lifecycle constructor: enables policy mutation requests.
  PolicyCatalog* catalog_;
  const PolicyStore* store_;
  const RoleRegistry* roles_;
  ServiceOptions options_;

  /// Query/update coordination for indexes without internal thread-safety:
  /// queries shared when the index supports concurrency (engine) else
  /// unique; updates always unique. Lock order: continuous_mu_ first.
  mutable SharedMutex index_mu_ ACQUIRED_AFTER(continuous_mu_);

  /// Continuous-query state (the monitor is single-threaded by contract;
  /// this mutex IS its serialization). The pointer itself is set once at
  /// construction; only the pointee is guarded.
  mutable Mutex continuous_mu_;
  std::unique_ptr<ContinuousQueryMonitor> monitor_ PT_GUARDED_BY(continuous_mu_);
  /// Stream clock of the last batch event fed to the monitor. FeedContinuous
  /// asserts it never goes backwards: update streams are globally
  /// time-ordered, and under delta ingestion the monitor is fed from the
  /// batch at publication time (never from the engine's later merges), so
  /// the feed order is the stream order in both ingestion modes.
  Timestamp last_fed_t_ GUARDED_BY(continuous_mu_) = 0;

  // --- telemetry state (null / zero when telemetry is disabled) -------------
  telemetry::MetricsRegistry* registry_ = nullptr;
  telemetry::Histogram* submit_ms_ = nullptr;  ///< Submit -> completion.
  telemetry::Histogram* queue_ms_ = nullptr;   ///< Submit -> pickup.
  telemetry::Histogram* exec_ms_ = nullptr;    ///< Pickup -> completion.
  /// service.requests.<kind>, indexed by QueryKind. All eight eager.
  std::array<telemetry::Counter*, 8> kind_requests_{};
  /// service.shed.<kind> for the two query kinds (eager). Sheds of other
  /// kinds resolve their counter lazily — they are rare by construction.
  std::array<telemetry::Counter*, 2> query_sheds_{};
  telemetry::Gauge* queue_depth_ = nullptr;
  /// Updates fed to the continuous monitor / membership events drained.
  telemetry::Counter* continuous_fed_ = nullptr;
  telemetry::Counter* continuous_events_ = nullptr;
  telemetry::Histogram* reencode_ms_ = nullptr;
  telemetry::Counter* reencode_rekeys_ = nullptr;

  std::atomic<size_t> trace_sample_every_{0};
  /// PRQ/PkNN admissions, for the every-Nth sampling decision.
  std::atomic<uint64_t> query_seq_{0};
  std::unique_ptr<telemetry::SlowQueryLog> slow_log_;

  /// JSON-lines stats dumper (started when stats_dump_path is set).
  std::thread dumper_;
  Mutex dumper_mu_;
  std::condition_variable_any dumper_cv_;
  bool stopping_ GUARDED_BY(dumper_mu_) = false;

  engine::ThreadPool workers_;
};

}  // namespace service
}  // namespace peb
