// MovingObjectService — the request/response front-end over any
// PrivacyAwareIndex.
//
// The ROADMAP's target is a system serving heavy traffic from millions of
// users; MOIST (Jiang et al.) drives its scalable moving-object indexer
// through a batched, parallel service front-end rather than one blocking
// virtual call per query. This facade is that layer:
//
//  * Execute(request)      — synchronous; safe from any thread.
//  * Submit(request)       — asynchronous, returns std::future<Response>;
//    SubmitBatch fans a request vector out on the service's own worker
//    pool (its own, NOT the engine's — engine workers must stay free for
//    shard fan-out, or a full service pool could deadlock waiting on
//    itself).
//  * OpenUpdateSession     — batched update ingestion wrapping
//    BatchUpdateApplier, feeding engine-wide continuous queries.
//  * Continuous queries    — registered through QueryRequests, maintained
//    by a ContinuousQueryMonitor lifted over the whole index (sharded
//    engine included), fed from the update path in stream order so event
//    streams are identical for any shard count.
//  * Policy lifecycle      — when constructed over a PolicyCatalog, the
//    service accepts AddPolicy/RemovePolicy/DefineRole/Reencode requests:
//    mutations run atomically with respect to queries (the engine's
//    exclusive state lock / the service index lock), the catalog derives
//    the next snapshot incrementally, the index re-keys only the users
//    whose quantized SV changed, and standing queries reconcile — all in
//    one request. Every response names the epoch it executed against.
//
// Every response carries its own counters and exact per-query IoStats
// delta by value (see query_request.h); the service never reads
// last_query() or diffs global pool stats.
//
// Thread-safety: thread-safe. Queries against an index that supports
// concurrent queries (the sharded engine) run genuinely in parallel;
// single-tree indexes are serialized internally, so Submit is safe — just
// not parallel — over a bare PebTree or FilteringIndex. Updates and
// continuous-query maintenance are exclusive.
#pragma once

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "bxtree/privacy_index.h"
#include "common/status.h"
#include "engine/batch_applier.h"
#include "engine/sharded_engine.h"
#include "engine/thread_pool.h"
#include "motion/update_stream.h"
#include "peb/continuous.h"
#include "policy/policy_catalog.h"
#include "service/query_request.h"

namespace peb {
namespace service {

struct ServiceOptions {
  /// Worker threads executing Submit/SubmitBatch requests. 0 executes each
  /// request inline at submission (the returned future is already ready) —
  /// deterministic mode for tests and measurement harnesses.
  size_t num_workers = 0;
  /// Time domain for continuous-query policy evaluation.
  double time_domain = kDefaultTimeDomain;
};

class MovingObjectService {
 public:
  /// The full-lifecycle service: queries, continuous queries, AND online
  /// policy mutations, all against `catalog`'s live policy state. The
  /// index must have been built from one of the catalog's snapshots; both
  /// must outlive the service.
  ///
  /// A mutation re-keys THIS service's index only. Sibling indexes sharing
  /// the catalog (e.g. a workload's baseline) must re-sync afterwards via
  /// AdoptSnapshot(catalog->snapshot(), nullptr), and must not serve
  /// concurrent queries while the mutation runs — exclusion covers only
  /// the fronted index.
  MovingObjectService(PrivacyAwareIndex* index, PolicyCatalog* catalog,
                      ServiceOptions options = {});

  /// Static-world service: `store`/`roles`/`encoding` enable continuous-
  /// query requests (pass the workload's; nullptr disables them with
  /// NotSupported); policy mutations answer NotSupported. All referenced
  /// objects must outlive the service.
  MovingObjectService(PrivacyAwareIndex* index, const PolicyStore* store,
                      const RoleRegistry* roles,
                      const PolicyEncoding* encoding,
                      ServiceOptions options = {});

  /// Convenience: queries only (continuous requests -> NotSupported).
  explicit MovingObjectService(PrivacyAwareIndex* index,
                               ServiceOptions options = {});

  MovingObjectService(const MovingObjectService&) = delete;
  MovingObjectService& operator=(const MovingObjectService&) = delete;

  // --- queries --------------------------------------------------------------

  /// Executes `request` synchronously and returns its self-contained
  /// response. Never blocks on other queries when the index supports
  /// concurrent queries.
  QueryResponse Execute(const QueryRequest& request);

  /// Enqueues `request` on the service worker pool; the future resolves to
  /// the same response Execute would produce, plus queue timing.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Submits every request and returns their futures in order.
  std::vector<std::future<QueryResponse>> SubmitBatch(
      std::vector<QueryRequest> requests);

  // --- updates --------------------------------------------------------------

  /// Applies one update and feeds continuous queries.
  Status ApplyUpdate(const MovingObject& state, Timestamp now);

  /// Applies a time-ordered batch atomically with respect to queries (the
  /// engine's batch path when available, else serialized one-by-one) and
  /// feeds continuous queries in stream order.
  Status ApplyBatch(const std::vector<UpdateEvent>& events);

  /// Notifies standing queries that `state` was applied to the index
  /// out-of-band (a caller that updates the index directly instead of
  /// through ApplyUpdate/ApplyBatch/update sessions). No index mutation.
  Status NotifyUpdated(const MovingObject& state, Timestamp now);

  /// A batched update-ingestion session over an UpdateStream. Wraps
  /// engine::BatchUpdateApplier when the service fronts a ShardedPebEngine
  /// (the applier's on_batch hook feeds the continuous monitor); falls
  /// back to service-level batching for single-tree indexes.
  class UpdateSession {
   public:
    /// Applies `count` events in batches.
    Status Apply(size_t count);

    size_t events_applied() const;
    size_t batches_applied() const;
    /// Timestamp of the most recently applied event (0 before any).
    Timestamp last_event_time() const;

   private:
    friend class MovingObjectService;
    UpdateSession() = default;

    MovingObjectService* service_ = nullptr;
    UpdateStream* stream_ = nullptr;
    size_t batch_size_ = 1024;
    /// Engine path: the wrapped applier. Null for single-tree indexes.
    std::unique_ptr<engine::BatchUpdateApplier> applier_;
    /// Fallback-path bookkeeping (the applier tracks its own).
    size_t events_applied_ = 0;
    size_t batches_applied_ = 0;
    Timestamp last_event_time_ = 0.0;
  };

  /// Opens an update session draining `stream` in batches of `batch_size`.
  /// The stream must outlive the session; one session at a time per stream.
  UpdateSession OpenUpdateSession(UpdateStream* stream,
                                  size_t batch_size = 1024);

  // --- continuous-query observers -------------------------------------------

  /// Current answer of a registered continuous query, sorted by user id.
  Result<std::vector<UserId>> ContinuousResult(ContinuousQueryId id) const;

  /// Drains the accumulated membership events, in order.
  std::vector<ContinuousQueryEvent> TakeContinuousEvents();

  /// Re-evaluates every continuous query at `now` (motion and policy time
  /// windows shift answers even without updates).
  Status AdvanceContinuous(Timestamp now);

  /// Number of registered continuous queries.
  size_t num_continuous_queries() const;

  // --- introspection --------------------------------------------------------

  PrivacyAwareIndex& index() { return *index_; }
  const PrivacyAwareIndex& index() const { return *index_; }
  /// Cumulative pool traffic of the underlying index (for totals; use the
  /// per-response IoStats for per-query accounting).
  IoStats aggregate_io() const { return index_->aggregate_io(); }
  size_t num_workers() const { return workers_.num_threads(); }

 private:
  using Clock = std::chrono::steady_clock;

  /// Execute with submission timing (queue_ms = pickup - submitted).
  QueryResponse ExecuteTimed(const QueryRequest& request,
                             Clock::time_point submitted);

  QueryResponse DoRange(const QueryRequest& request);
  QueryResponse DoKnn(const QueryRequest& request);
  QueryResponse DoContinuousRegister(const QueryRequest& request);
  QueryResponse DoContinuousCancel(const QueryRequest& request);
  /// kAddPolicy / kRemovePolicy / kDefineRole / kReencode.
  QueryResponse DoPolicyLifecycle(const QueryRequest& request);

  /// Runs a live policy-state mutation atomically with respect to queries:
  /// through the engine's exclusive state lock when fronting an engine,
  /// else under the service's own unique index lock.
  Status MutateExclusive(const std::function<Status()>& fn);

  /// Re-encodes the catalog's dirty-set, adopts the snapshot on the index
  /// (re-keying only the changed users) and reconciles standing queries at
  /// `now`. Caller holds continuous_mu_. Fills `stats`.
  Status ReencodeAndAdopt(Timestamp now, ReencodeStats* stats);

  /// Feeds an applied batch to the continuous monitor (stream order).
  void FeedContinuous(const std::vector<UpdateEvent>& events);

  PrivacyAwareIndex* index_;
  /// Set when `index_` is a ShardedPebEngine: enables the engine batch
  /// update path and lock-free (shared) query execution.
  engine::ShardedPebEngine* engine_;
  /// Set by the lifecycle constructor: enables policy mutation requests.
  PolicyCatalog* catalog_;
  const PolicyStore* store_;
  const RoleRegistry* roles_;
  ServiceOptions options_;

  /// Query/update coordination for indexes without internal thread-safety:
  /// queries shared when the index supports concurrency (engine) else
  /// unique; updates always unique.
  mutable std::shared_mutex index_mu_;

  /// Continuous-query state (the monitor is single-threaded).
  mutable std::mutex continuous_mu_;
  std::unique_ptr<ContinuousQueryMonitor> monitor_;

  engine::ThreadPool workers_;
};

}  // namespace service
}  // namespace peb
