#include "service/service.h"

#include <utility>

namespace peb {
namespace service {

namespace {

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

MovingObjectService::MovingObjectService(PrivacyAwareIndex* index,
                                         const PolicyStore* store,
                                         const RoleRegistry* roles,
                                         const PolicyEncoding* encoding,
                                         ServiceOptions options)
    : index_(index),
      engine_(dynamic_cast<engine::ShardedPebEngine*>(index)),
      store_(store),
      roles_(roles),
      encoding_(encoding),
      options_(options),
      workers_(options.num_workers) {
  if (store_ != nullptr && roles_ != nullptr && encoding_ != nullptr) {
    monitor_ = std::make_unique<ContinuousQueryMonitor>(
        index_, store_, roles_, encoding_, options_.time_domain);
  }
}

MovingObjectService::MovingObjectService(PrivacyAwareIndex* index,
                                         ServiceOptions options)
    : MovingObjectService(index, nullptr, nullptr, nullptr, options) {}

// ---------------------------------------------------------------------------
// Query path
// ---------------------------------------------------------------------------

QueryResponse MovingObjectService::Execute(const QueryRequest& request) {
  return ExecuteTimed(request, Clock::now());
}

std::future<QueryResponse> MovingObjectService::Submit(QueryRequest request) {
  auto submitted = Clock::now();
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  std::future<QueryResponse> future = promise->get_future();
  if (workers_.num_threads() == 0) {
    // Inline mode: the future is ready on return.
    promise->set_value(ExecuteTimed(request, submitted));
    return future;
  }
  workers_.Submit(
      [this, promise, submitted, request = std::move(request)]() mutable {
        promise->set_value(ExecuteTimed(request, submitted));
      });
  return future;
}

std::vector<std::future<QueryResponse>> MovingObjectService::SubmitBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(requests.size());
  for (QueryRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  return futures;
}

QueryResponse MovingObjectService::ExecuteTimed(const QueryRequest& request,
                                                Clock::time_point submitted) {
  auto picked_up = Clock::now();
  QueryResponse response;
  response.kind = request.kind;
  response.queue_ms = MsBetween(submitted, picked_up);

  // Admission control: a request that already overstayed its deadline in
  // the queue is shed instead of executed.
  if (request.options.deadline_ms > 0.0 &&
      response.queue_ms > request.options.deadline_ms) {
    response.status = Status::ResourceExhausted(
        "deadline exceeded before execution (queued " +
        std::to_string(response.queue_ms) + " ms)");
    return response;
  }

  switch (request.kind) {
    case QueryKind::kRangeQuery:
      response = DoRange(request);
      break;
    case QueryKind::kKnnQuery:
      response = DoKnn(request);
      break;
    case QueryKind::kContinuousRegister:
      response = DoContinuousRegister(request);
      break;
    case QueryKind::kContinuousCancel:
      response = DoContinuousCancel(request);
      break;
  }
  response.queue_ms = MsBetween(submitted, picked_up);
  response.exec_ms = MsBetween(picked_up, Clock::now());
  return response;
}

QueryResponse MovingObjectService::DoRange(const QueryRequest& request) {
  QueryResponse response;
  response.kind = request.kind;
  const bool collect = request.options.collect_counters;
  QueryStats stats;

  // Thread-safe indexes (the engine) run queries genuinely in parallel;
  // single-tree indexes are serialized so Submit stays safe over them.
  Result<std::vector<UserId>> result = [&] {
    if (index_->SupportsConcurrentQueries()) {
      std::shared_lock<std::shared_mutex> lock(index_mu_);
      return index_->RangeQueryWithStats(request.issuer, request.range,
                                         request.tq,
                                         collect ? &stats : nullptr);
    }
    std::unique_lock<std::shared_mutex> lock(index_mu_);
    return index_->RangeQueryWithStats(request.issuer, request.range,
                                       request.tq,
                                       collect ? &stats : nullptr);
  }();

  if (result.ok()) {
    response.ids = std::move(*result);
  } else {
    response.status = result.status();
  }
  if (collect) {
    response.counters = stats.counters;
    response.io = stats.io;
  }
  return response;
}

QueryResponse MovingObjectService::DoKnn(const QueryRequest& request) {
  QueryResponse response;
  response.kind = request.kind;
  const bool collect = request.options.collect_counters;
  QueryStats stats;

  Result<std::vector<Neighbor>> result = [&] {
    if (index_->SupportsConcurrentQueries()) {
      std::shared_lock<std::shared_mutex> lock(index_mu_);
      return index_->KnnQueryWithStats(request.issuer, request.qloc,
                                       request.k, request.tq,
                                       collect ? &stats : nullptr);
    }
    std::unique_lock<std::shared_mutex> lock(index_mu_);
    return index_->KnnQueryWithStats(request.issuer, request.qloc, request.k,
                                     request.tq, collect ? &stats : nullptr);
  }();

  if (result.ok()) {
    response.neighbors = std::move(*result);
  } else {
    response.status = result.status();
  }
  if (collect) {
    response.counters = stats.counters;
    response.io = stats.io;
  }
  return response;
}

QueryResponse MovingObjectService::DoContinuousRegister(
    const QueryRequest& request) {
  QueryResponse response;
  response.kind = request.kind;
  if (monitor_ == nullptr) {
    response.status = Status::NotSupported(
        "continuous queries need the service constructed with policies, "
        "roles, and encoding");
    return response;
  }
  const bool collect = request.options.collect_counters;
  QueryStats stats;

  // Lock order: continuous state first, then the index (the seeding PRQ).
  // A concurrency-capable index (the engine) needs only the shared lock —
  // its own state lock orders the seed against updates and continuous_mu_
  // orders it against monitor feeds — so registration never stalls the
  // concurrent query plane.
  std::lock_guard<std::mutex> continuous_lock(continuous_mu_);
  std::shared_lock<std::shared_mutex> shared_index_lock(index_mu_,
                                                        std::defer_lock);
  std::unique_lock<std::shared_mutex> unique_index_lock(index_mu_,
                                                        std::defer_lock);
  if (index_->SupportsConcurrentQueries()) {
    shared_index_lock.lock();
  } else {
    unique_index_lock.lock();
  }
  Result<ContinuousQueryId> id = monitor_->Register(
      request.issuer, request.range, request.tq, collect ? &stats : nullptr);
  if (!id.ok()) {
    response.status = id.status();
    return response;
  }
  response.continuous_id = *id;
  if (auto initial = monitor_->ResultOf(*id); initial.ok()) {
    response.ids = std::move(*initial);
  }
  if (collect) {
    response.counters = stats.counters;
    response.io = stats.io;
  }
  return response;
}

QueryResponse MovingObjectService::DoContinuousCancel(
    const QueryRequest& request) {
  QueryResponse response;
  response.kind = request.kind;
  if (monitor_ == nullptr) {
    response.status = Status::NotSupported(
        "continuous queries need the service constructed with policies, "
        "roles, and encoding");
    return response;
  }
  std::lock_guard<std::mutex> continuous_lock(continuous_mu_);
  response.status = monitor_->Unregister(request.continuous_id);
  return response;
}

// ---------------------------------------------------------------------------
// Update path
// ---------------------------------------------------------------------------

Status MovingObjectService::ApplyUpdate(const MovingObject& state,
                                        Timestamp now) {
  if (engine_ != nullptr) {
    // The engine's own state lock makes the update atomic vs queries.
    PEB_RETURN_NOT_OK(engine_->Update(state));
  } else {
    std::unique_lock<std::shared_mutex> lock(index_mu_);
    PEB_RETURN_NOT_OK(index_->Update(state));
  }
  if (monitor_ != nullptr) {
    std::lock_guard<std::mutex> continuous_lock(continuous_mu_);
    PEB_RETURN_NOT_OK(monitor_->OnUpdate(state, now));
  }
  return Status::OK();
}

Status MovingObjectService::ApplyBatch(
    const std::vector<UpdateEvent>& events) {
  if (engine_ != nullptr) {
    // Engine path: shard-parallel application, atomic vs queries.
    PEB_RETURN_NOT_OK(engine_->ApplyBatch(events));
  } else {
    std::unique_lock<std::shared_mutex> lock(index_mu_);
    for (const UpdateEvent& ev : events) {
      PEB_RETURN_NOT_OK(index_->Update(ev.state));
    }
  }
  FeedContinuous(events);
  return Status::OK();
}

Status MovingObjectService::NotifyUpdated(const MovingObject& state,
                                          Timestamp now) {
  if (monitor_ == nullptr) return Status::OK();
  std::lock_guard<std::mutex> continuous_lock(continuous_mu_);
  return monitor_->OnUpdate(state, now);
}

void MovingObjectService::FeedContinuous(
    const std::vector<UpdateEvent>& events) {
  if (monitor_ == nullptr) return;
  std::lock_guard<std::mutex> continuous_lock(continuous_mu_);
  for (const UpdateEvent& ev : events) {
    // Events arrive in stream (global time) order regardless of how many
    // shards applied them, so standing-query event streams are identical
    // on 1- and N-shard engines.
    (void)monitor_->OnUpdate(ev.state, ev.t);
  }
}

MovingObjectService::UpdateSession MovingObjectService::OpenUpdateSession(
    UpdateStream* stream, size_t batch_size) {
  UpdateSession session;
  session.service_ = this;
  session.stream_ = stream;
  session.batch_size_ = batch_size == 0 ? 1 : batch_size;
  if (engine_ != nullptr) {
    engine::BatchApplierOptions opts;
    opts.batch_size = session.batch_size_;
    opts.on_batch = [this](const std::vector<UpdateEvent>& events) {
      FeedContinuous(events);
    };
    session.applier_ = std::make_unique<engine::BatchUpdateApplier>(
        engine_, stream, opts);
  }
  return session;
}

Status MovingObjectService::UpdateSession::Apply(size_t count) {
  if (applier_ != nullptr) return applier_->Apply(count);
  std::vector<UpdateEvent> batch;
  while (count > 0) {
    size_t n = count < batch_size_ ? count : batch_size_;
    batch.clear();
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) batch.push_back(stream_->Next());
    PEB_RETURN_NOT_OK(service_->ApplyBatch(batch));
    events_applied_ += n;
    batches_applied_++;
    last_event_time_ = batch.back().t;
    count -= n;
  }
  return Status::OK();
}

size_t MovingObjectService::UpdateSession::events_applied() const {
  return applier_ != nullptr ? applier_->events_applied() : events_applied_;
}

size_t MovingObjectService::UpdateSession::batches_applied() const {
  return applier_ != nullptr ? applier_->batches_applied() : batches_applied_;
}

Timestamp MovingObjectService::UpdateSession::last_event_time() const {
  return applier_ != nullptr ? applier_->last_event_time()
                             : last_event_time_;
}

// ---------------------------------------------------------------------------
// Continuous-query observers
// ---------------------------------------------------------------------------

Result<std::vector<UserId>> MovingObjectService::ContinuousResult(
    ContinuousQueryId id) const {
  if (monitor_ == nullptr) {
    return Status::NotSupported("continuous queries disabled");
  }
  std::lock_guard<std::mutex> continuous_lock(continuous_mu_);
  return monitor_->ResultOf(id);
}

std::vector<ContinuousQueryEvent> MovingObjectService::TakeContinuousEvents() {
  if (monitor_ == nullptr) return {};
  std::lock_guard<std::mutex> continuous_lock(continuous_mu_);
  return monitor_->TakeEvents();
}

Status MovingObjectService::AdvanceContinuous(Timestamp now) {
  if (monitor_ == nullptr) {
    return Status::NotSupported("continuous queries disabled");
  }
  // Same locking shape as registration: shared index access suffices for
  // a concurrency-capable index (Advance only reads via GetObject).
  std::lock_guard<std::mutex> continuous_lock(continuous_mu_);
  std::shared_lock<std::shared_mutex> shared_index_lock(index_mu_,
                                                        std::defer_lock);
  std::unique_lock<std::shared_mutex> unique_index_lock(index_mu_,
                                                        std::defer_lock);
  if (index_->SupportsConcurrentQueries()) {
    shared_index_lock.lock();
  } else {
    unique_index_lock.lock();
  }
  return monitor_->Advance(now);
}

size_t MovingObjectService::num_continuous_queries() const {
  if (monitor_ == nullptr) return 0;
  std::lock_guard<std::mutex> continuous_lock(continuous_mu_);
  return monitor_->num_queries();
}

}  // namespace service
}  // namespace peb
