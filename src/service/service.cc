#include "service/service.h"

#include <fstream>
#include <string>
#include <utility>

namespace peb {
namespace service {

namespace {

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Stable instrument-name suffix per request kind.
const char* KindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRangeQuery:
      return "prq";
    case QueryKind::kKnnQuery:
      return "pknn";
    case QueryKind::kContinuousRegister:
      return "continuous_register";
    case QueryKind::kContinuousCancel:
      return "continuous_cancel";
    case QueryKind::kAddPolicy:
      return "add_policy";
    case QueryKind::kRemovePolicy:
      return "remove_policy";
    case QueryKind::kDefineRole:
      return "define_role";
    case QueryKind::kReencode:
      return "reencode";
  }
  return "unknown";
}

}  // namespace

MovingObjectService::MovingObjectService(PrivacyAwareIndex* index,
                                         PolicyCatalog* catalog,
                                         ServiceOptions options)
    : index_(index),
      engine_(dynamic_cast<engine::ShardedPebEngine*>(index)),
      catalog_(catalog),
      store_(&catalog->store()),
      roles_(&catalog->roles()),
      options_(options),
      workers_(options.num_workers) {
  monitor_ = std::make_unique<ContinuousQueryMonitor>(
      index_, store_, roles_, catalog->snapshot(), options_.time_domain);
  InitTelemetry();
}

MovingObjectService::MovingObjectService(PrivacyAwareIndex* index,
                                         const PolicyStore* store,
                                         const RoleRegistry* roles,
                                         const PolicyEncoding* encoding,
                                         ServiceOptions options)
    : index_(index),
      engine_(dynamic_cast<engine::ShardedPebEngine*>(index)),
      catalog_(nullptr),
      store_(store),
      roles_(roles),
      options_(options),
      workers_(options.num_workers) {
  if (store_ != nullptr && roles_ != nullptr && encoding != nullptr) {
    monitor_ = std::make_unique<ContinuousQueryMonitor>(
        index_, store_, roles_,
        std::shared_ptr<const EncodingSnapshot>(
            std::shared_ptr<const EncodingSnapshot>(), encoding),
        options_.time_domain);
  }
  InitTelemetry();
}

MovingObjectService::MovingObjectService(PrivacyAwareIndex* index,
                                         ServiceOptions options)
    : MovingObjectService(index, nullptr, nullptr, nullptr, options) {}

MovingObjectService::~MovingObjectService() {
  {
    MutexLock lock(&dumper_mu_);
    stopping_ = true;
  }
  dumper_cv_.notify_all();
  if (dumper_.joinable()) dumper_.join();
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

void MovingObjectService::InitTelemetry() {
  const telemetry::TelemetryOptions& t = options_.telemetry;
  if (!t.enabled) return;
  registry_ = t.registry != nullptr ? t.registry
                                    : telemetry::MetricsRegistry::Default();
  submit_ms_ = registry_->histogram("service.submit_ms");
  queue_ms_ = registry_->histogram("service.queue_ms");
  exec_ms_ = registry_->histogram("service.exec_ms");
  for (size_t k = 0; k < kind_requests_.size(); ++k) {
    kind_requests_[k] = registry_->counter(
        std::string("service.requests.") +
        KindName(static_cast<QueryKind>(k)));
  }
  query_sheds_[0] = registry_->counter("service.shed.prq");
  query_sheds_[1] = registry_->counter("service.shed.pknn");
  queue_depth_ = registry_->gauge("service.queue_depth");
  // Capability-gated instruments stay unregistered when the capability is
  // off — an instrument that CANNOT move must not read zero forever.
  if (monitor_ != nullptr) {
    continuous_fed_ = registry_->counter("service.continuous.updates_fed");
    continuous_events_ = registry_->counter("service.continuous.events");
  }
  if (catalog_ != nullptr) {
    reencode_ms_ = registry_->histogram("service.reencode_ms");
    reencode_rekeys_ = registry_->counter("service.reencode.rekeys");
  }
  trace_sample_every_.store(t.trace_sample_every, std::memory_order_relaxed);
  if (t.slow_log_capacity > 0) {
    slow_log_ =
        std::make_unique<telemetry::SlowQueryLog>(t.slow_log_capacity);
  }
  if (!options_.stats_dump_path.empty() && options_.stats_dump_period_ms > 0) {
    dumper_ = std::thread([this] {
      const auto period =
          std::chrono::milliseconds(options_.stats_dump_period_ms);
      for (;;) {
        {
          MutexLock lock(&dumper_mu_);
          dumper_cv_.wait_for(dumper_mu_, period, [this]() {
            dumper_mu_.AssertHeld();
            return stopping_;
          });
          if (stopping_) break;
        }
        // Snapshot outside the dumper lock: the registry has its own
        // synchronization.
        std::string line = registry_->SnapshotJson();
        std::ofstream out(options_.stats_dump_path, std::ios::app);
        out << line << '\n';
      }
    });
  }
}

bool MovingObjectService::ShouldTrace(const QueryRequest& request) {
  if (request.options.trace) return true;
  const size_t every = trace_sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return false;
  return query_seq_.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

void MovingObjectService::FinishRequest(const QueryRequest& request,
                                        const QueryResponse& response) {
  if (registry_ == nullptr) return;
  telemetry::Observe(queue_ms_, response.queue_ms);
  telemetry::Observe(exec_ms_, response.exec_ms);
  telemetry::Observe(submit_ms_, response.queue_ms + response.exec_ms);
  if (slow_log_ != nullptr &&
      response.exec_ms > options_.telemetry.slow_query_ms) {
    if (!response.trace.empty()) {
      slow_log_->Record(response.trace, response.exec_ms);
    } else {
      // Untraced slow query: synthesize a root-only trace from the
      // response's by-value stats so it still lands in the log.
      telemetry::TraceBuilder builder(KindName(request.kind));
      size_t root = builder.StartSpan("untraced");
      builder.AddStats(root, response.counters, response.io);
      builder.EndSpan(root);
      builder.set_epoch(response.epoch);
      telemetry::QueryTrace trace = builder.Finish();
      trace.total_ms = response.exec_ms;
      slow_log_->Record(trace, response.exec_ms);
    }
  }
}

std::vector<telemetry::SlowQueryLog::Entry> MovingObjectService::SlowQueries()
    const {
  if (slow_log_ == nullptr) return {};
  return slow_log_->Entries();
}

// ---------------------------------------------------------------------------
// Query path
// ---------------------------------------------------------------------------

QueryResponse MovingObjectService::Execute(const QueryRequest& request) {
  return ExecuteTimed(request, Clock::now());
}

std::future<QueryResponse> MovingObjectService::Submit(QueryRequest request) {
  auto submitted = Clock::now();
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  std::future<QueryResponse> future = promise->get_future();
  if (workers_.num_threads() == 0) {
    // Inline mode: the future is ready on return.
    promise->set_value(ExecuteTimed(request, submitted));
    return future;
  }
  telemetry::GaugeAdd(queue_depth_, 1);
  workers_.Submit(
      [this, promise, submitted, request = std::move(request)]() mutable {
        telemetry::GaugeAdd(queue_depth_, -1);
        promise->set_value(ExecuteTimed(request, submitted));
      });
  return future;
}

std::vector<std::future<QueryResponse>> MovingObjectService::SubmitBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(requests.size());
  for (QueryRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  return futures;
}

QueryResponse MovingObjectService::ExecuteTimed(const QueryRequest& request,
                                                Clock::time_point submitted) {
  auto picked_up = Clock::now();
  QueryResponse response;
  response.kind = request.kind;
  response.queue_ms = MsBetween(submitted, picked_up);
  telemetry::Inc(kind_requests_[static_cast<size_t>(request.kind)]);

  // Admission control: a request that already overstayed its deadline in
  // the queue is shed instead of executed.
  if (request.options.deadline_ms > 0.0 &&
      response.queue_ms > request.options.deadline_ms) {
    response.status = Status::ResourceExhausted(
        "deadline exceeded before execution (queued " +
        std::to_string(response.queue_ms) + " ms)");
    if (registry_ != nullptr) {
      const size_t ki = static_cast<size_t>(request.kind);
      if (ki < query_sheds_.size()) {
        telemetry::Inc(query_sheds_[ki]);
      } else {
        // Non-query sheds are rare; resolve the counter on demand.
        registry_
            ->counter(std::string("service.shed.") + KindName(request.kind))
            ->Add(1);
      }
      telemetry::Observe(queue_ms_, response.queue_ms);
    }
    return response;
  }

  switch (request.kind) {
    case QueryKind::kRangeQuery:
      response = DoRange(request);
      break;
    case QueryKind::kKnnQuery:
      response = DoKnn(request);
      break;
    case QueryKind::kContinuousRegister:
      response = DoContinuousRegister(request);
      break;
    case QueryKind::kContinuousCancel:
      response = DoContinuousCancel(request);
      break;
    case QueryKind::kAddPolicy:
    case QueryKind::kRemovePolicy:
    case QueryKind::kDefineRole:
    case QueryKind::kReencode:
      response = DoPolicyLifecycle(request);
      break;
  }
  response.queue_ms = MsBetween(submitted, picked_up);
  response.exec_ms = MsBetween(picked_up, Clock::now());
  FinishRequest(request, response);
  return response;
}

QueryResponse MovingObjectService::DoRange(const QueryRequest& request) {
  QueryResponse response;
  response.kind = request.kind;
  const bool collect = request.options.collect_counters;
  // Stats are always gathered internally: the epoch must be pinned while
  // the query holds its lock (reading it afterwards could name an epoch
  // published in between). collect_counters only gates what the response
  // reports.
  QueryStats stats;
  std::unique_ptr<telemetry::TraceBuilder> tracer;
  size_t root = telemetry::TraceSpan::kNoParent;
  if (ShouldTrace(request)) {
    tracer = std::make_unique<telemetry::TraceBuilder>("prq");
    root = tracer->StartSpan("service prq");
    stats.trace = tracer.get();
    stats.trace_span = root;
  }

  // Thread-safe indexes (the engine) run queries genuinely in parallel;
  // single-tree indexes are serialized so Submit stays safe over them.
  Result<std::vector<UserId>> result = [&] {
    SharedOrExclusiveLock lock(&index_mu_,
                               !index_->SupportsConcurrentQueries());
    return index_->RangeQueryWithStats(request.issuer, request.range,
                                       request.tq, &stats);
  }();

  if (result.ok()) {
    response.ids = std::move(*result);
  } else {
    response.status = result.status();
  }
  response.epoch = stats.epoch;
  if (collect) {
    response.counters = stats.counters;
    response.io = stats.io;
  }
  if (tracer != nullptr) {
    tracer->AddStats(root, stats.counters, stats.io);
    tracer->EndSpan(root);
    tracer->set_epoch(stats.epoch);
    response.trace = tracer->Finish();
  }
  return response;
}

QueryResponse MovingObjectService::DoKnn(const QueryRequest& request) {
  QueryResponse response;
  response.kind = request.kind;
  const bool collect = request.options.collect_counters;
  QueryStats stats;  // Always gathered: see DoRange on epoch pinning.
  std::unique_ptr<telemetry::TraceBuilder> tracer;
  size_t root = telemetry::TraceSpan::kNoParent;
  if (ShouldTrace(request)) {
    tracer = std::make_unique<telemetry::TraceBuilder>("pknn");
    root = tracer->StartSpan("service pknn");
    stats.trace = tracer.get();
    stats.trace_span = root;
  }

  Result<std::vector<Neighbor>> result = [&] {
    SharedOrExclusiveLock lock(&index_mu_,
                               !index_->SupportsConcurrentQueries());
    return index_->KnnQueryWithStats(request.issuer, request.qloc, request.k,
                                     request.tq, &stats);
  }();

  if (result.ok()) {
    response.neighbors = std::move(*result);
  } else {
    response.status = result.status();
  }
  response.epoch = stats.epoch;
  if (collect) {
    response.counters = stats.counters;
    response.io = stats.io;
  }
  if (tracer != nullptr) {
    tracer->AddStats(root, stats.counters, stats.io);
    tracer->EndSpan(root);
    tracer->set_epoch(stats.epoch);
    response.trace = tracer->Finish();
  }
  return response;
}

QueryResponse MovingObjectService::DoContinuousRegister(
    const QueryRequest& request) {
  QueryResponse response;
  response.kind = request.kind;
  if (monitor_ == nullptr) {
    response.status = Status::NotSupported(
        "continuous queries need the service constructed with policies, "
        "roles, and encoding");
    return response;
  }
  const bool collect = request.options.collect_counters;
  QueryStats stats;  // Always gathered: see DoRange on epoch pinning.

  // Lock order: continuous state first, then the index (the seeding PRQ).
  // A concurrency-capable index (the engine) needs only the shared lock —
  // its own state lock orders the seed against updates and continuous_mu_
  // orders it against monitor feeds — so registration never stalls the
  // concurrent query plane.
  MutexLock continuous_lock(&continuous_mu_);
  SharedOrExclusiveLock index_lock(&index_mu_,
                                   !index_->SupportsConcurrentQueries());
  Result<ContinuousQueryId> id = monitor_->Register(
      request.issuer, request.range, request.tq, &stats);
  if (!id.ok()) {
    response.status = id.status();
    return response;
  }
  response.continuous_id = *id;
  if (auto initial = monitor_->ResultOf(*id); initial.ok()) {
    response.ids = std::move(*initial);
  }
  response.epoch = stats.epoch;
  if (collect) {
    response.counters = stats.counters;
    response.io = stats.io;
  }
  return response;
}

QueryResponse MovingObjectService::DoContinuousCancel(
    const QueryRequest& request) {
  QueryResponse response;
  response.kind = request.kind;
  if (monitor_ == nullptr) {
    response.status = Status::NotSupported(
        "continuous queries need the service constructed with policies, "
        "roles, and encoding");
    return response;
  }
  MutexLock continuous_lock(&continuous_mu_);
  response.status = monitor_->Unregister(request.continuous_id);
  // Cancellation touches no index keys; the current epoch suffices.
  response.epoch = index_->encoding_epoch();
  return response;
}

// ---------------------------------------------------------------------------
// Policy lifecycle
// ---------------------------------------------------------------------------

Status MovingObjectService::MutateExclusive(
    const std::function<Status()>& fn) {
  // The live PolicyStore/RoleRegistry are read by query verification, so a
  // mutation must exclude queries: through the engine's state lock when
  // fronting an engine (its queries never take index_mu_ exclusively),
  // else through the service's own index lock (single-tree queries hold it
  // unique already, so unique here excludes them).
  if (engine_ != nullptr) return engine_->RunExclusive(fn);
  WriterMutexLock lock(&index_mu_);
  return fn();
}

Status MovingObjectService::ReencodeAndAdopt(Timestamp now,
                                             ReencodeStats* stats) {
  const auto started = Clock::now();
  PEB_ASSIGN_OR_RETURN(ReencodeResult result, catalog_->Reencode());
  *stats = result.stats;
  // Adopt on the index: the engine swaps all shards and re-keys under one
  // exclusive section; single-tree indexes are serialized here. The
  // catalog has already published the epoch, so an adoption failure must
  // not strand the index at mismatched keys: retry in self-sufficient
  // diff-all mode (which re-establishes key consistency from any partial
  // state), then surface the original error — a later re-encode of the
  // now-clean catalog would carry an empty re-key list and never repair.
  auto adopt = [&](const std::vector<UserId>* rekey) {
    if (index_->SupportsConcurrentQueries()) {
      return index_->AdoptSnapshot(result.snapshot, rekey);
    }
    WriterMutexLock lock(&index_mu_);
    return index_->AdoptSnapshot(result.snapshot, rekey);
  };
  Status adopted = adopt(&result.rekeyed);
  if (!adopted.ok()) {
    (void)adopt(nullptr);
    return adopted;
  }
  // Standing queries reconcile against the new epoch. Same locking shape
  // as AdvanceContinuous (the caller already holds continuous_mu_): the
  // monitor re-reads object states through the index.
  if (monitor_ != nullptr) {
    SharedOrExclusiveLock index_lock(&index_mu_,
                                     !index_->SupportsConcurrentQueries());
    PEB_RETURN_NOT_OK(monitor_->AdoptSnapshot(result.snapshot, now));
  }
  telemetry::Inc(reencode_rekeys_, result.rekeyed.size());
  telemetry::Observe(reencode_ms_, MsBetween(started, Clock::now()));
  return Status::OK();
}

QueryResponse MovingObjectService::DoPolicyLifecycle(
    const QueryRequest& request) {
  QueryResponse response;
  response.kind = request.kind;
  if (catalog_ == nullptr) {
    response.status = Status::NotSupported(
        "policy mutations need a service constructed over a PolicyCatalog");
    return response;
  }

  // Lock order (as for continuous registration): continuous state first,
  // then the index. Serializes lifecycle requests against each other and
  // against monitor feeds; queries keep flowing until the brief exclusive
  // sections inside.
  MutexLock continuous_lock(&continuous_mu_);

  bool run_reencode = false;
  switch (request.kind) {
    case QueryKind::kAddPolicy:
      response.status = MutateExclusive([&] {
        return catalog_->AddPolicy(request.owner, request.peer,
                                   request.policy);
      });
      run_reencode = response.ok() && request.reencode_now;
      break;
    case QueryKind::kRemovePolicy: {
      Result<size_t> removed{size_t{0}};
      response.status = MutateExclusive([&] {
        removed = catalog_->RemovePolicies(request.owner, request.peer);
        return removed.status();
      });
      if (response.ok()) {
        response.removed_policies = *removed;
        run_reencode = request.reencode_now;
      }
      break;
    }
    case QueryKind::kDefineRole:
      // Registering a role name touches tables verification never reads,
      // but stay uniform: all catalog writes run excluded.
      response.status = MutateExclusive([&] {
        response.role_id = catalog_->DefineRole(request.role_name);
        return Status::OK();
      });
      break;
    case QueryKind::kReencode:
      run_reencode = true;
      break;
    default:
      response.status = Status::Internal("non-lifecycle kind");
      break;
  }

  if (response.ok() && run_reencode) {
    response.status = ReencodeAndAdopt(request.tq, &response.reencode);
  }
  response.epoch = catalog_->epoch();
  return response;
}

// ---------------------------------------------------------------------------
// Update path
// ---------------------------------------------------------------------------

Status MovingObjectService::ApplyUpdate(const MovingObject& state,
                                        Timestamp now) {
  if (engine_ != nullptr) {
    // The engine's own state lock makes the update atomic vs queries.
    PEB_RETURN_NOT_OK(engine_->Update(state));
  } else {
    WriterMutexLock lock(&index_mu_);
    PEB_RETURN_NOT_OK(index_->Update(state));
  }
  if (monitor_ != nullptr) {
    MutexLock continuous_lock(&continuous_mu_);
    telemetry::Inc(continuous_fed_);
    PEB_RETURN_NOT_OK(monitor_->OnUpdate(state, now));
  }
  return Status::OK();
}

Status MovingObjectService::ApplyBatch(
    const std::vector<UpdateEvent>& events) {
  if (engine_ != nullptr) {
    // Engine path: shard-parallel application, atomic vs queries.
    PEB_RETURN_NOT_OK(engine_->ApplyBatch(events));
  } else {
    WriterMutexLock lock(&index_mu_);
    for (const UpdateEvent& ev : events) {
      PEB_RETURN_NOT_OK(index_->Update(ev.state));
    }
  }
  FeedContinuous(events);
  return Status::OK();
}

Status MovingObjectService::NotifyUpdated(const MovingObject& state,
                                          Timestamp now) {
  if (monitor_ == nullptr) return Status::OK();
  MutexLock continuous_lock(&continuous_mu_);
  telemetry::Inc(continuous_fed_);
  return monitor_->OnUpdate(state, now);
}

void MovingObjectService::FeedContinuous(
    const std::vector<UpdateEvent>& events) {
  if (monitor_ == nullptr) return;
  MutexLock continuous_lock(&continuous_mu_);
  telemetry::Inc(continuous_fed_, events.size());
  for (const UpdateEvent& ev : events) {
    // Events arrive in stream (global time) order regardless of how many
    // shards applied them — and, under delta ingestion, regardless of when
    // the engine later merges them into the trees: the monitor is fed from
    // the BATCH, synchronously with its application/publication, never from
    // a merge. continuous_mu_ serializes feeders, so the monotone stream
    // clock is asserted here and standing-query event streams are
    // identical on 1- and N-shard engines in both ingestion modes.
    assert(ev.t >= last_fed_t_ &&
           "continuous monitor fed out of stream order");
    last_fed_t_ = ev.t;
    (void)monitor_->OnUpdate(ev.state, ev.t);
  }
}

MovingObjectService::UpdateSession MovingObjectService::OpenUpdateSession(
    UpdateStream* stream, size_t batch_size) {
  UpdateSession session;
  session.service_ = this;
  session.stream_ = stream;
  session.batch_size_ = batch_size == 0 ? 1 : batch_size;
  if (engine_ != nullptr) {
    engine::BatchApplierOptions opts;
    opts.batch_size = session.batch_size_;
    opts.on_batch = [this](const std::vector<UpdateEvent>& events) {
      FeedContinuous(events);
    };
    session.applier_ = std::make_unique<engine::BatchUpdateApplier>(
        engine_, stream, opts);
  }
  return session;
}

Status MovingObjectService::UpdateSession::Apply(size_t count) {
  if (applier_ != nullptr) return applier_->Apply(count);
  std::vector<UpdateEvent> batch;
  while (count > 0) {
    size_t n = count < batch_size_ ? count : batch_size_;
    batch.clear();
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) batch.push_back(stream_->Next());
    PEB_RETURN_NOT_OK(service_->ApplyBatch(batch));
    events_applied_ += n;
    batches_applied_++;
    last_event_time_ = batch.back().t;
    count -= n;
  }
  return Status::OK();
}

size_t MovingObjectService::UpdateSession::events_applied() const {
  return applier_ != nullptr ? applier_->events_applied() : events_applied_;
}

size_t MovingObjectService::UpdateSession::batches_applied() const {
  return applier_ != nullptr ? applier_->batches_applied() : batches_applied_;
}

Timestamp MovingObjectService::UpdateSession::last_event_time() const {
  return applier_ != nullptr ? applier_->last_event_time()
                             : last_event_time_;
}

// ---------------------------------------------------------------------------
// Continuous-query observers
// ---------------------------------------------------------------------------

Result<std::vector<UserId>> MovingObjectService::ContinuousResult(
    ContinuousQueryId id) const {
  if (monitor_ == nullptr) {
    return Status::NotSupported("continuous queries disabled");
  }
  MutexLock continuous_lock(&continuous_mu_);
  return monitor_->ResultOf(id);
}

std::vector<ContinuousQueryEvent> MovingObjectService::TakeContinuousEvents() {
  if (monitor_ == nullptr) return {};
  MutexLock continuous_lock(&continuous_mu_);
  std::vector<ContinuousQueryEvent> events = monitor_->TakeEvents();
  telemetry::Inc(continuous_events_, events.size());
  return events;
}

Status MovingObjectService::AdvanceContinuous(Timestamp now) {
  if (monitor_ == nullptr) {
    return Status::NotSupported("continuous queries disabled");
  }
  // Same locking shape as registration: shared index access suffices for
  // a concurrency-capable index (Advance only reads via GetObject).
  MutexLock continuous_lock(&continuous_mu_);
  SharedOrExclusiveLock index_lock(&index_mu_,
                                   !index_->SupportsConcurrentQueries());
  return monitor_->Advance(now);
}

size_t MovingObjectService::num_continuous_queries() const {
  if (monitor_ == nullptr) return 0;
  MutexLock continuous_lock(&continuous_mu_);
  return monitor_->num_queries();
}

}  // namespace service
}  // namespace peb
