// Figure 19: Cost-function evaluation (Sections 6 and 7.10).
// Calibrates Equation 7's a1, a2 from two measured sample points, then
// compares estimated vs actual PRQ I/O while varying (i) the number of
// users, (ii) the policies per user, and (iii) the grouping factor.
#include "bench_common.h"

#include "costmodel/cost_model.h"

namespace {

using namespace peb;
using namespace peb::eval;

/// Builds a workload and measures actual PRQ I/O + the model inputs.
CostSample MeasurePoint(size_t users, size_t policies, double theta,
                        size_t queries) {
  WorkloadParams p;
  p.num_users = users;
  p.policies_per_user = policies;
  p.grouping_factor = theta;
  p.seed = 1;
  Workload w = Workload::Build(p);
  QuerySetOptions q;
  q.count = queries;
  auto batch = MakePrqQueries(w, q);
  RunResult r = RunPrqBatch(w.peb_service(), batch);

  CostSample s;
  s.inputs.num_users = static_cast<double>(users);
  s.inputs.policies_per_user = static_cast<double>(policies);
  s.inputs.grouping_factor = theta;
  s.inputs.num_leaves = static_cast<double>(w.peb().tree_stats().num_leaves);
  s.inputs.space_side = p.space_side;
  s.measured_io = r.avg_io;
  return s;
}

}  // namespace

int main() {
  size_t queries = Scaled(200, 20);

  // Calibration: two sample points differing in density (Section 6's
  // procedure; the paper quotes a1 = 10, a2 = 0.3 for uniform data).
  CostSample c1 = MeasurePoint(Scaled(20000, 1000), 50, 0.7, queries);
  CostSample c2 = MeasurePoint(Scaled(80000, 2000), 50, 0.7, queries);
  auto model = CostModel::Calibrate(c1, c2);
  if (!model.ok()) {
    std::cerr << "calibration failed: " << model.status() << "\n";
    return 1;
  }
  std::cout << "Calibrated Eq. 7: a1 = " << Fmt(model->a1(), 3)
            << ", a2 = " << Fmt(model->a2(), 3) << "\n";

  TablePrinter users_t({"users", "actual I/O", "estimated I/O"});
  for (size_t n : {10000, 30000, 50000, 70000, 90000}) {
    CostSample s = MeasurePoint(Scaled(n, 1000), 50, 0.7, queries);
    users_t.AddRow({std::to_string(n / 1000) + "K", Fmt(s.measured_io, 2),
                    Fmt(model->EstimateIo(s.inputs), 2)});
  }
  PrintBanner(std::cout, "Figure 19 (left): cost model vs users");
  users_t.Print(std::cout);

  TablePrinter pol_t({"policies/user", "actual I/O", "estimated I/O"});
  for (size_t np : {10, 30, 50, 70, 90}) {
    CostSample s = MeasurePoint(Scaled(60000, 1000), np, 0.7, queries);
    pol_t.AddRow({std::to_string(np), Fmt(s.measured_io, 2),
                  Fmt(model->EstimateIo(s.inputs), 2)});
  }
  PrintBanner(std::cout, "Figure 19 (middle): cost model vs policies");
  pol_t.Print(std::cout);

  TablePrinter theta_t({"theta", "actual I/O", "estimated I/O"});
  for (double theta : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    CostSample s = MeasurePoint(Scaled(60000, 1000), 50, theta, queries);
    theta_t.AddRow({Fmt(theta, 1), Fmt(s.measured_io, 2),
                    Fmt(model->EstimateIo(s.inputs), 2)});
  }
  PrintBanner(std::cout, "Figure 19 (right): cost model vs grouping factor");
  theta_t.Print(std::cout);
  return 0;
}
