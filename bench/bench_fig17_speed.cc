// Figure 17: Effect of the maximum object speed (Section 7.8).
// Sweeps vmax 1..6. Faster objects force larger query-window enlargement
// (Figure 2), growing the spatial index's search region; the PEB-tree is
// much less sensitive because policy compatibility dominates its keys.
#include "bench_common.h"

int main() {
  using namespace peb::eval;

  QuerySetOptions q;
  q.count = Scaled(200, 20);

  TablePrinter prq = MakeIoTable("max speed");
  TablePrinter knn = MakeIoTable("max speed");

  for (double speed : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    WorkloadParams p;
    p.num_users = Scaled(60000, 1000);
    p.max_speed = speed;
    p.seed = 1;
    Workload w = Workload::Build(p);
    ComparisonPoint m = MeasureBoth(w, q);
    AddIoRow(prq, Fmt(speed, 0), m.peb_prq.avg_io, m.spatial_prq.avg_io);
    AddIoRow(knn, Fmt(speed, 0), m.peb_knn.avg_io, m.spatial_knn.avg_io);
  }

  PrintBanner(std::cout, "Figure 17(a): PRQ I/O vs maximum speed");
  prq.Print(std::cout);
  PrintBanner(std::cout, "Figure 17(b): PkNN I/O vs maximum speed");
  knn.Print(std::cout);
  return 0;
}
