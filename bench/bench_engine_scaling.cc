// Engine scaling sweep: shard count x thread count over the Table-1
// default uniform workload. For every cell the same PRQ/PkNN batches run
// against a ShardedPebEngine; the table reports wall-clock per batch,
// aggregate I/O per query (sum of per-shard buffer-pool reads, so the
// numbers stay comparable to the paper's single-tree figures), and the
// query-throughput speedup versus the single PEB-tree baseline.
//
//   PEB_BENCH_SCALE=10 ./bench_engine_scaling   # quick smoke run
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/sharded_engine.h"

using namespace peb;
using namespace peb::eval;

int main() {
  unsigned cores = std::thread::hardware_concurrency();
  std::cout << "hardware threads: " << cores << "\n";
  if (cores < 4) {
    std::cout << "note: shard fan-out is wall-clock parallel only across "
                 "physical cores;\non this machine the table measures the "
                 "engine's total work, not its parallel speedup.\n";
  }
  WorkloadParams p;  // Table 1 defaults.
  p.num_users = Scaled(60000, 1000);
  std::cout << "building workload (" << p.num_users << " users)...\n";
  Workload w = Workload::Build(p);

  QuerySetOptions q;
  q.count = Scaled(200, 20);
  auto prq = MakePrqQueries(w, q);
  auto knn = MakePknnQueries(w, q);

  // Single PEB-tree baseline.
  w.peb().ResetIo();
  RunResult ref_prq = RunPrqBatch(w.peb(), prq);
  RunResult ref_knn = RunPknnBatch(w.peb(), knn);
  double ref_ms = ref_prq.wall_ms + ref_knn.wall_ms;

  PrintBanner(std::cout,
              "Sharded engine scaling (uniform, Table 1 defaults, " +
                  std::to_string(q.count) + " queries/batch)");
  std::cout << "single PEB-tree: PRQ " << Fmt(ref_prq.wall_ms) << " ms / "
            << Fmt(ref_prq.avg_io) << " I/O, PkNN " << Fmt(ref_knn.wall_ms)
            << " ms / " << Fmt(ref_knn.avg_io) << " I/O\n\n";

  TablePrinter table({"shards", "threads", "frames", "PRQ ms", "PRQ I/O",
                      "PkNN ms", "PkNN I/O", "speedup"});
  double cell_4x4_speedup = 0.0;
  for (size_t shards : {1, 2, 4, 8}) {
    for (size_t threads : {1, 2, 4, 8}) {
      auto engine = MakeEngine(w, shards, threads);
      engine->ResetIo();
      RunResult eprq = RunPrqBatch(*engine, prq);
      RunResult eknn = RunPknnBatch(*engine, knn);
      double cell_ms = eprq.wall_ms + eknn.wall_ms;
      double speedup = cell_ms > 0.0 ? ref_ms / cell_ms : 0.0;
      if (shards == 4 && threads == 4) cell_4x4_speedup = speedup;
      // "frames" is the real aggregate buffer size; a value above the
      // baseline's buffer_pages means the per-shard floor inflated the
      // cache and I/O is not directly comparable to the single tree.
      size_t frames = engine->buffer_frames_total();
      std::string frames_cell = std::to_string(frames) +
                                (frames > p.buffer_pages ? "!" : "");
      table.AddRow({std::to_string(shards), std::to_string(threads),
                    frames_cell, Fmt(eprq.wall_ms), Fmt(eprq.avg_io),
                    Fmt(eknn.wall_ms), Fmt(eknn.avg_io),
                    Fmt(speedup) + "x"});
    }
  }
  table.Print(std::cout);
  std::cout << "\n(frames marked '!' exceed the baseline's "
            << p.buffer_pages << "-page budget via the per-shard floor)\n";
  std::cout << "4 shards / 4 threads: " << Fmt(cell_4x4_speedup)
            << "x query-throughput vs the single PEB-tree\n";
  return 0;
}
