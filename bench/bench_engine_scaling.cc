// Engine scaling sweep: shard count x thread count over the Table-1
// default uniform workload, driven exclusively through the
// MovingObjectService request/response API. For every cell the same
// PRQ/PkNN batches run against a service fronting a ShardedPebEngine; the
// table reports wall-clock per batch, per-query I/O (from each
// QueryResponse's own delta — sums of per-shard reads, so the numbers stay
// comparable to the paper's single-tree figures), and the
// query-throughput speedup versus the single PEB-tree baseline.
//
// A second, closed-loop multi-client mode measures the service under
// concurrent submission: C client threads each issue mixed PRQ/PkNN
// requests back to back against a 4-shard engine service, and the run
// reports throughput plus p50/p95/p99 latency per client count.
//
//   PEB_BENCH_SCALE=10 ./bench_engine_scaling                       # smoke
//   ./bench_engine_scaling --json BENCH_engine_scaling.json         # + JSON
//   ./bench_engine_scaling --service-json BENCH_service.json  # closed loop
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/sharded_engine.h"
#include "service/service.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

using namespace peb;
using namespace peb::eval;
using peb::service::MovingObjectService;
using peb::service::QueryRequest;
using peb::service::QueryResponse;

namespace {

/// Builds a service over `index` with the workload's policy world.
MovingObjectService MakeService(Workload& w, PrivacyAwareIndex* index,
                                size_t workers = 0) {
  service::ServiceOptions opts;
  opts.num_workers = workers;
  opts.time_domain = w.params().time_domain;
  return MovingObjectService(index, &w.store(), &w.roles(), &w.encoding(),
                             opts);
}

struct ClosedLoopPoint {
  size_t clients = 0;
  size_t ops = 0;
  double wall_ms = 0.0;
  double throughput_qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// Closed loop: each of `clients` threads executes its share of the mixed
/// request list back to back (a new request is issued the moment the
/// previous response returns — the classic closed-loop client model).
/// Latencies go through a shared telemetry histogram — the thread-striped
/// recording the live service uses, instead of per-client sorted vectors.
ClosedLoopPoint RunClosedLoop(MovingObjectService& svc,
                              const std::vector<QueryRequest>& mixed,
                              size_t clients) {
  ClosedLoopPoint point;
  point.clients = clients;
  point.ops = mixed.size();
  telemetry::Histogram latency;
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t i = c; i < mixed.size(); i += clients) {
        auto q0 = std::chrono::steady_clock::now();
        QueryResponse resp = svc.Execute(mixed[i]);
        auto q1 = std::chrono::steady_clock::now();
        if (!resp.ok()) {
          std::cerr << "closed-loop query failed: "
                    << resp.status.ToString() << "\n";
          std::abort();
        }
        latency.Record(
            std::chrono::duration<double, std::milli>(q1 - q0).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  auto t1 = std::chrono::steady_clock::now();
  point.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  telemetry::Histogram::Snapshot snap = latency.Snap();
  point.p50_ms = snap.p50;
  point.p95_ms = snap.p95;
  point.p99_ms = snap.p99;
  point.throughput_qps =
      point.wall_ms > 0.0
          ? 1000.0 * static_cast<double>(snap.count) / point.wall_ms
          : 0.0;
  return point;
}

Json ToJson(const ClosedLoopPoint& p) {
  return Json::Object()
      .Set("clients", static_cast<uint64_t>(p.clients))
      .Set("ops", static_cast<uint64_t>(p.ops))
      .Set("wall_ms", p.wall_ms)
      .Set("throughput_qps", p.throughput_qps)
      .Set("p50_ms", p.p50_ms)
      .Set("p95_ms", p.p95_ms)
      .Set("p99_ms", p.p99_ms);
}

void CheckResponse(const QueryResponse& resp, const char* what) {
  if (!resp.ok()) {
    std::cerr << "telemetry smoke " << what
              << " failed: " << resp.status.ToString() << "\n";
    std::abort();
  }
}

/// Telemetry smoke: drives EVERY registered instrument of a 4-shard engine
/// service — query batches, deadline sheds, continuous queries, the full
/// policy lifecycle — then writes the registry snapshot to `snapshot_path`
/// and a forced PkNN Chrome trace to `trace_path`. CI gates on both: every
/// counter and histogram in the snapshot must be non-zero, and the trace
/// must carry per-shard spans. Mutates the workload's catalog — run last.
void RunTelemetrySmoke(Workload& w, const std::string& snapshot_path,
                       const std::string& trace_path) {
  PrintBanner(std::cout, "Telemetry smoke (4-shard engine service)");
  telemetry::MetricsRegistry registry;  // Private: only this smoke's numbers.
  telemetry::TelemetryOptions topts;
  topts.registry = &registry;
  topts.trace_sample_every = 7;  // Sampling path exercised alongside forced.
  topts.slow_query_ms = 0.0;     // Every query is "slow": the log fills.
  topts.slow_log_capacity = 16;

  auto engine =
      MakeEngine(w, 4, 4, engine::RouterPolicy::kHashUser, topts);
  service::ServiceOptions so;
  so.num_workers = 2;  // Real queueing: queue_ms, depth gauge, shed path.
  so.time_domain = w.params().time_domain;
  so.telemetry = topts;
  MovingObjectService svc(engine.get(), w.catalog(), so);

  QuerySetOptions q;
  q.count = Scaled(200, 60);
  q.seed = 5150;
  auto prq = MakePrqQueries(w, q);
  auto knn = MakePknnQueries(w, q);

  // PRQ + PkNN batches through Submit: latency histograms, per-shard query
  // counters, PkNN rounds/retirements, pool traffic.
  std::vector<QueryRequest> batch;
  batch.reserve(prq.size() + knn.size());
  for (const auto& query : prq) {
    batch.push_back(QueryRequest::Prq(query.issuer, query.range, query.tq));
  }
  // Half the PkNN batch runs at k=1: issuers at smoke scale often have
  // fewer policy-visible friends than the default k, and a shard only
  // retires once k verified neighbors exist globally — k=1 guarantees the
  // retirement path fires as soon as any shard verifies one friend.
  for (size_t i = 0; i < knn.size(); ++i) {
    const auto& query = knn[i];
    size_t k = (i % 2 == 0) ? query.k : 1;
    batch.push_back(QueryRequest::Pknn(query.issuer, query.qloc, k, query.tq));
  }
  for (auto& f : svc.SubmitBatch(batch)) {
    CheckResponse(f.get(), "batch query");
  }

  // Deadline sheds, one per query kind: an already-elapsed deadline is
  // always exceeded by the time a worker picks the request up.
  QueryRequest shed_prq =
      QueryRequest::Prq(prq[0].issuer, prq[0].range, prq[0].tq);
  shed_prq.options.deadline_ms = 1e-9;
  QueryRequest shed_knn =
      QueryRequest::Pknn(knn[0].issuer, knn[0].qloc, knn[0].k, knn[0].tq);
  shed_knn.options.deadline_ms = 1e-9;
  if (svc.Submit(shed_prq).get().ok() || svc.Submit(shed_knn).get().ok()) {
    std::cerr << "telemetry smoke: expected both sheds to be rejected\n";
    std::abort();
  }

  // Continuous queries: standing PRQs over a central window, fed by an
  // update session, advanced through time so membership actually churns.
  std::vector<ContinuousQueryId> standing;
  Rect region = Rect::CenteredSquare(
      {w.params().space_side / 2, w.params().space_side / 2},
      w.params().space_side * 0.4);
  for (UserId issuer = 0; issuer < 20; ++issuer) {
    QueryResponse reg = svc.Execute(
        QueryRequest::RegisterContinuous(issuer, region, w.now()));
    CheckResponse(reg, "continuous register");
    standing.push_back(reg.continuous_id);
  }
  if (auto stream = CloneUniformUpdateStream(w)) {
    auto session = svc.OpenUpdateSession(stream.get(), 256);
    Status applied = session.Apply(Scaled(4000, 400));
    if (!applied.ok()) {
      std::cerr << "telemetry smoke update session failed: "
                << applied.ToString() << "\n";
      std::abort();
    }
  }
  // Re-run the query batch while the session's updates are still buffered
  // in the shard deltas: the overlay probes fire (engine.delta.probes) and
  // freshly-updated friends answer from their delta state
  // (engine.delta.shadowed). Then drain explicitly — the session's volume
  // sits below the merge threshold by design, so the merge instruments
  // (engine.delta.merges, merged_records, engine.merge.lock_hold_ms) need
  // this deliberate merge to move.
  for (auto& f : svc.SubmitBatch(batch)) {
    CheckResponse(f.get(), "post-update batch query");
  }
  {
    Status merged = engine->MergeDeltas();
    if (!merged.ok()) {
      std::cerr << "telemetry smoke delta merge failed: " << merged.ToString()
                << "\n";
      std::abort();
    }
  }
  (void)svc.AdvanceContinuous(w.now() + 120.0);
  size_t drained = svc.TakeContinuousEvents().size();
  CheckResponse(svc.Execute(QueryRequest::CancelContinuous(standing[0])),
                "continuous cancel");

  // Policy lifecycle: role, grant (re-encode + re-key now), revoke, flush.
  // The peer is the last user so the pair stays inside the population at
  // any PEB_BENCH_SCALE.
  UserId policy_peer = static_cast<UserId>(w.params().num_users - 1);
  QueryResponse role = svc.Execute(QueryRequest::DefineRole("smoke-role"));
  CheckResponse(role, "define role");
  Lpp policy;
  policy.role = role.role_id;
  policy.locr = Rect{{-1e9, -1e9}, {1e9, 1e9}};
  policy.tint = TimeOfDayInterval::AllDay();
  CheckResponse(
      svc.Execute(QueryRequest::AddPolicy(3, policy_peer, policy, w.now())),
      "add policy");
  CheckResponse(svc.Execute(QueryRequest::RemovePolicy(
                    3, policy_peer, w.now(), /*reencode_now=*/false)),
                "remove policy");
  CheckResponse(svc.Execute(QueryRequest::Reencode(w.now())), "reencode");

  // One forced trace: per-shard / per-round PkNN spans for about:tracing.
  QueryRequest traced =
      QueryRequest::Pknn(knn[1].issuer, knn[1].qloc, knn[1].k, knn[1].tq);
  traced.options.trace = true;
  QueryResponse traced_resp = svc.Execute(traced);
  CheckResponse(traced_resp, "traced pknn");

  std::cout << "continuous events drained: " << drained
            << ", slow-log entries: " << svc.SlowQueries().size()
            << ", traced spans: " << traced_resp.trace.spans.size() << "\n";

  if (!trace_path.empty()) {
    std::ofstream f(trace_path);
    f << traced_resp.trace.ChromeJson() << "\n";
    std::cout << (f.good() ? "wrote " : "FAILED to write ") << trace_path
              << "\n";
  }
  if (!snapshot_path.empty()) {
    std::ofstream f(snapshot_path);
    f << registry.SnapshotJson() << "\n";
    std::cout << (f.good() ? "wrote " : "FAILED to write ") << snapshot_path
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = JsonPathFromArgs(argc, argv);
  std::string service_json_path =
      FlagPathFromArgs(argc, argv, "--service-json");
  std::string telemetry_json_path =
      FlagPathFromArgs(argc, argv, "--telemetry-json");
  std::string trace_json_path = FlagPathFromArgs(argc, argv, "--trace-json");
  unsigned cores = std::thread::hardware_concurrency();
  std::cout << "hardware threads: " << cores << "\n";
  if (cores < 4) {
    std::cout << "note: shard fan-out is wall-clock parallel only across "
                 "physical cores;\non this machine the table measures the "
                 "engine's total work, not its parallel speedup.\n";
  }
  WorkloadParams p;  // Table 1 defaults.
  p.num_users = Scaled(60000, 1000);
  std::cout << "building workload (" << p.num_users << " users)...\n";
  Workload w = Workload::Build(p);

  QuerySetOptions q;
  q.count = Scaled(200, 20);
  auto prq = MakePrqQueries(w, q);
  auto knn = MakePknnQueries(w, q);

  // Single PEB-tree baseline, through the workload's service.
  RunResult ref_prq = RunPrqBatch(w.peb_service(), prq);
  RunResult ref_knn = RunPknnBatch(w.peb_service(), knn);
  double ref_ms = ref_prq.wall_ms + ref_knn.wall_ms;

  PrintBanner(std::cout,
              "Sharded engine scaling (uniform, Table 1 defaults, " +
                  std::to_string(q.count) + " queries/batch)");
  std::cout << "single PEB-tree: PRQ " << Fmt(ref_prq.wall_ms) << " ms / "
            << Fmt(ref_prq.avg_io) << " I/O, PkNN " << Fmt(ref_knn.wall_ms)
            << " ms / " << Fmt(ref_knn.avg_io) << " I/O\n\n";

  TablePrinter table({"shards", "threads", "frames", "PRQ ms", "PRQ I/O",
                      "PkNN ms", "PkNN I/O", "hit%", "speedup"});
  double cell_4x4_speedup = 0.0;
  Json cells = Json::Array();
  for (size_t shards : {1, 2, 4, 8}) {
    for (size_t threads : {1, 2, 4, 8}) {
      auto engine = MakeEngine(w, shards, threads);
      engine->ResetIo();
      MovingObjectService svc = MakeService(w, engine.get());
      RunResult eprq = RunPrqBatch(svc, prq);
      RunResult eknn = RunPknnBatch(svc, knn);
      IoStats io = svc.aggregate_io();
      double cell_ms = eprq.wall_ms + eknn.wall_ms;
      double speedup = cell_ms > 0.0 ? ref_ms / cell_ms : 0.0;
      if (shards == 4 && threads == 4) cell_4x4_speedup = speedup;
      // All shard trees share one pool, so "frames" is exactly the
      // configured budget and I/O is directly comparable to the single
      // tree.
      size_t frames = engine->buffer_frames_total();
      table.AddRow({std::to_string(shards), std::to_string(threads),
                    std::to_string(frames), Fmt(eprq.wall_ms),
                    Fmt(eprq.avg_io), Fmt(eknn.wall_ms), Fmt(eknn.avg_io),
                    Fmt(io.HitRatio() * 100.0, 1), Fmt(speedup) + "x"});
      cells.Push(Json::Object()
                     .Set("shards", static_cast<uint64_t>(shards))
                     .Set("threads", static_cast<uint64_t>(threads))
                     .Set("frames", static_cast<uint64_t>(frames))
                     .Set("prq", ToJson(eprq))
                     .Set("pknn", ToJson(eknn))
                     .Set("io", ToJson(io))
                     .Set("speedup", speedup));
    }
  }
  table.Print(std::cout);
  std::cout << "\n4 shards / 4 threads: " << Fmt(cell_4x4_speedup)
            << "x query-throughput vs the single PEB-tree\n";

  if (!json_path.empty()) {
    Json doc = Json::Object()
                   .Set("bench", "engine_scaling")
                   .Set("scale", BenchScale())
                   .Set("hardware_threads", static_cast<uint64_t>(cores))
                   .Set("params", ToJson(p))
                   .Set("queries_per_batch", static_cast<uint64_t>(q.count))
                   .Set("baseline", Json::Object()
                                        .Set("prq", ToJson(ref_prq))
                                        .Set("pknn", ToJson(ref_knn)))
                   .Set("cells", std::move(cells));
    if (doc.WriteTo(json_path)) {
      std::cout << "wrote " << json_path << "\n";
    }
  }

  // --- closed-loop multi-client service mode -------------------------------
  {
    // One 4-shard engine service serves every client count; the mixed
    // request list interleaves PRQ and PkNN.
    auto engine = MakeEngine(w, 4, 4);
    MovingObjectService svc = MakeService(w, engine.get());
    std::vector<QueryRequest> mixed;
    mixed.reserve(prq.size() + knn.size());
    for (size_t i = 0; i < prq.size() || i < knn.size(); ++i) {
      if (i < prq.size()) {
        mixed.push_back(
            QueryRequest::Prq(prq[i].issuer, prq[i].range, prq[i].tq));
      }
      if (i < knn.size()) {
        mixed.push_back(QueryRequest::Pknn(knn[i].issuer, knn[i].qloc,
                                           knn[i].k, knn[i].tq));
      }
    }

    PrintBanner(std::cout,
                "Closed-loop service clients (4-shard engine, mixed "
                "PRQ/PkNN)");
    TablePrinter clients_table(
        {"clients", "ops", "wall ms", "qps", "p50 ms", "p95 ms", "p99 ms"});
    Json points = Json::Array();
    for (size_t clients : {1, 2, 4, 8}) {
      ClosedLoopPoint point = RunClosedLoop(svc, mixed, clients);
      clients_table.AddRow(
          {std::to_string(point.clients), std::to_string(point.ops),
           Fmt(point.wall_ms), Fmt(point.throughput_qps, 1),
           Fmt(point.p50_ms, 3), Fmt(point.p95_ms, 3),
           Fmt(point.p99_ms, 3)});
      points.Push(ToJson(point));
    }
    clients_table.Print(std::cout);

    if (!service_json_path.empty()) {
      Json doc =
          Json::Object()
              .Set("bench", "service_closed_loop")
              .Set("scale", BenchScale())
              .Set("hardware_threads", static_cast<uint64_t>(cores))
              .Set("params", ToJson(p))
              .Set("engine", Json::Object()
                                 .Set("shards", static_cast<uint64_t>(4))
                                 .Set("threads", static_cast<uint64_t>(4)))
              .Set("requests", static_cast<uint64_t>(mixed.size()))
              .Set("points", std::move(points));
      if (doc.WriteTo(service_json_path)) {
        std::cout << "wrote " << service_json_path << "\n";
      }
    }
  }

  // Runs last: the smoke's policy-lifecycle requests mutate the catalog.
  if (!telemetry_json_path.empty() || !trace_json_path.empty()) {
    RunTelemetrySmoke(w, telemetry_json_path, trace_json_path);
  }
  return 0;
}
