// Engine scaling sweep: shard count x thread count over the Table-1
// default uniform workload, driven exclusively through the
// MovingObjectService request/response API. For every cell the same
// PRQ/PkNN batches run against a service fronting a ShardedPebEngine; the
// table reports wall-clock per batch, per-query I/O (from each
// QueryResponse's own delta — sums of per-shard reads, so the numbers stay
// comparable to the paper's single-tree figures), and the
// query-throughput speedup versus the single PEB-tree baseline.
//
// A second, closed-loop multi-client mode measures the service under
// concurrent submission: C client threads each issue mixed PRQ/PkNN
// requests back to back against a 4-shard engine service, and the run
// reports throughput plus p50/p95/p99 latency per client count.
//
//   PEB_BENCH_SCALE=10 ./bench_engine_scaling                       # smoke
//   ./bench_engine_scaling --json BENCH_engine_scaling.json         # + JSON
//   ./bench_engine_scaling --service-json BENCH_service.json  # closed loop
#include <algorithm>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/sharded_engine.h"
#include "service/service.h"

using namespace peb;
using namespace peb::eval;
using peb::service::MovingObjectService;
using peb::service::QueryRequest;
using peb::service::QueryResponse;

namespace {

/// Builds a service over `index` with the workload's policy world.
MovingObjectService MakeService(Workload& w, PrivacyAwareIndex* index,
                                size_t workers = 0) {
  service::ServiceOptions opts;
  opts.num_workers = workers;
  opts.time_domain = w.params().time_domain;
  return MovingObjectService(index, &w.store(), &w.roles(), &w.encoding(),
                             opts);
}

struct ClosedLoopPoint {
  size_t clients = 0;
  size_t ops = 0;
  double wall_ms = 0.0;
  double throughput_qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

/// Closed loop: each of `clients` threads executes its share of the mixed
/// request list back to back (a new request is issued the moment the
/// previous response returns — the classic closed-loop client model).
ClosedLoopPoint RunClosedLoop(MovingObjectService& svc,
                              const std::vector<QueryRequest>& mixed,
                              size_t clients) {
  ClosedLoopPoint point;
  point.clients = clients;
  point.ops = mixed.size();
  std::vector<std::vector<double>> latencies(clients);
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& lat = latencies[c];
      for (size_t i = c; i < mixed.size(); i += clients) {
        auto q0 = std::chrono::steady_clock::now();
        QueryResponse resp = svc.Execute(mixed[i]);
        auto q1 = std::chrono::steady_clock::now();
        if (!resp.ok()) {
          std::cerr << "closed-loop query failed: "
                    << resp.status.ToString() << "\n";
          std::abort();
        }
        lat.push_back(
            std::chrono::duration<double, std::milli>(q1 - q0).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  auto t1 = std::chrono::steady_clock::now();
  point.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::vector<double> all;
  for (auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());
  point.p50_ms = Percentile(all, 0.50);
  point.p95_ms = Percentile(all, 0.95);
  point.p99_ms = Percentile(all, 0.99);
  point.throughput_qps = point.wall_ms > 0.0
                             ? 1000.0 * static_cast<double>(all.size()) /
                                   point.wall_ms
                             : 0.0;
  return point;
}

Json ToJson(const ClosedLoopPoint& p) {
  return Json::Object()
      .Set("clients", static_cast<uint64_t>(p.clients))
      .Set("ops", static_cast<uint64_t>(p.ops))
      .Set("wall_ms", p.wall_ms)
      .Set("throughput_qps", p.throughput_qps)
      .Set("p50_ms", p.p50_ms)
      .Set("p95_ms", p.p95_ms)
      .Set("p99_ms", p.p99_ms);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = JsonPathFromArgs(argc, argv);
  std::string service_json_path =
      FlagPathFromArgs(argc, argv, "--service-json");
  unsigned cores = std::thread::hardware_concurrency();
  std::cout << "hardware threads: " << cores << "\n";
  if (cores < 4) {
    std::cout << "note: shard fan-out is wall-clock parallel only across "
                 "physical cores;\non this machine the table measures the "
                 "engine's total work, not its parallel speedup.\n";
  }
  WorkloadParams p;  // Table 1 defaults.
  p.num_users = Scaled(60000, 1000);
  std::cout << "building workload (" << p.num_users << " users)...\n";
  Workload w = Workload::Build(p);

  QuerySetOptions q;
  q.count = Scaled(200, 20);
  auto prq = MakePrqQueries(w, q);
  auto knn = MakePknnQueries(w, q);

  // Single PEB-tree baseline, through the workload's service.
  RunResult ref_prq = RunPrqBatch(w.peb_service(), prq);
  RunResult ref_knn = RunPknnBatch(w.peb_service(), knn);
  double ref_ms = ref_prq.wall_ms + ref_knn.wall_ms;

  PrintBanner(std::cout,
              "Sharded engine scaling (uniform, Table 1 defaults, " +
                  std::to_string(q.count) + " queries/batch)");
  std::cout << "single PEB-tree: PRQ " << Fmt(ref_prq.wall_ms) << " ms / "
            << Fmt(ref_prq.avg_io) << " I/O, PkNN " << Fmt(ref_knn.wall_ms)
            << " ms / " << Fmt(ref_knn.avg_io) << " I/O\n\n";

  TablePrinter table({"shards", "threads", "frames", "PRQ ms", "PRQ I/O",
                      "PkNN ms", "PkNN I/O", "hit%", "speedup"});
  double cell_4x4_speedup = 0.0;
  Json cells = Json::Array();
  for (size_t shards : {1, 2, 4, 8}) {
    for (size_t threads : {1, 2, 4, 8}) {
      auto engine = MakeEngine(w, shards, threads);
      engine->ResetIo();
      MovingObjectService svc = MakeService(w, engine.get());
      RunResult eprq = RunPrqBatch(svc, prq);
      RunResult eknn = RunPknnBatch(svc, knn);
      IoStats io = svc.aggregate_io();
      double cell_ms = eprq.wall_ms + eknn.wall_ms;
      double speedup = cell_ms > 0.0 ? ref_ms / cell_ms : 0.0;
      if (shards == 4 && threads == 4) cell_4x4_speedup = speedup;
      // All shard trees share one pool, so "frames" is exactly the
      // configured budget and I/O is directly comparable to the single
      // tree.
      size_t frames = engine->buffer_frames_total();
      table.AddRow({std::to_string(shards), std::to_string(threads),
                    std::to_string(frames), Fmt(eprq.wall_ms),
                    Fmt(eprq.avg_io), Fmt(eknn.wall_ms), Fmt(eknn.avg_io),
                    Fmt(io.HitRatio() * 100.0, 1), Fmt(speedup) + "x"});
      cells.Push(Json::Object()
                     .Set("shards", static_cast<uint64_t>(shards))
                     .Set("threads", static_cast<uint64_t>(threads))
                     .Set("frames", static_cast<uint64_t>(frames))
                     .Set("prq", ToJson(eprq))
                     .Set("pknn", ToJson(eknn))
                     .Set("io", ToJson(io))
                     .Set("speedup", speedup));
    }
  }
  table.Print(std::cout);
  std::cout << "\n4 shards / 4 threads: " << Fmt(cell_4x4_speedup)
            << "x query-throughput vs the single PEB-tree\n";

  if (!json_path.empty()) {
    Json doc = Json::Object()
                   .Set("bench", "engine_scaling")
                   .Set("scale", BenchScale())
                   .Set("hardware_threads", static_cast<uint64_t>(cores))
                   .Set("params", ToJson(p))
                   .Set("queries_per_batch", static_cast<uint64_t>(q.count))
                   .Set("baseline", Json::Object()
                                        .Set("prq", ToJson(ref_prq))
                                        .Set("pknn", ToJson(ref_knn)))
                   .Set("cells", std::move(cells));
    if (doc.WriteTo(json_path)) {
      std::cout << "wrote " << json_path << "\n";
    }
  }

  // --- closed-loop multi-client service mode -------------------------------
  {
    // One 4-shard engine service serves every client count; the mixed
    // request list interleaves PRQ and PkNN.
    auto engine = MakeEngine(w, 4, 4);
    MovingObjectService svc = MakeService(w, engine.get());
    std::vector<QueryRequest> mixed;
    mixed.reserve(prq.size() + knn.size());
    for (size_t i = 0; i < prq.size() || i < knn.size(); ++i) {
      if (i < prq.size()) {
        mixed.push_back(
            QueryRequest::Prq(prq[i].issuer, prq[i].range, prq[i].tq));
      }
      if (i < knn.size()) {
        mixed.push_back(QueryRequest::Pknn(knn[i].issuer, knn[i].qloc,
                                           knn[i].k, knn[i].tq));
      }
    }

    PrintBanner(std::cout,
                "Closed-loop service clients (4-shard engine, mixed "
                "PRQ/PkNN)");
    TablePrinter clients_table(
        {"clients", "ops", "wall ms", "qps", "p50 ms", "p95 ms", "p99 ms"});
    Json points = Json::Array();
    for (size_t clients : {1, 2, 4, 8}) {
      ClosedLoopPoint point = RunClosedLoop(svc, mixed, clients);
      clients_table.AddRow(
          {std::to_string(point.clients), std::to_string(point.ops),
           Fmt(point.wall_ms), Fmt(point.throughput_qps, 1),
           Fmt(point.p50_ms, 3), Fmt(point.p95_ms, 3),
           Fmt(point.p99_ms, 3)});
      points.Push(ToJson(point));
    }
    clients_table.Print(std::cout);

    if (!service_json_path.empty()) {
      Json doc =
          Json::Object()
              .Set("bench", "service_closed_loop")
              .Set("scale", BenchScale())
              .Set("hardware_threads", static_cast<uint64_t>(cores))
              .Set("params", ToJson(p))
              .Set("engine", Json::Object()
                                 .Set("shards", static_cast<uint64_t>(4))
                                 .Set("threads", static_cast<uint64_t>(4)))
              .Set("requests", static_cast<uint64_t>(mixed.size()))
              .Set("points", std::move(points));
      if (doc.WriteTo(service_json_path)) {
        std::cout << "wrote " << service_json_path << "\n";
      }
    }
  }
  return 0;
}
