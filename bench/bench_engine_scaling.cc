// Engine scaling sweep: shard count x thread count over the Table-1
// default uniform workload. For every cell the same PRQ/PkNN batches run
// against a ShardedPebEngine; the table reports wall-clock per batch,
// aggregate I/O per query (sum of per-shard buffer-pool reads, so the
// numbers stay comparable to the paper's single-tree figures), and the
// query-throughput speedup versus the single PEB-tree baseline.
//
//   PEB_BENCH_SCALE=10 ./bench_engine_scaling                       # smoke
//   ./bench_engine_scaling --json BENCH_engine_scaling.json         # + JSON
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/sharded_engine.h"

using namespace peb;
using namespace peb::eval;

int main(int argc, char** argv) {
  std::string json_path = JsonPathFromArgs(argc, argv);
  unsigned cores = std::thread::hardware_concurrency();
  std::cout << "hardware threads: " << cores << "\n";
  if (cores < 4) {
    std::cout << "note: shard fan-out is wall-clock parallel only across "
                 "physical cores;\non this machine the table measures the "
                 "engine's total work, not its parallel speedup.\n";
  }
  WorkloadParams p;  // Table 1 defaults.
  p.num_users = Scaled(60000, 1000);
  std::cout << "building workload (" << p.num_users << " users)...\n";
  Workload w = Workload::Build(p);

  QuerySetOptions q;
  q.count = Scaled(200, 20);
  auto prq = MakePrqQueries(w, q);
  auto knn = MakePknnQueries(w, q);

  // Single PEB-tree baseline.
  w.peb().ResetIo();
  RunResult ref_prq = RunPrqBatch(w.peb(), prq);
  RunResult ref_knn = RunPknnBatch(w.peb(), knn);
  double ref_ms = ref_prq.wall_ms + ref_knn.wall_ms;

  PrintBanner(std::cout,
              "Sharded engine scaling (uniform, Table 1 defaults, " +
                  std::to_string(q.count) + " queries/batch)");
  std::cout << "single PEB-tree: PRQ " << Fmt(ref_prq.wall_ms) << " ms / "
            << Fmt(ref_prq.avg_io) << " I/O, PkNN " << Fmt(ref_knn.wall_ms)
            << " ms / " << Fmt(ref_knn.avg_io) << " I/O\n\n";

  TablePrinter table({"shards", "threads", "frames", "PRQ ms", "PRQ I/O",
                      "PkNN ms", "PkNN I/O", "hit%", "speedup"});
  double cell_4x4_speedup = 0.0;
  Json cells = Json::Array();
  for (size_t shards : {1, 2, 4, 8}) {
    for (size_t threads : {1, 2, 4, 8}) {
      auto engine = MakeEngine(w, shards, threads);
      engine->ResetIo();
      RunResult eprq = RunPrqBatch(*engine, prq);
      RunResult eknn = RunPknnBatch(*engine, knn);
      IoStats io = engine->aggregate_io();
      double cell_ms = eprq.wall_ms + eknn.wall_ms;
      double speedup = cell_ms > 0.0 ? ref_ms / cell_ms : 0.0;
      if (shards == 4 && threads == 4) cell_4x4_speedup = speedup;
      // All shard trees share one pool, so "frames" is exactly the
      // configured budget and I/O is directly comparable to the single
      // tree.
      size_t frames = engine->buffer_frames_total();
      table.AddRow({std::to_string(shards), std::to_string(threads),
                    std::to_string(frames), Fmt(eprq.wall_ms),
                    Fmt(eprq.avg_io), Fmt(eknn.wall_ms), Fmt(eknn.avg_io),
                    Fmt(io.HitRatio() * 100.0, 1), Fmt(speedup) + "x"});
      cells.Push(Json::Object()
                     .Set("shards", static_cast<uint64_t>(shards))
                     .Set("threads", static_cast<uint64_t>(threads))
                     .Set("frames", static_cast<uint64_t>(frames))
                     .Set("prq", ToJson(eprq))
                     .Set("pknn", ToJson(eknn))
                     .Set("io", ToJson(io))
                     .Set("speedup", speedup));
    }
  }
  table.Print(std::cout);
  std::cout << "\n4 shards / 4 threads: " << Fmt(cell_4x4_speedup)
            << "x query-throughput vs the single PEB-tree\n";

  if (!json_path.empty()) {
    Json doc = Json::Object()
                   .Set("bench", "engine_scaling")
                   .Set("scale", BenchScale())
                   .Set("hardware_threads", static_cast<uint64_t>(cores))
                   .Set("params", ToJson(p))
                   .Set("queries_per_batch", static_cast<uint64_t>(q.count))
                   .Set("baseline", Json::Object()
                                        .Set("prq", ToJson(ref_prq))
                                        .Set("pknn", ToJson(ref_knn)))
                   .Set("cells", std::move(cells));
    if (doc.WriteTo(json_path)) {
      std::cout << "wrote " << json_path << "\n";
    }
  }
  return 0;
}
