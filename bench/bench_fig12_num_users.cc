// Figure 12: Effect of the total number of users (Section 7.3).
// Sweeps N from 10K to 100K (Table 1) and reports the average I/O of 200
// privacy-aware range queries (a) and kNN queries (b) for the PEB-tree and
// the spatial-index filtering baseline.
#include "bench_common.h"

int main() {
  using namespace peb::eval;

  std::vector<size_t> user_counts{10000, 20000, 30000, 40000, 50000,
                                  60000, 70000, 80000, 90000, 100000};

  QuerySetOptions q;
  q.count = Scaled(200, 20);

  TablePrinter prq = MakeIoTable("users");
  TablePrinter knn = MakeIoTable("users");

  for (size_t n : user_counts) {
    WorkloadParams p;
    p.num_users = Scaled(n, 1000);
    p.seed = 1;
    Workload w = Workload::Build(p);
    ComparisonPoint m = MeasureBoth(w, q);
    std::string label = std::to_string(n / 1000) + "K";
    AddIoRow(prq, label, m.peb_prq.avg_io, m.spatial_prq.avg_io);
    AddIoRow(knn, label, m.peb_knn.avg_io, m.spatial_knn.avg_io);
  }

  PrintBanner(std::cout, "Figure 12(a): PRQ I/O vs number of users");
  prq.Print(std::cout);
  PrintBanner(std::cout, "Figure 12(b): PkNN I/O vs number of users");
  knn.Print(std::cout);
  return 0;
}
