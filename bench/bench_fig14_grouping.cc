// Figure 14: Effect of the grouping factor (Section 7.5).
// Sweeps θ from 0 (policies toward anyone) to 1 (only in-group policies).
// Larger θ lets the sequence values cluster related users, so PEB cost
// falls; the spatial index is insensitive to θ.
#include "bench_common.h"

int main() {
  using namespace peb::eval;

  QuerySetOptions q;
  q.count = Scaled(200, 20);

  TablePrinter prq = MakeIoTable("theta");
  TablePrinter knn = MakeIoTable("theta");

  for (double theta : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                       1.0}) {
    WorkloadParams p;
    p.num_users = Scaled(60000, 1000);
    p.grouping_factor = theta;
    p.seed = 1;
    Workload w = Workload::Build(p);
    ComparisonPoint m = MeasureBoth(w, q);
    AddIoRow(prq, Fmt(theta, 1), m.peb_prq.avg_io, m.spatial_prq.avg_io);
    AddIoRow(knn, Fmt(theta, 1), m.peb_knn.avg_io, m.spatial_knn.avg_io);
  }

  PrintBanner(std::cout, "Figure 14(a): PRQ I/O vs grouping factor");
  prq.Print(std::cout);
  PrintBanner(std::cout, "Figure 14(b): PkNN I/O vs grouping factor");
  knn.Print(std::cout);
  return 0;
}
