// Figure 13: Effect of the number of policies per user (Section 7.4).
// Sweeps Np from 10 to 100 at 60K users; the PEB-tree cost grows with Np
// (more qualifying users per query) while the spatial baseline is flat
// (it only ever looks at locations).
#include "bench_common.h"

int main() {
  using namespace peb::eval;

  QuerySetOptions q;
  q.count = Scaled(200, 20);

  TablePrinter prq = MakeIoTable("policies/user");
  TablePrinter knn = MakeIoTable("policies/user");

  for (size_t np : {10, 20, 30, 40, 50, 60, 70, 80, 90, 100}) {
    WorkloadParams p;
    p.num_users = Scaled(60000, 1000);
    p.policies_per_user = np;
    p.seed = 1;
    Workload w = Workload::Build(p);
    ComparisonPoint m = MeasureBoth(w, q);
    AddIoRow(prq, std::to_string(np), m.peb_prq.avg_io,
             m.spatial_prq.avg_io);
    AddIoRow(knn, std::to_string(np), m.peb_knn.avg_io,
             m.spatial_knn.avg_io);
  }

  PrintBanner(std::cout, "Figure 13(a): PRQ I/O vs policies per user");
  prq.Print(std::cout);
  PrintBanner(std::cout, "Figure 13(b): PkNN I/O vs policies per user");
  knn.Print(std::cout);
  return 0;
}
