// Figure 15: Effect of the location-related query parameters (Section 7.6).
// (a) PRQ I/O as the query window side grows 100..1000: the PEB-tree stays
//     nearly constant (bounded by the issuer's related users) while the
//     spatial index grows with the window.
// (b) PkNN I/O as k grows 1..10.
#include "bench_common.h"

int main() {
  using namespace peb::eval;

  WorkloadParams p;
  p.num_users = Scaled(60000, 1000);
  p.seed = 1;
  Workload w = Workload::Build(p);

  TablePrinter prq = MakeIoTable("window side");
  for (double side : {100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}) {
    QuerySetOptions q;
    q.count = Scaled(200, 20);
    q.window_side = side;
    auto queries = MakePrqQueries(w, q);
    RunResult peb = RunPrqBatch(w.peb_service(), queries);
    RunResult spatial = RunPrqBatch(w.spatial_service(), queries);
    AddIoRow(prq, Fmt(side, 0), peb.avg_io, spatial.avg_io);
  }
  PrintBanner(std::cout, "Figure 15(a): PRQ I/O vs query window size");
  prq.Print(std::cout);

  TablePrinter knn = MakeIoTable("k");
  for (size_t k = 1; k <= 10; ++k) {
    QuerySetOptions q;
    q.count = Scaled(200, 20);
    q.k = k;
    auto queries = MakePknnQueries(w, q);
    RunResult peb = RunPknnBatch(w.peb_service(), queries);
    RunResult spatial = RunPknnBatch(w.spatial_service(), queries);
    AddIoRow(knn, std::to_string(k), peb.avg_io, spatial.avg_io);
  }
  PrintBanner(std::cout, "Figure 15(b): PkNN I/O vs k");
  knn.Print(std::cout);
  return 0;
}
