// Ablation study (ours, motivated by the design choices DESIGN.md calls
// out). Three questions:
//  1. PRQ strategy: Section 5.3's per-(friend SV x Z interval) ranges vs
//     Figure 7's literal SVmin..SVmax span scan.
//  2. PkNN matrix order: Figure 9's triangular order vs spatial-first
//     column-major order.
//  3. Key priority: how much does SV-before-ZV matter? Approximated by
//     comparing the PEB-tree against the spatial baseline's candidate
//     volume (ZV-only keys), plus the Z-curve vs Hilbert clustering
//     micro-comparison below.
#include "bench_common.h"

#include "spatial/hilbert.h"
#include "spatial/zcurve.h"

int main() {
  using namespace peb::eval;

  QuerySetOptions q;
  q.count = Scaled(200, 20);

  // --- 1. PRQ strategy -----------------------------------------------------
  {
    TablePrinter t({"theta", "per-friend I/O", "span-scan I/O",
                    "per-friend cands", "span-scan cands"});
    for (double theta : {0.0, 0.5, 0.7, 1.0}) {
      RunResult per, span;
      for (auto strategy : {peb::PrqStrategy::kPerFriendIntervals,
                            peb::PrqStrategy::kSpanScan}) {
        WorkloadParams p;
        p.num_users = Scaled(60000, 1000);
        p.grouping_factor = theta;
        p.prq_strategy = strategy;
        p.seed = 1;
        Workload w = Workload::Build(p);
        auto queries = MakePrqQueries(w, q);
        RunResult r = RunPrqBatch(w.peb_service(), queries);
        if (strategy == peb::PrqStrategy::kPerFriendIntervals) {
          per = r;
        } else {
          span = r;
        }
      }
      t.AddRow({Fmt(theta, 1), Fmt(per.avg_io, 2), Fmt(span.avg_io, 2),
                Fmt(per.avg_candidates, 0), Fmt(span.avg_candidates, 0)});
    }
    PrintBanner(std::cout,
                "Ablation 1: PRQ per-friend ranges vs Figure-7 span scan");
    t.Print(std::cout);
  }

  // --- 2. PkNN search order ------------------------------------------------
  {
    TablePrinter t({"k", "triangular I/O", "column-major I/O"});
    for (size_t k : {1, 5, 10}) {
      RunResult tri, col;
      for (auto order :
           {peb::KnnOrder::kTriangular, peb::KnnOrder::kColumnMajor}) {
        WorkloadParams p;
        p.num_users = Scaled(60000, 1000);
        p.knn_order = order;
        p.seed = 1;
        Workload w = Workload::Build(p);
        QuerySetOptions kq = q;
        kq.k = k;
        auto queries = MakePknnQueries(w, kq);
        RunResult r = RunPknnBatch(w.peb_service(), queries);
        if (order == peb::KnnOrder::kTriangular) {
          tri = r;
        } else {
          col = r;
        }
      }
      t.AddRow({std::to_string(k), Fmt(tri.avg_io, 2), Fmt(col.avg_io, 2)});
    }
    PrintBanner(std::cout,
                "Ablation 2: PkNN triangular vs column-major order");
    t.Print(std::cout);
  }

  // --- 3. Z-curve vs Hilbert clustering ------------------------------------
  // Average 1-D span of a 64x64-cell window's decomposition: smaller spans
  // mean better clustering for range scans. This isolates the curve choice
  // from the rest of the stack (the PEB key's location bits could use
  // either curve).
  {
    using namespace peb;
    const uint32_t bits = 10;
    Rng rng(7);
    double z_intervals = 0.0, z_span = 0.0, h_span = 0.0;
    const int trials = 200;
    for (int i = 0; i < trials; ++i) {
      uint32_t cx = static_cast<uint32_t>(rng.NextBelow((1u << bits) - 64));
      uint32_t cy = static_cast<uint32_t>(rng.NextBelow((1u << bits) - 64));
      auto ivs = ZIntervalsForCellRange(cx, cy, cx + 63, cy + 63, bits);
      z_intervals += static_cast<double>(ivs.size());
      z_span += static_cast<double>(ivs.back().hi - ivs.front().lo + 1);
      // Hilbert span of the same window: min/max of corner + edge samples
      // (exhaustive over the window's 4096 cells).
      uint64_t lo = ~0ull, hi = 0;
      for (uint32_t x = cx; x <= cx + 63; ++x) {
        for (uint32_t y = cy; y <= cy + 63; ++y) {
          uint64_t d = HilbertEncode(x, y, bits);
          lo = std::min(lo, d);
          hi = std::max(hi, d);
        }
      }
      h_span += static_cast<double>(hi - lo + 1);
    }
    TablePrinter t({"curve", "avg 1-D span of 64x64 window", "exact intervals"});
    t.AddRow({"Z-order", Fmt(z_span / trials, 0), Fmt(z_intervals / trials, 1)});
    t.AddRow({"Hilbert", Fmt(h_span / trials, 0), "-"});
    PrintBanner(std::cout, "Ablation 3: Z-curve vs Hilbert window span");
    t.Print(std::cout);
    std::cout << "(spans are comparable: the curve choice is secondary to\n"
                 " the SV-before-ZV key priority, as the paper argues)\n";
  }
  return 0;
}
