// Minimal JSON emitter for the BENCH_*.json perf-trajectory files.
//
// Each bench binary accepts `--json <path>` and, when given, writes one
// machine-readable document: workload parameters, wall-clock, aggregate
// I/O, and cache-hit rates. The files are committed (scaled-down runs) and
// uploaded as CI artifacts, so regressions in the storage/scan hot path
// show up as diffs instead of anecdotes.
//
// The value model is the usual tagged tree (null/bool/number/string/
// array/object); objects preserve insertion order so diffs stay stable.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace peb {
namespace eval {

class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double v) : kind_(Kind::kNumber), num_(v) {}
  Json(int v) : kind_(Kind::kNumber), num_(v) {}
  Json(unsigned v) : kind_(Kind::kNumber), num_(v) {}
  Json(int64_t v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(uint64_t v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}

  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  /// Embeds `text` verbatim — it must already be valid JSON. Lets benches
  /// splice in documents produced elsewhere (a telemetry registry
  /// SnapshotJson()) without re-parsing them into this value model.
  static Json Raw(std::string text) {
    Json j;
    j.kind_ = Kind::kRaw;
    j.str_ = std::move(text);
    return j;
  }

  /// Object field (insertion-ordered). Returns *this for chaining.
  Json& Set(const std::string& key, Json value) {
    fields_.emplace_back(key, std::move(value));
    return *this;
  }

  /// Array element. Returns *this for chaining.
  Json& Push(Json value) {
    items_.push_back(std::move(value));
    return *this;
  }

  void Dump(std::ostream& os, int indent = 0) const {
    switch (kind_) {
      case Kind::kNull:
        os << "null";
        break;
      case Kind::kBool:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::kNumber: {
        // Integers print without a fraction; everything else round-trips.
        if (num_ == static_cast<double>(static_cast<int64_t>(num_))) {
          os << static_cast<int64_t>(num_);
        } else {
          std::ostringstream tmp;
          tmp.precision(10);
          tmp << num_;
          os << tmp.str();
        }
        break;
      }
      case Kind::kRaw:
        os << str_;
        break;
      case Kind::kString:
        os << '"';
        for (char c : str_) {
          switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default: os << c;
          }
        }
        os << '"';
        break;
      case Kind::kArray: {
        if (items_.empty()) {
          os << "[]";
          break;
        }
        os << "[\n";
        for (size_t i = 0; i < items_.size(); ++i) {
          Pad(os, indent + 2);
          items_[i].Dump(os, indent + 2);
          os << (i + 1 < items_.size() ? ",\n" : "\n");
        }
        Pad(os, indent);
        os << ']';
        break;
      }
      case Kind::kObject: {
        if (fields_.empty()) {
          os << "{}";
          break;
        }
        os << "{\n";
        for (size_t i = 0; i < fields_.size(); ++i) {
          Pad(os, indent + 2);
          os << '"' << fields_[i].first << "\": ";
          fields_[i].second.Dump(os, indent + 2);
          os << (i + 1 < fields_.size() ? ",\n" : "\n");
        }
        Pad(os, indent);
        os << '}';
        break;
      }
    }
  }

  /// Writes the document to `path` (with a trailing newline). Returns
  /// false (and reports to stderr) on failure.
  bool WriteTo(const std::string& path) const {
    std::ofstream f(path);
    if (!f) {
      std::cerr << "bench: cannot write " << path << "\n";
      return false;
    }
    Dump(f);
    f << "\n";
    return f.good();
  }

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kRaw, kArray, kObject };

  static void Pad(std::ostream& os, int n) {
    for (int i = 0; i < n; ++i) os << ' ';
  }

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> fields_;
};

/// Extracts the value of a `--json <path>` argument ("" when absent).
/// Value of an arbitrary `--flag <path>` pair ("" when absent).
inline std::string FlagPathFromArgs(int argc, char** argv,
                                    const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == flag) return argv[i + 1];
  }
  return "";
}

inline std::string JsonPathFromArgs(int argc, char** argv) {
  return FlagPathFromArgs(argc, argv, "--json");
}

}  // namespace eval
}  // namespace peb
