// Policy-churn bench: the cost of the ONLINE policy lifecycle.
//
// The paper's encoding is one-shot preprocessing (Figure 11); this bench
// measures what production churn costs instead: a stream of AddPolicy /
// RemovePolicy mutations against a live 4-shard engine, each re-encoding
// incrementally and re-keying only the affected component, with queries
// interleaved to observe service latency during churn.
//
// Reported per run (and emitted as BENCH_policy_churn.json):
//   * re-encode latency per mutation (mean / p95 / max, ms)
//   * users re-keyed per mutation (mean / max, and as a fraction of the
//     population — the incrementality claim: << 1.0)
//   * PRQ latency during churn (p50 / p95 / p99, ms)
//   * one full Figure-5 rebuild time for the incremental-vs-full ratio
//   * a final equivalence check: PRQ answers on the churned engine vs a
//     from-scratch rebuild of the mutated policy corpus.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "policy/policy_catalog.h"
#include "policy/policy_generator.h"
#include "service/service.h"
#include "telemetry/metrics.h"

using namespace peb;
using namespace peb::eval;

namespace {

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  WorkloadParams params;
  params.num_users = Scaled(20000, 400);
  params.policies_per_user = Scaled(30, 5);
  params.grid_bits = 8;
  // Pure in-group policies (θ = 1): the relatedness graph stays partitioned
  // into bounded friend clusters, the production-realistic shape, so the
  // affected component of a mutation is the cluster — the locality the
  // incremental re-encoder exploits. (At θ < 1 the uniform cross-group
  // tail merges everything into one giant component, where incremental
  // degenerates to a full re-encode by construction.)
  params.grouping_factor = 1.0;
  const size_t kMutations = Scaled(200, 20);
  const size_t kQueriesPerMutation = 3;
  // The generator's group span (policy_generator.h: auto group size).
  const size_t kGroupSize = std::max(params.policies_per_user + 1,
                                     size_t{64});

  std::printf("policy churn: %zu users, %zu policies/user, %zu mutations\n",
              params.num_users, params.policies_per_user, kMutations);

  // Private registry: the bench's own series plus every engine/service
  // instrument, embedded verbatim in the JSON report.
  telemetry::MetricsRegistry registry;
  telemetry::TelemetryOptions topts;
  topts.registry = &registry;

  Workload w = Workload::Build(params);
  auto engine =
      MakeEngine(w, /*num_shards=*/4, /*num_threads=*/4,
                 engine::RouterPolicy::kHashUser, topts);
  service::ServiceOptions so;
  so.time_domain = params.time_domain;
  so.telemetry = topts;
  service::MovingObjectService svc(engine.get(), w.catalog(), so);

  QuerySetOptions qopt;
  qopt.count = Scaled(200, 30);
  qopt.seed = 4242;
  auto queries = MakePrqQueries(w, qopt);

  PolicyGeneratorOptions lpp_opt;
  lpp_opt.space = Rect::Space(params.space_side);
  lpp_opt.time_domain = params.time_domain;
  Rng rng(params.seed + 0xC0DE);
  RoleId friend_role = w.catalog()->DefineRole("friend");

  telemetry::Histogram& reencode_ms = *registry.histogram("churn.reencode_ms");
  telemetry::Histogram& query_ms = *registry.histogram("churn.prq_ms");
  std::vector<double> rekeyed, component;
  size_t next_query = 0;
  for (size_t m = 0; m < kMutations; ++m) {
    UserId owner = static_cast<UserId>(rng.NextBelow(params.num_users));
    service::QueryResponse resp;
    if (m % 2 == 0) {
      // Grants target the owner's own cluster (as the corpus does), so
      // churn does not bridge clusters into one giant component.
      size_t g_lo = (owner / kGroupSize) * kGroupSize;
      size_t g_len = std::min(kGroupSize, params.num_users - g_lo);
      UserId peer = owner;
      while (peer == owner && g_len > 1) {
        peer = static_cast<UserId>(g_lo + rng.NextBelow(g_len));
      }
      if (peer == owner) continue;
      resp = svc.Execute(service::QueryRequest::AddPolicy(
          owner, peer, RandomLpp(rng, friend_role, lpp_opt), w.now()));
    } else {
      // Revoke an existing grant (walk forward to a user with one).
      UserId u = owner;
      for (size_t probe = 0; probe < params.num_users; ++probe) {
        if (!w.store().PeersOf(u).empty()) break;
        u = static_cast<UserId>((u + 1) % params.num_users);
      }
      auto peers = w.store().PeersOf(u);
      if (peers.empty()) continue;
      UserId peer = peers[rng.NextBelow(peers.size())];
      resp = svc.Execute(
          service::QueryRequest::RemovePolicy(u, peer, w.now()));
    }
    if (!resp.ok()) {
      std::fprintf(stderr, "mutation failed: %s\n",
                   resp.status.ToString().c_str());
      return 1;
    }
    reencode_ms.Record(resp.reencode.seconds * 1e3);
    rekeyed.push_back(static_cast<double>(resp.reencode.rekeyed));
    component.push_back(static_cast<double>(resp.reencode.component_users));

    for (size_t q = 0; q < kQueriesPerMutation; ++q) {
      const auto& query = queries[next_query++ % queries.size()];
      service::QueryResponse r = svc.Execute(
          service::QueryRequest::Prq(query.issuer, query.range, query.tq));
      if (!r.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     r.status.ToString().c_str());
        return 1;
      }
      query_ms.Record(r.exec_ms);
    }
  }

  // Equivalence spot-check: the churned, incrementally re-keyed engine
  // must answer exactly like a from-scratch rebuild of the mutated corpus.
  CatalogOptions cat_opts = w.catalog()->options();
  PolicyCatalog fresh(w.store(), w.roles(), cat_opts);
  engine::EngineOptions eng_opts = engine->options();
  engine::ShardedPebEngine rebuilt(eng_opts, &fresh.store(), &fresh.roles(),
                                   fresh.snapshot());
  if (!rebuilt.LoadDataset(w.dataset()).ok()) {
    std::fprintf(stderr, "rebuild load failed\n");
    return 1;
  }
  size_t checked = 0, mismatches = 0;
  for (size_t i = 0; i < std::min<size_t>(queries.size(), 50); ++i) {
    auto a = engine->RangeQuery(queries[i].issuer, queries[i].range,
                                queries[i].tq);
    auto b = rebuilt.RangeQuery(queries[i].issuer, queries[i].range,
                                queries[i].tq);
    if (!a.ok() || !b.ok() || *a != *b) mismatches++;
    checked++;
  }

  // Full-rebuild reference time (the cost incrementality avoids).
  auto full = w.catalog()->RebuildFull();
  double full_ms = full.ok() ? full->stats.seconds * 1e3 : 0.0;

  double rekey_fraction =
      Mean(rekeyed) / static_cast<double>(params.num_users);
  uint64_t final_epoch = full.ok() ? full->stats.epoch : 0;

  telemetry::Histogram::Snapshot re_snap = reencode_ms.Snap();
  telemetry::Histogram::Snapshot q_snap = query_ms.Snap();
  std::printf("re-encode : %.3f ms mean, %.3f ms p95, %.3f ms max\n",
              re_snap.mean(), re_snap.p95, re_snap.max);
  std::printf("re-keyed  : %.1f users mean (%.4f of population), %.0f max\n",
              Mean(rekeyed), rekey_fraction, Percentile(rekeyed, 1.0));
  std::printf("component : %.1f users mean\n", Mean(component));
  std::printf("PRQ churn : %.3f ms p50, %.3f ms p95, %.3f ms p99\n",
              q_snap.p50, q_snap.p95, q_snap.p99);
  std::printf("full rebuild: %.3f ms (vs %.3f ms mean incremental)\n",
              full_ms, re_snap.mean());
  std::printf("equivalence: %zu/%zu PRQs identical to from-scratch rebuild\n",
              checked - mismatches, checked);
  if (mismatches > 0) {
    std::fprintf(stderr, "FAIL: churned engine diverged from rebuild\n");
    return 1;
  }

  std::string json_path = JsonPathFromArgs(argc, argv);
  if (!json_path.empty()) {
    Json doc = Json::Object()
        .Set("bench", "policy_churn")
        .Set("params", ToJson(params))
        .Set("num_mutations", static_cast<uint64_t>(re_snap.count))
        .Set("queries_during_churn", static_cast<uint64_t>(q_snap.count))
        .Set("reencode_ms",
             Json::Object()
                 .Set("mean", re_snap.mean())
                 .Set("p95", re_snap.p95)
                 .Set("max", re_snap.max))
        .Set("rekeyed_users",
             Json::Object()
                 .Set("mean", Mean(rekeyed))
                 .Set("max", Percentile(rekeyed, 1.0))
                 .Set("fraction_of_population", rekey_fraction))
        .Set("component_users_mean", Mean(component))
        .Set("query_ms",
             Json::Object()
                 .Set("p50", q_snap.p50)
                 .Set("p95", q_snap.p95)
                 .Set("p99", q_snap.p99))
        .Set("full_rebuild_ms", full_ms)
        .Set("equivalence_checked", static_cast<uint64_t>(checked))
        .Set("equivalence_mismatches", static_cast<uint64_t>(mismatches))
        .Set("final_epoch", final_epoch)
        .Set("telemetry", Json::Raw(registry.SnapshotJson()));
    if (!doc.WriteTo(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
