// Shared scaffolding for the figure-reproduction benches. Each bench binary
// regenerates one figure of Section 7: it sweeps the figure's parameter,
// runs the paper's query batch (Table 1 defaults elsewhere), and prints the
// PEB-tree and spatial-index series side by side.
//
// Environment knobs:
//   PEB_BENCH_SCALE  — divides user counts and query counts (default 1 =
//                      full paper scale; e.g. 10 for a quick smoke run).
//
// CLI knobs:
//   --json <path>    — additionally emit the run as a machine-readable
//                      BENCH_*.json document (see bench_json.h).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_json.h"
#include "eval/runner.h"
#include "eval/table_printer.h"
#include "eval/workload.h"

namespace peb {
namespace eval {

/// Scale divisor from the environment (>= 1).
inline double BenchScale() {
  const char* s = std::getenv("PEB_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  double v = std::atof(s);
  return v >= 1.0 ? v : 1.0;
}

/// Scales a count down by BenchScale(), keeping a sane floor.
inline size_t Scaled(size_t full, size_t floor_value = 1) {
  auto v = static_cast<size_t>(static_cast<double>(full) / BenchScale());
  return v < floor_value ? floor_value : v;
}

/// One measured point: PEB vs spatial on the same query batch.
struct ComparisonPoint {
  RunResult peb_prq, spatial_prq;
  RunResult peb_knn, spatial_knn;
};

/// Runs the standard PRQ + PkNN batches on a built workload. All queries
/// go through the workload's MovingObjectService front-ends; per-query
/// I/O comes from each QueryResponse's own delta.
inline ComparisonPoint MeasureBoth(Workload& w, const QuerySetOptions& q) {
  ComparisonPoint out;
  auto prq = MakePrqQueries(w, q);
  auto knn = MakePknnQueries(w, q);
  out.peb_prq = RunPrqBatch(w.peb_service(), prq);
  out.peb_knn = RunPknnBatch(w.peb_service(), knn);
  out.spatial_prq = RunPrqBatch(w.spatial_service(), prq);
  out.spatial_knn = RunPknnBatch(w.spatial_service(), knn);
  return out;
}

/// Standard header for the two-series I/O tables.
inline TablePrinter MakeIoTable(const std::string& param) {
  return TablePrinter({param, "PEB-tree I/O", "Spatial-index I/O", "ratio"});
}

inline void AddIoRow(TablePrinter& t, const std::string& x, double peb,
                     double spatial) {
  double ratio = peb > 0.0 ? spatial / peb : 0.0;
  t.AddRow({x, Fmt(peb, 2), Fmt(spatial, 2), Fmt(ratio, 1) + "x"});
}

// --- JSON serialization of the common measurement types --------------------

inline Json ToJson(const RunResult& r) {
  return Json::Object()
      .Set("avg_io", r.avg_io)
      .Set("avg_candidates", r.avg_candidates)
      .Set("avg_results", r.avg_results)
      .Set("avg_probes", r.avg_probes)
      .Set("avg_rounds", r.avg_rounds)
      .Set("avg_seek_descents", r.avg_descents)
      .Set("wall_ms", r.wall_ms);
}

inline Json ToJson(const IoStats& s) {
  return Json::Object()
      .Set("physical_reads", s.physical_reads)
      .Set("physical_writes", s.physical_writes)
      .Set("logical_fetches", s.logical_fetches)
      .Set("cache_hits", s.cache_hits)
      .Set("prefetch_reads", s.prefetch_reads)
      .Set("evictions", s.evictions)
      .Set("hit_ratio", s.HitRatio());
}

inline Json ToJson(const WorkloadParams& p) {
  return Json::Object()
      .Set("num_users", static_cast<uint64_t>(p.num_users))
      .Set("policies_per_user", static_cast<uint64_t>(p.policies_per_user))
      .Set("grouping_factor", p.grouping_factor)
      .Set("space_side", p.space_side)
      .Set("max_speed", p.max_speed)
      .Set("buffer_pages", static_cast<uint64_t>(p.buffer_pages))
      .Set("grid_bits", static_cast<uint64_t>(p.grid_bits))
      .Set("max_z_intervals", static_cast<uint64_t>(p.max_z_intervals))
      .Set("seed", p.seed);
}

}  // namespace eval
}  // namespace peb
