// Figure 11: Preprocessing time for policy encoding (Section 7.2).
// (a) varies the number of users 10K..100K at 50 policies/user;
// (b) varies the policies per user 10..100 at 60K users.
// The metric is the wall-clock time of the one-time offline policy
// comparison + sequence-value generation (PolicyEncoding::Build).
#include "bench_common.h"

#include <chrono>

#include "policy/policy_generator.h"
#include "policy/sequence_value.h"

namespace {

double EncodeSeconds(size_t users, size_t policies) {
  using namespace peb;
  PolicyGeneratorOptions pg;
  pg.num_users = users;
  pg.policies_per_user = policies;
  pg.grouping_factor = 0.7;
  pg.seed = 1;
  GeneratedPolicies gen = GeneratePolicies(pg);

  CompatibilityOptions compat;
  SvQuantizer quant(64.0, 26);
  auto t0 = std::chrono::steady_clock::now();
  PolicyEncoding enc =
      PolicyEncoding::Build(gen.store, users, compat, {}, quant);
  auto t1 = std::chrono::steady_clock::now();
  // Keep the encoding alive through the timing read.
  if (enc.num_users() != users) std::abort();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  using namespace peb::eval;

  TablePrinter a({"users", "preprocessing (s)"});
  for (size_t n = 10000; n <= 100000; n += 10000) {
    size_t users = Scaled(n, 1000);
    a.AddRow({std::to_string(n / 1000) + "K",
              Fmt(EncodeSeconds(users, Scaled(50, 5)), 3)});
  }
  PrintBanner(std::cout, "Figure 11(a): policy-encoding time vs users");
  a.Print(std::cout);

  TablePrinter b({"policies/user", "preprocessing (s)"});
  for (size_t np = 10; np <= 100; np += 10) {
    b.AddRow({std::to_string(np),
              Fmt(EncodeSeconds(Scaled(60000, 1000), np), 3)});
  }
  PrintBanner(std::cout,
              "Figure 11(b): policy-encoding time vs policies per user");
  b.Print(std::cout);
  return 0;
}
