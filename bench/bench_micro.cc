// Micro-benchmarks (google-benchmark): per-operation costs of the building
// blocks — space-filling curves, PEB key generation, B+-tree operations,
// buffer pool hits, policy compatibility, and end-to-end index updates.
//
// After the google-benchmark suite, two A/B cells always run:
//  * "range-scan cell": the same window-query batch against a Bx-tree with
//    the legacy per-interval root-descent scan (the pre-leaf-cursor
//    behavior: fast path off, no interval coalescing) and with the
//    LeafCursor fast path + default coalescing.
//  * "pknn cell": the same PkNN batch against a PEB-tree with the legacy
//    Figure-9 round path (fixed Dk/k step, cumulative single-span rings)
//    and with the incremental path (cost-model-seeded radius, exact
//    annulus deltas, qsv-run coalescing). Results must be bit-identical —
//    the cell doubles as the equivalence oracle — and CI fails when the
//    incremental speedup drops below 1.0.
//  * "update interference cell": closed-loop PRQ latency while a paced
//    update stream lands concurrently, direct apply vs log-structured
//    delta ingest. Settled answers must be bit-identical, and CI fails
//    when the delta side's query p99 stops beating direct apply or its
//    merge lock-hold p99 exceeds direct's batch holds.
//  * "reopen cell": cold ShardedPebEngine::Open() of a checkpointed file
//    (superblock manifest + tree attach, no per-object work) vs a full
//    in-memory rebuild of the same dataset. Answers must be bit-identical
//    and CI fails when the cold open stops beating the rebuild.
// `--json <path>` records the cells in BENCH_micro.json so the reductions
// are part of the perf trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "btree/btree.h"
#include "engine/sharded_engine.h"
#include "peb/peb_tree.h"
#include "btree/btree_traits.h"
#include "bxtree/bxtree.h"
#include "common/rng.h"
#include "motion/uniform_generator.h"
#include "motion/update_stream.h"
#include "peb/peb_key.h"
#include "policy/compatibility.h"
#include "spatial/hilbert.h"
#include "spatial/zcurve.h"
#include "spatial/zrange.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "telemetry/metrics.h"

namespace peb {
namespace {

void BM_ZEncode(benchmark::State& state) {
  Rng rng(1);
  uint32_t x = static_cast<uint32_t>(rng.Next64());
  uint32_t y = static_cast<uint32_t>(rng.Next64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ZEncode(x, y, 21));
    x += 7;
    y += 13;
  }
}
BENCHMARK(BM_ZEncode);

void BM_ZDecode(benchmark::State& state) {
  uint64_t z = 0x12345678ABCDull;
  uint32_t x, y;
  for (auto _ : state) {
    ZDecode(z, 21, &x, &y);
    benchmark::DoNotOptimize(x + y);
    z += 0x9E37;
  }
}
BENCHMARK(BM_ZDecode);

void BM_HilbertEncode(benchmark::State& state) {
  Rng rng(2);
  uint32_t x = static_cast<uint32_t>(rng.Next64()) & 0x1FFFFF;
  uint32_t y = static_cast<uint32_t>(rng.Next64()) & 0x1FFFFF;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HilbertEncode(x, y, 21));
    x = (x + 7) & 0x1FFFFF;
    y = (y + 13) & 0x1FFFFF;
  }
}
BENCHMARK(BM_HilbertEncode);

void BM_WindowDecomposition(benchmark::State& state) {
  GridMapper grid(1000.0, 10);
  Rect window{{300, 300}, {300.0 + static_cast<double>(state.range(0)),
               300.0 + static_cast<double>(state.range(0))}};
  ZRangeOptions opts;
  opts.max_intervals = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ZIntervalsForWindow(grid, window, opts));
  }
}
BENCHMARK(BM_WindowDecomposition)->Arg(100)->Arg(300)->Arg(600);

void BM_PebKeyGeneration(benchmark::State& state) {
  PebKeyLayout layout;
  Rng rng(3);
  uint32_t partition = 1;
  for (auto _ : state) {
    uint32_t qsv = static_cast<uint32_t>(rng.Next64() & 0x3FFFFFF);
    uint64_t zv = rng.Next64() & 0xFFFFF;
    benchmark::DoNotOptimize(layout.MakeKey(partition, qsv, zv));
  }
}
BENCHMARK(BM_PebKeyGeneration);

void BM_BTreeInsert(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{1024});
  BTree<U64Traits> tree(&pool);
  Rng rng(4);
  for (auto _ : state) {
    (void)tree.Insert(rng.Next64(), 1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeLookupHit(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{1024});
  BTree<U64Traits> tree(&pool);
  Rng fill(5);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 100000; ++i) {
    uint64_t k = fill.Next64();
    if (tree.Insert(k, 1).ok()) keys.push_back(k);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(keys[i % keys.size()]));
    i += 7919;
  }
}
BENCHMARK(BM_BTreeLookupHit);

void BM_BufferPoolHit(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  auto page = pool.NewPage();
  PageId id = page->id();
  page->Release();
  for (auto _ : state) {
    auto g = pool.FetchPage(id);
    benchmark::DoNotOptimize(g->page());
  }
}
BENCHMARK(BM_BufferPoolHit);

void BM_CompatibilityScore(benchmark::State& state) {
  Lpp a, b;
  a.role = b.role = 1;
  a.locr = {{100, 100}, {600, 700}};
  a.tint = {480, 1020};
  b.locr = {{300, 50}, {900, 500}};
  b.tint = {300, 800};
  CompatibilityOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CompatibilityFromAlpha(ComputeAlpha({&a, 1}, {&b, 1}, opts)));
  }
}
BENCHMARK(BM_CompatibilityScore);

void BM_BxTreeUpdate(benchmark::State& state) {
  UniformGeneratorOptions gen;
  gen.num_objects = 20000;
  gen.stagger_window = 120.0;
  gen.seed = 6;
  Dataset ds = GenerateUniformDataset(gen);
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{256});
  MovingIndexOptions opt;
  BxTree tree(&pool, opt);
  for (const auto& o : ds.objects) (void)tree.Insert(o);
  Rng rng(7);
  Timestamp t = 120.0;
  for (auto _ : state) {
    UserId id = static_cast<UserId>(rng.NextBelow(ds.objects.size()));
    MovingObject o = ds.objects[id];
    t += 0.001;
    o.pos = o.PositionAt(t);
    o.tu = t;
    (void)tree.Update(o);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BxTreeUpdate);

}  // namespace

// ---------------------------------------------------------------------------
// A/B range-scan cell: legacy per-interval descents vs LeafCursor fast path
// ---------------------------------------------------------------------------

namespace {

struct ScanCellResult {
  IoStats io;
  double wall_ms = 0.0;
  uint64_t probes = 0;
  uint64_t descents = 0;
  uint64_t leaf_hops = 0;
  uint64_t candidates = 0;
};

ScanCellResult RunRangeScanCell(bool fast_path, uint64_t coalesce_gap,
                                size_t num_objects, size_t num_queries) {
  UniformGeneratorOptions gen;
  gen.num_objects = num_objects;
  gen.stagger_window = 120.0;
  gen.seed = 42;
  Dataset ds = GenerateUniformDataset(gen);

  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{50});  // Paper's buffer budget.
  MovingIndexOptions opt;
  opt.leaf_cursor_fast_path = fast_path;
  opt.zrange.coalesce_gap = coalesce_gap;
  BxTree tree(&pool, opt);
  for (const auto& o : ds.objects) (void)tree.Insert(o);

  ScanCellResult r;
  Rng rng(9);
  Timestamp tq = 120.0;
  pool.ResetStats();
  auto t0 = std::chrono::steady_clock::now();
  for (size_t q = 0; q < num_queries; ++q) {
    Point center{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    Rect window = Rect::CenteredSquare(center, 200.0)
                      .ClampedTo(Rect::Space(1000.0));
    auto res = tree.RangeQuery(window, tq);
    if (!res.ok()) continue;
    r.probes += tree.last_query().range_probes;
    r.descents += tree.last_query().seek_descents;
    r.leaf_hops += tree.last_query().leaf_hops;
    r.candidates += tree.last_query().candidates_examined;
  }
  auto t1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.io = pool.stats();
  return r;
}

eval::Json ToJson(const ScanCellResult& r) {
  return eval::Json::Object()
      .Set("io", eval::ToJson(r.io))
      .Set("wall_ms", r.wall_ms)
      .Set("range_probes", r.probes)
      .Set("seek_descents", r.descents)
      .Set("leaf_hops", r.leaf_hops)
      .Set("candidates_examined", r.candidates);
}

}  // namespace

eval::Json RunAndReportScanCell() {
  size_t num_objects = eval::Scaled(60000, 5000);
  size_t num_queries = eval::Scaled(200, 20);
  // "legacy" is the pre-PR baseline: one root descent per Z interval, no
  // interval coalescing. "fastpath" is the current default configuration.
  ScanCellResult legacy = RunRangeScanCell(false, 0, num_objects,
                                           num_queries);
  ScanCellResult fast = RunRangeScanCell(true, 3, num_objects, num_queries);

  auto ratio = [](double a, double b) { return b > 0.0 ? a / b : 0.0; };
  double fetch_ratio =
      ratio(static_cast<double>(legacy.io.logical_fetches),
            static_cast<double>(fast.io.logical_fetches));
  double read_ratio = ratio(static_cast<double>(legacy.io.physical_reads),
                            static_cast<double>(fast.io.physical_reads));
  double speedup = ratio(legacy.wall_ms, fast.wall_ms);

  std::cout << "\n--- range-scan cell (Bx window batch, " << num_objects
            << " objects, " << num_queries << " queries) ---\n"
            << "legacy   : " << legacy.io.logical_fetches << " fetches, "
            << legacy.io.physical_reads << " reads, " << legacy.probes
            << " probes, " << eval::Fmt(legacy.wall_ms) << " ms\n"
            << "fastpath : " << fast.io.logical_fetches << " fetches, "
            << fast.io.physical_reads << " reads, " << fast.probes
            << " probes (" << fast.descents << " descents + "
            << fast.leaf_hops << " hops), " << eval::Fmt(fast.wall_ms)
            << " ms\n"
            << "fetch ratio " << eval::Fmt(fetch_ratio) << "x, read ratio "
            << eval::Fmt(read_ratio) << "x, speedup "
            << eval::Fmt(speedup) << "x\n";

  return eval::Json::Object()
      .Set("num_objects", static_cast<uint64_t>(num_objects))
      .Set("num_queries", static_cast<uint64_t>(num_queries))
      .Set("window_side", 200.0)
      .Set("buffer_pages", 50)
      .Set("legacy", ToJson(legacy))
      .Set("fastpath", ToJson(fast))
      .Set("fetch_ratio", fetch_ratio)
      .Set("read_ratio", read_ratio)
      .Set("speedup", speedup);
}

// ---------------------------------------------------------------------------
// A/B pknn cell: legacy Figure-9 rounds vs the incremental path
// ---------------------------------------------------------------------------

namespace {

struct PknnCellResult {
  IoStats io;
  double wall_ms = 0.0;
  uint64_t probes = 0;
  uint64_t descents = 0;
  uint64_t leaf_hops = 0;
  uint64_t candidates = 0;
  uint64_t rounds = 0;
  std::vector<std::vector<Neighbor>> answers;
};

/// Runs the PkNN batch against a fresh PEB-tree (own 50-page pool) indexing
/// the workload's dataset, with the incremental path on or off.
PknnCellResult RunPknnCell(const eval::Workload& w,
                           const std::vector<eval::PknnQuery>& queries,
                           bool incremental) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{50});  // Paper's buffer budget.
  PebTreeOptions opt = eval::PebOptionsFor(w.params());
  opt.index.incremental_knn = incremental;
  PebTree tree(&pool, opt, &w.store(), &w.roles(), &w.encoding());
  for (const auto& o : w.dataset().objects) (void)tree.Insert(o);

  PknnCellResult r;
  r.answers.reserve(queries.size());
  pool.ResetStats();
  auto t0 = std::chrono::steady_clock::now();
  for (const auto& q : queries) {
    QueryStats stats;
    auto res = tree.KnnQueryWithStats(q.issuer, q.qloc, q.k, q.tq, &stats);
    if (!res.ok()) {
      std::cerr << "pknn cell query failed: " << res.status().ToString()
                << "\n";
      std::abort();
    }
    r.probes += stats.counters.range_probes;
    r.descents += stats.counters.seek_descents;
    r.leaf_hops += stats.counters.leaf_hops;
    r.candidates += stats.counters.candidates_examined;
    r.rounds += stats.counters.rounds;
    r.answers.push_back(std::move(*res));
  }
  auto t1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.io = pool.stats();
  return r;
}

eval::Json ToJson(const PknnCellResult& r) {
  return eval::Json::Object()
      .Set("io", eval::ToJson(r.io))
      .Set("wall_ms", r.wall_ms)
      .Set("range_probes", r.probes)
      .Set("seek_descents", r.descents)
      .Set("leaf_hops", r.leaf_hops)
      .Set("candidates_examined", r.candidates)
      .Set("rounds", r.rounds);
}

}  // namespace

eval::Json RunAndReportPknnCell() {
  eval::WorkloadParams p;  // Table 1 defaults.
  p.num_users = eval::Scaled(60000, 1000);
  size_t num_queries = eval::Scaled(200, 20);
  eval::Workload w = eval::Workload::Build(p);
  eval::QuerySetOptions q;
  q.count = num_queries;
  auto queries = eval::MakePknnQueries(w, q);

  PknnCellResult legacy = RunPknnCell(w, queries, /*incremental=*/false);
  PknnCellResult inc = RunPknnCell(w, queries, /*incremental=*/true);

  // The legacy round path is the equivalence oracle: the incremental path
  // must produce bit-identical answers (same uids, same distances). Sort
  // by (distance, uid) first — distances are continuous, so this only
  // normalizes the order of exact ties, which the merges may permute.
  auto normalized = [](std::vector<Neighbor> v) {
    std::sort(v.begin(), v.end(), [](const Neighbor& a, const Neighbor& b) {
      if (a.distance != b.distance) return a.distance < b.distance;
      return a.uid < b.uid;
    });
    return v;
  };
  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<Neighbor> want = normalized(legacy.answers[i]);
    std::vector<Neighbor> got = normalized(inc.answers[i]);
    if (want.size() != got.size()) {
      std::cerr << "pknn cell mismatch at query " << i << ": "
                << want.size() << " vs " << got.size() << " results\n";
      std::abort();
    }
    for (size_t j = 0; j < want.size(); ++j) {
      if (want[j].uid != got[j].uid ||
          want[j].distance != got[j].distance) {
        std::cerr << "pknn cell mismatch at query " << i << " rank " << j
                  << "\n";
        std::abort();
      }
    }
  }

  auto ratio = [](double a, double b) { return b > 0.0 ? a / b : 0.0; };
  double fetch_ratio =
      ratio(static_cast<double>(legacy.io.logical_fetches),
            static_cast<double>(inc.io.logical_fetches));
  double descent_ratio = ratio(static_cast<double>(legacy.descents),
                               static_cast<double>(inc.descents));
  double speedup = ratio(legacy.wall_ms, inc.wall_ms);
  double nq = static_cast<double>(queries.size());

  std::cout << "\n--- pknn cell (PEB PkNN batch, " << p.num_users
            << " users, " << num_queries << " queries) ---\n"
            << "legacy      : " << legacy.io.logical_fetches << " fetches, "
            << legacy.io.physical_reads << " reads, " << legacy.probes
            << " probes, " << legacy.descents << " descents, "
            << eval::Fmt(static_cast<double>(legacy.rounds) / nq)
            << " rounds/query, " << eval::Fmt(legacy.wall_ms) << " ms\n"
            << "incremental : " << inc.io.logical_fetches << " fetches, "
            << inc.io.physical_reads << " reads, " << inc.probes
            << " probes, " << inc.descents << " descents, "
            << eval::Fmt(static_cast<double>(inc.rounds) / nq)
            << " rounds/query, " << eval::Fmt(inc.wall_ms) << " ms\n"
            << "results bit-identical; fetch ratio " << eval::Fmt(fetch_ratio)
            << "x, descent ratio " << eval::Fmt(descent_ratio)
            << "x, speedup " << eval::Fmt(speedup) << "x\n";

  return eval::Json::Object()
      .Set("num_users", static_cast<uint64_t>(p.num_users))
      .Set("num_queries", static_cast<uint64_t>(num_queries))
      .Set("k", static_cast<uint64_t>(q.k))
      .Set("buffer_pages", 50)
      .Set("legacy", ToJson(legacy))
      .Set("incremental", ToJson(inc))
      .Set("fetch_ratio", fetch_ratio)
      .Set("descent_ratio", descent_ratio)
      .Set("speedup", speedup);
}

// ---------------------------------------------------------------------------
// A/B telemetry-overhead cell: instrumented vs disabled service PRQ batch
// ---------------------------------------------------------------------------

namespace {

/// Wall-clock of one PRQ batch through `svc` (every response checked).
double RunTelemetryPrqBatch(service::MovingObjectService& svc,
                            const std::vector<eval::PrqQuery>& queries) {
  auto t0 = std::chrono::steady_clock::now();
  for (const auto& q : queries) {
    service::QueryResponse resp = svc.Execute(
        service::QueryRequest::Prq(q.issuer, q.range, q.tq));
    if (!resp.ok()) {
      std::cerr << "telemetry cell query failed: " << resp.status.ToString()
                << "\n";
      std::abort();
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

/// Measures the telemetry hot-path tax: the same PRQ batch against two
/// identical 4-shard engine services, one fully instrumented (private
/// registry, metrics on), one with TelemetryOptions::Disabled(). Reps
/// alternate sides and the minimum per side is compared, so scheduler
/// noise cancels; CI gates overhead_pct at 2%.
eval::Json RunAndReportTelemetryOverheadCell() {
  eval::WorkloadParams p;  // Table 1 defaults.
  p.num_users = eval::Scaled(40000, 1000);
  size_t num_queries = eval::Scaled(300, 30);
  eval::Workload w = eval::Workload::Build(p);
  eval::QuerySetOptions q;
  q.count = num_queries;
  q.seed = 77;
  auto queries = eval::MakePrqQueries(w, q);

  telemetry::MetricsRegistry registry;  // Private: the cell stays self-contained.
  telemetry::TelemetryOptions on;
  on.registry = &registry;

  // Inline execution (0 engine threads, 0 workers) keeps both sides
  // deterministic: the cell measures instrumentation cost, not scheduling.
  auto engine_on = eval::MakeEngine(w, 4, 0, engine::RouterPolicy::kHashUser,
                                    on);
  auto engine_off = eval::MakeEngine(w, 4, 0, engine::RouterPolicy::kHashUser,
                                     telemetry::TelemetryOptions::Disabled());
  service::ServiceOptions svc_on_opts;
  svc_on_opts.time_domain = p.time_domain;
  svc_on_opts.telemetry = on;
  service::ServiceOptions svc_off_opts;
  svc_off_opts.time_domain = p.time_domain;
  svc_off_opts.telemetry = telemetry::TelemetryOptions::Disabled();
  service::MovingObjectService svc_on(engine_on.get(), &w.store(), &w.roles(),
                                      &w.encoding(), svc_on_opts);
  service::MovingObjectService svc_off(engine_off.get(), &w.store(),
                                       &w.roles(), &w.encoding(),
                                       svc_off_opts);

  constexpr int kReps = 5;
  double best_on = 0.0, best_off = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    double off_ms = RunTelemetryPrqBatch(svc_off, queries);
    double on_ms = RunTelemetryPrqBatch(svc_on, queries);
    if (rep == 0 || off_ms < best_off) best_off = off_ms;
    if (rep == 0 || on_ms < best_on) best_on = on_ms;
  }
  double overhead_pct =
      best_off > 0.0 ? (best_on / best_off - 1.0) * 100.0 : 0.0;

  std::cout << "\n--- telemetry overhead cell (4-shard engine service, "
            << p.num_users << " users, " << num_queries
            << " PRQ/batch, min of " << kReps << ") ---\n"
            << "disabled    : " << eval::Fmt(best_off) << " ms\n"
            << "instrumented: " << eval::Fmt(best_on) << " ms\n"
            << "overhead    : " << eval::Fmt(overhead_pct, 2) << "%\n";

  return eval::Json::Object()
      .Set("num_users", static_cast<uint64_t>(p.num_users))
      .Set("num_queries", static_cast<uint64_t>(num_queries))
      .Set("reps", static_cast<uint64_t>(kReps))
      .Set("disabled_ms", best_off)
      .Set("instrumented_ms", best_on)
      .Set("overhead_pct", overhead_pct);
}

// ---------------------------------------------------------------------------
// A/B update-interference cell: direct apply vs log-structured delta ingest
// ---------------------------------------------------------------------------

namespace {

/// Per-shard delta merge threshold of the cell's delta side. With 4 shards
/// and 2048-event batches each shard buffers ~512 records per batch, so a
/// merge fires roughly every 4th batch — most batches publish without any
/// exclusive section at all, and every merge dedups to at most one tree
/// update per user.
constexpr size_t kInterferenceMergeThreshold = 2048;

struct InterferenceSideResult {
  telemetry::Histogram::Snapshot query_ms;      ///< Per-query wall latency.
  telemetry::Histogram::Snapshot lock_hold_ms;  ///< Exclusive-section holds.
  uint64_t queries = 0;
  uint64_t batches_during_queries = 0;
  /// Sorted PRQ answers after every batch is applied and the deltas are
  /// merged — the cross-side equivalence oracle.
  std::vector<std::vector<UserId>> settled_answers;
};

eval::Json ToJson(const InterferenceSideResult& r) {
  return eval::Json::Object()
      .Set("query_p50_ms", r.query_ms.p50)
      .Set("query_p99_ms", r.query_ms.p99)
      .Set("query_max_ms", r.query_ms.max)
      .Set("queries", r.queries)
      .Set("batches_during_queries", r.batches_during_queries)
      .Set("lock_hold_count", r.lock_hold_ms.count)
      .Set("lock_hold_p99_ms", r.lock_hold_ms.p99)
      .Set("lock_hold_max_ms", r.lock_hold_ms.max);
}

/// One side of the interference A/B: a paced writer thread feeds every
/// batch into the engine while the calling thread reruns the PRQ set
/// closed-loop, timing each query, until the writer has drained the whole
/// stream (at least `min_reps` passes, at most `max_reps`) — so the
/// measurement window covers the full update schedule on both sides.
/// Afterwards the deltas are settled, so both sides end in the same state
/// and their answers can be compared bit-for-bit.
InterferenceSideResult RunInterferenceSide(
    const eval::Workload& w, bool delta_ingest,
    const std::vector<std::vector<UpdateEvent>>& batches,
    const std::vector<eval::PrqQuery>& queries, size_t min_reps,
    size_t max_reps) {
  telemetry::MetricsRegistry registry;  // Private: the cell stays self-contained.
  engine::EngineOptions opts;
  opts.num_shards = 4;
  opts.num_threads = 0;  // Inline shard tasks: latency is the caller's own.
  opts.buffer_pages = w.params().buffer_pages;
  opts.tree = eval::PebOptionsFor(w.params());
  opts.tree.index.delta_ingest = delta_ingest;
  opts.delta.merge_threshold = kInterferenceMergeThreshold;
  opts.telemetry.registry = &registry;
  engine::ShardedPebEngine engine(opts, &w.store(), &w.roles(),
                                  w.catalog().snapshot());
  Status load = engine.LoadDataset(w.dataset());
  if (!load.ok()) {
    std::cerr << "interference cell load failed: " << load.ToString() << "\n";
    std::abort();
  }

  std::atomic<bool> writer_done{false};
  std::atomic<size_t> applied{0};
  std::thread writer([&] {
    for (const auto& batch : batches) {
      Status st = engine.ApplyBatch(batch);
      if (!st.ok()) {
        std::cerr << "interference cell batch failed: " << st.ToString()
                  << "\n";
        std::abort();
      }
      applied.fetch_add(1, std::memory_order_relaxed);
      // Paced, not saturating: the cell models a sustained update feed,
      // not a bulk load — the interference under test is the engine-wide
      // exclusive lock, not writer CPU.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    writer_done.store(true, std::memory_order_relaxed);
  });

  telemetry::Histogram query_hist;
  InterferenceSideResult r;
  for (size_t rep = 0;
       rep < max_reps &&
       (rep < min_reps || !writer_done.load(std::memory_order_relaxed));
       ++rep) {
    for (const auto& q : queries) {
      auto t0 = std::chrono::steady_clock::now();
      auto res = engine.RangeQueryWithStats(q.issuer, q.range, q.tq,
                                            /*stats=*/nullptr);
      auto t1 = std::chrono::steady_clock::now();
      if (!res.ok()) {
        std::cerr << "interference cell query failed: "
                  << res.status().ToString() << "\n";
        std::abort();
      }
      query_hist.Record(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      ++r.queries;
    }
  }
  r.batches_during_queries = applied.load(std::memory_order_relaxed);
  writer.join();

  r.query_ms = query_hist.Snap();
  // Snapshot the exclusive-section holds before the settle below so the
  // readout covers exactly the contended window. Direct apply observes
  // per-shard batch holds into engine.batch.lock_hold_ms (which also
  // carries the initial LoadDataset holds); delta ingest blocks queries
  // only during merges, observed into engine.merge.lock_hold_ms.
  r.lock_hold_ms = registry
                       .histogram(delta_ingest ? "engine.merge.lock_hold_ms"
                                               : "engine.batch.lock_hold_ms")
                       ->Snap();

  // Settle to the common final state (MergeDeltas is a no-op on direct).
  Status settle = engine.MergeDeltas();
  if (!settle.ok()) {
    std::cerr << "interference cell settle failed: " << settle.ToString()
              << "\n";
    std::abort();
  }

  r.settled_answers.reserve(queries.size());
  for (const auto& q : queries) {
    auto res = engine.RangeQueryWithStats(q.issuer, q.range, q.tq,
                                          /*stats=*/nullptr);
    if (!res.ok()) {
      std::cerr << "interference cell settled query failed: "
                << res.status().ToString() << "\n";
      std::abort();
    }
    std::vector<UserId> ans = std::move(*res);
    std::sort(ans.begin(), ans.end());
    r.settled_answers.push_back(std::move(ans));
  }
  return r;
}

}  // namespace

/// Closed-loop PRQ latency while a paced update stream lands concurrently:
/// the same batches and the same query set against a direct-apply engine
/// (whole batches applied under the engine-wide exclusive lock) and a
/// delta-ingest engine (watermark-published appends off the query path,
/// bounded threshold merges). Both sides then apply every remaining batch
/// and settle, and must answer bit-identically — the cell doubles as the
/// concurrent equivalence oracle. CI gates on the delta side's query p99
/// strictly beating direct apply and on its merge lock-hold p99 not
/// exceeding direct's batch holds.
eval::Json RunAndReportUpdateInterferenceCell() {
  eval::WorkloadParams p;  // Table 1 defaults except population: a denser
  p.num_users = eval::Scaled(4000, 500);  // update stream exercises dedup.
  eval::Workload w = eval::Workload::Build(p);

  constexpr size_t kBatchEvents = 2048;
  size_t num_batches = eval::Scaled(160, 40);
  auto stream = eval::CloneUniformUpdateStream(w);
  std::vector<std::vector<UpdateEvent>> batches(num_batches);
  for (auto& b : batches) {
    b.reserve(kBatchEvents);
    for (size_t i = 0; i < kBatchEvents; ++i) b.push_back(stream->Next());
  }

  eval::QuerySetOptions q;
  q.count = eval::Scaled(200, 40);
  q.seed = 123;
  auto queries = eval::MakePrqQueries(w, q);
  // The query loop reruns the set until the writer drains the stream, so
  // both sides measure the full update schedule; the bounds only protect
  // against degenerate scheduling.
  constexpr size_t kMinReps = 2;
  constexpr size_t kMaxReps = 2000;

  InterferenceSideResult direct = RunInterferenceSide(
      w, /*delta_ingest=*/false, batches, queries, kMinReps, kMaxReps);
  InterferenceSideResult delta = RunInterferenceSide(
      w, /*delta_ingest=*/true, batches, queries, kMinReps, kMaxReps);

  // Both sides applied every batch and settled, so they hold identical
  // object states: the delta path must answer bit-identically.
  for (size_t i = 0; i < queries.size(); ++i) {
    if (direct.settled_answers[i] != delta.settled_answers[i]) {
      std::cerr << "interference cell mismatch at query " << i << ": "
                << direct.settled_answers[i].size() << " vs "
                << delta.settled_answers[i].size() << " results\n";
      std::abort();
    }
  }

  auto ratio = [](double a, double b) { return b > 0.0 ? a / b : 0.0; };
  double p99_speedup = ratio(direct.query_ms.p99, delta.query_ms.p99);

  std::cout << "\n--- update interference cell (" << p.num_users << " users, "
            << num_batches << " x " << kBatchEvents << "-event batches, "
            << queries.size() << "-PRQ closed loop) ---\n"
            << "direct apply: query p50 " << eval::Fmt(direct.query_ms.p50, 3)
            << " / p99 " << eval::Fmt(direct.query_ms.p99, 3) << " / max "
            << eval::Fmt(direct.query_ms.max, 3) << " ms over "
            << direct.queries << " queries, lock-hold p99 "
            << eval::Fmt(direct.lock_hold_ms.p99, 3) << " ms ("
            << direct.batches_during_queries << " batches landed)\n"
            << "delta ingest: query p50 " << eval::Fmt(delta.query_ms.p50, 3)
            << " / p99 " << eval::Fmt(delta.query_ms.p99, 3) << " / max "
            << eval::Fmt(delta.query_ms.max, 3) << " ms over "
            << delta.queries << " queries, lock-hold p99 "
            << eval::Fmt(delta.lock_hold_ms.p99, 3) << " ms ("
            << delta.batches_during_queries << " batches landed)\n"
            << "settled answers bit-identical; query p99 speedup "
            << eval::Fmt(p99_speedup) << "x\n";

  return eval::Json::Object()
      .Set("num_users", static_cast<uint64_t>(p.num_users))
      .Set("batch_events", static_cast<uint64_t>(kBatchEvents))
      .Set("num_batches", static_cast<uint64_t>(num_batches))
      .Set("query_set", static_cast<uint64_t>(queries.size()))
      .Set("merge_threshold",
           static_cast<uint64_t>(kInterferenceMergeThreshold))
      .Set("direct", ToJson(direct))
      .Set("delta", ToJson(delta))
      .Set("query_p99_speedup", p99_speedup);
}

// ---------------------------------------------------------------------------
// A/B reopen cell: cold Open() from superblock + WAL vs full rebuild
// ---------------------------------------------------------------------------

namespace {

std::vector<std::vector<UserId>> RunReopenPrqBatch(
    engine::ShardedPebEngine& engine,
    const std::vector<eval::PrqQuery>& queries) {
  std::vector<std::vector<UserId>> answers;
  answers.reserve(queries.size());
  for (const auto& q : queries) {
    auto res = engine.RangeQuery(q.issuer, q.range, q.tq);
    if (!res.ok()) {
      std::cerr << "reopen cell query failed: " << res.status().ToString()
                << "\n";
      std::abort();
    }
    std::vector<UserId> ans = std::move(*res);
    std::sort(ans.begin(), ans.end());
    answers.push_back(std::move(ans));
  }
  return answers;
}

}  // namespace

/// Times bringing an index back after a clean shutdown: Open() re-attaches
/// the shard trees to the checkpointed file (superblock roots, empty WAL —
/// no tree rebuild) vs constructing a fresh engine and re-inserting the
/// whole dataset. Both must answer the PRQ sample bit-identically; CI
/// fails when the cold open stops beating the rebuild.
eval::Json RunAndReportReopenCell() {
  eval::WorkloadParams p;  // Table 1 defaults.
  p.num_users = eval::Scaled(40000, 2000);
  size_t num_queries = eval::Scaled(100, 20);
  const eval::Workload w = eval::Workload::Build(p);
  eval::QuerySetOptions q;
  q.count = num_queries;
  q.seed = 55;
  auto queries = eval::MakePrqQueries(w, q);

  const std::string path = "bench_reopen_cell.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  engine::EngineOptions opts;
  opts.num_shards = 4;
  opts.num_threads = 0;
  opts.buffer_pages = p.buffer_pages;
  opts.tree = eval::PebOptionsFor(p);
  opts.durability.path = path;
  opts.durability.checkpoint_on_close = true;

  // Seed the durable file: load, checkpoint on close.
  std::vector<std::vector<UserId>> want;
  {
    engine::ShardedPebEngine engine(opts, &w.store(), &w.roles(),
                                    w.catalog().snapshot());
    Status load = engine.LoadDataset(w.dataset());
    if (!load.ok()) {
      std::cerr << "reopen cell load failed: " << load.ToString() << "\n";
      std::abort();
    }
    want = RunReopenPrqBatch(engine, queries);
  }

  // Cold open: superblock manifest + attach, no per-object work.
  auto t0 = std::chrono::steady_clock::now();
  auto reopened = engine::ShardedPebEngine::Open(opts, &w.store(), &w.roles(),
                                                 w.catalog().snapshot());
  auto t1 = std::chrono::steady_clock::now();
  if (!reopened.ok()) {
    std::cerr << "reopen cell open failed: " << reopened.status().ToString()
              << "\n";
    std::abort();
  }
  double open_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  auto got_open = RunReopenPrqBatch(**reopened, queries);
  reopened->reset();

  // Full rebuild: fresh in-memory engine, every object re-inserted.
  engine::EngineOptions mem_opts = opts;
  mem_opts.durability = {};
  t0 = std::chrono::steady_clock::now();
  engine::ShardedPebEngine rebuilt(mem_opts, &w.store(), &w.roles(),
                                   w.catalog().snapshot());
  Status load = rebuilt.LoadDataset(w.dataset());
  t1 = std::chrono::steady_clock::now();
  if (!load.ok()) {
    std::cerr << "reopen cell rebuild failed: " << load.ToString() << "\n";
    std::abort();
  }
  double rebuild_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  auto got_rebuild = RunReopenPrqBatch(rebuilt, queries);

  for (size_t i = 0; i < queries.size(); ++i) {
    if (want[i] != got_open[i] || want[i] != got_rebuild[i]) {
      std::cerr << "reopen cell mismatch at query " << i << "\n";
      std::abort();
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  double speedup = open_ms > 0.0 ? rebuild_ms / open_ms : 0.0;
  std::cout << "\n--- reopen cell (" << p.num_users
            << " users, clean-shutdown file, " << num_queries
            << "-PRQ equivalence sample) ---\n"
            << "cold open   : " << eval::Fmt(open_ms) << " ms\n"
            << "full rebuild: " << eval::Fmt(rebuild_ms) << " ms\n"
            << "answers bit-identical; speedup " << eval::Fmt(speedup)
            << "x\n";

  return eval::Json::Object()
      .Set("num_users", static_cast<uint64_t>(p.num_users))
      .Set("num_queries", static_cast<uint64_t>(num_queries))
      .Set("open_ms", open_ms)
      .Set("rebuild_ms", rebuild_ms)
      .Set("speedup", speedup);
}

}  // namespace peb

int main(int argc, char** argv) {
  // Strip --json <path> before google-benchmark sees the arguments.
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int bargc = static_cast<int>(args.size());
  benchmark::Initialize(&bargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  peb::eval::Json range_cell = peb::RunAndReportScanCell();
  peb::eval::Json pknn_cell = peb::RunAndReportPknnCell();
  peb::eval::Json telemetry_cell = peb::RunAndReportTelemetryOverheadCell();
  peb::eval::Json interference_cell =
      peb::RunAndReportUpdateInterferenceCell();
  peb::eval::Json reopen_cell = peb::RunAndReportReopenCell();
  if (!json_path.empty()) {
    peb::eval::Json doc =
        peb::eval::Json::Object()
            .Set("bench", "micro")
            .Set("scale", peb::eval::BenchScale())
            .Set("range_scan_cell", std::move(range_cell))
            .Set("pknn_cell", std::move(pknn_cell))
            .Set("telemetry_overhead_cell", std::move(telemetry_cell))
            .Set("update_interference_cell", std::move(interference_cell))
            .Set("reopen_cell", std::move(reopen_cell));
    if (doc.WriteTo(json_path)) {
      std::cout << "wrote " << json_path << "\n";
    }
  }
  return 0;
}
