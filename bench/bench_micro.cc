// Micro-benchmarks (google-benchmark): per-operation costs of the building
// blocks — space-filling curves, PEB key generation, B+-tree operations,
// buffer pool hits, policy compatibility, and end-to-end index updates.
#include <benchmark/benchmark.h>

#include <memory>

#include "btree/btree.h"
#include "btree/btree_traits.h"
#include "bxtree/bxtree.h"
#include "common/rng.h"
#include "motion/uniform_generator.h"
#include "peb/peb_key.h"
#include "policy/compatibility.h"
#include "spatial/hilbert.h"
#include "spatial/zcurve.h"
#include "spatial/zrange.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace peb {
namespace {

void BM_ZEncode(benchmark::State& state) {
  Rng rng(1);
  uint32_t x = static_cast<uint32_t>(rng.Next64());
  uint32_t y = static_cast<uint32_t>(rng.Next64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ZEncode(x, y, 21));
    x += 7;
    y += 13;
  }
}
BENCHMARK(BM_ZEncode);

void BM_ZDecode(benchmark::State& state) {
  uint64_t z = 0x12345678ABCDull;
  uint32_t x, y;
  for (auto _ : state) {
    ZDecode(z, 21, &x, &y);
    benchmark::DoNotOptimize(x + y);
    z += 0x9E37;
  }
}
BENCHMARK(BM_ZDecode);

void BM_HilbertEncode(benchmark::State& state) {
  Rng rng(2);
  uint32_t x = static_cast<uint32_t>(rng.Next64()) & 0x1FFFFF;
  uint32_t y = static_cast<uint32_t>(rng.Next64()) & 0x1FFFFF;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HilbertEncode(x, y, 21));
    x = (x + 7) & 0x1FFFFF;
    y = (y + 13) & 0x1FFFFF;
  }
}
BENCHMARK(BM_HilbertEncode);

void BM_WindowDecomposition(benchmark::State& state) {
  GridMapper grid(1000.0, 10);
  Rect window{{300, 300}, {300.0 + static_cast<double>(state.range(0)),
               300.0 + static_cast<double>(state.range(0))}};
  ZRangeOptions opts;
  opts.max_intervals = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ZIntervalsForWindow(grid, window, opts));
  }
}
BENCHMARK(BM_WindowDecomposition)->Arg(100)->Arg(300)->Arg(600);

void BM_PebKeyGeneration(benchmark::State& state) {
  PebKeyLayout layout;
  Rng rng(3);
  uint32_t partition = 1;
  for (auto _ : state) {
    uint32_t qsv = static_cast<uint32_t>(rng.Next64() & 0x3FFFFFF);
    uint64_t zv = rng.Next64() & 0xFFFFF;
    benchmark::DoNotOptimize(layout.MakeKey(partition, qsv, zv));
  }
}
BENCHMARK(BM_PebKeyGeneration);

void BM_BTreeInsert(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{1024});
  BTree<U64Traits> tree(&pool);
  Rng rng(4);
  for (auto _ : state) {
    (void)tree.Insert(rng.Next64(), 1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeLookupHit(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{1024});
  BTree<U64Traits> tree(&pool);
  Rng fill(5);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 100000; ++i) {
    uint64_t k = fill.Next64();
    if (tree.Insert(k, 1).ok()) keys.push_back(k);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(keys[i % keys.size()]));
    i += 7919;
  }
}
BENCHMARK(BM_BTreeLookupHit);

void BM_BufferPoolHit(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  auto page = pool.NewPage();
  PageId id = page->id();
  page->Release();
  for (auto _ : state) {
    auto g = pool.FetchPage(id);
    benchmark::DoNotOptimize(g->page());
  }
}
BENCHMARK(BM_BufferPoolHit);

void BM_CompatibilityScore(benchmark::State& state) {
  Lpp a, b;
  a.role = b.role = 1;
  a.locr = {{100, 100}, {600, 700}};
  a.tint = {480, 1020};
  b.locr = {{300, 50}, {900, 500}};
  b.tint = {300, 800};
  CompatibilityOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CompatibilityFromAlpha(ComputeAlpha({&a, 1}, {&b, 1}, opts)));
  }
}
BENCHMARK(BM_CompatibilityScore);

void BM_BxTreeUpdate(benchmark::State& state) {
  UniformGeneratorOptions gen;
  gen.num_objects = 20000;
  gen.stagger_window = 120.0;
  gen.seed = 6;
  Dataset ds = GenerateUniformDataset(gen);
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{256});
  MovingIndexOptions opt;
  BxTree tree(&pool, opt);
  for (const auto& o : ds.objects) (void)tree.Insert(o);
  Rng rng(7);
  Timestamp t = 120.0;
  for (auto _ : state) {
    UserId id = static_cast<UserId>(rng.NextBelow(ds.objects.size()));
    MovingObject o = ds.objects[id];
    t += 0.001;
    o.pos = o.PositionAt(t);
    o.tu = t;
    (void)tree.Update(o);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BxTreeUpdate);

}  // namespace
}  // namespace peb

BENCHMARK_MAIN();
