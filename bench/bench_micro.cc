// Micro-benchmarks (google-benchmark): per-operation costs of the building
// blocks — space-filling curves, PEB key generation, B+-tree operations,
// buffer pool hits, policy compatibility, and end-to-end index updates.
//
// After the google-benchmark suite, an A/B "range-scan cell" always runs:
// the same window-query batch against a Bx-tree with the legacy
// per-interval root-descent scan (the pre-leaf-cursor behavior: fast path
// off, no interval coalescing) and with the LeafCursor fast path + default
// coalescing. `--json <path>` records both sides in BENCH_micro.json so
// the fetch-count reduction is part of the perf trajectory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "btree/btree.h"
#include "btree/btree_traits.h"
#include "bxtree/bxtree.h"
#include "common/rng.h"
#include "motion/uniform_generator.h"
#include "peb/peb_key.h"
#include "policy/compatibility.h"
#include "spatial/hilbert.h"
#include "spatial/zcurve.h"
#include "spatial/zrange.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace peb {
namespace {

void BM_ZEncode(benchmark::State& state) {
  Rng rng(1);
  uint32_t x = static_cast<uint32_t>(rng.Next64());
  uint32_t y = static_cast<uint32_t>(rng.Next64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ZEncode(x, y, 21));
    x += 7;
    y += 13;
  }
}
BENCHMARK(BM_ZEncode);

void BM_ZDecode(benchmark::State& state) {
  uint64_t z = 0x12345678ABCDull;
  uint32_t x, y;
  for (auto _ : state) {
    ZDecode(z, 21, &x, &y);
    benchmark::DoNotOptimize(x + y);
    z += 0x9E37;
  }
}
BENCHMARK(BM_ZDecode);

void BM_HilbertEncode(benchmark::State& state) {
  Rng rng(2);
  uint32_t x = static_cast<uint32_t>(rng.Next64()) & 0x1FFFFF;
  uint32_t y = static_cast<uint32_t>(rng.Next64()) & 0x1FFFFF;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HilbertEncode(x, y, 21));
    x = (x + 7) & 0x1FFFFF;
    y = (y + 13) & 0x1FFFFF;
  }
}
BENCHMARK(BM_HilbertEncode);

void BM_WindowDecomposition(benchmark::State& state) {
  GridMapper grid(1000.0, 10);
  Rect window{{300, 300}, {300.0 + static_cast<double>(state.range(0)),
               300.0 + static_cast<double>(state.range(0))}};
  ZRangeOptions opts;
  opts.max_intervals = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ZIntervalsForWindow(grid, window, opts));
  }
}
BENCHMARK(BM_WindowDecomposition)->Arg(100)->Arg(300)->Arg(600);

void BM_PebKeyGeneration(benchmark::State& state) {
  PebKeyLayout layout;
  Rng rng(3);
  uint32_t partition = 1;
  for (auto _ : state) {
    uint32_t qsv = static_cast<uint32_t>(rng.Next64() & 0x3FFFFFF);
    uint64_t zv = rng.Next64() & 0xFFFFF;
    benchmark::DoNotOptimize(layout.MakeKey(partition, qsv, zv));
  }
}
BENCHMARK(BM_PebKeyGeneration);

void BM_BTreeInsert(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{1024});
  BTree<U64Traits> tree(&pool);
  Rng rng(4);
  for (auto _ : state) {
    (void)tree.Insert(rng.Next64(), 1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeLookupHit(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{1024});
  BTree<U64Traits> tree(&pool);
  Rng fill(5);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 100000; ++i) {
    uint64_t k = fill.Next64();
    if (tree.Insert(k, 1).ok()) keys.push_back(k);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(keys[i % keys.size()]));
    i += 7919;
  }
}
BENCHMARK(BM_BTreeLookupHit);

void BM_BufferPoolHit(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{64});
  auto page = pool.NewPage();
  PageId id = page->id();
  page->Release();
  for (auto _ : state) {
    auto g = pool.FetchPage(id);
    benchmark::DoNotOptimize(g->page());
  }
}
BENCHMARK(BM_BufferPoolHit);

void BM_CompatibilityScore(benchmark::State& state) {
  Lpp a, b;
  a.role = b.role = 1;
  a.locr = {{100, 100}, {600, 700}};
  a.tint = {480, 1020};
  b.locr = {{300, 50}, {900, 500}};
  b.tint = {300, 800};
  CompatibilityOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CompatibilityFromAlpha(ComputeAlpha({&a, 1}, {&b, 1}, opts)));
  }
}
BENCHMARK(BM_CompatibilityScore);

void BM_BxTreeUpdate(benchmark::State& state) {
  UniformGeneratorOptions gen;
  gen.num_objects = 20000;
  gen.stagger_window = 120.0;
  gen.seed = 6;
  Dataset ds = GenerateUniformDataset(gen);
  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{256});
  MovingIndexOptions opt;
  BxTree tree(&pool, opt);
  for (const auto& o : ds.objects) (void)tree.Insert(o);
  Rng rng(7);
  Timestamp t = 120.0;
  for (auto _ : state) {
    UserId id = static_cast<UserId>(rng.NextBelow(ds.objects.size()));
    MovingObject o = ds.objects[id];
    t += 0.001;
    o.pos = o.PositionAt(t);
    o.tu = t;
    (void)tree.Update(o);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BxTreeUpdate);

}  // namespace

// ---------------------------------------------------------------------------
// A/B range-scan cell: legacy per-interval descents vs LeafCursor fast path
// ---------------------------------------------------------------------------

namespace {

struct ScanCellResult {
  IoStats io;
  double wall_ms = 0.0;
  uint64_t probes = 0;
  uint64_t descents = 0;
  uint64_t leaf_hops = 0;
  uint64_t candidates = 0;
};

ScanCellResult RunRangeScanCell(bool fast_path, uint64_t coalesce_gap,
                                size_t num_objects, size_t num_queries) {
  UniformGeneratorOptions gen;
  gen.num_objects = num_objects;
  gen.stagger_window = 120.0;
  gen.seed = 42;
  Dataset ds = GenerateUniformDataset(gen);

  InMemoryDiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{50});  // Paper's buffer budget.
  MovingIndexOptions opt;
  opt.leaf_cursor_fast_path = fast_path;
  opt.zrange.coalesce_gap = coalesce_gap;
  BxTree tree(&pool, opt);
  for (const auto& o : ds.objects) (void)tree.Insert(o);

  ScanCellResult r;
  Rng rng(9);
  Timestamp tq = 120.0;
  pool.ResetStats();
  auto t0 = std::chrono::steady_clock::now();
  for (size_t q = 0; q < num_queries; ++q) {
    Point center{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    Rect window = Rect::CenteredSquare(center, 200.0)
                      .ClampedTo(Rect::Space(1000.0));
    auto res = tree.RangeQuery(window, tq);
    if (!res.ok()) continue;
    r.probes += tree.last_query().range_probes;
    r.descents += tree.last_query().seek_descents;
    r.leaf_hops += tree.last_query().leaf_hops;
    r.candidates += tree.last_query().candidates_examined;
  }
  auto t1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.io = pool.stats();
  return r;
}

eval::Json ToJson(const ScanCellResult& r) {
  return eval::Json::Object()
      .Set("io", eval::ToJson(r.io))
      .Set("wall_ms", r.wall_ms)
      .Set("range_probes", r.probes)
      .Set("seek_descents", r.descents)
      .Set("leaf_hops", r.leaf_hops)
      .Set("candidates_examined", r.candidates);
}

}  // namespace

void RunAndReportScanCell(const std::string& json_path) {
  size_t num_objects = eval::Scaled(60000, 5000);
  size_t num_queries = eval::Scaled(200, 20);
  // "legacy" is the pre-PR baseline: one root descent per Z interval, no
  // interval coalescing. "fastpath" is the current default configuration.
  ScanCellResult legacy = RunRangeScanCell(false, 0, num_objects,
                                           num_queries);
  ScanCellResult fast = RunRangeScanCell(true, 3, num_objects, num_queries);

  auto ratio = [](double a, double b) { return b > 0.0 ? a / b : 0.0; };
  double fetch_ratio =
      ratio(static_cast<double>(legacy.io.logical_fetches),
            static_cast<double>(fast.io.logical_fetches));
  double read_ratio = ratio(static_cast<double>(legacy.io.physical_reads),
                            static_cast<double>(fast.io.physical_reads));
  double speedup = ratio(legacy.wall_ms, fast.wall_ms);

  std::cout << "\n--- range-scan cell (Bx window batch, " << num_objects
            << " objects, " << num_queries << " queries) ---\n"
            << "legacy   : " << legacy.io.logical_fetches << " fetches, "
            << legacy.io.physical_reads << " reads, " << legacy.probes
            << " probes, " << eval::Fmt(legacy.wall_ms) << " ms\n"
            << "fastpath : " << fast.io.logical_fetches << " fetches, "
            << fast.io.physical_reads << " reads, " << fast.probes
            << " probes (" << fast.descents << " descents + "
            << fast.leaf_hops << " hops), " << eval::Fmt(fast.wall_ms)
            << " ms\n"
            << "fetch ratio " << eval::Fmt(fetch_ratio) << "x, read ratio "
            << eval::Fmt(read_ratio) << "x, speedup "
            << eval::Fmt(speedup) << "x\n";

  if (!json_path.empty()) {
    eval::Json doc =
        eval::Json::Object()
            .Set("bench", "micro")
            .Set("scale", eval::BenchScale())
            .Set("range_scan_cell",
                 eval::Json::Object()
                     .Set("num_objects", static_cast<uint64_t>(num_objects))
                     .Set("num_queries", static_cast<uint64_t>(num_queries))
                     .Set("window_side", 200.0)
                     .Set("buffer_pages", 50)
                     .Set("legacy", ToJson(legacy))
                     .Set("fastpath", ToJson(fast))
                     .Set("fetch_ratio", fetch_ratio)
                     .Set("read_ratio", read_ratio)
                     .Set("speedup", speedup));
    if (doc.WriteTo(json_path)) {
      std::cout << "wrote " << json_path << "\n";
    }
  }
}

}  // namespace peb

int main(int argc, char** argv) {
  // Strip --json <path> before google-benchmark sees the arguments.
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int bargc = static_cast<int>(args.size());
  benchmark::Initialize(&bargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  peb::RunAndReportScanCell(json_path);
  return 0;
}
