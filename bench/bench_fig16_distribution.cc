// Figure 16: Effect of the spatial distribution (Section 7.7).
// Uses the network-based datasets with 25..500 destination hubs (fewer
// hubs = more skew), plus the uniform dataset as reference. The PEB-tree
// is largely insensitive to skew because the location bits are not the
// dominant key component.
#include "bench_common.h"

int main() {
  using namespace peb::eval;

  QuerySetOptions q;
  q.count = Scaled(200, 20);

  TablePrinter prq = MakeIoTable("destinations");
  TablePrinter knn = MakeIoTable("destinations");

  auto run_point = [&](const std::string& label, Distribution dist,
                       size_t hubs) {
    WorkloadParams p;
    p.num_users = Scaled(60000, 1000);
    p.distribution = dist;
    p.num_hubs = hubs;
    p.seed = 1;
    Workload w = Workload::Build(p);
    ComparisonPoint m = MeasureBoth(w, q);
    AddIoRow(prq, label, m.peb_prq.avg_io, m.spatial_prq.avg_io);
    AddIoRow(knn, label, m.peb_knn.avg_io, m.spatial_knn.avg_io);
  };

  run_point("uniform", Distribution::kUniform, 0);
  for (size_t hubs : {25, 50, 100, 200, 300, 400, 500}) {
    run_point(std::to_string(hubs), Distribution::kNetwork, hubs);
  }

  PrintBanner(std::cout, "Figure 16(a): PRQ I/O vs number of destinations");
  prq.Print(std::cout);
  PrintBanner(std::cout, "Figure 16(b): PkNN I/O vs number of destinations");
  knn.Print(std::cout);
  return 0;
}
