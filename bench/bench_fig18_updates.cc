// Figure 18: Effect of updates (Section 7.9).
// Measures query cost each time 25% of the dataset has been updated, until
// the dataset has been fully updated twice (8 rounds). Both trees share
// the Bx time-partitioning, so costs only fluctuate as objects migrate
// between time partitions.
#include "bench_common.h"

int main() {
  using namespace peb::eval;

  WorkloadParams p;
  p.num_users = Scaled(60000, 1000);
  p.seed = 1;
  Workload w = Workload::Build(p);

  TablePrinter prq = MakeIoTable("updates (%)");
  TablePrinter knn = MakeIoTable("updates (%)");

  for (int round = 1; round <= 8; ++round) {
    if (!w.ApplyUpdates(p.num_users / 4).ok()) return 1;
    QuerySetOptions q;
    q.count = Scaled(200, 20);
    q.seed = 99 + static_cast<uint64_t>(round);
    ComparisonPoint m = MeasureBoth(w, q);
    std::string label = std::to_string(round * 25);
    AddIoRow(prq, label, m.peb_prq.avg_io, m.spatial_prq.avg_io);
    AddIoRow(knn, label, m.peb_knn.avg_io, m.spatial_knn.avg_io);
  }

  PrintBanner(std::cout, "Figure 18(a): PRQ I/O while updating");
  prq.Print(std::cout);
  PrintBanner(std::cout, "Figure 18(b): PkNN I/O while updating");
  knn.Print(std::cout);
  return 0;
}
