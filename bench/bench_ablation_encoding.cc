// Ablation: sequence-value encoding strategies (the paper's Section-8
// future work "explore new encoding ... techniques").
//
// Compares the paper's Figure-5 group-order assignment against our BFS
// component traversal on PRQ/PkNN I/O across grouping factors. BFS keeps
// transitively-related users adjacent (one anchor per connected component),
// which matters most when groups overlap (small θ).
#include "bench_common.h"

int main() {
  using namespace peb::eval;

  QuerySetOptions q;
  q.count = Scaled(200, 20);

  TablePrinter t({"theta", "Fig.5 PRQ I/O", "BFS PRQ I/O", "Fig.5 PkNN I/O",
                  "BFS PkNN I/O"});
  for (double theta : {0.0, 0.5, 0.7, 1.0}) {
    ComparisonPoint fig5, bfs;
    for (auto strategy : {peb::SequenceStrategy::kGroupOrder,
                          peb::SequenceStrategy::kBfsTraversal}) {
      WorkloadParams p;
      p.num_users = Scaled(60000, 1000);
      p.grouping_factor = theta;
      p.sequence_strategy = strategy;
      p.seed = 1;
      Workload w = Workload::Build(p);
      ComparisonPoint m = MeasureBoth(w, q);
      if (strategy == peb::SequenceStrategy::kGroupOrder) {
        fig5 = m;
      } else {
        bfs = m;
      }
    }
    t.AddRow({Fmt(theta, 1), Fmt(fig5.peb_prq.avg_io, 2),
              Fmt(bfs.peb_prq.avg_io, 2), Fmt(fig5.peb_knn.avg_io, 2),
              Fmt(bfs.peb_knn.avg_io, 2)});
  }
  PrintBanner(std::cout,
              "Ablation 4: Figure-5 group-order vs BFS sequence values");
  t.Print(std::cout);
  return 0;
}
