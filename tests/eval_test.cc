#include <gtest/gtest.h>

#include "eval/runner.h"
#include "eval/table_printer.h"
#include "eval/workload.h"
#include "test_util.h"

namespace peb {
namespace eval {
namespace {

WorkloadParams SmallParams(uint64_t seed = 1) {
  WorkloadParams p;
  p.num_users = 800;
  p.policies_per_user = 10;
  p.grouping_factor = 0.7;
  p.seed = seed;
  return p;
}

TEST(Workload, Table1DefaultsMatchThePaper) {
  WorkloadParams p;
  EXPECT_EQ(p.num_users, 60000u);
  EXPECT_EQ(p.policies_per_user, 50u);
  EXPECT_DOUBLE_EQ(p.grouping_factor, 0.7);
  EXPECT_DOUBLE_EQ(p.space_side, 1000.0);
  EXPECT_DOUBLE_EQ(p.max_speed, 3.0);
  EXPECT_EQ(p.buffer_pages, 50u);
  EXPECT_EQ(p.distribution, Distribution::kUniform);
  QuerySetOptions q;
  EXPECT_DOUBLE_EQ(q.window_side, 200.0);
  EXPECT_EQ(q.k, 5u);
  EXPECT_EQ(q.count, 200u);
}

TEST(Workload, BuildLoadsBothIndexes) {
  Workload w = Workload::Build(SmallParams());
  EXPECT_EQ(w.peb().size(), 800u);
  EXPECT_EQ(w.spatial().size(), 800u);
  EXPECT_EQ(w.dataset().objects.size(), 800u);
  EXPECT_GT(w.preprocessing_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(w.now(), 120.0);
  EXPECT_EQ(w.store().num_policies(), 800u * 10u);
}

TEST(Workload, BothIndexesAgreeOnPrqAndPknn) {
  Workload w = Workload::Build(SmallParams(3));
  QuerySetOptions q;
  q.count = 40;
  q.window_side = 250;
  auto prq = MakePrqQueries(w, q);
  EXPECT_EQ(CrossCheckPrq(w, prq), 40u);
  auto knn = MakePknnQueries(w, q);
  EXPECT_EQ(CrossCheckPknn(w, knn), 40u);
}

TEST(Workload, IndexesMatchBruteForceAfterBuild) {
  Workload w = Workload::Build(SmallParams(5));
  QuerySetOptions q;
  q.count = 20;
  for (const PrqQuery& query : MakePrqQueries(w, q)) {
    auto got = w.peb().RangeQuery(query.issuer, query.range, query.tq);
    ASSERT_TRUE(got.ok());
    auto want = testing::BruteForcePrq(w.dataset(), w.store(), w.roles(),
                                       query.issuer, query.range, query.tq);
    EXPECT_EQ(*got, want);
  }
}

TEST(Workload, UpdatesKeepIndexesConsistent) {
  Workload w = Workload::Build(SmallParams(7));
  ASSERT_TRUE(w.ApplyUpdates(400).ok());
  EXPECT_EQ(w.peb().size(), 800u);
  EXPECT_EQ(w.spatial().size(), 800u);
  EXPECT_GT(w.now(), 120.0);
  QuerySetOptions q;
  q.count = 20;
  auto prq = MakePrqQueries(w, q);
  EXPECT_EQ(CrossCheckPrq(w, prq), 20u);
  // And against brute force over the updated snapshot.
  for (const PrqQuery& query : prq) {
    auto got = w.peb().RangeQuery(query.issuer, query.range, query.tq);
    ASSERT_TRUE(got.ok());
    auto want = testing::BruteForcePrq(w.dataset(), w.store(), w.roles(),
                                       query.issuer, query.range, query.tq);
    EXPECT_EQ(*got, want);
  }
}

TEST(Workload, NetworkDistributionBuildsAndAgrees) {
  WorkloadParams p = SmallParams(9);
  p.distribution = Distribution::kNetwork;
  p.num_hubs = 25;
  Workload w = Workload::Build(p);
  EXPECT_EQ(w.peb().size(), 800u);
  QuerySetOptions q;
  q.count = 25;
  auto prq = MakePrqQueries(w, q);
  EXPECT_EQ(CrossCheckPrq(w, prq), 25u);
  auto knn = MakePknnQueries(w, q);
  EXPECT_EQ(CrossCheckPknn(w, knn), 25u);
}

TEST(Runner, BatchesProduceSaneAverages) {
  // Large enough that the tree exceeds the 50-page buffer, so queries must
  // do physical I/O (at 800 users everything fits in RAM and I/O is zero).
  WorkloadParams params = SmallParams(11);
  params.num_users = 8000;
  params.policies_per_user = 15;
  Workload w = Workload::Build(params);
  QuerySetOptions q;
  q.count = 30;
  auto queries = MakePrqQueries(w, q);
  RunResult peb = RunPrqBatch(w.peb_service(), queries);
  RunResult spatial = RunPrqBatch(w.spatial_service(), queries);
  EXPECT_GE(peb.avg_io, 0.0);
  EXPECT_GT(spatial.avg_io, 0.0);
  EXPECT_GT(spatial.avg_candidates, 0.0);
  EXPECT_GE(peb.avg_probes, 1.0);
  // The headline claim, at small scale: the PEB-tree inspects far fewer
  // candidate entries than the spatial-filtering baseline.
  EXPECT_LT(peb.avg_candidates, spatial.avg_candidates);
}

TEST(Runner, QueriesAreDeterministicPerSeed) {
  Workload w = Workload::Build(SmallParams(13));
  QuerySetOptions q;
  q.count = 10;
  q.seed = 5;
  auto a = MakePrqQueries(w, q);
  auto b = MakePrqQueries(w, q);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].issuer, b[i].issuer);
    EXPECT_EQ(a[i].range, b[i].range);
  }
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"N", "PEB", "Spatial"});
  t.AddRow({"10K", "3.25", "41.50"});
  t.AddRow({"100K", "4.00", "410.12"});
  std::ostringstream os;
  t.Print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("N     PEB   Spatial"), std::string::npos);
  EXPECT_NE(s.find("100K"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(TablePrinterTest, FmtFormatsPrecision) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(3.0, 0), "3");
  EXPECT_EQ(Fmt(1234.5, 1), "1234.5");
}

}  // namespace
}  // namespace eval
}  // namespace peb
