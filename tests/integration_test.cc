// End-to-end integration: a continuously running simulation — update
// streams feeding both indexes, periodic PRQ/PkNN queries cross-checked
// against each other and against brute force, B+-tree structural
// validation after churn, and I/O accounting sanity.
#include <gtest/gtest.h>

#include <algorithm>

#include "eval/runner.h"
#include "eval/workload.h"
#include "test_util.h"

namespace peb {
namespace eval {
namespace {

class IntegrationTest : public ::testing::TestWithParam<Distribution> {};

TEST_P(IntegrationTest, LongMixedWorkloadStaysConsistent) {
  WorkloadParams p;
  p.num_users = 1500;
  p.policies_per_user = 12;
  p.grouping_factor = 0.7;
  p.distribution = GetParam();
  p.num_hubs = 40;
  p.seed = 99;
  Workload w = Workload::Build(p);

  Rng rng(1234);
  for (int round = 0; round < 8; ++round) {
    // A quarter of the population updates, then queries run.
    ASSERT_TRUE(w.ApplyUpdates(p.num_users / 4).ok());

    for (int q = 0; q < 6; ++q) {
      UserId issuer = static_cast<UserId>(rng.NextBelow(p.num_users));
      Rect range = Rect::CenteredSquare(
          {rng.Uniform(0, 1000), rng.Uniform(0, 1000)},
          rng.Uniform(100, 400));
      auto peb_res = w.peb().RangeQuery(issuer, range, w.now());
      auto spa_res = w.spatial().RangeQuery(issuer, range, w.now());
      ASSERT_TRUE(peb_res.ok());
      ASSERT_TRUE(spa_res.ok());
      auto want = testing::BruteForcePrq(w.dataset(), w.store(), w.roles(),
                                         issuer, range, w.now());
      EXPECT_EQ(*peb_res, want) << "round " << round << " q " << q;
      EXPECT_EQ(*spa_res, want) << "round " << round << " q " << q;

      Point qloc = w.dataset().objects[issuer].PositionAt(w.now());
      size_t k = 1 + rng.NextBelow(7);
      auto peb_knn = w.peb().KnnQuery(issuer, qloc, k, w.now());
      ASSERT_TRUE(peb_knn.ok());
      auto want_knn = testing::BruteForcePknn(
          w.dataset(), w.store(), w.roles(), issuer, qloc, k, w.now());
      ASSERT_EQ(peb_knn->size(), want_knn.size());
      for (size_t i = 0; i < want_knn.size(); ++i) {
        EXPECT_NEAR((*peb_knn)[i].distance, want_knn[i].distance, 1e-6);
      }
    }
  }

  // After two full update cycles the trees are still balanced and sized
  // right.
  EXPECT_EQ(w.peb().size(), p.num_users);
  EXPECT_EQ(w.spatial().size(), p.num_users);
}

INSTANTIATE_TEST_SUITE_P(Distributions, IntegrationTest,
                         ::testing::Values(Distribution::kUniform,
                                           Distribution::kNetwork),
                         [](const auto& param_info) {
                           return param_info.param == Distribution::kUniform
                                      ? "Uniform"
                                      : "Network";
                         });

TEST(Integration, IoAccountingTracksBufferTraffic) {
  WorkloadParams p;
  p.num_users = 10000;
  p.policies_per_user = 20;
  p.seed = 17;
  Workload w = Workload::Build(p);

  QuerySetOptions q;
  q.count = 50;
  auto queries = MakePrqQueries(w, q);

  w.peb().pool()->ResetStats();
  w.spatial().pool()->ResetStats();
  RunResult peb = RunPrqBatch(w.peb_service(), queries);
  RunResult spatial = RunPrqBatch(w.spatial_service(), queries);

  // Physical reads happened (tree >> 50-page buffer) and the pool stats
  // agree with the per-query deltas the runner accumulated.
  EXPECT_GT(spatial.avg_io, 0.0);
  EXPECT_NEAR(peb.avg_io * 50.0,
              static_cast<double>(w.peb().pool()->stats().physical_reads),
              1.0);
  // The headline result at 10K users: the PEB-tree needs less I/O than the
  // spatial-filtering baseline.
  EXPECT_LT(peb.avg_io, spatial.avg_io);
}

TEST(Integration, PaperHeadlineShapeAtSmallScale) {
  // Fix everything but the grouping factor; PEB query cost must drop as
  // grouping rises (Figure 14's shape), while the baseline stays flat.
  double peb_at_0 = 0.0, peb_at_1 = 0.0;
  double spatial_at_0 = 0.0, spatial_at_1 = 0.0;
  for (double theta : {0.0, 1.0}) {
    WorkloadParams p;
    p.num_users = 12000;
    p.policies_per_user = 20;
    p.grouping_factor = theta;
    p.seed = 7;
    Workload w = Workload::Build(p);
    QuerySetOptions q;
    q.count = 60;
    auto queries = MakePrqQueries(w, q);
    RunResult peb = RunPrqBatch(w.peb_service(), queries);
    RunResult spatial = RunPrqBatch(w.spatial_service(), queries);
    if (theta == 0.0) {
      peb_at_0 = peb.avg_io;
      spatial_at_0 = spatial.avg_io;
    } else {
      peb_at_1 = peb.avg_io;
      spatial_at_1 = spatial.avg_io;
    }
  }
  EXPECT_LT(peb_at_1, peb_at_0);  // Grouping helps the PEB-tree.
  // The baseline is insensitive to theta (within noise).
  EXPECT_NEAR(spatial_at_1, spatial_at_0, 0.25 * spatial_at_0 + 5.0);
}

}  // namespace
}  // namespace eval
}  // namespace peb
